"""Cold crash→restart recovery: stale-epoch interlocks and the restart
matrix (crash-point × interchange).

A *cold* crash (journal attached) models real process death: volatile
state and sockets die, the WAL survives.  These tests pin the two
hazards that class of fault exposed:

- async continuations issued before the crash (a registry lookup, a poll
  reply) landing *after* it and touching the closed store or resurrecting
  poll loops from the dead epoch; and
- recovery itself — after every crash point, on every interchange, the
  gateway must re-announce to the directory, resume serving, and leave
  exactly one black-box dump behind.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import GatewayError
from repro.faults.plan import NodeCrash
from repro.testkit.persistence_profile import install_persistence
from repro.testkit.runner import PERSISTENCE_SEED_BASE, check, generate, replay
from repro.testkit.topology import IslandSpec, TopologySpec, build_world
from repro.testkit.workload import WorkloadGen


def two_island_spec(seed: int, interchange: str) -> TopologySpec:
    return TopologySpec(
        seed=seed,
        islands=(
            IslandSpec(
                name="alpha",
                kind="jini",
                services=("Svc_alpha_0", "Svc_alpha_1"),
                interchange=interchange,
                poll_interval=1.0,
            ),
            IslandSpec(
                name="beta",
                kind="upnp",
                services=("Svc_beta_0",),
                interchange=interchange,
                poll_interval=1.0,
            ),
        ),
        obs_enabled=True,
        deadline=10.0,
        max_retries=1,
        breaker_threshold=0,
        heartbeat_interval=5.0,
    )


class TestStaleEpochInterlocks:
    """Satellite: continuations from before a cold crash must not touch
    the dead epoch's journal or poll loops."""

    def test_subscribe_in_flight_across_cold_crash_settles_declared(self):
        spec = two_island_spec(seed=9_590, interchange="legacy")
        world = build_world(spec)
        install_persistence(world)
        world.sim.run_until_complete(world.mm.connect())
        gateway = world.mm.islands["alpha"].gateway
        journal = world.journals["alpha"]

        # Issue a subscription, then kill the process while the registry
        # lookup is still on the wire.
        future = gateway.events.subscribe("tk/topic", lambda event: None)
        assert not future.done()
        gateway.node.crash()
        gateway.on_crash()
        records_at_crash = journal.store.records_appended

        # Restart the node but do NOT recover yet: the store stays closed,
        # exactly the window where a stale success used to append to it.
        world.sim.run(until=world.sim.now + 2.0)
        gateway.node.restart()
        world.sim.run(until=world.sim.now + 30.0)

        assert future.done()
        assert isinstance(future.exception(), GatewayError)
        # Nothing from the dead epoch reached the WAL.
        assert journal.store.records_appended == records_at_crash
        assert gateway.events._poll_timers == {}

    def test_poll_loops_resume_in_the_new_epoch(self):
        spec = two_island_spec(seed=9_591, interchange="legacy")
        world = build_world(spec)
        install_persistence(world)
        world.sim.run_until_complete(world.mm.connect())
        gateway = world.mm.islands["alpha"].gateway

        future = gateway.events.subscribe("tk/topic", lambda event: None)
        world.sim.run(until=world.sim.now + 5.0)
        assert future.result() == 1  # beta accepted

        generation = gateway.events._delivery_generation
        gateway.node.crash()
        gateway.on_crash()
        world.sim.run(until=world.sim.now + 3.0)
        gateway.node.restart()
        gateway.recover()
        assert gateway.events._delivery_generation > generation

        polls_at_recovery = gateway.events.polls_performed
        world.sim.run(until=world.sim.now + 10.0)
        assert gateway.events.polls_performed > polls_at_recovery, (
            "restarted gateway never resumed polling its remote peer"
        )

    def test_previously_failing_sweep_seeds_stay_fixed(self):
        """Regression pins: these band seeds crashed on stale-epoch
        continuations (closed-store appends, mispaired pipelined replies
        decoded as poll batches) before the interlocks landed."""
        for seed in (532, 550, 573):
            result = check(seed)
            assert result.ok, result.render_repro()


class TestRestartMatrix:
    """Satellite: crash-point × interchange matrix.  Every cell must
    re-announce to the VSR, recover health, and leave exactly one
    black-box dump for the crash."""

    @pytest.mark.parametrize("interchange", ("legacy", "push", "reactor"))
    @pytest.mark.parametrize("crash_fraction", (0.3, 0.7))
    def test_cold_restart_recovers(self, interchange: str, crash_fraction: float):
        # Seed inside the persistence band so replay() attaches journals;
        # distinct per cell so fault RNG streams never collide.
        seed = PERSISTENCE_SEED_BASE + 90
        spec = two_island_spec(seed=seed, interchange=interchange)
        ops = WorkloadGen().generate(spec, 25, profile="persistence")
        horizon = max(op.time for op in ops)
        victim = "alpha"
        faults = [
            (
                horizon * crash_fraction,
                NodeCrash(node=f"gw-{victim}", restart_after=4.0),
            )
        ]
        result = replay(spec, ops, faults)
        assert result.error == ""
        assert result.ok, result.render_repro()

        # Exactly one cold crash, recovered.
        persistence = json.loads(result.metrics_json())["persistence"]
        assert persistence[victim]["cold_crashes"] == 1
        assert persistence[victim]["recoveries"] == 1

        # Exactly one black box for the one crash.
        reasons = [dump["reason"] for dump in result.world.flight[victim].dumps]
        assert reasons.count("node-crash") == 1

        # Re-announced: the directory lists the victim again, and its own
        # journal agrees it holds a live registration.
        directory = result.world.mm.uddi.directory
        assert victim in directory.gateways()
        state = result.world.journals[victim].replay()
        assert state["registered"] is not None
        assert state["registered"][0] == victim

        # Healthy: the node is back up, the gateway serves again.
        gateway = result.world.mm.islands[victim].gateway
        assert gateway.node.alive
        assert not gateway.down
