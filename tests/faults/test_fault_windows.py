"""Edge cases in fault windows: overlap, zero duration, crash mid-call.

Overlapping windows are the sharp corner: each window stacks its model on
whatever is installed and must unwind *itself* on expiry, regardless of
whether it is still the head of the chain (windows can close in either
order).  Zero-duration windows must leave consistent accounting, and a
node crash with a scripted restart must neither strand an in-flight call
nor poison calls made after the restart.
"""

import pytest

from repro.faults import (
    FaultInjector,
    FaultPlan,
    LatencySpike,
    LinkLoss,
    NodeCrash,
    Partition,
)
from repro.testkit.topology import IslandSpec, TopologySpec, build_world

from tests.faults.test_faults import make_lan, send


class TestOverlappingLossWindows:
    def test_inner_window_closes_first(self):
        """Outer (t=0..10, drop-all) spans inner (t=2..4, drop-none): the
        inner window's removal splices the chain *head* and must leave the
        outer window armed."""
        sim, net, eth, received = make_lan()
        plan = (
            FaultPlan(seed=1)
            .at(0.0, LinkLoss("eth0", rate=1.0, duration=10.0))
            .at(2.0, LinkLoss("eth0", rate=0.0, duration=2.0))
        )
        injector = FaultInjector(net, plan).arm()
        for t in (1.0, 3.0, 5.0, 11.0):
            sim.at(t, send, net, "a", "b")
        sim.run(until=20.0)
        assert eth.loss_model is None
        assert len(received["b"]) == 1  # only the t=11 frame survives
        outer, inner = injector.report().by_kind("link-loss")
        assert outer.observed["frames_seen"] == 3
        assert outer.observed["frames_dropped"] == 3
        # The outer model drops first in the chain, so the inner window
        # never even saw the overlapped frame.
        assert inner.observed["frames_seen"] == 0
        assert inner.observed["frames_dropped"] == 0

    def test_outer_window_closes_first(self):
        """First window (t=0..4, drop-none) expires while a later-stacked
        window (t=2..12, drop-all) is still open: removal must splice a
        *non-head* member out without disturbing the head."""
        sim, net, eth, received = make_lan()
        plan = (
            FaultPlan(seed=1)
            .at(0.0, LinkLoss("eth0", rate=0.0, duration=4.0))
            .at(2.0, LinkLoss("eth0", rate=1.0, duration=10.0))
        )
        injector = FaultInjector(net, plan).arm()
        for t in (1.0, 3.0, 5.0, 13.0):
            sim.at(t, send, net, "a", "b")
        sim.run(until=20.0)
        assert eth.loss_model is None
        # t=1 delivered (only drop-none active), t=3 and t=5 dropped by
        # the second window (which outlives the first), t=13 delivered.
        assert len(received["b"]) == 2
        first, second = injector.report().by_kind("link-loss")
        assert first.observed["frames_dropped"] == 0
        assert second.observed["frames_dropped"] == 2


class TestOverlappingPartitions:
    def test_nested_partitions_heal_independently(self):
        sim, net, eth, received = make_lan(("a", "b", "c"))
        plan = (
            FaultPlan(seed=1)
            .at(0.0, Partition.of("eth0", {"a"}, duration=10.0))
            .at(2.0, Partition.of("eth0", {"c"}, duration=2.0))
        )
        FaultInjector(net, plan).arm()
        sim.at(1.0, send, net, "b", "c")  # only {a} cut: delivered
        sim.at(3.0, send, net, "b", "c")  # {c} also cut: blocked
        sim.at(3.0, send, net, "a", "b")  # {a} cut: blocked
        sim.at(5.0, send, net, "b", "c")  # inner healed: delivered
        sim.at(5.0, send, net, "a", "b")  # outer still open: blocked
        sim.at(11.0, send, net, "a", "b")  # all healed: delivered
        sim.run(until=20.0)
        assert eth.delivery_filter is None
        assert len(received["c"]) == 2
        assert len(received["b"]) == 1


class TestZeroDurationWindows:
    def test_zero_duration_loss_accounts_consistently(self):
        """duration=0 opens and closes in the same instant: legal.  FIFO
        ordering means a frame queued at the same instant *after* the open
        still falls inside the window (open -> send -> close), and the
        report's counters must agree with what was actually delivered."""
        sim, net, eth, received = make_lan()
        plan = FaultPlan(seed=1).at(1.0, LinkLoss("eth0", rate=1.0, duration=0.0))
        injector = FaultInjector(net, plan).arm()
        sim.at(1.0, send, net, "a", "b")  # same instant, after the open
        sim.at(2.0, send, net, "a", "b")  # window long closed
        sim.run(until=10.0)
        assert eth.loss_model is None
        record = injector.report().by_kind("link-loss")[0]
        assert record.observed["frames_seen"] == 1
        assert record.observed["frames_dropped"] == 1
        assert len(received["b"]) == 2 - record.observed["frames_dropped"]

    def test_zero_duration_spike_restores_delay(self):
        sim, net, eth, received = make_lan()
        base_delay = eth.propagation_delay
        plan = FaultPlan(seed=1).at(1.0, LatencySpike("eth0", 0.5, duration=0.0))
        injector = FaultInjector(net, plan).arm()
        sim.run(until=10.0)
        assert eth.propagation_delay == pytest.approx(base_delay)
        assert injector.report().by_kind("latency-spike")[0].observed["restored"] == 1

    def test_zero_duration_partition_blocks_nothing(self):
        sim, net, eth, received = make_lan()
        blocked_before = eth.frames_blocked
        plan = FaultPlan(seed=1).at(1.0, Partition.of("eth0", {"a"}, duration=0.0))
        injector = FaultInjector(net, plan).arm()
        sim.at(2.0, send, net, "a", "b")
        sim.run(until=10.0)
        assert eth.delivery_filter is None
        assert eth.frames_blocked == blocked_before
        record = injector.report().by_kind("partition")[0]
        assert record.observed["frames_blocked"] == 0
        assert len(received["b"]) == 1


def two_island_spec() -> TopologySpec:
    """A handcrafted minimal world: caller island + one service island."""
    return TopologySpec(
        seed=0,
        islands=(
            IslandSpec("jini0", "jini", ("Svc_jini0_0",), "legacy", 1.0),
            IslandSpec("upnp1", "upnp", ("Svc_upnp1_0",), "legacy", 1.0),
        ),
        obs_enabled=False,
        deadline=5.0,
        max_retries=1,
        breaker_threshold=0,
        heartbeat_interval=0.0,
    )


class TestCrashRestartMidCall:
    def test_inflight_call_resolves_and_post_restart_call_succeeds(self):
        spec = two_island_spec()
        world = build_world(spec)
        sim = world.sim
        sim.run_until_complete(world.mm.connect(), timeout=600.0)
        caller = world.mm.islands["jini0"].gateway

        start = sim.now
        inflight = caller.invoke("Svc_upnp1_0", "get", [])
        plan = FaultPlan(seed=0).at(
            start + 0.001, NodeCrash("gw-upnp1", restart_after=2.0)
        )
        FaultInjector(world.network, plan, mm=world.mm).arm()
        # Run out every attempt the policy allows plus slack: the future
        # must be *declared* one way or the other, never silently dropped.
        budget = spec.deadline * (spec.max_retries + 1) + 30.0
        sim.run(until=start + budget)
        assert inflight.done(), "in-flight call stranded by crash+restart"

        # The restarted gateway must serve fresh calls.
        after = sim.run_until_complete(
            caller.invoke("Svc_upnp1_0", "add", [7]), timeout=60.0
        )
        assert after >= 7

    def test_crash_without_restart_fails_call_within_policy_budget(self):
        spec = two_island_spec()
        world = build_world(spec)
        sim = world.sim
        sim.run_until_complete(world.mm.connect(), timeout=600.0)
        caller = world.mm.islands["jini0"].gateway

        start = sim.now
        inflight = caller.invoke("Svc_upnp1_0", "get", [])
        plan = FaultPlan(seed=0).at(start + 0.001, NodeCrash("gw-upnp1"))
        FaultInjector(world.network, plan, mm=world.mm).arm()
        budget = spec.deadline * (spec.max_retries + 1) + 30.0
        sim.run(until=start + budget)
        assert inflight.done()
        assert inflight.exception() is not None
        with pytest.raises(Exception):
            inflight.result()
