"""Unit tests for the deterministic fault-injection subsystem."""

import pytest

from repro.errors import FaultInjectionError
from repro.faults import (
    FaultInjector,
    FaultPlan,
    GatewayPause,
    LatencySpike,
    LinkLoss,
    NodeCrash,
    Partition,
)
from repro.net.network import Network
from repro.net.segment import EthernetSegment
from repro.net.simkernel import Simulator


def make_lan(names=("a", "b")):
    """A fresh sim + one Ethernet segment + raw nodes with a counting
    'test'-protocol handler."""
    sim = Simulator()
    net = Network(sim)
    eth = net.create_segment(EthernetSegment, "eth0")
    received = {name: [] for name in names}
    for name in names:
        node = net.create_node(name)
        net.attach(node, eth)
        node.register_protocol(
            "test", lambda iface, frame, _name=name: received[_name].append(frame)
        )
    return sim, net, eth, received


def send(net, src, dst, payload=b"x"):
    src_iface = net.node(src).interfaces[0]
    dst_iface = net.node(dst).interfaces[0]
    src_iface.send(dst_iface.hw_address, "test", payload)


class TestPlanValidation:
    def test_bad_loss_rate_rejected(self):
        with pytest.raises(FaultInjectionError):
            LinkLoss("eth0", rate=1.5, duration=1.0)

    def test_overlapping_partition_groups_rejected(self):
        with pytest.raises(FaultInjectionError):
            Partition.of("eth0", {"a", "b"}, {"b"}, duration=1.0)

    def test_negative_time_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan().at(-1.0, LinkLoss("eth0", rate=0.5, duration=1.0))

    def test_unknown_segment_rejected_at_arm_time(self):
        sim, net, eth, received = make_lan()
        plan = FaultPlan().at(1.0, LinkLoss("nope", rate=0.5, duration=1.0))
        with pytest.raises(Exception):
            FaultInjector(net, plan).arm()

    def test_gateway_pause_requires_metamiddleware(self):
        sim, net, eth, received = make_lan()
        plan = FaultPlan().at(1.0, GatewayPause("jini", duration=1.0))
        with pytest.raises(FaultInjectionError, match="MetaMiddleware"):
            FaultInjector(net, plan).arm()

    def test_double_arm_rejected(self):
        sim, net, eth, received = make_lan()
        injector = FaultInjector(net, FaultPlan())
        injector.arm()
        with pytest.raises(FaultInjectionError):
            injector.arm()


class TestLinkLoss:
    def run_lossy(self, seed):
        sim, net, eth, received = make_lan()
        plan = FaultPlan(seed=seed).at(1.0, LinkLoss("eth0", rate=0.5, duration=10.0))
        injector = FaultInjector(net, plan).arm()
        for k in range(100):
            sim.at(1.0 + 0.05 * k, send, net, "a", "b", b"frame%d" % k)
        sim.run(until=20.0)
        return injector.report(), len(received["b"])

    def test_loss_window_drops_and_restores(self):
        report, delivered = self.run_lossy(seed=3)
        record = report.by_kind("link-loss")[0]
        assert record.observed["frames_seen"] == 100
        dropped = record.observed["frames_dropped"]
        assert 0 < dropped < 100
        assert delivered == 100 - dropped

    def test_loss_model_removed_after_window(self):
        sim, net, eth, received = make_lan()
        plan = FaultPlan(seed=1).at(0.0, LinkLoss("eth0", rate=1.0, duration=1.0))
        FaultInjector(net, plan).arm()
        sim.at(0.5, send, net, "a", "b")  # inside the window: lost
        sim.at(2.0, send, net, "a", "b")  # after restore: delivered
        sim.run()
        assert eth.loss_model is None
        assert len(received["b"]) == 1

    def test_identical_seeds_identical_reports(self):
        report1, delivered1 = self.run_lossy(seed=42)
        report2, delivered2 = self.run_lossy(seed=42)
        assert report1.as_dict() == report2.as_dict()
        assert delivered1 == delivered2

    def test_different_seeds_differ(self):
        report1, _ = self.run_lossy(seed=1)
        report2, _ = self.run_lossy(seed=2)
        assert (
            report1.by_kind("link-loss")[0].observed
            != report2.by_kind("link-loss")[0].observed
        )


class TestPartition:
    def test_cross_group_frames_blocked_then_heal(self):
        sim, net, eth, received = make_lan(("a", "b", "c"))
        plan = FaultPlan().at(
            1.0, Partition.of("eth0", {"a"}, {"b", "c"}, duration=5.0)
        )
        injector = FaultInjector(net, plan).arm()
        sim.at(2.0, send, net, "a", "b")  # cross-partition: blocked
        sim.at(3.0, send, net, "b", "c")  # same side: delivered
        sim.at(7.0, send, net, "a", "b")  # healed: delivered
        sim.run()
        assert len(received["b"]) == 1
        assert len(received["c"]) == 1
        assert eth.delivery_filter is None
        record = injector.report().by_kind("partition")[0]
        # Broadcast medium: the a->b frame was withheld from both far-side
        # interfaces (b, c) and the b->c frame from a.
        assert record.observed["frames_blocked"] == 3

    def test_unlisted_nodes_share_the_implicit_group(self):
        sim, net, eth, received = make_lan(("a", "b", "c"))
        plan = FaultPlan().at(0.0, Partition.of("eth0", {"a"}, duration=5.0))
        FaultInjector(net, plan).arm()
        sim.at(1.0, send, net, "b", "c")  # both unlisted: still connected
        sim.at(2.0, send, net, "a", "b")  # a is isolated
        sim.run(until=4.0)
        assert len(received["c"]) == 1
        assert len(received["b"]) == 0


class TestNodeCrash:
    def test_crash_silences_and_restart_recovers(self):
        sim, net, eth, received = make_lan()
        plan = FaultPlan().at(1.0, NodeCrash("b", restart_after=3.0))
        injector = FaultInjector(net, plan).arm()
        sim.at(0.5, send, net, "a", "b")  # before the crash
        sim.at(2.0, send, net, "a", "b")  # while down: lost on arrival
        sim.at(5.0, send, net, "a", "b")  # after restart
        sim.run()
        assert len(received["b"]) == 2
        assert net.node("b").alive
        record = injector.report().by_kind("node-crash")[0]
        assert record.observed["crashed_at"] == 1.0
        assert record.observed["restarted_at"] == 4.0

    def test_crash_without_restart_stays_down(self):
        sim, net, eth, received = make_lan()
        FaultInjector(net, FaultPlan().at(1.0, NodeCrash("b"))).arm()
        sim.at(2.0, send, net, "a", "b")
        sim.run()
        assert len(received["b"]) == 0
        assert not net.node("b").alive


class TestLatencySpike:
    def test_delay_added_and_restored(self):
        sim, net, eth, received = make_lan()
        base = eth.propagation_delay
        plan = FaultPlan().at(1.0, LatencySpike("eth0", extra_delay=0.25, duration=2.0))
        FaultInjector(net, plan).arm()
        sim.run(until=1.5)
        assert eth.propagation_delay == pytest.approx(base + 0.25)
        sim.run(until=4.0)
        assert eth.propagation_delay == pytest.approx(base)


class TestReport:
    def test_render_lists_every_injection(self):
        sim, net, eth, received = make_lan()
        plan = (
            FaultPlan(seed=9)
            .at(1.0, LinkLoss("eth0", rate=0.1, duration=1.0))
            .at(2.0, NodeCrash("b", restart_after=1.0))
        )
        injector = FaultInjector(net, plan).arm()
        sim.run()
        report = injector.report()
        assert report.injected == 2
        text = report.render()
        assert "link-loss" in text and "node-crash" in text
        assert "seed=9" in text
