"""The canned scenarios, end to end over the bridged home."""

from repro.apps.automation import HomeAutomation, canned_scenarios
from repro.apps.home import build_smart_home
from repro.net.simkernel import Simulator
from repro.obs import Observability
from repro.rules import dsl

DAY = 600.0  # compressed 10-minute day for fast tests


def build_auto(day=DAY, **kwargs):
    sim = Simulator()
    home = build_smart_home(sim=sim, **kwargs)
    home.connect()
    auto = HomeAutomation(home, day=day)
    sim.run_until_complete(auto.start())
    return home, auto


def fired(auto, rule):
    return [f for f in auto.engine.firings if f.rule == rule]


class TestCannedScenarios:
    def test_six_scenarios_serialize(self):
        rules = canned_scenarios()
        assert len(rules) >= 6
        assert dsl.loads(dsl.dumps(rules)) == rules

    def test_presence_av_routing(self):
        home, auto = build_auto()
        assert not home.tv_display.powered
        home.motion_sensor.trigger()
        home.sim.run_for(15.0)
        assert fired(auto, "presence-av-routing")
        assert home.tv_display.powered
        assert home.tv_display.input == "1394"
        assert home.camera.capturing

    def test_motion_record_respects_tuner_condition(self):
        home, auto = build_auto()
        home.invoke_from("havi", "Digital_TV_tuner", "set_channel", [99])
        home.motion_sensor.trigger()
        home.sim.run_for(15.0)
        # Watched live on the surveillance channel: no recording.
        assert not fired(auto, "motion-record")
        assert home.camera_vcr.state != "RECORD"

    def test_motion_record_when_not_watched(self):
        home, auto = build_auto()
        home.motion_sensor.trigger()
        home.sim.run_for(15.0)
        assert fired(auto, "motion-record")
        assert home.camera_vcr.state == "RECORD"

    def test_mail_arrival_notification(self):
        home, auto = build_auto()
        home.invoke_from(
            "jini", "InternetMail", "send",
            ["resident@home.sim", "dinner?", "come home"],
        )
        home.sim.run_for(DAY / 288.0 + 20.0)  # one mail poll + slack
        assert fired(auto, "mail-arrival-notify")
        assert home.lamps["hall"].on
        assert "dinner?" in home.tv_display.messages[-1]

    def test_evening_and_nightly_schedules(self):
        home, auto = build_auto()
        home.invoke_from("jini", "Digital_TV_display", "power_on")
        home.sim.run_for(DAY + 1.0)  # one full day
        assert fired(auto, "evening-lights")
        assert fired(auto, "nightly-shutdown")
        # The 03:00 sweep switched the TV off; dusk switched lamps on after.
        assert not home.tv_display.powered
        assert home.lamps["porch"].on

    def test_degraded_fallback_needs_failures(self):
        sim = Simulator()
        obs = Observability(sim)
        home = build_smart_home(sim=sim, obs=obs)
        home.connect()
        auto = HomeAutomation(home, day=DAY)
        sim.run_until_complete(auto.start())
        home.sim.run_for(30.0)
        assert not fired(auto, "degraded-fallback")  # healthy home: quiet
        obs.metrics.counter("resilience.havi.failures").inc(5)
        home.sim.run_for(30.0)
        assert fired(auto, "degraded-fallback")
        assert home.lamps["hall"].on and home.lamps["porch"].on

    def test_stop_disarms(self):
        home, auto = build_auto()
        auto.stop()
        home.motion_sensor.trigger()
        home.sim.run_for(15.0)
        assert not auto.engine.firings
