"""DSL construction and canonical serialization round-trips."""

import pytest

from repro.errors import FrameworkError
from repro.rules import dsl
from repro.rules.actions import EventRef
from repro.rules.engine import Rule, rule_from_dict


def full_rule() -> Rule:
    """One rule exercising every trigger/condition/action kind."""
    return (
        dsl.rule("kitchen-sink")
        .describe("everything at once")
        .when(
            dsl.on_event("x10.*", island="x10"),
            dsl.every(60.0, offset=5.0),
        )
        .only_if(
            dsl.payload("function").eq("ON"),
            dsl.any_of(
                dsl.service_state("Digital_TV_tuner", "get_channel").ne(99),
                dsl.negate(dsl.vsr_has(room="hall")),
            ),
            dsl.metric("resilience.havi.failures", instrument="counter").lt(3),
        )
        .then(
            dsl.invoke("Digital_TV_display", "show_message", dsl.event("subject")),
            dsl.publish("home.notify", kind="mail", subject=dsl.event("subject")),
            dsl.sweep("off", room="living"),
        )
        .cooldown(30.0)
        .build()
    )


class TestRoundTrip:
    def test_full_rule_roundtrips(self):
        rule = full_rule()
        assert rule_from_dict(rule.to_dict()) == rule

    def test_dumps_loads_single(self):
        rule = full_rule()
        assert dsl.loads(dsl.dumps(rule)) == rule

    def test_dumps_loads_list(self):
        rules = [full_rule(), dsl.rule("b").when(dsl.every(1.0)).then(
            dsl.invoke("X10_A3_fan", "turn_off")).build()]
        assert dsl.loads(dsl.dumps(rules)) == rules

    def test_dumps_is_canonical(self):
        """Byte-identical across calls — rule sets can be hashed/diffed."""
        assert dsl.dumps(full_rule()) == dsl.dumps(full_rule())

    def test_event_ref_serialization(self):
        rule = full_rule()
        text = dsl.dumps(rule)
        assert '{"$event":"subject"}' in text
        restored = dsl.loads(text)
        action = restored.actions[0]
        assert action.args == (EventRef("subject"),)


class TestValidation:
    def test_rule_needs_triggers(self):
        with pytest.raises(FrameworkError):
            dsl.rule("no-trigger").then(dsl.sweep("off")).build()

    def test_rule_needs_actions(self):
        with pytest.raises(FrameworkError):
            dsl.rule("no-action").when(dsl.every(1.0)).build()

    def test_rule_needs_name(self):
        with pytest.raises(FrameworkError):
            dsl.rule("").when(dsl.every(1.0)).then(dsl.sweep("off")).build()

    def test_negative_cooldown_rejected(self):
        with pytest.raises(FrameworkError):
            (dsl.rule("r").when(dsl.every(1.0)).then(dsl.sweep("off"))
             .cooldown(-1.0).build())

    def test_unknown_sweep_preset_rejected(self):
        with pytest.raises(FrameworkError):
            dsl.sweep("sideways")


class TestEventRef:
    def test_resolution(self):
        event = {
            "topic": "mail.arrived",
            "payload": {"subject": "hi", "user": "u@home.sim"},
            "island": "mail",
            "sequence": 4,
        }
        assert EventRef("subject").resolve(event) == "hi"
        assert EventRef("topic").resolve(event) == "mail.arrived"
        assert EventRef("island").resolve(event) == "mail"
        assert EventRef("").resolve(event) == event["payload"]
        assert EventRef("missing").resolve(event) is None
        assert EventRef("subject").resolve(None) is None
