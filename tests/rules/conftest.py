import pytest

from repro.apps.home import build_smart_home
from repro.net.simkernel import Simulator
from repro.obs import Observability


@pytest.fixture
def home():
    built = build_smart_home()
    built.connect()
    return built


@pytest.fixture
def obs_home():
    """A connected home with metrics/tracing recording."""
    sim = Simulator()
    obs = Observability(sim)
    built = build_smart_home(sim=sim, obs=obs)
    built.connect()
    return built, obs
