"""The firing state machine: dedup, cooldown, conditions, actions, metrics."""

import pytest

from repro.errors import FrameworkError
from repro.rules import dsl
from repro.rules.engine import RuleEngine


def x10_on_event(sequence=1, address="A9"):
    return {
        "topic": "x10.ON",
        "payload": {"address": address, "function": "ON", "dims": 0},
        "island": "x10",
        "sequence": sequence,
        "published_at": 0.0,
    }


def lamp_rule(**kwargs):
    builder = (
        dsl.rule(kwargs.pop("name", "lamp-on"))
        .when(dsl.on_event("x10.ON"))
        .then(dsl.invoke("X10_A1_hall_lamp", "turn_on"))
    )
    cooldown = kwargs.pop("cooldown", 0.0)
    if cooldown:
        builder.cooldown(cooldown)
    return builder.build()


class TestManualFire:
    def test_fire_runs_actions(self, home):
        engine = RuleEngine(home.island("havi").gateway)
        engine.add_rule(lamp_rule())
        firing = home.sim.run_until_complete(engine.fire("lamp-on"))
        assert firing is not None
        assert firing.actions_ok == 1 and firing.actions_failed == 0
        assert home.lamps["hall"].on
        assert engine.stats()["fired"] == 1

    def test_fire_unknown_rule_fails(self, home):
        engine = RuleEngine(home.island("havi").gateway)
        with pytest.raises(FrameworkError):
            home.sim.run_until_complete(engine.fire("ghost"))

    def test_manual_fires_are_not_deduplicated(self, home):
        engine = RuleEngine(home.island("havi").gateway)
        engine.add_rule(lamp_rule())
        assert home.sim.run_until_complete(engine.fire("lamp-on")) is not None
        assert home.sim.run_until_complete(engine.fire("lamp-on")) is not None
        assert engine.stats()["fired"] == 2

    def test_duplicate_rule_name_rejected(self, home):
        engine = RuleEngine(home.island("havi").gateway)
        engine.add_rule(lamp_rule())
        with pytest.raises(FrameworkError):
            engine.add_rule(lamp_rule())


class TestDedup:
    def test_redelivered_event_fires_once(self, home):
        """The at-least-once interchange may deliver one occurrence twice;
        the (island, sequence) key must collapse them to one firing."""
        engine = RuleEngine(home.island("havi").gateway)
        engine.add_rule(lamp_rule())
        engine._running = True
        engine._on_event(x10_on_event(sequence=7))
        engine._on_event(x10_on_event(sequence=7))  # redelivery
        home.sim.run_for(5.0)
        assert engine.stats()["fired"] == 1
        assert engine.stats()["suppressed"] == 1

    def test_distinct_occurrences_both_fire(self, home):
        engine = RuleEngine(home.island("havi").gateway)
        engine.add_rule(lamp_rule())
        engine._running = True
        engine._on_event(x10_on_event(sequence=7))
        engine._on_event(x10_on_event(sequence=8))
        home.sim.run_for(5.0)
        assert engine.stats()["fired"] == 2

    def test_suppressed_occurrence_stays_suppressed(self, home):
        """A firing suppressed by cooldown must not fire when the
        interchange redelivers the same occurrence after the window."""
        engine = RuleEngine(home.island("havi").gateway)
        engine.add_rule(lamp_rule(cooldown=2.0))
        engine._running = True
        engine._on_event(x10_on_event(sequence=1))
        home.sim.run_for(1.0)
        engine._on_event(x10_on_event(sequence=2))  # inside cooldown
        home.sim.run_for(5.0)  # cooldown expires
        engine._on_event(x10_on_event(sequence=2))  # redelivery
        home.sim.run_for(5.0)
        assert engine.stats()["fired"] == 1
        assert engine.stats()["suppressed"] == 2


class TestCooldownAndConditions:
    def test_cooldown_suppresses(self, home):
        engine = RuleEngine(home.island("havi").gateway)
        engine.add_rule(lamp_rule(cooldown=10.0))
        home.sim.run_until_complete(engine.fire("lamp-on"))
        assert home.sim.run_until_complete(engine.fire("lamp-on")) is None
        home.sim.run_for(11.0)
        assert home.sim.run_until_complete(engine.fire("lamp-on")) is not None

    def test_false_condition_suppresses(self, home):
        engine = RuleEngine(home.island("havi").gateway)
        engine.add_rule(
            dsl.rule("picky")
            .when(dsl.on_event("x10.ON"))
            .only_if(dsl.payload("address").eq("A1"))
            .then(dsl.invoke("X10_A1_hall_lamp", "turn_on"))
            .build()
        )
        firing = home.sim.run_until_complete(
            engine.fire("picky", event=x10_on_event(address="A9"))
        )
        assert firing is None
        assert not home.lamps["hall"].on
        assert engine.stats()["suppressed"] == 1

    def test_condition_error_fails_safe(self, home):
        """A condition that cannot be evaluated (missing service) keeps
        the rule quiet instead of crashing the engine."""
        engine = RuleEngine(home.island("havi").gateway)
        engine.add_rule(
            dsl.rule("broken-condition")
            .when(dsl.on_event("x10.ON"))
            .only_if(dsl.service_state("NoSuchService", "read").truthy())
            .then(dsl.invoke("X10_A1_hall_lamp", "turn_on"))
            .build()
        )
        firing = home.sim.run_until_complete(engine.fire("broken-condition"))
        assert firing is None
        assert engine.stats()["suppressed"] == 1

    def test_cross_island_service_condition(self, home):
        engine = RuleEngine(home.island("x10").gateway)
        engine.add_rule(
            dsl.rule("tuner-gated")
            .when(dsl.on_event("x10.ON"))
            .only_if(dsl.service_state("Digital_TV_tuner", "get_channel").eq(1))
            .then(dsl.invoke("X10_A1_hall_lamp", "turn_on"))
            .build()
        )
        assert home.sim.run_until_complete(engine.fire("tuner-gated")) is not None
        home.invoke_from("havi", "Digital_TV_tuner", "set_channel", [5])
        assert home.sim.run_until_complete(engine.fire("tuner-gated")) is None

    def test_vsr_condition(self, home):
        engine = RuleEngine(home.island("havi").gateway)
        engine.add_rule(
            dsl.rule("has-hall-sensor")
            .when(dsl.on_event("x10.ON"))
            .only_if(dsl.vsr_has(room="hall", x10_kind="lamp"))
            .then(dsl.invoke("X10_A1_hall_lamp", "turn_on"))
            .build()
        )
        engine.add_rule(
            dsl.rule("has-basement")
            .when(dsl.on_event("x10.ON"))
            .only_if(dsl.vsr_has(room="basement"))
            .then(dsl.invoke("X10_A1_hall_lamp", "turn_on"))
            .build()
        )
        assert home.sim.run_until_complete(engine.fire("has-hall-sensor")) is not None
        assert home.sim.run_until_complete(engine.fire("has-basement")) is None


class TestActions:
    def test_action_failure_is_counted_and_best_effort(self, home):
        engine = RuleEngine(home.island("havi").gateway)
        engine.add_rule(
            dsl.rule("half-broken")
            .when(dsl.on_event("x10.ON"))
            .then(
                dsl.invoke("X10_A1_hall_lamp", "explode"),  # no such op
                dsl.invoke("X10_A2_porch_lamp", "turn_on"),
            )
            .build()
        )
        firing = home.sim.run_until_complete(engine.fire("half-broken"))
        assert firing.actions_failed == 1
        assert firing.actions_ok == 1
        assert home.lamps["porch"].on
        assert engine.stats()["actions_failed"] == 1

    def test_publish_action_feeds_other_subscribers(self, home):
        heard = []
        gw = home.island("x10").gateway
        home.sim.run_until_complete(
            gw.subscribe("home.notify", lambda t, p, i: heard.append((t, p)))
        )
        engine = RuleEngine(home.island("havi").gateway)
        engine.add_rule(
            dsl.rule("announce")
            .when(dsl.on_event("x10.ON"))
            .then(dsl.publish("home.notify", kind="test"))
            .build()
        )
        home.sim.run_until_complete(engine.fire("announce"))
        home.sim.run_for(10.0)
        assert heard and heard[0][1]["kind"] == "test"

    def test_event_ref_templating(self, home):
        engine = RuleEngine(home.island("havi").gateway)
        engine.add_rule(
            dsl.rule("echo-subject")
            .when(dsl.on_event("mail.arrived"))
            .then(dsl.invoke("Digital_TV_display", "show_message", dsl.event("subject")))
            .build()
        )
        event = {
            "topic": "mail.arrived",
            "payload": {"subject": "dinner?"},
            "island": "mail",
            "sequence": 1,
        }
        home.sim.run_until_complete(engine.fire("echo-subject", event=event))
        assert home.tv_display.messages[-1] == "dinner?"


class TestEventSubscription:
    def test_engine_fires_on_published_event(self, home):
        engine = RuleEngine(home.island("havi").gateway)
        engine.add_rule(lamp_rule())
        home.sim.run_until_complete(engine.start())
        home.motion_sensor.trigger()  # A9 ON on the powerline
        home.sim.run_for(15.0)
        assert engine.stats()["fired"] == 1
        assert home.lamps["hall"].on
        [firing] = engine.firings
        assert firing.trigger_kind == "event"
        assert firing.key.startswith("evt:x10:")
        assert firing.latency is not None and firing.latency > 0

    def test_rule_added_while_running_subscribes(self, home):
        engine = RuleEngine(home.island("havi").gateway)
        home.sim.run_until_complete(engine.start())
        engine.add_rule(lamp_rule())
        home.sim.run_for(5.0)  # let the late subscription propagate
        home.motion_sensor.trigger()
        home.sim.run_for(15.0)
        assert engine.stats()["fired"] == 1


class TestSchedules:
    def test_schedule_fires_at_closed_form_instants(self, home):
        engine = RuleEngine(home.island("havi").gateway)
        engine.add_rule(
            dsl.rule("tick")
            .when(dsl.every(5.0, offset=1.0))
            .then(dsl.invoke("X10_A1_hall_lamp", "turn_on"))
            .build()
        )
        home.sim.run_until_complete(engine.start())
        epoch = engine.epoch
        home.sim.run_for(17.0)
        entries = [e for e in engine.schedule_log if e["rule"] == "tick"]
        assert [e["n"] for e in entries] == [0, 1, 2, 3]
        for entry in entries:
            assert entry["due"] == epoch + 1.0 + entry["n"] * 5.0
            assert entry["fired_at"] == entry["due"]

    def test_one_shot_schedule(self, home):
        engine = RuleEngine(home.island("havi").gateway)
        engine.add_rule(
            dsl.rule("once")
            .when(dsl.after(2.0))
            .then(dsl.invoke("X10_A1_hall_lamp", "turn_on"))
            .build()
        )
        home.sim.run_until_complete(engine.start())
        home.sim.run_for(30.0)
        assert len([e for e in engine.schedule_log if e["rule"] == "once"]) == 1

    def test_stop_cancels_schedules(self, home):
        engine = RuleEngine(home.island("havi").gateway)
        engine.add_rule(
            dsl.rule("tick")
            .when(dsl.every(5.0))
            .then(dsl.invoke("X10_A1_hall_lamp", "turn_on"))
            .build()
        )
        home.sim.run_until_complete(engine.start())
        home.sim.run_for(7.0)
        fired_before = engine.stats()["fired"]
        engine.stop()
        home.sim.run_for(30.0)
        assert engine.stats()["fired"] == fired_before


class TestObservability:
    def test_rule_metrics_in_snapshot(self, obs_home):
        home, obs = obs_home
        engine = RuleEngine(home.island("havi").gateway)
        engine.add_rule(lamp_rule(cooldown=60.0))
        home.sim.run_until_complete(engine.fire("lamp-on"))
        home.sim.run_until_complete(engine.fire("lamp-on"))  # cooldown-suppressed
        snapshot = obs.metrics.snapshot()
        assert snapshot["rules.havi.rules_fired"] == 1
        assert snapshot["rules.havi.rules_suppressed"] == 1
        assert snapshot["rules.havi.actions_failed"] == 0
        assert snapshot["rules.havi.rule_latency.count"] == 1

    def test_firing_emits_linked_spans(self, obs_home):
        home, obs = obs_home
        engine = RuleEngine(home.island("x10").gateway)
        engine.add_rule(
            dsl.rule("lamp-on")
            .when(dsl.on_event("x10.ON"))
            .then(dsl.invoke("Digital_TV_display", "power_on"))
            .build()
        )
        home.sim.run_until_complete(engine.fire("lamp-on"))
        home.sim.run_for(5.0)
        spans = obs.tracer.spans
        fire = [s for s in spans if s.name == "rule.fire lamp-on"]
        assert fire, [s.name for s in spans]
        trace_id = fire[0].trace_id
        children = [
            s for s in spans
            if s.trace_id == trace_id and s.name.startswith("vsg.invoke")
        ]
        assert children, "action invocation should join the firing's trace"
