"""Trigger semantics: event matching and closed-form scheduling."""

import pytest

from repro.errors import FrameworkError
from repro.rules.triggers import (
    EventTrigger,
    ScheduleTrigger,
    trigger_from_dict,
)


def event(topic="x10.ON", island="x10"):
    return {"topic": topic, "payload": {}, "island": island, "sequence": 1}


class TestEventTrigger:
    def test_exact_match(self):
        t = EventTrigger("x10.ON")
        assert t.matches(event("x10.ON"))
        assert not t.matches(event("x10.OFF"))

    def test_prefix_pattern(self):
        t = EventTrigger("x10.*")
        assert t.matches(event("x10.ON"))
        assert t.matches(event("x10.DIM"))
        assert not t.matches(event("havi.stream"))

    def test_island_filter(self):
        t = EventTrigger("x10.ON", source_island="x10")
        assert t.matches(event(island="x10"))
        assert not t.matches(event(island="havi"))


class TestScheduleTrigger:
    def test_validation(self):
        with pytest.raises(FrameworkError):
            ScheduleTrigger(interval=0.0)
        with pytest.raises(FrameworkError):
            ScheduleTrigger(interval=-1.0)
        with pytest.raises(FrameworkError):
            ScheduleTrigger(interval=5.0, offset=-0.1)

    def test_occurrence_is_closed_form(self):
        """The n-th instant is computed from n, never accumulated — the
        determinism the testkit oracle relies on (exact float equality)."""
        t = ScheduleTrigger(interval=0.1, offset=0.05)
        epoch = 7.3
        for n in (0, 1, 10, 1000, 12345):
            assert t.occurrence(epoch, n) == epoch + 0.05 + n * 0.1

    def test_first_occurrence_index(self):
        t = ScheduleTrigger(interval=5.0, offset=2.0)
        assert t.first_occurrence_index(epoch=0.0, now=0.0) == 0
        assert t.first_occurrence_index(epoch=0.0, now=2.0) == 0
        assert t.first_occurrence_index(epoch=0.0, now=2.1) == 1
        assert t.first_occurrence_index(epoch=0.0, now=7.0) == 1
        assert t.first_occurrence_index(epoch=0.0, now=7.5) == 2
        # The chosen occurrence is never in the past.
        for now in (0.0, 1.9, 6.99, 31.4):
            n = t.first_occurrence_index(0.0, now)
            assert t.occurrence(0.0, n) >= now

    def test_roundtrip(self):
        for t in (
            EventTrigger("x10.*", source_island="x10"),
            ScheduleTrigger(interval=60.0, offset=30.0),
            ScheduleTrigger(interval=1.0, repeat=False),
        ):
            assert trigger_from_dict(t.to_dict()) == t

    def test_unknown_kind_rejected(self):
        with pytest.raises(FrameworkError):
            trigger_from_dict({"kind": "astrological"})
