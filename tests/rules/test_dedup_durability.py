"""Satellite: rule-engine dedup durability across a cold restart.

The at-least-once interchange may redeliver an event whose first copy
fired a rule *before* a crash and whose duplicate arrives *after* the
restart.  With the dedup window journaled, the recovered engine still
suppresses the duplicate — the rule-dedup oracle (one firing per
``(rule, key)``) must hold over rules-band seeds with a mid-run cold
crash of a rule-hosting gateway.
"""

from __future__ import annotations

import json

import pytest

from repro.faults.plan import NodeCrash
from repro.testkit.runner import generate, replay
from repro.testkit.rules_profile import generate_rules

#: Rules-band seeds; each draws engines on 1-2 host islands.
SEEDS = (200, 201, 203)


def crash_scenario(seed: int):
    spec, ops, _faults = generate(seed)
    hosts = sorted(generate_rules(spec))
    assert hosts, f"seed {seed} drew no rule hosts"
    victim = hosts[0]
    crash_at = max(op.time for op in ops) * 0.5
    faults = [(crash_at, NodeCrash(node=f"gw-{victim}", restart_after=4.0))]
    return spec, ops, faults, victim


@pytest.mark.parametrize("seed", SEEDS)
def test_midrun_crash_of_rule_host_never_double_fires(seed: int):
    spec, ops, faults, victim = crash_scenario(seed)
    result = replay(spec, ops, faults, persist=True)
    assert result.error == ""
    # result.ok includes the rule-dedup oracle: no (rule, key) fired twice,
    # even though the crash wiped the in-memory window mid-run.
    assert result.ok, result.render_repro()

    persistence = json.loads(result.metrics_json())["persistence"]
    assert persistence[victim]["cold_crashes"] == 1
    assert persistence[victim]["recoveries"] == 1

    # The band is not vacuous: engines fired, and the dedup window made
    # it into the WAL (rseen records fold back into the recovered state).
    assert sum(e.fired_count for e in result.world.rule_engines.values()) > 0
    rseen = [
        record
        for host in result.world.rule_engines
        for record in result.world.journals[host].dump()["records"]
        if record.get("t") == "rseen"
        or (record.get("t") == "ckpt" and record["state"]["rules"])
    ]
    assert rseen, "no dedup state ever reached a rule host's WAL"


def test_crash_run_is_deterministic():
    seed = SEEDS[1]
    spec, ops, faults, _victim = crash_scenario(seed)
    first = replay(spec, ops, faults, persist=True)
    second = replay(spec, ops, faults, persist=True)
    assert first.metrics_json() == second.metrics_json()
    assert first.wal_dumps_json() == second.wal_dumps_json()
