"""Unit tests for the per-node flight recorder."""

from __future__ import annotations

import json

from repro.net.simkernel import Simulator
from repro.obs.flight import FlightRecorder, dumps_json
from repro.obs.trace import Tracer


class TestRing:
    def test_records_are_timestamped_and_ordered(self):
        sim = Simulator()
        recorder = FlightRecorder(sim, node="gw-a")
        recorder.record("span", name="one")
        sim.schedule(2.0, lambda: recorder.record("span", name="two"))
        sim.run()
        assert [entry["time"] for entry in recorder.records] == [0.0, 2.0]
        assert recorder.records[1]["name"] == "two"

    def test_capacity_bounds_the_ring_and_counts_drops(self):
        recorder = FlightRecorder(Simulator(), capacity=3)
        for index in range(10):
            recorder.record("frame", index=index)
        assert len(recorder.records) == 3
        assert recorder.dropped == 7
        assert [entry["index"] for entry in recorder.records] == [7, 8, 9]

    def test_trigger_caps_dumps_but_counts_triggers(self):
        recorder = FlightRecorder(Simulator(), max_dumps=2)
        recorder.record("span", name="x")
        assert recorder.trigger("node-crash") is not None
        assert recorder.trigger("watchdog-reap") is not None
        assert recorder.trigger("oracle-failure") is None  # past the cap
        assert len(recorder.dumps) == 2
        assert recorder.triggers == 3

    def test_dump_json_is_deterministic(self):
        def run() -> str:
            sim = Simulator()
            recorder = FlightRecorder(sim, node="gw-a")
            recorder.record("frame", segment="backbone", size=100, dropped=False)
            sim.schedule(1.5, lambda: recorder.trigger("node-crash"))
            sim.run()
            return recorder.dump_json()

        first, second = run(), run()
        assert first == second
        parsed = json.loads(first)
        assert parsed["reason"] == "node-crash"
        assert parsed["dumped_at"] == 1.5
        assert parsed["records"][0]["kind"] == "frame"

    def test_dump_freezes_the_ring(self):
        recorder = FlightRecorder(Simulator())
        recorder.record("span", name="before")
        dump = recorder.trigger("node-crash")
        recorder.record("span", name="after")
        assert [entry["name"] for entry in dump["records"]] == ["before"]


class TestWatchers:
    def test_watch_tracer_records_finished_spans_for_its_island(self):
        sim = Simulator()
        tracer = Tracer(sim)
        recorder = FlightRecorder(sim, node="gw-a").watch_tracer(tracer, island="a")
        tracer.start_span("keep", island="a").finish()
        tracer.start_span("keep-sub", island="a.vsr").finish()
        tracer.start_span("skip", island="b").finish()
        tracer.start_span("never-finished", island="a")
        names = [entry["name"] for entry in recorder.records]
        assert names == ["keep", "keep-sub"]

    def test_finish_listener_fires_once_per_span(self):
        sim = Simulator()
        tracer = Tracer(sim)
        recorder = FlightRecorder(sim).watch_tracer(tracer)
        span = tracer.start_span("once", island="a")
        span.finish()
        span.finish()  # idempotent: no second record
        assert len(recorder.records) == 1

    def test_watch_monitor_feeds_frames(self):
        from repro.net.monitor import TrafficMonitor
        from repro.net.network import Network
        from repro.net.segment import EthernetSegment

        sim = Simulator()
        network = Network(sim)
        segment = network.create_segment(EthernetSegment, "seg")
        a, b = network.create_node("a"), network.create_node("b")
        network.attach(a, segment)
        network.attach(b, segment)
        monitor = TrafficMonitor().watch(segment)
        recorder = FlightRecorder(sim).watch_monitor(monitor)
        a.interfaces[0].broadcast("p", b"x")
        sim.run()
        assert recorder.records
        assert recorder.records[0]["kind"] == "frame"
        assert recorder.records[0]["segment"] == "seg"

    def test_merged_dumps_json_skips_quiet_recorders(self):
        sim = Simulator()
        noisy = FlightRecorder(sim, node="gw-a")
        quiet = FlightRecorder(sim, node="gw-b")
        noisy.record("span", name="x")
        noisy.trigger("node-crash")
        merged = json.loads(dumps_json({"a": noisy, "b": quiet}))
        assert list(merged) == ["a"]
        assert merged["a"][0]["reason"] == "node-crash"
