"""Unit tests for the tracer: contexts, spans, activation, export."""

import pytest

from repro.net.simkernel import Simulator
from repro.obs import (
    NULL_SPAN,
    TRACE_HEADER,
    NullTracer,
    TraceContext,
    Tracer,
    render_trace_tree,
    spans_to_jsonl,
)


@pytest.fixture
def tracer(sim: Simulator) -> Tracer:
    return Tracer(sim)


class TestTraceContext:
    def test_header_round_trip(self):
        context = TraceContext(trace_id="t000001", span_id="s000002")
        assert context.to_header() == "t000001;s000002"
        assert TraceContext.from_header("t000001;s000002") == context

    def test_from_header_tolerates_whitespace(self):
        assert TraceContext.from_header(" t000001 ; s000002 ") == TraceContext(
            "t000001", "s000002"
        )

    def test_from_header_rejects_malformed(self):
        assert TraceContext.from_header("") is None
        assert TraceContext.from_header("no-separator") is None
        assert TraceContext.from_header(";s000001") is None
        assert TraceContext.from_header("t000001;") is None

    def test_header_name_is_an_extension_header(self):
        assert TRACE_HEADER.startswith("X-")


class TestSpanLifecycle:
    def test_ids_are_deterministic(self, tracer):
        a = tracer.start_span("one")
        b = tracer.start_span("two", parent=a)
        assert a.trace_id == "t000001"
        assert a.span_id == "s000001"
        assert b.trace_id == "t000001"
        assert b.span_id == "s000002"
        assert b.parent_id == "s000001"

    def test_separate_roots_get_separate_traces(self, tracer):
        a = tracer.start_span("one")
        b = tracer.start_span("two")
        assert a.trace_id == "t000001"
        assert b.trace_id == "t000002"
        assert tracer.trace_ids() == ["t000001", "t000002"]

    def test_ambient_parenting_through_activate(self, tracer):
        root = tracer.start_span("root")
        with tracer.activate(root):
            child = tracer.start_span("child")
            assert tracer.current() is root
        assert child.parent_id == root.span_id
        assert child.trace_id == root.trace_id
        assert tracer.current() is None

    def test_context_parenting_joins_remote_trace(self, tracer):
        context = TraceContext(trace_id="t000042", span_id="s000007")
        span = tracer.start_span("serve", parent=context)
        assert span.trace_id == "t000042"
        assert span.parent_id == "s000007"

    def test_finish_records_duration_and_is_idempotent(self, sim, tracer):
        span = tracer.start_span("work")
        assert span.start == sim.now
        sim.at(1.5, lambda: None)
        sim.run()
        span.finish()
        first_end = span.end
        span.finish(RuntimeError("late"))  # ignored: already finished
        assert span.end == first_end
        assert span.status == "ok"
        assert span.duration == pytest.approx(1.5)

    def test_finish_with_error_sets_status(self, tracer):
        span = tracer.start_span("work")
        span.finish(ValueError("boom"))
        assert span.status == "error"
        assert "boom" in span.error

    def test_annotations_are_timestamped(self, sim, tracer):
        span = tracer.start_span("work")
        sim.at(2.0, lambda: span.annotate("midway"))
        sim.run()
        assert span.annotations == [{"time": 2.0, "message": "midway"}]

    def test_attributes_chain(self, tracer):
        span = tracer.start_span("work").set_attribute("k", "v")
        assert span.attributes == {"k": "v"}

    def test_max_spans_drops_and_counts(self, sim):
        tracer = Tracer(sim, max_spans=2)
        tracer.start_span("a")
        tracer.start_span("b")
        dropped = tracer.start_span("c")
        assert len(tracer.spans) == 2
        assert tracer.spans_dropped == 1
        # The overflow span still works (callers never check), it just
        # isn't retained for export.
        assert dropped not in tracer.spans

    def test_reset_drops_spans_but_keeps_ids_unique(self, tracer):
        tracer.start_span("a").finish()
        tracer.reset()
        assert tracer.spans == []
        assert tracer.spans_dropped == 0
        # Counters keep running so ids stay unique across the tracer's
        # lifetime (documented contract).
        assert tracer.start_span("b").trace_id == "t000002"


class TestNullObjects:
    def test_null_span_is_inert(self):
        assert not NULL_SPAN.recording
        NULL_SPAN.set_attribute("k", "v").annotate("x").finish(ValueError("e"))
        assert NULL_SPAN.attributes == {}
        assert NULL_SPAN.annotations == []
        assert NULL_SPAN.end is None

    def test_null_tracer_records_nothing(self):
        tracer = NullTracer()
        assert not tracer.enabled
        span = tracer.start_span("anything", island="x", kind="client")
        assert span is NULL_SPAN
        with tracer.activate(span):
            assert tracer.current() is None
        assert tracer.current_context() is None
        assert list(tracer.spans) == []
        assert tracer.export_jsonl() == ""

    def test_real_tracer_activating_null_span_keeps_ambient_clear(self, tracer):
        with tracer.activate(NULL_SPAN):
            assert tracer.current() is None


class TestExport:
    def build(self, sim):
        tracer = Tracer(sim)
        root = tracer.start_span("root", island="jini", kind="client")
        with tracer.activate(root):
            tracer.start_span("child", island="x10", kind="server").finish()
        root.finish()
        return tracer

    def test_jsonl_is_deterministic_across_identical_runs(self):
        first = self.build(Simulator()).export_jsonl()
        second = self.build(Simulator()).export_jsonl()
        assert first == second
        assert first.count("\n") == 2

    def test_jsonl_lines_have_sorted_keys(self, sim):
        import json

        tracer = self.build(sim)
        for line in tracer.export_jsonl().splitlines():
            record = json.loads(line)
            assert list(record) == sorted(record)
            assert record["trace_id"] == "t000001"

    def test_export_filters_by_trace(self, tracer):
        tracer.start_span("a").finish()
        tracer.start_span("b").finish()
        only_b = tracer.export_jsonl("t000002")
        assert "t000002" in only_b and "t000001" not in only_b

    def test_write_jsonl(self, tracer, tmp_path):
        tracer.start_span("a").finish()
        path = tracer.write_jsonl(str(tmp_path / "spans.jsonl"))
        with open(path, encoding="utf-8") as handle:
            assert handle.read() == tracer.export_jsonl()

    def test_spans_to_jsonl_matches_tracer_export(self, tracer):
        tracer.start_span("a").finish()
        assert spans_to_jsonl(tracer.spans) == tracer.export_jsonl()


class TestRenderTree:
    def test_tree_shows_hierarchy_islands_and_status(self, sim):
        tracer = Tracer(sim)
        root = tracer.start_span("vsg.invoke Lamp.turn_on", island="jini", kind="client")
        with tracer.activate(root):
            lookup = tracer.start_span("vsr.lookup Lamp", island="jini")
            lookup.finish()
            serve = tracer.start_span("soap.serve Lamp", island="x10", kind="server")
            serve.annotate("retry 1/2")
            serve.finish(TimeoutError("late"))
        root.finish()
        text = render_trace_tree(tracer)
        assert "trace t000001" in text
        assert "islands: jini, x10" in text
        assert "└─" in text and "├─" in text
        assert "[x10]" in text
        assert "!error" in text
        assert "retry 1/2" in text

    def test_rendering_is_deterministic(self):
        def build():
            sim = Simulator()
            tracer = Tracer(sim)
            root = tracer.start_span("root")
            with tracer.activate(root):
                tracer.start_span("child").finish()
            root.finish()
            return render_trace_tree(tracer)

        assert build() == build()
