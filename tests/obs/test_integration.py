"""End-to-end observability: one bridged call = one multi-island trace.

The acceptance scenario for ``repro.obs``: a Jini client invoking an X10
service through the framework (proxy → VSG → SOAP interchange → peer VSG →
native powerline) must produce a *single* trace whose spans live on both
islands, exported deterministically; and under injected faults the
resilience layer's retries and breaker transitions must be visible as span
annotations and metric counters.
"""

import pytest

from repro.apps.home import build_smart_home
from repro.core.resilience import CallPolicy
from repro.faults import FaultInjector, FaultPlan, NodeCrash
from repro.net.simkernel import Simulator
from repro.obs import NOOP_OBS, Observability, render_trace_tree


def traced_home(sim=None, obs=None, policy=None):
    sim = sim or Simulator()
    obs = obs or Observability(sim)
    home = build_smart_home(
        sim, with_havi=False, with_mail=False, policy=policy, obs=obs
    )
    home.connect()
    home.run(5.0)
    return home, obs


def bridged_call(home):
    """One Jini→X10 bridged call (hall lamp on), run to completion."""
    return home.invoke_from("jini", "X10_A1_hall_lamp", "turn_on")


class TestBridgedCallTrace:
    def test_single_trace_spans_both_islands(self):
        home, obs = traced_home()
        marker = len(obs.tracer.spans)
        assert bridged_call(home) is True
        spans = obs.tracer.spans[marker:]
        trace_ids = {span.trace_id for span in spans}
        assert len(trace_ids) == 1, "one bridged call must be one trace"
        assert len(spans) >= 6
        islands = {span.island for span in spans}
        assert "jini" in islands and "x10" in islands
        names = [span.name for span in spans]
        assert any(name.startswith("vsg.invoke") for name in names)
        assert any(name.startswith("vsr.lookup") for name in names)
        assert any(name.startswith("soap.serve") for name in names)
        assert any(name.startswith("vsg.dispatch") for name in names)
        assert any(name.startswith("x10.") for name in names)
        assert all(span.end is not None for span in spans)

    def test_server_side_spans_join_via_header_parenting(self):
        home, obs = traced_home()
        marker = len(obs.tracer.spans)
        bridged_call(home)
        spans = obs.tracer.spans[marker:]
        by_id = {span.span_id for span in spans}
        serve = [
            s for s in spans if s.name.startswith("soap.serve X10_") and s.island == "x10"
        ]
        assert serve, "serving island must contribute spans"
        # The remote side's spans parent into the client's trace (the
        # context crossed in the X-Trace header), not into a fresh root.
        assert all(span.parent_id in by_id for span in serve)

    def test_export_is_byte_identical_across_identical_runs(self, tmp_path):
        def run():
            home, obs = traced_home()
            marker = len(obs.tracer.spans)
            bridged_call(home)
            trace_id = obs.tracer.spans[marker].trace_id
            return obs.tracer.export_jsonl(trace_id), render_trace_tree(
                obs.tracer.spans[marker:]
            )

        first_jsonl, first_tree = run()
        second_jsonl, second_tree = run()
        assert first_jsonl == second_jsonl
        assert first_tree == second_tree
        path = tmp_path / "trace.jsonl"
        path.write_text(first_jsonl, encoding="utf-8")
        assert path.read_text(encoding="utf-8") == second_jsonl

    def test_rendered_tree_shows_the_bridge(self):
        home, obs = traced_home()
        marker = len(obs.tracer.spans)
        bridged_call(home)
        tree = render_trace_tree(obs.tracer.spans[marker:])
        assert "[jini]" in tree and "[x10]" in tree
        assert "vsg.invoke X10_A1_hall_lamp.turn_on" in tree

    def test_metrics_count_the_call_on_both_sides(self):
        home, obs = traced_home()
        bridged_call(home)
        snapshot = obs.metrics.snapshot()
        assert snapshot["vsg.jini.calls_out"] >= 1
        assert snapshot["vsg.x10.calls_in"] >= 1
        assert snapshot["vsg.jini.call_latency.count"] >= 1
        assert snapshot["vsr.jini.remote_lookups"] >= 1

    def test_disabled_observability_records_nothing(self):
        sim = Simulator()
        home = build_smart_home(sim, with_havi=False, with_mail=False)
        home.connect()
        home.run(5.0)
        assert bridged_call(home) is True
        assert home.mm.obs is NOOP_OBS
        assert list(NOOP_OBS.tracer.spans) == []
        assert NOOP_OBS.metrics.snapshot() == {}

    def test_untraced_background_chatter_creates_no_roots(self):
        """Heartbeats and event polls run constantly; with no call in
        flight they must not open trace roots of their own."""
        home, obs = traced_home()
        before = len(obs.tracer.spans)
        home.run(30.0)  # plenty of polls and heartbeats
        assert len(obs.tracer.spans) == before


POLICY = CallPolicy(
    deadline=1.0,
    max_retries=1,
    breaker_threshold=2,
    breaker_reset_timeout=8.0,
    directory_deadline=2.0,
    seed=11,
)


class TestChaosObservability:
    def crash_and_call(self):
        sim = Simulator()
        obs = Observability(sim)
        home, obs = traced_home(sim, obs, policy=POLICY)
        bridged_call(home)  # warm: resolves + pools while healthy
        plan = FaultPlan(seed=11).at(sim.now + 1.0, NodeCrash("gw-x10", restart_after=120.0))
        FaultInjector(home.network, plan, mm=home.mm).arm()
        home.run(2.0)
        failures = 0
        for _ in range(4):
            try:
                bridged_call(home)
            except Exception:
                failures += 1
            home.run(1.0)
        return home, obs, failures

    def test_retries_and_breaker_are_observable(self):
        home, obs, failures = self.crash_and_call()
        assert failures >= 2
        snapshot = obs.metrics.snapshot()
        assert snapshot["resilience.jini.retries"] >= 1
        assert snapshot["resilience.jini.timeouts"] >= 1
        assert snapshot["resilience.jini.breaker.x10.to_open"] >= 1
        annotations = [
            note["message"]
            for span in obs.tracer.spans
            for note in span.annotations
        ]
        assert any("timed out" in message for message in annotations)
        assert any(message.startswith("retry 1/") for message in annotations)
        assert any("breaker open" in message for message in annotations)

    def test_failed_spans_carry_error_status(self):
        home, obs, failures = self.crash_and_call()
        failed = [
            span
            for span in obs.tracer.spans
            if span.name.startswith("vsg.invoke") and span.status == "error"
        ]
        assert failed, "failed bridged calls must export error spans"
