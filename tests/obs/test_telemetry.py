"""Unit tests for the telemetry plane: agent deltas, collector merge,
health scoring.

The merge-idempotence tests are the ISSUE-8 satellite: duplicated and
reordered delta reports (at-least-once redelivery on the event plane)
must yield byte-identical federation snapshots.
"""

from __future__ import annotations

import pytest

from repro.net.simkernel import Simulator
from repro.obs import Observability
from repro.obs.health import (
    DEGRADED,
    HEALTHY,
    UNHEALTHY,
    HealthPolicy,
    latency_quantiles,
    quantile_from_buckets,
    score_island,
)
from repro.obs.telemetry import (
    TELEMETRY_TOPIC_PREFIX,
    TelemetryAgent,
    TelemetryCollector,
)


class StubVsg:
    """The duck-typed slice of a VSG the telemetry classes touch."""

    def __init__(self, sim: Simulator, island: str, obs: Observability) -> None:
        self.sim = sim
        self.island = island
        self.obs = obs
        self.published: list[tuple[str, dict]] = []

    def publish_event(self, topic: str, payload: dict) -> None:
        self.published.append((topic, payload))


def make_agent(island: str = "a", interval: float = 5.0):
    sim = Simulator()
    obs = Observability(sim)
    vsg = StubVsg(sim, island, obs)
    return sim, obs, vsg, TelemetryAgent(vsg, interval=interval)


def make_collector(island: str = "hub", policy: HealthPolicy | None = None):
    sim = Simulator()
    obs = Observability(sim)
    vsg = StubVsg(sim, island, obs)
    return sim, vsg, TelemetryCollector(vsg, policy=policy)


class TestAgent:
    def test_scope_filter_is_dotted_component(self):
        sim, obs, vsg, agent = make_agent("a")
        obs.metrics.counter("vsg.a.calls_out").inc(3)
        obs.metrics.counter("vsg.ab.calls_out").inc(9)  # not island "a"
        obs.metrics.counter("resilience.a.attempts").inc(1)
        monotonic, _level = agent.collect()
        assert monotonic == {"vsg.a.calls_out": 3, "resilience.a.attempts": 1}

    def test_counters_ship_as_increments(self):
        sim, obs, vsg, agent = make_agent("a")
        counter = obs.metrics.counter("vsg.a.calls_out")
        counter.inc(3)
        first = agent.build_report()
        counter.inc(2)
        second = agent.build_report()
        assert first["counters"] == {"vsg.a.calls_out": 3}
        assert second["counters"] == {"vsg.a.calls_out": 2}
        assert (first["seq"], second["seq"]) == (1, 2)
        assert agent.emitted_totals == {"vsg.a.calls_out": 5}

    def test_unchanged_counters_are_omitted_from_the_delta(self):
        sim, obs, vsg, agent = make_agent("a")
        obs.metrics.counter("vsg.a.calls_out").inc(3)
        agent.build_report()
        second = agent.build_report()
        assert second["counters"] == {}

    def test_gauges_ship_absolute(self):
        sim, obs, vsg, agent = make_agent("a")
        gauge = obs.metrics.gauge("events.a.parked")
        gauge.set(4.0)
        assert agent.build_report()["gauges"] == {"events.a.parked": 4.0}
        gauge.set(1.0)
        assert agent.build_report()["gauges"] == {"events.a.parked": 1.0}

    def test_drift_free_schedule(self):
        sim, obs, vsg, agent = make_agent("a", interval=5.0)
        sim.schedule(1.0, agent.start)  # epoch = 1.0
        sim.run(until=22.0)
        agent.stop()
        times = [payload["time"] for _topic, payload in vsg.published]
        assert times == [6.0, 11.0, 16.0, 21.0]
        assert [p["seq"] for _t, p in vsg.published] == [1, 2, 3, 4]
        assert agent.occurrence(3) == 16.0

    def test_disabled_agent_never_publishes(self):
        sim, obs, vsg, agent = make_agent("a")
        agent.enabled = False
        agent.start()
        sim.run(until=30.0)
        assert vsg.published == []
        assert agent.emit() is None

    def test_reports_publish_under_island_topic(self):
        sim, obs, vsg, agent = make_agent("a")
        agent.emit()
        assert vsg.published[0][0] == TELEMETRY_TOPIC_PREFIX + "a"


def agent_reports(n: int = 4) -> list[dict]:
    """n self-consistent delta reports with float-valued increments
    (histogram sums), so arrival-order folding would diverge."""
    sim, obs, vsg, agent = make_agent("a", interval=1.0)
    histogram = obs.metrics.histogram("vsg.a.call_latency")
    counter = obs.metrics.counter("vsg.a.calls_out")
    reports = []
    for index in range(n):
        counter.inc(index + 1)
        histogram.observe(0.1 * (index + 1) + 1e-3)
        obs.metrics.gauge("events.a.parked").set(float(index))
        reports.append(agent.build_report())
    return reports


class TestCollectorMerge:
    def test_duplicates_are_dropped_not_double_counted(self):
        reports = agent_reports(3)
        sim, vsg, collector = make_collector()
        for report in reports:
            assert collector.ingest(report)
        baseline = collector.island_totals("a")
        for report in reports:
            assert not collector.ingest(report)  # redelivery
        assert collector.island_totals("a") == baseline
        assert collector.duplicates_dropped == 3

    def test_reordered_and_duplicated_snapshots_are_byte_identical(self):
        """The satellite contract: any at-least-once delivery order of the
        same reports converges to one federation snapshot, byte for byte."""
        reports = agent_reports(4)
        orders = [
            [0, 1, 2, 3],
            [3, 2, 1, 0],
            [1, 3, 0, 2],
            [0, 0, 2, 1, 2, 3, 1, 0, 3, 3],  # duplicates interleaved
        ]
        snapshots = []
        for order in orders:
            sim, vsg, collector = make_collector()
            for index in order:
                collector.ingest(dict(reports[index]))
            snapshots.append(collector.snapshot_json())
        assert len(set(snapshots)) == 1

    def test_gauges_come_from_highest_sequence(self):
        reports = agent_reports(3)
        sim, vsg, collector = make_collector()
        collector.ingest(reports[2])
        collector.ingest(reports[0])  # stale reorder must not win
        assert collector.island_totals("a")  # counters merged from both
        view_gauges = collector.federation_snapshot()["islands"]["a"]["gauges"]
        assert view_gauges["events.a.parked"] == 2.0

    def test_out_of_order_totals_fold_in_sequence_order(self):
        reports = agent_reports(3)
        in_order = make_collector()[2]
        for report in reports:
            in_order.ingest(report)
        shuffled = make_collector()[2]
        for index in (2, 0, 1):
            shuffled.ingest(reports[index])
        assert shuffled.island_totals("a") == in_order.island_totals("a")

    def test_malformed_reports_are_counted_and_dropped(self):
        sim, vsg, collector = make_collector()
        assert not collector.ingest({"island": "a"})  # no seq
        assert not collector.ingest({"island": "a", "seq": 0})  # bad seq
        assert collector.malformed_dropped == 2
        assert collector.islands() == []

    def test_max_seq_and_staleness_tracked(self):
        reports = agent_reports(2)
        sim, vsg, collector = make_collector()
        collector.ingest(reports[1])
        assert collector.island_max_seq("a") == 2
        assert collector.island_last_time("a") == reports[1]["time"]


class TestCollectorHealth:
    def test_health_transition_exports_gauge_and_transition_record(self):
        sim, vsg, collector = make_collector()
        for report in agent_reports(2):
            collector.ingest(report)
        assert collector.status("a") == HEALTHY
        transitions = [t for t in collector.transitions if t["island"] == "a"]
        assert transitions and transitions[0]["to"] == HEALTHY
        gauge = vsg.obs.metrics.gauge("telemetry.hub.health.a")
        assert gauge.value == 0

    def test_stale_island_goes_unhealthy(self):
        sim, vsg, collector = make_collector(
            policy=HealthPolicy(stale_after_reports=2.0)
        )
        report = agent_reports(1)[0]
        report["interval"] = 1.0
        collector.ingest(report)
        sim.run(until=report["time"] + 10.0)
        health = collector.status_for("a")
        assert health["status"] == UNHEALTHY
        assert "telemetry-stale" in health["reasons"]

    def test_listener_sees_transitions(self):
        sim, vsg, collector = make_collector()
        seen: list[tuple[str, str, str]] = []
        collector.add_listener(lambda island, old, new: seen.append((island, old, new)))
        for report in agent_reports(1):
            collector.ingest(report)
        assert seen == [("a", "", HEALTHY)]


class TestHealthScoring:
    def test_quantile_interpolates_inside_bucket(self):
        # 4 observations: 2 in (0, 0.001], 2 in (0.001, 0.01].
        assert quantile_from_buckets({0.001: 2, 0.01: 2}, 0, 0.5) == pytest.approx(
            0.001
        )
        q75 = quantile_from_buckets({0.001: 2, 0.01: 2}, 0, 0.75)
        assert 0.001 < q75 <= 0.01

    def test_quantile_overflow_clamps_to_last_bound(self):
        assert quantile_from_buckets({0.001: 1}, 9, 0.99) == 0.001

    def test_quantile_empty_histogram_is_none(self):
        assert quantile_from_buckets({}, 0, 0.5) is None

    def test_latency_quantiles_parse_bounds_from_keys(self):
        counters = {
            "vsg.a.call_latency.le_0.001": 5,
            "vsg.a.call_latency.le_0.01": 5,
            "vsg.a.call_latency.overflow": 0,
        }
        quantiles = latency_quantiles(counters, "vsg.a.call_latency")
        assert set(quantiles) == {"p50", "p99"}
        assert quantiles["p50"] == pytest.approx(0.001)

    def test_success_rate_thresholds(self):
        policy = HealthPolicy(min_samples=3)
        good = {"resilience.a.attempts": 10, "resilience.a.successes": 10}
        bad = {"resilience.a.attempts": 10, "resilience.a.successes": 2}
        meh = {"resilience.a.attempts": 10, "resilience.a.successes": 8}
        assert score_island(policy, "a", good)["status"] == HEALTHY
        assert score_island(policy, "a", bad)["status"] == UNHEALTHY
        assert score_island(policy, "a", meh)["status"] == DEGRADED

    def test_min_samples_guards_small_windows(self):
        policy = HealthPolicy(min_samples=3)
        tiny = {"resilience.a.attempts": 1, "resilience.a.successes": 0}
        assert score_island(policy, "a", tiny)["status"] == HEALTHY

    def test_heartbeat_death_and_breaker_condemn(self):
        policy = HealthPolicy()
        dead = score_island(policy, "a", {}, heartbeat_dead=True)
        assert dead["status"] == UNHEALTHY and "heartbeat-dead" in dead["reasons"]
        opened = score_island(policy, "a", {}, breaker_state="open")
        assert opened["status"] == UNHEALTHY and "breaker-open" in opened["reasons"]
        probing = score_island(policy, "a", {}, breaker_state="half-open")
        assert probing["status"] == DEGRADED

    def test_breaker_opens_and_channel_deaths_degrade(self):
        policy = HealthPolicy()
        counters = {"resilience.a.breaker.b.to_open": 1}
        assert score_island(policy, "a", counters)["status"] == DEGRADED
        deaths = {"events.a.channel_deaths": 2}
        scored = score_island(policy, "a", deaths)
        assert scored["status"] == DEGRADED
        assert "channel-fallback" in scored["reasons"]
