"""Unit tests for the metrics registry and the exporters."""

import json

import pytest

from repro.net.monitor import TrafficMonitor
from repro.obs import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    snapshot_to_json,
    snapshot_with_traffic,
)


@pytest.fixture
def metrics() -> MetricsRegistry:
    return MetricsRegistry()


class TestInstruments:
    def test_counter_increments(self, metrics):
        counter = metrics.counter("calls")
        counter.inc()
        counter.inc(3)
        assert counter.value == 4

    def test_counter_is_memoized_by_name(self, metrics):
        assert metrics.counter("a") is metrics.counter("a")
        assert metrics.counter("a") is not metrics.counter("b")

    def test_gauge_set_and_add(self, metrics):
        gauge = metrics.gauge("pool.size")
        gauge.set(5.0)
        gauge.add(-2.0)
        assert gauge.value == 3.0

    def test_histogram_buckets_count_and_overflow(self):
        histogram = Histogram("lat", buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.5, 5.0):
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap["count"] == 4
        assert snap["le_0.01"] == 1
        assert snap["le_0.1"] == 1
        assert snap["le_1.0"] == 1
        assert snap["overflow"] == 1
        assert snap["min"] == 0.005
        assert snap["max"] == 5.0
        assert snap["sum"] == pytest.approx(5.555)

    def test_histogram_default_buckets(self, metrics):
        histogram = metrics.histogram("lat")
        assert histogram.bounds == tuple(sorted(DEFAULT_BUCKETS))

    def test_histogram_mismatched_buckets_rejected(self, metrics):
        metrics.histogram("lat", buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            metrics.histogram("lat", buckets=(3.0,))


class TestSnapshot:
    def test_snapshot_is_name_sorted_and_flat(self, metrics):
        metrics.counter("z.calls").inc()
        metrics.gauge("a.size").set(2.0)
        metrics.histogram("m.lat", buckets=(1.0,)).observe(0.5)
        snapshot = metrics.snapshot()
        assert list(snapshot) == sorted(snapshot)
        assert snapshot["z.calls"] == 1
        assert snapshot["a.size"] == 2.0
        assert snapshot["m.lat.count"] == 1

    def test_to_json_deterministic(self, metrics):
        metrics.counter("b").inc()
        metrics.counter("a").inc(2)
        first = metrics.to_json()
        other = MetricsRegistry()
        other.counter("a").inc(2)  # registered in a different order
        other.counter("b").inc()
        assert first == other.to_json()
        assert json.loads(first) == {"a": 2, "b": 1}

    def test_reset_zeroes_but_keeps_instruments(self, metrics):
        counter = metrics.counter("calls")
        counter.inc(5)
        metrics.reset()
        assert counter.value == 0
        assert metrics.counter("calls") is counter


class TestNullMetrics:
    def test_all_lookups_share_one_inert_instrument(self):
        null = NullMetrics()
        assert not null.enabled
        instrument = null.counter("x")
        assert null.gauge("y") is instrument
        assert null.histogram("z") is instrument
        instrument.inc()
        instrument.add(1.0)
        instrument.set(2.0)
        instrument.observe(3.0)
        assert null.snapshot() == {}


class TestTrafficBridge:
    def build_monitor(self) -> TrafficMonitor:
        from repro.net.monitor import ProtocolStats

        monitor = TrafficMonitor(name="backbone")
        monitor.stats["soap"] = ProtocolStats(frames=4, bytes=400)
        monitor.stats["udp"] = ProtocolStats(frames=1, bytes=10)
        return monitor

    def test_snapshot_folds_monitor_rows(self, metrics):
        metrics.counter("vsg.jini.calls_out").inc()
        snapshot = snapshot_with_traffic(metrics, self.build_monitor())
        assert snapshot["traffic.backbone.soap.bytes"] == 400
        assert snapshot["traffic.backbone.soap.frames"] == 4
        assert snapshot["traffic.backbone.total_bytes"] == 410
        assert snapshot["traffic.backbone.total_frames"] == 5
        assert snapshot["traffic.backbone.trace_dropped"] == 0
        assert snapshot["vsg.jini.calls_out"] == 1
        assert list(snapshot) == sorted(snapshot)

    def test_trace_dropped_surfaces_without_a_sentinel_protocol(self, metrics):
        monitor = self.build_monitor()
        monitor.trace_dropped = 7
        snapshot = snapshot_with_traffic(metrics, monitor)
        assert snapshot["traffic.backbone.trace_dropped"] == 7
        # The "(trace dropped)" summary row must not masquerade as a
        # protocol's frame/byte counters.
        assert not any("(" in key for key in snapshot)

    def test_accepts_multiple_monitors(self, metrics):
        first = self.build_monitor()
        second = TrafficMonitor(name="island")
        snapshot = snapshot_with_traffic(metrics, [first, second])
        assert snapshot["traffic.backbone.total_frames"] == 5
        assert snapshot["traffic.island.total_frames"] == 0

    def test_snapshot_to_json_deterministic(self, metrics):
        snapshot = snapshot_with_traffic(metrics, self.build_monitor())
        assert snapshot_to_json(snapshot) == snapshot_to_json(dict(snapshot))
