"""Tests for context-aware scenes and VSR context queries."""

import pytest

from repro.apps.scenes import SceneController


class TestContextQueries:
    def test_find_services_by_room(self, home):
        living = {d.service for d in home.find_services(room="living")}
        assert living == {
            "Laserdisc", "Vcr", "AirConditioner",
            "Digital_TV_display", "Digital_TV_tuner", "X10_A3_fan",
        }
        hall = {d.service for d in home.find_services(room="hall")}
        assert hall == {"DV_Camera_camera", "DV_Camera_vcr", "X10_A1_hall_lamp"}

    def test_find_services_by_middleware(self, home):
        x10 = {d.service for d in home.find_services(middleware="x10")}
        assert x10 == {
            "X10_A1_hall_lamp", "X10_A2_porch_lamp", "X10_A3_fan", "X10_house_A",
        }

    def test_room_context_crosses_middleware(self, home):
        """One room's devices span three middleware — the point of putting
        context in the VSR rather than in any single middleware."""
        living = home.find_services(room="living")
        middlewares = {d.context["middleware"] for d in living}
        assert middlewares == {"jini", "havi", "x10"}

    def test_compound_context_query(self, home):
        results = home.find_services(room="living", middleware="havi")
        assert {d.service for d in results} == {
            "Digital_TV_display", "Digital_TV_tuner",
        }


class TestScenes:
    def set_everything_on(self, home):
        home.invoke_from("jini", "Digital_TV_display", "power_on")
        home.invoke_from("jini", "Laserdisc", "play")
        home.invoke_from("jini", "X10_A3_fan", "turn_on")
        home.invoke_from("jini", "X10_A1_hall_lamp", "turn_on")

    def test_room_off_spans_middleware(self, home):
        self.set_everything_on(home)
        scenes = SceneController(home)
        commanded = scenes.room_off("living")
        assert commanded >= 3
        assert not home.tv_display.powered       # HAVi
        assert not home.laserdisc.playing        # Jini
        assert not home.fan.on                   # X10
        assert home.lamps["hall"].on             # different room: untouched

    def test_all_off(self, home):
        self.set_everything_on(home)
        scenes = SceneController(home)
        scenes.all_off()
        assert not home.tv_display.powered
        assert not home.laserdisc.playing
        assert not home.fan.on
        assert not home.lamps["hall"].on

    def test_middleware_off(self, home):
        self.set_everything_on(home)
        scenes = SceneController(home)
        scenes.middleware_off("x10")
        assert not home.fan.on and not home.lamps["hall"].on
        assert home.tv_display.powered  # other middleware untouched

    def test_scene_is_best_effort_on_device_failure(self, home):
        """A dead island must not abort the rest of the scene."""
        self.set_everything_on(home)
        home.islands["havi"].gateway.shutdown()
        scenes = SceneController(home, from_island="jini")
        scenes.room_off("living")
        assert not home.laserdisc.playing
        assert not home.fan.on
        assert home.tv_display.powered  # unreachable, skipped gracefully

    def test_actions_log_names_island_per_device(self, home):
        scenes = SceneController(home)
        scenes.room_off("hall")
        islands = {island for _s, _o, island in scenes.actions_log}
        assert "havi" in islands and "x10" in islands
