"""Tests for the Universal Remote Controller (Figure 5)."""

import pytest

from repro.errors import FrameworkError
from repro.apps.home import build_smart_home
from repro.apps.universal_remote import UniversalRemote
from repro.x10.codes import X10Function


@pytest.fixture
def remote(home):
    remote = UniversalRemote(home)
    remote.bind_default_layout()
    return remote


class TestFigure5:
    def test_x10_remote_controls_jini_laserdisc(self, home, remote):
        """The paper's photo caption, as an executable assertion."""
        remote.press("A4")
        assert home.laserdisc.playing
        remote.press("A4", X10Function.OFF)
        assert not home.laserdisc.playing

    def test_x10_remote_controls_havi_dv_camera(self, home, remote):
        remote.press("A5")
        assert home.camera.capturing
        remote.press("A5", X10Function.OFF)
        assert not home.camera.capturing

    def test_x10_remote_controls_havi_tv(self, home, remote):
        remote.press("A6")
        assert home.tv_display.powered

    def test_x10_remote_sends_mail(self, home, remote):
        remote.press("A7", settle=15.0)
        box = home.mail_server.store.mailbox("user@home.sim")
        assert len(box) == 1
        assert box.messages[0].subject == "doorbell"

    def test_plain_x10_devices_still_work(self, home, remote):
        """The remote controls 'not only X10 devices but also Jini and
        HAVi services' — the X10 half must be unaffected."""
        remote.press("A1")
        assert home.lamps["hall"].on

    def test_invocation_counts_accumulate(self, home, remote):
        remote.press("A4")
        remote.press("A4")
        counts = remote.invocation_counts()
        assert counts["Laserdisc.play"] == 2

    def test_custom_binding(self, home, remote):
        remote.bind("A8", "Digital_TV_tuner", "set_channel", [9])
        remote.press("A8")
        assert home.tv_tuner.channel == 9

    def test_default_layout_skips_missing_services(self):
        built = build_smart_home(with_mail=False)
        built.connect()
        remote = UniversalRemote(built)
        bound = remote.bind_default_layout()
        assert bound == len(UniversalRemote.DEFAULT_LAYOUT) - 1  # mail binding skipped

    def test_requires_x10_island(self):
        built = build_smart_home(with_x10=False)
        built.connect()
        with pytest.raises(FrameworkError):
            UniversalRemote(built)

    def test_end_to_end_latency_is_powerline_dominated(self, home, remote):
        """Pressing a button costs around a second of virtual time: two
        powerline frames plus the CM11A poll dwarf the SOAP/RMI legs."""
        from repro.x10.codes import X10Address

        home.handset.press_on(X10Address("A", 4))
        home.run(0.3)  # first powerline frame still on the wire
        assert not home.laserdisc.playing
        home.run(5.0)
        assert home.laserdisc.playing
