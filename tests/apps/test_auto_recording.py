"""Tests for the automatic video recording integration (Section 2)."""

import pytest

from repro.apps.auto_recording import (
    GUIDE_SERVICE,
    RecordingAgent,
    TvProgramService,
    UserProfile,
)


@pytest.fixture
def guide(home):
    service = TvProgramService(home.mm)
    home.sim.run_until_complete(service.publish())
    return service


class TestTvProgramService:
    def test_guide_reachable_from_every_island_without_a_pcm(self, home, guide):
        """An already-SOAP Internet service integrates by publishing WSDL
        alone — no PCM (Section 2.2's Internet-service integration)."""
        for island in ("jini", "havi", "x10", "mail"):
            programs = home.invoke_from(island, GUIDE_SERVICE, "list_programs")
            assert len(programs) == 5

    def test_genre_query(self, home, guide):
        technology = home.invoke_from("jini", GUIDE_SERVICE, "find_by_genre", ["technology"])
        assert [p["title"] for p in technology] == [
            "Ubiquitous Computing Tonight",
            "Home Networking Special",
        ]

    def test_find_after(self, home, guide):
        late = home.invoke_from("jini", GUIDE_SERVICE, "find_after", [350.0])
        assert [p["title"] for p in late] == ["Evening Movie"]


class TestRecordingAgent:
    def test_profile_matching(self):
        profile = UserProfile(genres=("news",), keywords=("movie",))
        assert profile.matches({"title": "x", "genre": "news"})
        assert profile.matches({"title": "Evening Movie", "genre": "movies"})
        assert not profile.matches({"title": "Cooking", "genre": "cooking"})

    def test_records_matching_programs_end_to_end(self, home, guide):
        agent = RecordingAgent(home, UserProfile(genres=("technology",)))
        planned = home.sim.run_until_complete(agent.plan())
        assert [r.title for r in planned] == [
            "Ubiquitous Computing Tonight",
            "Home Networking Special",
        ]
        home.run(600.0)  # let both programs air
        assert len(agent.completed()) == 2
        assert agent.failed() == []
        recorded = home.vcr.list_recordings()
        assert [r["title"] for r in recorded] == [
            "Ubiquitous Computing Tonight",
            "Home Networking Special",
        ]
        assert recorded[0]["channel"] == 5

    def test_vcr_state_during_recording(self, home, guide):
        agent = RecordingAgent(home, UserProfile(genres=("news",)))
        home.sim.run_until_complete(agent.plan())
        home.run(90.0)  # inside Morning News (60..120)
        assert home.vcr.get_state() == "RECORD"
        assert home.vcr.channel == 1
        home.run(60.0)
        assert home.vcr.get_state() == "STOP"

    def test_overlapping_programs_fail_gracefully(self, home, guide):
        """Morning News (60-120) overlaps Cooking (90-150) on one VCR: the
        second recording must fail, not corrupt the first."""
        agent = RecordingAgent(home, UserProfile(genres=("news", "cooking")))
        home.sim.run_until_complete(agent.plan())
        home.run(500.0)
        done = [r.title for r in agent.completed()]
        failed = [r.title for r in agent.failed()]
        assert done == ["Morning News"]
        assert failed == ["Cooking with Microwaves"]

    def test_completion_mail_sent(self, home, guide):
        agent = RecordingAgent(
            home, UserProfile(genres=("news",), mail_to="user@home.sim")
        )
        home.sim.run_until_complete(agent.plan())
        home.run(300.0)
        assert agent.mails_sent == 1
        box = home.mail_server.store.mailbox("user@home.sim")
        assert "Morning News" in box.messages[0].subject

    def test_past_programs_not_scheduled(self, home, guide):
        home.run(200.0)  # news and cooking already aired
        agent = RecordingAgent(home, UserProfile(genres=("news", "technology")))
        planned = home.sim.run_until_complete(agent.plan())
        assert [r.title for r in planned] == ["Home Networking Special"]
