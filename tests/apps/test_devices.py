"""Direct unit tests for the simulated Jini appliances."""

import pytest

from repro.errors import JiniError
from repro.devices.appliances import AirConditioner, Refrigerator
from repro.devices.av import Laserdisc, NetworkVcr


class TestLaserdisc:
    def test_chapter_navigation(self):
        disc = Laserdisc()
        assert disc.next_chapter() == 2
        assert disc.previous_chapter() == 1
        assert disc.goto_chapter(12) == 12

    def test_chapter_bounds_raise(self):
        disc = Laserdisc()
        with pytest.raises(JiniError):
            disc.goto_chapter(0)
        with pytest.raises(JiniError):
            disc.goto_chapter(Laserdisc.CHAPTERS + 1)

    def test_previous_at_start_raises(self):
        disc = Laserdisc()
        with pytest.raises(JiniError):
            disc.previous_chapter()

    def test_command_log_records_everything(self):
        disc = Laserdisc()
        disc.play()
        disc.goto_chapter(3)
        disc.stop()
        assert disc.command_log == ["play", "goto_chapter 3", "stop"]

    def test_ops_table_matches_methods(self):
        for op in Laserdisc.JINI_OPS:
            assert callable(getattr(Laserdisc, op))


class TestNetworkVcr:
    def test_record_lifecycle(self):
        vcr = NetworkVcr()
        vcr.set_channel(5)
        assert vcr.start_record("News") is True
        assert vcr.get_state() == "RECORD"
        assert vcr.stop_record() is True
        assert vcr.list_recordings() == [{"title": "News", "channel": 5}]

    def test_cannot_double_record(self):
        vcr = NetworkVcr()
        vcr.start_record("A")
        with pytest.raises(JiniError, match="already recording"):
            vcr.start_record("B")

    def test_cannot_tune_while_recording(self):
        vcr = NetworkVcr()
        vcr.start_record("A")
        with pytest.raises(JiniError, match="while recording"):
            vcr.set_channel(9)

    def test_stop_without_recording_is_false(self):
        assert NetworkVcr().stop_record() is False

    def test_channel_bounds(self):
        vcr = NetworkVcr()
        with pytest.raises(JiniError):
            vcr.set_channel(0)
        with pytest.raises(JiniError):
            vcr.set_channel(1000)


class TestRefrigerator:
    def test_temperature_bounds(self):
        fridge = Refrigerator()
        assert fridge.set_temperature(2.0) == 2.0
        with pytest.raises(JiniError):
            fridge.set_temperature(-20.0)
        with pytest.raises(JiniError):
            fridge.set_temperature(15.0)

    def test_contents_management(self):
        fridge = Refrigerator()
        fridge.add_item("cheese")
        assert "cheese" in fridge.list_contents()
        assert fridge.remove_item("cheese") is True
        assert fridge.remove_item("cheese") is False

    def test_contents_copy_not_aliased(self):
        fridge = Refrigerator()
        snapshot = fridge.list_contents()
        snapshot.append("ghost")
        assert "ghost" not in fridge.list_contents()


class TestAirConditioner:
    def test_power_and_target(self):
        aircon = AirConditioner()
        aircon.power_on()
        assert aircon.powered
        assert aircon.set_target(25.0) == 25.0
        with pytest.raises(JiniError):
            aircon.set_target(5.0)

    def test_modes(self):
        aircon = AirConditioner()
        assert aircon.set_mode("heat") == "heat"
        with pytest.raises(JiniError):
            aircon.set_mode("turbo")
