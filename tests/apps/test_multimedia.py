"""Tests for the event-based multimedia system and its negative results
(paper Section 4.2)."""

import pytest

from repro.errors import StreamNotBridgeableError
from repro.apps.multimedia import MultimediaOrchestrator
from repro.havi.bus1394 import Bus1394, HaviNode
from repro.havi.dcm import Dcm
from repro.havi.fcm_types import DisplayFcm
from repro.net.segment import IEEE1394Segment


@pytest.fixture
def orchestrator(home):
    orchestrator = MultimediaOrchestrator(home)
    home.sim.run_until_complete(orchestrator.arm())
    return orchestrator


class TestWorkingPath:
    def test_motion_triggers_surveillance(self, home, orchestrator):
        home.motion_sensor.trigger()
        home.run(15.0)
        assert len(orchestrator.motion_events) >= 1
        assert home.tv_display.powered
        assert home.tv_display.input == "1394"
        assert home.camera.capturing
        assert orchestrator.active_stream is not None
        assert "stream.connect camera->tv" in orchestrator.actions

    def test_stream_actually_flows_after_motion(self, home, orchestrator):
        home.motion_sensor.trigger()
        home.run(30.0)
        assert home.tv_display.bytes_displayed > 1_000_000

    def test_surveillance_off_tears_down(self, home, orchestrator):
        home.motion_sensor.trigger()
        home.run(15.0)
        orchestrator.surveillance_off()
        assert orchestrator.active_stream is None
        assert not home.camera.capturing
        assert home.bus.channels_allocated == 0

    def test_repeat_motion_reuses_stream(self, home, orchestrator):
        home.motion_sensor.trigger()
        home.run(40.0)  # sensor also sends OFF
        home.motion_sensor.trigger()
        home.run(15.0)
        connects = [a for a in orchestrator.actions if a.startswith("stream.connect")]
        assert len(connects) == 1
        assert home.bus.channels_allocated == 1


class TestNegativeResults:
    def test_streams_cannot_cross_the_gateway(self, home, orchestrator):
        """'there are some difficulties such as multimedia data conversion
        ... because of the limitation of HTTP' — reproduced as a typed
        error when a stream sink lives on another island."""
        foreign_segment = home.network.create_segment(IEEE1394Segment, "jini-side-1394")
        foreign_bus = Bus1394(home.network, foreign_segment)
        foreign_node = HaviNode(home.network, "pc-display", foreign_bus)
        foreign_display = DisplayFcm(Dcm(foreign_node, "PC Display", "display"))
        with pytest.raises(StreamNotBridgeableError, match="Section 4.2"):
            orchestrator.route_camera_to_foreign_sink(foreign_display)

    def test_notification_latency_bounded_by_polling(self, home, orchestrator):
        """'HTTP is inherently a client/server protocol, which does not map
        well to asynchronous notification scenarios' — with the SOAP VSG,
        motion events arrive no faster than the poll interval allows."""
        home.motion_sensor.trigger()
        home.run(20.0)
        latencies = orchestrator.notification_latencies
        assert len(latencies) == 1
        # Poll interval is 2 s: latency is far above network RTT (~ms).
        assert latencies[0] > 0.05

    def test_latency_scales_with_poll_interval(self):
        """Double-check the mechanism: a slower poll gives slower events."""
        from repro.apps.home import build_smart_home

        latencies = {}
        for interval in (1.0, 8.0):
            home = build_smart_home(poll_interval=interval)
            home.connect()
            orchestrator = MultimediaOrchestrator(home)
            home.sim.run_until_complete(orchestrator.arm())
            home.motion_sensor.trigger()
            home.run(40.0)
            latencies[interval] = orchestrator.notification_latencies[0]
        assert latencies[8.0] > latencies[1.0]
