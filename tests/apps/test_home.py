"""Tests for the canned smart-home builder and full-mesh reachability —
the Figure 1 / Figure 3 integration level."""

import itertools

import pytest

from repro.apps.home import build_smart_home

#: A read-only probe call per island's flagship service.
PROBES = {
    "jini": ("Refrigerator", "get_temperature", []),
    "havi": ("Digital_TV_tuner", "get_channel", []),
    "x10": ("X10_A3_fan", "turn_on", []),
    "mail": ("InternetMail", "check_inbox", ["probe@home.sim"]),
}


class TestTopology:
    def test_all_services_published(self, home):
        catalog = home.sim.run_until_complete(home.mm.catalog())
        assert len(catalog) == 13
        by_island = {}
        for document in catalog:
            by_island.setdefault(document.context["island"], set()).add(document.service)
        assert set(by_island) == {"jini", "havi", "x10", "mail"}
        assert len(by_island["jini"]) == 4
        assert len(by_island["havi"]) == 4
        assert len(by_island["x10"]) == 4
        assert len(by_island["mail"]) == 1

    def test_full_mesh_reachability(self, home):
        """Figure 1's promise: every island can invoke every other
        island's services (and its own, through the same neutral path)."""
        for source, target in itertools.product(PROBES, repeat=2):
            service, operation, args = PROBES[target]
            result = home.invoke_from(source, service, operation, args)
            assert result is not None or target == "mail", (source, target)

    def test_islands_are_truly_isolated_at_network_level(self, home):
        """No shortcut exists: a Jini device node has no interface on the
        HAVi segment or the backbone."""
        fridge_node = home.network.node("jini-refrigerator")
        segments = {iface.segment.name for iface in fridge_node.interfaces}
        assert segments == {"jini-eth"}

    def test_gateways_are_multi_homed(self, home):
        gw = home.network.node("gw-jini")
        segments = {iface.segment.name for iface in gw.interfaces}
        assert segments == {"backbone", "jini-eth"}

    def test_partial_homes_build(self):
        built = build_smart_home(with_x10=False, with_mail=False)
        catalog = built.connect()
        islands = {d.context["island"] for d in catalog}
        assert islands == {"jini", "havi"}

    def test_custom_poll_interval_propagates(self):
        built = build_smart_home(poll_interval=7.5)
        for island in built.islands.values():
            assert island.gateway.poll_interval == 7.5

    def test_deterministic_rebuild(self):
        """Two independent builds produce identical catalogs and timing."""
        first = build_smart_home()
        first.connect()
        second = build_smart_home()
        second.connect()
        assert first.sim.now == second.sim.now
        catalog_a = first.sim.run_until_complete(first.mm.catalog())
        catalog_b = second.sim.run_until_complete(second.mm.catalog())
        assert [d.service for d in catalog_a] == [d.service for d in catalog_b]


class TestScenarioFromPaperIntro:
    def test_control_everything_from_the_pc(self, home):
        """Section 1: 'we want to control the TV, the VCR, the refrigerator
        and the air conditioner from a PC without being conscious of
        heterogeneous forms of network and middleware.'  The PC here is any
        single island's gateway client — we use Jini's."""
        home.invoke_from("jini", "Digital_TV_display", "power_on")
        home.invoke_from("jini", "Vcr", "set_channel", [5])
        home.invoke_from("jini", "Refrigerator", "set_temperature", [3.0])
        home.invoke_from("jini", "AirConditioner", "power_on")
        home.invoke_from("jini", "AirConditioner", "set_target", [22.0])
        assert home.tv_display.powered
        assert home.vcr.channel == 5
        assert home.refrigerator.temperature == 3.0
        assert home.air_conditioner.powered
        assert home.air_conditioner.target == 22.0

    def test_control_from_the_tv_too(self, home):
        """Section 1: 'we want to control these appliances from the GUI of
        the digital TV too' — the HAVi island drives the Jini devices."""
        home.invoke_from("havi", "AirConditioner", "set_mode", ["heat"])
        assert home.air_conditioner.mode == "heat"


class TestRefreshStability:
    def test_double_refresh_never_moves_a_service(self, home):
        """Loop-prevention across ALL shipped PCMs: after two refreshes,
        every service still belongs to its original island (a hijacked
        export would keep the name but change island)."""

        def snapshot():
            return {
                (d.service, d.context["island"])
                for d in home.sim.run_until_complete(home.mm.catalog())
            }

        before = snapshot()
        home.sim.run_until_complete(home.mm.refresh())
        home.sim.run_until_complete(home.mm.refresh())
        assert snapshot() == before
