"""Shared fixtures for the whole suite."""

from __future__ import annotations

import pytest

from repro.net.network import Network


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--testkit-seeds",
        type=int,
        default=0,
        metavar="N",
        help="Run the repro.testkit randomized sweep over N extra seeds "
        "beyond the fixed corpus (0 disables the sweep; CI nightly uses 200).",
    )
from repro.net.segment import EthernetSegment
from repro.net.simkernel import Simulator
from repro.net.transport import TransportStack


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def net(sim: Simulator) -> Network:
    return Network(sim)


@pytest.fixture
def eth(net: Network) -> EthernetSegment:
    return net.create_segment(EthernetSegment, "eth0")


def make_host(net: Network, name: str, segment) -> TransportStack:
    """Create a node attached to ``segment`` with a transport stack."""
    node = net.create_node(name)
    net.attach(node, segment)
    return TransportStack(node, net)


@pytest.fixture
def two_hosts(net: Network, eth: EthernetSegment) -> tuple[TransportStack, TransportStack]:
    return make_host(net, "a", eth), make_host(net, "b", eth)
