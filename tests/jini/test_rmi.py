"""Tests for the RMI-like invocation layer."""

import pytest

from repro.errors import JiniError
from repro.jini.rmi import RemoteRef, RmiRuntime
from repro.net.addressing import NodeAddress


class Counter:
    def __init__(self):
        self.value = 0

    def increment(self, by=1):
        self.value += by
        return self.value

    def get(self):
        return self.value

    def explode(self):
        raise RuntimeError("kaboom")

    def _private(self):
        return "secret"


@pytest.fixture
def runtimes(sim, two_hosts):
    a, b = two_hosts
    return sim, RmiRuntime(a, 1099), RmiRuntime(b, 1099)


class TestRemoteRef:
    def test_wire_roundtrip(self):
        ref = RemoteRef(NodeAddress("jini-eth", 2), 1099, 7, ("a.B", "c.D"))
        restored = RemoteRef.from_wire(ref.to_wire())
        assert restored == ref
        assert restored.interfaces == ("a.B", "c.D")

    def test_is_wire_ref(self):
        ref = RemoteRef(NodeAddress("s", 1), 1, 1)
        assert RemoteRef.is_wire_ref(ref.to_wire())
        assert not RemoteRef.is_wire_ref({"address": "s/1"})
        assert not RemoteRef.is_wire_ref("nope")

    def test_from_wire_rejects_garbage(self):
        with pytest.raises(JiniError):
            RemoteRef.from_wire({"random": True})

    def test_refs_hashable_and_comparable(self):
        a = RemoteRef(NodeAddress("s", 1), 1099, 5)
        b = RemoteRef(NodeAddress("s", 1), 1099, 5, ("iface",))
        c = RemoteRef(NodeAddress("s", 1), 1099, 6)
        assert a == b  # interfaces don't affect identity
        assert a != c
        assert len({a, b, c}) == 2


class TestInvocation:
    def test_basic_call(self, runtimes):
        sim, client, server = runtimes
        ref = server.export(Counter())
        assert sim.run_until_complete(client.call(ref, "increment", [5])) == 5
        assert sim.run_until_complete(client.call(ref, "get", [])) == 5

    def test_remote_exception_propagates(self, runtimes):
        sim, client, server = runtimes
        ref = server.export(Counter())
        with pytest.raises(JiniError, match="kaboom"):
            sim.run_until_complete(client.call(ref, "explode", []))

    def test_unknown_method_rejected(self, runtimes):
        sim, client, server = runtimes
        ref = server.export(Counter())
        with pytest.raises(JiniError, match="no remote method"):
            sim.run_until_complete(client.call(ref, "missing", []))

    def test_private_method_not_remotely_callable(self, runtimes):
        sim, client, server = runtimes
        ref = server.export(Counter())
        with pytest.raises(JiniError):
            sim.run_until_complete(client.call(ref, "_private", []))

    def test_unexported_object_rejected(self, runtimes):
        sim, client, server = runtimes
        ref = server.export(Counter())
        server.unexport(ref)
        with pytest.raises(JiniError, match="no exported object"):
            sim.run_until_complete(client.call(ref, "get", []))

    def test_connection_reuse_across_calls(self, runtimes):
        """JRMP-style connection caching: many calls, one connection."""
        sim, client, server = runtimes
        ref = server.export(Counter())
        for _ in range(10):
            sim.run_until_complete(client.call(ref, "increment", [1]))
        assert client.stack.open_connections == 1

    def test_concurrent_calls_multiplexed(self, runtimes):
        sim, client, server = runtimes
        ref = server.export(Counter())
        futures = [client.call(ref, "increment", [1]) for _ in range(5)]
        results = sorted(sim.run_until_complete(f) for f in futures)
        assert results == [1, 2, 3, 4, 5]

    def test_future_returning_method_resolves_asynchronously(self, runtimes):
        sim, client, server = runtimes
        from repro.net.simkernel import SimFuture

        class Slow:
            def work(self):
                future = SimFuture()
                sim.schedule(3.0, future.set_result, "done")
                return future

        ref = server.export(Slow())
        t0 = sim.now
        assert sim.run_until_complete(client.call(ref, "work", [])) == "done"
        assert sim.now - t0 >= 3.0

    def test_two_exported_objects_are_distinct(self, runtimes):
        sim, client, server = runtimes
        ref_a = server.export(Counter())
        ref_b = server.export(Counter())
        sim.run_until_complete(client.call(ref_a, "increment", [10]))
        assert sim.run_until_complete(client.call(ref_b, "get", [])) == 0

    def test_one_way_swallows_errors(self, runtimes):
        sim, client, server = runtimes
        ref = server.export(Counter())
        client.one_way(ref, "explode", [])
        sim.run()  # must not raise anywhere

    def test_rmi_payload_is_binary_compact(self, runtimes):
        """Monitor check: RMI frames carry the 0xACED stream magic and are
        far smaller than equivalent SOAP."""
        from repro.net.monitor import TrafficMonitor
        from repro.soap.envelope import build_request

        sim, client, server = runtimes
        segment = client.stack.node.interfaces[0].segment
        monitor = TrafficMonitor().watch(segment)
        ref = server.export(Counter())
        sim.run_until_complete(client.call(ref, "increment", [1]))
        rmi_bytes = monitor.bytes_for("tcp")
        soap_equivalent = len(build_request("increment", [1]))
        assert 0 < rmi_bytes  # traffic flowed
        # One whole RMI exchange (incl. handshake) is comparable to just
        # the SOAP request body alone.
        assert rmi_bytes < 4 * soap_equivalent
