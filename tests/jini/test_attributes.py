"""Tests for Jini attribute modification (setAttributes semantics)."""

import pytest

from repro.jini.service import JiniClient, JiniService


class Probe:
    def ping(self):
        return "pong"


class TestUpdateAttributes:
    def publish(self, sim, lookup, host, attributes):
        service = JiniService(host, Probe(), ("svc.Probe",), attributes)
        sim.run_until_complete(service.publish(lookup.ref, duration=60.0))
        return service

    def test_new_attributes_visible_in_lookup(self, sim, jini_island, jini_host_factory):
        _, lookup = jini_island
        service = self.publish(sim, lookup, jini_host_factory(), {"room": "hall"})
        sim.run_until_complete(service.update_attributes({"room": "kitchen"}))
        client = JiniClient(jini_host_factory())
        items = sim.run_until_complete(
            client.lookup(lookup.ref, attributes={"room": "kitchen"})
        )
        assert len(items) == 1
        assert not sim.run_until_complete(
            client.lookup(lookup.ref, attributes={"room": "hall"})
        )

    def test_service_id_stable_across_updates(self, sim, jini_island, jini_host_factory):
        _, lookup = jini_island
        service = self.publish(sim, lookup, jini_host_factory(), {"v": 1})
        original_id = service.service_id
        sim.run_until_complete(service.update_attributes({"v": 2}))
        assert service.service_id == original_id
        assert lookup.registered_count == 1  # replaced, not duplicated

    def test_update_fires_match_transition(self, sim, jini_island, jini_host_factory):
        _, lookup = jini_island
        service = self.publish(sim, lookup, jini_host_factory(), {"state": "idle"})
        client = JiniClient(jini_host_factory())
        events = []
        sim.run_until_complete(
            client.register_listener(
                lookup.ref, events.append,
                attributes={"state": "busy"}, duration=300.0,
            )
        )
        sim.run_until_complete(service.update_attributes({"state": "busy"}))
        sim.run_for(1.0)
        assert len(events) == 1
        assert events[0].payload["transition"] == 1  # NOMATCH -> MATCH

    def test_renewal_continues_after_update(self, sim, jini_island, jini_host_factory):
        _, lookup = jini_island
        service = self.publish(sim, lookup, jini_host_factory(), {})
        sim.run_until_complete(service.update_attributes({"x": 1}))
        sim.run_for(300.0)  # several lease periods
        assert lookup.registered_count == 1

    def test_update_before_publish_fails(self, sim, jini_host_factory):
        from repro.errors import JiniError

        service = JiniService(jini_host_factory(), Probe(), ("svc.Probe",))
        with pytest.raises(JiniError):
            sim.run_until_complete(service.update_attributes({"x": 1}))
