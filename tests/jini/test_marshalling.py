"""Tests for the Java-serialization-flavoured codec."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import MarshallingError
from repro.jini.marshalling import MAGIC, VERSION, marshal, unmarshal

_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**63), max_value=2**63 - 1),
    st.floats(allow_nan=False),
    st.text(max_size=80),
    st.binary(max_size=80),
)

_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=6),
        st.dictionaries(st.text(max_size=10), children, max_size=6),
    ),
    max_leaves=30,
)


def normalise(value):
    if isinstance(value, (list, tuple)):
        return [normalise(item) for item in value]
    if isinstance(value, dict):
        return {key: normalise(member) for key, member in value.items()}
    if isinstance(value, bytearray):
        return bytes(value)
    return value


class TestRoundTrips:
    @given(_values)
    def test_roundtrip(self, value):
        assert unmarshal(marshal(value)) == normalise(value)

    def test_stream_header_is_java_magic(self):
        data = marshal(42)
        assert data[:2] == MAGIC == b"\xac\xed"
        assert data[2:4] == VERSION

    @pytest.mark.parametrize(
        "value",
        [None, True, -1, 0.0, "unicode 漢字", b"\x00\xff", [1, [2, [3]]], {"k": {"n": 1}}],
    )
    def test_specific_values(self, value):
        assert unmarshal(marshal(value)) == value

    def test_bool_not_conflated_with_int(self):
        assert unmarshal(marshal(True)) is True
        result = unmarshal(marshal(1))
        assert result == 1 and not isinstance(result, bool)

    def test_int_range_enforced(self):
        marshal(2**63 - 1)
        with pytest.raises(MarshallingError):
            marshal(2**63)
        with pytest.raises(MarshallingError):
            marshal(-(2**63) - 1)

    def test_non_string_dict_key_rejected(self):
        with pytest.raises(MarshallingError):
            marshal({1: "x"})

    def test_unsupported_type_rejected(self):
        with pytest.raises(MarshallingError):
            marshal(object())


class TestMalformedStreams:
    def test_bad_header(self):
        with pytest.raises(MarshallingError):
            unmarshal(b"\x00\x00\x00\x00\x02")

    def test_truncated_stream(self):
        data = marshal([1, 2, 3])
        with pytest.raises(MarshallingError):
            unmarshal(data[:-2])

    def test_trailing_garbage(self):
        with pytest.raises(MarshallingError):
            unmarshal(marshal(1) + b"\x00")

    def test_unknown_tag(self):
        with pytest.raises(MarshallingError):
            unmarshal(MAGIC + VERSION + b"\xfe")

    @given(st.binary(min_size=4, max_size=60))
    def test_arbitrary_bytes_never_crash(self, junk):
        data = MAGIC + VERSION + junk
        try:
            unmarshal(data)
        except MarshallingError:
            pass  # rejection is the expected failure mode
