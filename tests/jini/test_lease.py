"""Tests for Jini leases."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import LeaseDeniedError, LeaseExpiredError
from repro.jini.lease import Lease, LeaseRenewalManager, LeaseTable
from repro.net.simkernel import SimFuture, Simulator


class TestLeaseTable:
    def test_grant_and_expiry_fires_callback(self):
        sim = Simulator()
        table = LeaseTable(sim)
        expired = []
        lease = table.grant(10.0, cookie="reg-1", on_expire=expired.append)
        assert table.is_live(lease.lease_id)
        sim.run_for(9.9)
        assert table.is_live(lease.lease_id)
        sim.run_for(0.2)
        assert not table.is_live(lease.lease_id)
        assert [l.cookie for l in expired] == ["reg-1"]

    def test_renewal_extends_life(self):
        sim = Simulator()
        table = LeaseTable(sim)
        expired = []
        lease = table.grant(10.0, on_expire=expired.append)
        sim.run_for(8.0)
        table.renew(lease.lease_id, 10.0)
        sim.run_for(8.0)  # would have expired without the renewal
        assert table.is_live(lease.lease_id)
        assert expired == []
        sim.run_for(3.0)
        assert expired != []

    def test_renew_after_expiry_raises(self):
        sim = Simulator()
        table = LeaseTable(sim)
        lease = table.grant(5.0)
        sim.run_for(6.0)
        with pytest.raises(LeaseExpiredError):
            table.renew(lease.lease_id, 5.0)

    def test_renew_unknown_lease_raises(self):
        table = LeaseTable(Simulator())
        with pytest.raises(LeaseExpiredError):
            table.renew(999, 5.0)

    def test_cancel_fires_cleanup(self):
        sim = Simulator()
        table = LeaseTable(sim)
        cleaned = []
        lease = table.grant(100.0, on_expire=cleaned.append)
        table.cancel(lease.lease_id)
        assert cleaned != []
        assert not table.is_live(lease.lease_id)
        sim.run()
        assert len(cleaned) == 1  # expiry timer must not fire it again

    def test_duration_capped_at_max(self):
        sim = Simulator()
        table = LeaseTable(sim, max_duration=60.0)
        lease = table.grant(10_000.0)
        assert lease.remaining(sim.now) == pytest.approx(60.0)

    def test_non_positive_duration_denied(self):
        table = LeaseTable(Simulator())
        with pytest.raises(LeaseDeniedError):
            table.grant(0.0)
        lease = table.grant(5.0)
        with pytest.raises(LeaseDeniedError):
            table.renew(lease.lease_id, -1.0)

    @given(st.lists(st.floats(min_value=0.1, max_value=100.0), min_size=1, max_size=20))
    def test_live_count_matches_unexpired(self, durations):
        sim = Simulator()
        table = LeaseTable(sim)
        for duration in durations:
            table.grant(duration)
        horizon = 50.0
        sim.run_for(horizon)
        expected = sum(1 for d in durations if min(d, table.max_duration) > horizon)
        assert table.live_count == expected

    def test_wire_roundtrip(self):
        lease = Lease(7, 123.5)
        restored = Lease.from_wire(lease.to_wire())
        assert (restored.lease_id, restored.expiration) == (7, 123.5)


class TestRenewalManager:
    def test_keeps_lease_alive_indefinitely(self):
        sim = Simulator()
        table = LeaseTable(sim)
        lease = table.grant(10.0)
        manager = LeaseRenewalManager(sim)
        manager.manage(lease, 10.0, lambda lease_id, d: table.renew(lease_id, d).expiration)
        sim.run_for(500.0)
        assert table.is_live(lease.lease_id)
        assert manager.renewals_performed >= 40

    def test_forget_lets_lease_lapse(self):
        sim = Simulator()
        table = LeaseTable(sim)
        lease = table.grant(10.0)
        manager = LeaseRenewalManager(sim)
        manager.manage(lease, 10.0, lambda lease_id, d: table.renew(lease_id, d).expiration)
        sim.run_for(30.0)
        manager.forget(lease)
        sim.run_for(30.0)
        assert not table.is_live(lease.lease_id)
        assert manager.managed_count == 0

    def test_failure_callback_on_denied_renewal(self):
        sim = Simulator()
        manager = LeaseRenewalManager(sim)
        lease = Lease(1, sim.now + 10.0)
        failures = []

        def renew(lease_id, duration):
            raise LeaseExpiredError("gone")

        manager.manage(lease, 10.0, renew, on_failure=lambda l, e: failures.append(e))
        sim.run_for(20.0)
        assert len(failures) == 1
        assert manager.failures == 1
        assert manager.managed_count == 0

    def test_async_renewal_via_future(self):
        sim = Simulator()
        table = LeaseTable(sim)
        lease = table.grant(10.0)
        manager = LeaseRenewalManager(sim)

        def renew(lease_id, duration):
            future = SimFuture()
            # Simulate one network RTT before the renewal lands.
            sim.schedule(0.1, lambda: future.set_result(table.renew(lease_id, duration).expiration))
            return future

        manager.manage(lease, 10.0, renew)
        sim.run_for(100.0)
        assert table.is_live(lease.lease_id)
