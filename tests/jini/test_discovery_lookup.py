"""Tests for multicast discovery and the lookup service."""

import pytest

from repro.errors import JiniError
from repro.jini.discovery import DiscoveryListener
from repro.jini.lookup import ServiceItem, ServiceTemplate
from repro.jini.service import JiniClient, JiniHost, JiniService


class Echo:
    def echo(self, value):
        return value


class TestDiscovery:
    def test_active_request_finds_lookup(self, sim, jini_island, jini_host_factory):
        segment, lookup = jini_island
        host = jini_host_factory()
        found = []
        listener = DiscoveryListener(host.stack, lambda ref, group: found.append(ref))
        listener.request(segment)
        sim.run_for(1.0)
        assert found == [lookup.ref]

    def test_passive_announcement_heard(self, sim, net, jini_host_factory):
        # Build the listener first, then let periodic announcements arrive.
        host = jini_host_factory()
        found = []
        DiscoveryListener(host.stack, lambda ref, group: found.append(ref))
        sim.run_for(25.0)  # one announce interval
        assert len(found) == 1

    def test_duplicate_announcements_reported_once(self, sim, jini_island, jini_host_factory):
        segment, lookup = jini_island
        host = jini_host_factory()
        found = []
        listener = DiscoveryListener(host.stack, lambda ref, group: found.append(ref))
        listener.request(segment)
        listener.request(segment)
        sim.run_for(60.0)  # plus periodic announcements
        assert found == [lookup.ref]

    def test_group_filtering(self, sim, jini_island, jini_host_factory):
        segment, lookup = jini_island
        host = jini_host_factory()
        found = []
        listener = DiscoveryListener(
            host.stack, lambda ref, group: found.append(ref), groups=("private",)
        )
        listener.request(segment)
        sim.run_for(30.0)
        assert found == []  # lookup announces in 'public' only

    def test_client_discover_lookup_future(self, sim, jini_island, jini_host_factory):
        _, lookup = jini_island
        client = JiniClient(jini_host_factory())
        ref = sim.run_until_complete(client.discover_lookup())
        assert ref == lookup.ref


class TestLookup:
    def publish(self, sim, lookup, host, impl, interfaces, attributes=None, duration=60.0):
        service = JiniService(host, impl, interfaces, attributes)
        sim.run_until_complete(service.publish(lookup.ref, duration=duration))
        return service

    def test_register_and_lookup_by_interface(self, sim, jini_island, jini_host_factory):
        _, lookup = jini_island
        self.publish(sim, lookup, jini_host_factory(), Echo(), ("svc.Echo",))
        client = JiniClient(jini_host_factory())
        items = sim.run_until_complete(client.lookup(lookup.ref, interface="svc.Echo"))
        assert len(items) == 1
        assert items[0].interfaces == ("svc.Echo",)

    def test_lookup_by_attributes(self, sim, jini_island, jini_host_factory):
        _, lookup = jini_island
        self.publish(sim, lookup, jini_host_factory(), Echo(), ("svc.Echo",), {"room": "kitchen"})
        self.publish(sim, lookup, jini_host_factory(), Echo(), ("svc.Echo",), {"room": "hall"})
        client = JiniClient(jini_host_factory())
        items = sim.run_until_complete(
            client.lookup(lookup.ref, interface="svc.Echo", attributes={"room": "hall"})
        )
        assert len(items) == 1
        assert items[0].attributes["room"] == "hall"

    def test_lookup_one_returns_callable_proxy(self, sim, jini_island, jini_host_factory):
        _, lookup = jini_island
        self.publish(sim, lookup, jini_host_factory(), Echo(), ("svc.Echo",))
        client = JiniClient(jini_host_factory())
        proxy = sim.run_until_complete(client.lookup_one(lookup.ref, "svc.Echo"))
        assert sim.run_until_complete(proxy.echo({"deep": [1, 2]})) == {"deep": [1, 2]}

    def test_lookup_one_raises_when_absent(self, sim, jini_island, jini_host_factory):
        from repro.errors import ServiceNotFoundError

        _, lookup = jini_island
        client = JiniClient(jini_host_factory())
        with pytest.raises(ServiceNotFoundError):
            sim.run_until_complete(client.lookup_one(lookup.ref, "svc.Missing"))

    def test_registration_without_interfaces_rejected(self, sim, jini_island, jini_host_factory):
        _, lookup = jini_island
        host = jini_host_factory()
        with pytest.raises(JiniError):
            JiniService(host, Echo(), ())

    def test_lease_expiry_withdraws_service(self, sim, jini_island, jini_host_factory):
        _, lookup = jini_island
        service = JiniService(jini_host_factory(), Echo(), ("svc.Echo",))
        sim.run_until_complete(service.publish(lookup.ref, duration=10.0, auto_renew=False))
        assert lookup.registered_count == 1
        sim.run_for(11.0)
        assert lookup.registered_count == 0

    def test_auto_renewal_keeps_service_alive(self, sim, jini_island, jini_host_factory):
        _, lookup = jini_island
        service = JiniService(jini_host_factory(), Echo(), ("svc.Echo",))
        sim.run_until_complete(service.publish(lookup.ref, duration=10.0))
        sim.run_for(120.0)
        assert lookup.registered_count == 1

    def test_unpublish_withdraws_immediately(self, sim, jini_island, jini_host_factory):
        _, lookup = jini_island
        service = JiniService(jini_host_factory(), Echo(), ("svc.Echo",))
        sim.run_until_complete(service.publish(lookup.ref))
        service.unpublish()
        sim.run_for(1.0)
        assert lookup.registered_count == 0

    def test_match_events_for_appearing_and_disappearing(self, sim, jini_island, jini_host_factory):
        _, lookup = jini_island
        client = JiniClient(jini_host_factory())
        events = []
        sim.run_until_complete(
            client.register_listener(
                lookup.ref, events.append, interface="svc.Watched", duration=300.0
            )
        )
        service = JiniService(jini_host_factory(), Echo(), ("svc.Watched",))
        sim.run_until_complete(service.publish(lookup.ref, duration=10.0, auto_renew=False))
        sim.run_for(1.0)
        assert len(events) == 1
        assert events[0].payload["transition"] == 1  # NOMATCH -> MATCH
        sim.run_for(15.0)  # lease lapses
        assert len(events) == 2
        assert events[1].payload["transition"] == 2  # MATCH -> NOMATCH
        assert events[1].sequence > events[0].sequence

    def test_template_matching_rules(self):
        item = ServiceItem(("a.B", "c.D"), {"k": 1, "j": "x"}, {}, service_id=9)
        assert ServiceTemplate().matches(item)
        assert ServiceTemplate(interface="a.B").matches(item)
        assert not ServiceTemplate(interface="z.Z").matches(item)
        assert ServiceTemplate(attributes={"k": 1}).matches(item)
        assert not ServiceTemplate(attributes={"k": 2}).matches(item)
        assert ServiceTemplate(service_id=9).matches(item)
        assert not ServiceTemplate(service_id=8).matches(item)

    def test_max_matches_respected(self, sim, jini_island, jini_host_factory):
        _, lookup = jini_island
        for _ in range(5):
            self.publish(sim, lookup, jini_host_factory(), Echo(), ("svc.Echo",))
        client = JiniClient(jini_host_factory())
        items = sim.run_until_complete(
            client.lookup(lookup.ref, interface="svc.Echo", max_matches=3)
        )
        assert len(items) == 3
