"""Jini test fixtures: an island with a lookup service."""

from __future__ import annotations

import pytest

from repro.jini.lookup import LookupService
from repro.jini.service import JiniHost


@pytest.fixture
def jini_island(sim, net):
    from repro.net.segment import EthernetSegment

    segment = net.create_segment(EthernetSegment, "jini-eth")
    lus_host = JiniHost(net, "lus", segment)
    lookup = LookupService(lus_host.runtime, segment)
    return segment, lookup


@pytest.fixture
def jini_host_factory(net, jini_island):
    segment, _lookup = jini_island
    counter = {"n": 0}

    def factory(name: str | None = None) -> JiniHost:
        counter["n"] += 1
        return JiniHost(net, name or f"host{counter['n']}", segment)

    return factory
