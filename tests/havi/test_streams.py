"""Tests for the stream manager — including the bus-locality rule behind
the paper's multimedia negative result."""

import pytest

from repro.errors import HaviError
from repro.havi.bus1394 import Bus1394, HaviNode
from repro.havi.dcm import Dcm
from repro.havi.fcm_types import CameraFcm, DisplayFcm
from repro.havi.streams import FORMAT_BANDWIDTH, Plug, StreamManager
from repro.net.segment import IEEE1394Segment


@pytest.fixture
def av_pair(sim, net, bus, havi_node_factory):
    cam_node = havi_node_factory("cam")
    camera = CameraFcm(Dcm(cam_node, "Cam", "camcorder"))
    tv_node = havi_node_factory("tv")
    display = DisplayFcm(Dcm(tv_node, "TV", "display"))
    return StreamManager(bus), camera, display


class TestConnections:
    def test_connect_allocates_channel_and_flows_data(self, sim, bus, av_pair):
        manager, camera, display = av_pair
        connection = manager.connect(Plug(camera, "out"), Plug(display, "in"), "DV")
        assert bus.channels_allocated == 1
        sim.run_for(10.0)
        expected = FORMAT_BANDWIDTH["DV"] / 8 * 10
        assert display.bytes_displayed == pytest.approx(expected, rel=0.11)

    def test_disconnect_stops_flow_and_frees_channel(self, sim, bus, av_pair):
        manager, camera, display = av_pair
        connection = manager.connect(Plug(camera, "out"), Plug(display, "in"), "DV")
        sim.run_for(2.0)
        flowed = display.bytes_displayed
        connection.disconnect()
        sim.run_for(5.0)
        assert display.bytes_displayed == flowed
        assert bus.channels_allocated == 0
        assert manager.active_connections == 0

    def test_direction_rules(self, av_pair):
        manager, camera, display = av_pair
        with pytest.raises(HaviError):
            manager.connect(Plug(display, "in"), Plug(camera, "out"))
        with pytest.raises(HaviError):
            manager.connect(Plug(camera, "out"), Plug(camera, "out"))

    def test_plug_index_validation(self, av_pair):
        manager, camera, display = av_pair
        with pytest.raises(HaviError, match="no out plug"):
            Plug(camera, "out", index=5).validate()
        with pytest.raises(HaviError, match="no in plug"):
            Plug(camera, "in").validate()  # cameras have no input plug

    def test_unknown_format_rejected(self, av_pair):
        manager, camera, display = av_pair
        with pytest.raises(HaviError, match="format"):
            manager.connect(Plug(camera, "out"), Plug(display, "in"), "VHS")

    def test_streams_cannot_leave_the_bus(self, sim, net, av_pair):
        """The Section 4.2 negative result at substrate level: an FCM on a
        different 1394 bus is unreachable isochronously."""
        manager, camera, display = av_pair
        other_segment = net.create_segment(IEEE1394Segment, "other-1394")
        other_bus = Bus1394(net, other_segment)
        foreign_node = HaviNode(net, "foreign-tv", other_bus)
        foreign_display = DisplayFcm(Dcm(foreign_node, "Foreign TV", "display"))
        with pytest.raises(HaviError, match="cannot leave"):
            manager.connect(Plug(camera, "out"), Plug(foreign_display, "in"), "DV")

    def test_many_streams_until_bandwidth_exhausted(self, sim, net, bus, havi_node_factory):
        manager = StreamManager(bus)
        connections = []
        with pytest.raises(HaviError):
            for _ in range(20):  # 20 * 28.8 Mb/s > 320 Mb/s budget
                cam = CameraFcm(Dcm(havi_node_factory(), "C", "camcorder"))
                tv = DisplayFcm(Dcm(havi_node_factory(), "T", "display"))
                connections.append(manager.connect(Plug(cam, "out"), Plug(tv, "in"), "DV"))
        assert len(connections) >= 10  # plenty fit before exhaustion

    def test_stream_hooks_called(self, sim, av_pair):
        manager, camera, display = av_pair
        events = []
        camera.on_stream_connected = lambda conn, role: events.append(("connect", role))
        camera.on_stream_disconnected = lambda conn, role: events.append(("disconnect", role))
        connection = manager.connect(Plug(camera, "out"), Plug(display, "in"))
        connection.disconnect()
        assert events == [("connect", "source"), ("disconnect", "source")]
