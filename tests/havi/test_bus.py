"""Tests for IEEE1394 bus management."""

import pytest

from repro.errors import HaviError
from repro.havi.bus1394 import ISO_BANDWIDTH_BUDGET, ISO_CHANNELS, Bus1394, HaviNode
from repro.net.segment import EthernetSegment, IEEE1394Segment


class TestMembership:
    def test_join_assigns_guid_and_phy_id(self, net, bus):
        a = HaviNode(net, "a", bus)
        b = HaviNode(net, "b", bus)
        assert a.guid != b.guid
        assert {a.phy_id, b.phy_id} == {0, 1}
        assert bus.root is b  # highest phy id

    def test_each_join_triggers_bus_reset(self, net, bus):
        resets = []
        bus.on_bus_reset(lambda: resets.append(bus.reset_count))
        HaviNode(net, "a", bus)
        HaviNode(net, "b", bus)
        assert len(resets) == 2

    def test_leave_reassigns_phy_ids_but_keeps_guids(self, net, bus):
        a = HaviNode(net, "a", bus)
        b = HaviNode(net, "b", bus)
        c = HaviNode(net, "c", bus)
        guid_c = c.guid
        bus.leave(b)
        assert c.phy_id == 1  # compacted
        assert c.guid == guid_c  # stable
        with pytest.raises(HaviError):
            bus.node_by_guid(b.guid)

    def test_leave_unknown_node_rejected(self, net, bus, sim):
        other_segment = net.create_segment(IEEE1394Segment, "other-1394")
        other_bus = Bus1394(net, other_segment)
        stranger = HaviNode(net, "stranger", other_bus)
        with pytest.raises(HaviError):
            bus.leave(stranger)

    def test_bus_requires_1394_segment(self, net, sim):
        eth = net.create_segment(EthernetSegment, "eth")
        with pytest.raises(HaviError):
            Bus1394(net, eth)

    def test_empty_bus_has_no_root(self, bus):
        with pytest.raises(HaviError):
            bus.root


class TestAsyncPackets:
    def test_unicast_by_guid(self, sim, net, bus):
        a = HaviNode(net, "a", bus)
        b = HaviNode(net, "b", bus)
        seen = []
        # Bypass messaging: watch raw frames on b.
        b.node.unregister_protocol("1394-async")
        b.node.register_protocol("1394-async", lambda iface, frame: seen.append(frame.payload))
        bus.send_async(a, b.guid, b"quadlet")
        sim.run()
        assert seen == [b"quadlet"]

    def test_send_to_departed_node_raises(self, net, bus):
        a = HaviNode(net, "a", bus)
        b = HaviNode(net, "b", bus)
        bus.leave(b)
        with pytest.raises(HaviError):
            bus.send_async(a, b.guid, b"x")


class TestIsochronousResources:
    def test_channel_allocation_and_release(self, net, bus):
        a = HaviNode(net, "a", bus)
        channel = bus.allocate_channel(a.guid, 25_000_000)
        assert 0 <= channel < ISO_CHANNELS
        assert bus.channels_allocated == 1
        bus.release_channel(channel, 25_000_000)
        assert bus.channels_allocated == 0
        assert bus.iso_bandwidth_free == ISO_BANDWIDTH_BUDGET

    def test_channels_exhaust_at_64(self, net, bus):
        a = HaviNode(net, "a", bus)
        for _ in range(ISO_CHANNELS):
            bus.allocate_channel(a.guid, 1000)
        with pytest.raises(HaviError, match="64"):
            bus.allocate_channel(a.guid, 1000)

    def test_bandwidth_budget_enforced(self, net, bus):
        a = HaviNode(net, "a", bus)
        bus.allocate_channel(a.guid, int(ISO_BANDWIDTH_BUDGET * 8 * 0.9))
        with pytest.raises(HaviError, match="bandwidth"):
            bus.allocate_channel(a.guid, int(ISO_BANDWIDTH_BUDGET * 8 * 0.2))

    def test_release_unallocated_channel_rejected(self, bus):
        with pytest.raises(HaviError):
            bus.release_channel(5, 1000)

    def test_departing_node_resources_reclaimed(self, net, bus):
        a = HaviNode(net, "a", bus)
        b = HaviNode(net, "b", bus)
        bus.allocate_channel(b.guid, 1_000_000)
        bus.allocate_channel(a.guid, 1_000_000)
        bus.leave(b)
        assert bus.channels_allocated == 1
