"""Tests for the HAVi Messaging System."""

import pytest

from repro.errors import HaviError
from repro.havi.messaging import Seid
from repro.net.simkernel import SimFuture


class TestSeid:
    def test_wire_roundtrip(self):
        seid = Seid(0x800_0001, 0x102)
        assert Seid.from_wire(seid.to_wire()) == seid

    @pytest.mark.parametrize("bad", [None, [1], [1, 2, 3], "x", {}])
    def test_malformed_wire_rejected(self, bad):
        with pytest.raises(HaviError):
            Seid.from_wire(bad)


class TestRequestResponse:
    def test_cross_node_request(self, sim, havi_node_factory):
        a, b = havi_node_factory(), havi_node_factory()
        target = b.messaging.register_element(
            lambda src, op, args: {"op": op, "sum": sum(args)}
        )
        source = a.messaging.register_element(lambda *a: None)
        result = sim.run_until_complete(
            a.messaging.send_request(source, target, "add", [1, 2, 3])
        )
        assert result == {"op": "add", "sum": 6}

    def test_same_node_request_loops_locally(self, sim, havi_node_factory):
        a = havi_node_factory()
        target = a.messaging.register_element(lambda src, op, args: "local")
        source = a.messaging.register_element(lambda *x: None)
        assert sim.run_until_complete(a.messaging.send_request(source, target, "op", [])) == "local"

    def test_handler_exception_propagates_as_havi_error(self, sim, havi_node_factory):
        a, b = havi_node_factory(), havi_node_factory()

        def broken(src, op, args):
            raise ValueError("bad input")

        target = b.messaging.register_element(broken)
        source = a.messaging.register_element(lambda *x: None)
        with pytest.raises(HaviError, match="bad input"):
            sim.run_until_complete(a.messaging.send_request(source, target, "op", []))

    def test_unknown_element_rejected(self, sim, havi_node_factory):
        a, b = havi_node_factory(), havi_node_factory()
        source = a.messaging.register_element(lambda *x: None)
        ghost = Seid(b.guid, 0x7777)
        with pytest.raises(HaviError, match="no element"):
            sim.run_until_complete(a.messaging.send_request(source, ghost, "op", []))

    def test_foreign_source_seid_rejected(self, sim, havi_node_factory):
        a, b = havi_node_factory(), havi_node_factory()
        target = b.messaging.register_element(lambda src, op, args: 1)
        foreign_source = Seid(b.guid, 0x300)
        future = a.messaging.send_request(foreign_source, target, "op", [])
        with pytest.raises(HaviError, match="does not belong"):
            sim.run_until_complete(future)

    def test_handler_returning_future_resolves_later(self, sim, havi_node_factory):
        a, b = havi_node_factory(), havi_node_factory()

        def deferred(src, op, args):
            future = SimFuture()
            sim.schedule(2.0, future.set_result, "eventually")
            return future

        target = b.messaging.register_element(deferred)
        source = a.messaging.register_element(lambda *x: None)
        t0 = sim.now
        assert sim.run_until_complete(a.messaging.send_request(source, target, "op", [])) == "eventually"
        assert sim.now - t0 >= 2.0

    def test_duplicate_local_id_rejected(self, havi_node_factory):
        a = havi_node_factory()
        a.messaging.register_element(lambda *x: None, local_id=0x500)
        with pytest.raises(HaviError):
            a.messaging.register_element(lambda *x: None, local_id=0x500)

    def test_unregistered_element_stops_answering(self, sim, havi_node_factory):
        a, b = havi_node_factory(), havi_node_factory()
        target = b.messaging.register_element(lambda src, op, args: 1)
        b.messaging.unregister_element(target)
        source = a.messaging.register_element(lambda *x: None)
        with pytest.raises(HaviError):
            sim.run_until_complete(a.messaging.send_request(source, target, "op", []))

    def test_src_seid_visible_to_handler(self, sim, havi_node_factory):
        a, b = havi_node_factory(), havi_node_factory()
        seen = []

        def handler(src, op, args):
            seen.append(src)
            return None

        target = b.messaging.register_element(handler)
        source = a.messaging.register_element(lambda *x: None)
        sim.run_until_complete(a.messaging.send_request(source, target, "op", []))
        assert seen == [source]


class TestEvents:
    def test_broadcast_event_reaches_all_nodes_including_sender(self, sim, havi_node_factory):
        nodes = [havi_node_factory() for _ in range(3)]
        received = {node.name: [] for node in nodes}
        for node in nodes:
            node.messaging.subscribe_events(
                lambda src, event, n=node.name: received[n].append(event)
            )
        source = nodes[0].messaging.register_element(lambda *x: None)
        nodes[0].messaging.send_event(source, {"type": "state_change", "value": 5})
        sim.run()
        for node in nodes:
            assert received[node.name] == [{"type": "state_change", "value": 5}]

    def test_event_source_seid_delivered(self, sim, havi_node_factory):
        a, b = havi_node_factory(), havi_node_factory()
        sources = []
        b.messaging.subscribe_events(lambda src, event: sources.append(src))
        source = a.messaging.register_element(lambda *x: None)
        a.messaging.send_event(source, {"x": 1})
        sim.run()
        assert sources == [source]
