"""Tests for the registry and the DCM/FCM device model."""

import pytest

from repro.errors import HaviError, ServiceNotFoundError
from repro.havi.dcm import Dcm, FcmHandle
from repro.havi.fcm_types import (
    AvDiscFcm,
    CameraFcm,
    DisplayFcm,
    TunerFcm,
    VcrFcm,
)


@pytest.fixture
def camera_device(sim, havi_node_factory, registry_client_for):
    node = havi_node_factory("camcorder")
    dcm = Dcm(node, "DV Camera", "camcorder")
    camera = CameraFcm(dcm)
    vcr = VcrFcm(dcm)
    client = registry_client_for(node)
    sim.run_until_complete(dcm.register(client))
    return node, dcm, camera, vcr


class TestRegistry:
    def test_register_and_query_by_attributes(self, sim, camera_device, havi_node_factory, registry_client_for):
        controller = havi_node_factory("controller")
        client = registry_client_for(controller)
        fcms = sim.run_until_complete(client.query({"element_type": "fcm"}))
        assert {attrs["fcm_type"] for _seid, attrs in fcms} == {"camera", "vcr"}
        dcms = sim.run_until_complete(client.query({"element_type": "dcm"}))
        assert len(dcms) == 1
        assert dcms[0][1]["device_name"] == "DV Camera"

    def test_find_one(self, sim, camera_device, havi_node_factory, registry_client_for):
        controller = havi_node_factory("controller")
        client = registry_client_for(controller)
        seid, attrs = sim.run_until_complete(client.find_one({"fcm_type": "camera"}))
        assert attrs["device_name"] == "DV Camera"

    def test_find_one_absent_raises(self, sim, camera_device, havi_node_factory, registry_client_for):
        controller = havi_node_factory("controller")
        client = registry_client_for(controller)
        with pytest.raises(ServiceNotFoundError):
            sim.run_until_complete(client.find_one({"fcm_type": "toaster"}))

    def test_unregister(self, sim, camera_device, havi_node_factory, registry_client_for, registry_node):
        node, dcm, camera, vcr = camera_device
        client = registry_client_for(node)
        assert sim.run_until_complete(client.unregister(camera.seid)) is True
        _host, registry = registry_node
        assert registry.entry_count == 2  # dcm + vcr remain
        assert sim.run_until_complete(client.unregister(camera.seid)) is False

    def test_departed_node_entries_dropped_on_reset(self, sim, net, bus, camera_device, registry_node):
        node, dcm, camera, vcr = camera_device
        _host, registry = registry_node
        assert registry.entry_count == 3
        bus.leave(node)
        assert registry.entry_count == 0


class TestFcmDispatch:
    def test_remote_command(self, sim, camera_device, havi_node_factory):
        node, dcm, camera, vcr = camera_device
        controller = havi_node_factory("controller")
        handle = FcmHandle(controller.messaging, camera.seid)
        assert sim.run_until_complete(handle.call("zoom", 4)) == 4
        assert camera.zoom_level == 4

    def test_describe_lists_full_command_set(self, sim, camera_device, havi_node_factory):
        node, dcm, camera, vcr = camera_device
        controller = havi_node_factory("controller")
        handle = FcmHandle(controller.messaging, camera.seid)
        description = sim.run_until_complete(handle.describe())
        assert description["fcm_type"] == "camera"
        assert set(description["commands"]) == set(CameraFcm.COMMANDS)
        assert description["returns"]["zoom"] == "int"

    def test_unknown_command_rejected(self, sim, camera_device, havi_node_factory):
        node, dcm, camera, vcr = camera_device
        controller = havi_node_factory("controller")
        handle = FcmHandle(controller.messaging, camera.seid)
        with pytest.raises(HaviError, match="no command"):
            sim.run_until_complete(handle.call("levitate"))

    def test_wrong_arity_rejected(self, sim, camera_device, havi_node_factory):
        node, dcm, camera, vcr = camera_device
        controller = havi_node_factory("controller")
        handle = FcmHandle(controller.messaging, camera.seid)
        with pytest.raises(HaviError, match="expects"):
            sim.run_until_complete(handle.call("zoom"))

    def test_dcm_reports_its_fcms(self, sim, camera_device, havi_node_factory):
        node, dcm, camera, vcr = camera_device
        controller = havi_node_factory("controller")
        handle = FcmHandle(controller.messaging, dcm.seid)
        info = sim.run_until_complete(handle.call("get_device_info"))
        assert info["device_class"] == "camcorder"
        assert len(info["fcm_seids"]) == 2


class TestFcmBehaviour:
    def make(self, fcm_cls, havi_node_factory):
        node = havi_node_factory()
        dcm = Dcm(node, "Dev", "test")
        return fcm_cls(dcm)

    def test_vcr_transport_and_recording_spans(self, havi_node_factory):
        vcr = self.make(VcrFcm, havi_node_factory)
        assert vcr.get_transport_state() == "STOP"
        vcr.record()
        vcr.advance(120)
        vcr.stop()
        assert vcr.recorded_spans == [(0, 120)]
        vcr.wind(-60)
        assert vcr.get_position() == 60

    def test_vcr_cannot_wind_while_recording(self, havi_node_factory):
        vcr = self.make(VcrFcm, havi_node_factory)
        vcr.record()
        with pytest.raises(HaviError):
            vcr.wind(10)

    def test_camera_validation(self, havi_node_factory):
        camera = self.make(CameraFcm, havi_node_factory)
        with pytest.raises(HaviError):
            camera.zoom(0)
        with pytest.raises(HaviError):
            camera.pan(100)
        camera.start_capture()
        assert camera.get_status() == {"capturing": True, "zoom": 1, "pan": 0}

    def test_display_inputs_and_messages(self, havi_node_factory):
        display = self.make(DisplayFcm, havi_node_factory)
        display.power_on()
        assert display.set_input("1394") == "1394"
        with pytest.raises(HaviError):
            display.set_input("vga")
        display.show_message("hello")
        assert display.messages == ["hello"]

    def test_avdisc_chapter_clamping(self, havi_node_factory):
        disc = self.make(AvDiscFcm, havi_node_factory)
        assert disc.goto_chapter(999) == AvDiscFcm.CHAPTERS
        assert disc.goto_chapter(-5) == 1
        disc.play()
        assert disc.get_state() == "PLAY"

    def test_tuner_channel_bounds(self, havi_node_factory):
        tuner = self.make(TunerFcm, havi_node_factory)
        assert tuner.channel_down() == 1  # clamped at bottom
        tuner.set_channel(999)
        assert tuner.channel_up() == 999  # clamped at top
        with pytest.raises(HaviError):
            tuner.set_channel(0)
