"""HAVi test fixtures: a bus with a registry."""

import pytest

from repro.havi.bus1394 import Bus1394, HaviNode
from repro.havi.registry import Registry, RegistryClient
from repro.net.segment import IEEE1394Segment


@pytest.fixture
def bus(sim, net):
    segment = net.create_segment(IEEE1394Segment, "havi-1394")
    return Bus1394(net, segment)


@pytest.fixture
def registry_node(net, bus):
    node = HaviNode(net, "registry-host", bus)
    registry = Registry(node)
    return node, registry


@pytest.fixture
def havi_node_factory(net, bus):
    counter = {"n": 0}

    def factory(name=None):
        counter["n"] += 1
        return HaviNode(net, name or f"havi{counter['n']}", bus)

    return factory


@pytest.fixture
def registry_client_for(registry_node):
    host_node, _registry = registry_node

    def factory(havi_node):
        return RegistryClient.for_bus(havi_node, host_node)

    return factory
