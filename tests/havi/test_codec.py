"""Tests for the HAVi TLV codec."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import MarshallingError
from repro.havi.codec import decode, encode

_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**63), max_value=2**63 - 1),
    st.floats(allow_nan=False),
    st.text(max_size=60),
    st.binary(max_size=60),
)

_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=8), children, max_size=5),
    ),
    max_leaves=25,
)


def normalise(value):
    if isinstance(value, (list, tuple)):
        return [normalise(item) for item in value]
    if isinstance(value, dict):
        return {key: normalise(member) for key, member in value.items()}
    if isinstance(value, bytearray):
        return bytes(value)
    return value


class TestRoundTrip:
    @given(_values)
    def test_roundtrip(self, value):
        assert decode(encode(value)) == normalise(value)

    def test_no_java_magic(self):
        """The two binary codecs are genuinely different wire formats."""
        from repro.jini.marshalling import marshal

        assert encode(42) != marshal(42)
        assert not encode("x").startswith(b"\xac\xed")

    def test_compactness_vs_soap(self):
        from repro.soap.envelope import build_request

        value = {"op": "zoom", "args": [5]}
        assert len(encode(value)) * 5 < len(build_request("zoom", [5]))

    def test_length_limits_enforced(self):
        with pytest.raises(MarshallingError):
            encode("x" * 70000)  # 16-bit length field
        with pytest.raises(MarshallingError):
            encode(2**63)

    def test_non_string_key_rejected(self):
        with pytest.raises(MarshallingError):
            encode({3: "x"})

    def test_trailing_bytes_rejected(self):
        with pytest.raises(MarshallingError):
            decode(encode(1) + b"\x00")

    @given(st.binary(max_size=50))
    def test_arbitrary_bytes_never_crash(self, junk):
        try:
            decode(junk)
        except MarshallingError:
            pass
