"""WAL store framing and corruption detection, over both backends.

The property-style tests sweep seeded random truncation points and torn
bytes over a generated log: replay must always stop at the last record
whose frame survives intact, never crash, and never resurrect bytes past
the damage.
"""

from __future__ import annotations

import random
import zlib

import pytest

from repro.store.wal import (
    HEADER_SIZE,
    MemWalStore,
    SqliteWalStore,
    StoreClosedError,
    decode_records,
    encode_record,
)


def mem_store(tmp_path) -> MemWalStore:
    return MemWalStore()


def sqlite_store(tmp_path) -> SqliteWalStore:
    return SqliteWalStore(str(tmp_path / "wal.db"))


BACKENDS = [mem_store, sqlite_store]


def seeded_payloads(seed: int, count: int) -> list[bytes]:
    rng = random.Random(f"walstore:{seed}")
    return [
        rng.randbytes(rng.randrange(0, 40)) for _ in range(count)
    ]


# -- shared contract ----------------------------------------------------------


@pytest.mark.parametrize("factory", BACKENDS)
def test_roundtrip_preserves_order_and_bytes(factory, tmp_path) -> None:
    store = factory(tmp_path)
    payloads = seeded_payloads(1, 12)
    for payload in payloads:
        store.append(payload)
    records, truncated = store.read_all()
    assert records == payloads
    assert not truncated
    assert store.record_count() == 12
    assert store.records_appended == 12
    assert store.bytes_appended == sum(HEADER_SIZE + len(p) for p in payloads)
    assert store.size_bytes() == store.bytes_appended


@pytest.mark.parametrize("factory", BACKENDS)
def test_closed_store_refuses_io(factory, tmp_path) -> None:
    store = factory(tmp_path)
    store.append(b"alpha")
    store.close()
    assert store.closed
    with pytest.raises(StoreClosedError):
        store.append(b"beta")
    with pytest.raises(StoreClosedError):
        store.read_all()
    with pytest.raises(StoreClosedError):
        store.rewrite([b"gamma"])
    store.reopen()
    assert store.read_all() == ([b"alpha"], False)


@pytest.mark.parametrize("factory", BACKENDS)
def test_close_reopen_survives_like_a_disk(factory, tmp_path) -> None:
    store = factory(tmp_path)
    payloads = seeded_payloads(2, 5)
    for payload in payloads:
        store.append(payload)
    store.close()
    store.reopen()
    assert store.read_all() == (payloads, False)


@pytest.mark.parametrize("factory", BACKENDS)
def test_rewrite_replaces_whole_log(factory, tmp_path) -> None:
    store = factory(tmp_path)
    for payload in seeded_payloads(3, 9):
        store.append(payload)
    store.rewrite([b"checkpoint"])
    assert store.read_all() == ([b"checkpoint"], False)
    assert store.size_bytes() == HEADER_SIZE + len(b"checkpoint")


def test_sqlite_file_survives_process_restart(tmp_path) -> None:
    """A second store object on the same path sees the first one's log —
    the sqlite backend's whole point."""
    path = str(tmp_path / "wal.db")
    first = SqliteWalStore(path)
    first.append(b"persisted")
    first.close()
    second = SqliteWalStore(path)
    assert second.read_all() == ([b"persisted"], False)


# -- framing ------------------------------------------------------------------


def test_decode_empty_log_is_clean() -> None:
    assert decode_records(b"") == ([], False)


def test_decode_stops_at_header_cut() -> None:
    buffer = encode_record(b"ok") + encode_record(b"lost")[: HEADER_SIZE - 1]
    assert decode_records(buffer) == ([b"ok"], True)


def test_decode_stops_at_payload_cut() -> None:
    buffer = encode_record(b"ok") + encode_record(b"lost-payload")[:-3]
    assert decode_records(buffer) == ([b"ok"], True)


def test_decode_stops_at_crc_mismatch() -> None:
    torn = bytearray(encode_record(b"garbled"))
    torn[-1] ^= 0xFF
    buffer = encode_record(b"ok") + bytes(torn) + encode_record(b"after")
    records, truncated = decode_records(buffer)
    assert records == [b"ok"]
    assert truncated


# -- property-style corruption sweeps (satellite: WAL corruption coverage) ----


def frame_boundaries(payloads: list[bytes]) -> list[int]:
    """Cumulative byte offsets of record ends within the framed log."""
    boundaries = []
    offset = 0
    for payload in payloads:
        offset += HEADER_SIZE + len(payload)
        boundaries.append(offset)
    return boundaries


@pytest.mark.parametrize("seed", range(25))
def test_random_tail_truncation_replays_longest_valid_prefix(seed: int) -> None:
    rng = random.Random(f"truncate:{seed}")
    payloads = seeded_payloads(seed, rng.randrange(3, 15))
    store = MemWalStore()
    for payload in payloads:
        store.append(payload)
    total = len(store.buffer)
    cut = rng.randrange(0, total)  # keep bytes [0, cut)
    store.truncate_tail(total - cut)

    boundaries = frame_boundaries(payloads)
    expected = sum(1 for end in boundaries if end <= cut)
    records, truncated = store.read_all()
    assert records == payloads[:expected]
    # A cut exactly on a record boundary is indistinguishable from a
    # shorter clean log; anywhere else the tail damage must be flagged.
    assert truncated == (cut not in [0, *boundaries])
    assert store.truncations_seen == (1 if truncated else 0)


@pytest.mark.parametrize("seed", range(25))
def test_random_torn_byte_replays_prefix_before_the_tear(seed: int) -> None:
    rng = random.Random(f"tear:{seed}")
    # Non-empty payloads: a tear must land on a payload or header byte.
    payloads = [
        rng.randbytes(rng.randrange(1, 40)) for _ in range(rng.randrange(3, 15))
    ]
    store = MemWalStore()
    for payload in payloads:
        store.append(payload)
    offset = rng.randrange(0, len(store.buffer))
    store.tear(offset)

    # Records framed entirely before the torn byte stay trusted.
    boundaries = frame_boundaries(payloads)
    intact = sum(1 for end in boundaries if end <= offset)
    records, truncated = store.read_all()
    assert truncated
    assert store.truncations_seen == 1
    # Flipping a length byte can make the damaged frame claim fewer bytes
    # and "validate" early only if CRC also matched — impossible for a
    # single flipped bit against CRC32 — so the prefix is exact.
    assert records == payloads[:intact]


@pytest.mark.parametrize("seed", range(10))
def test_sqlite_torn_row_detected_by_crc(seed: int, tmp_path) -> None:
    rng = random.Random(f"sqlite-tear:{seed}")
    payloads = [rng.randbytes(rng.randrange(1, 40)) for _ in range(6)]
    store = SqliteWalStore(str(tmp_path / "wal.db"))
    for payload in payloads:
        store.append(payload)
    victim = rng.randrange(1, 7)  # sqlite seq is 1-based
    torn = bytearray(payloads[victim - 1])
    torn[rng.randrange(0, len(torn))] ^= 0xFF
    store._conn.execute(
        "UPDATE wal SET payload = ? WHERE seq = ?", (bytes(torn), victim)
    )
    store._conn.commit()
    records, truncated = store.read_all()
    assert truncated
    assert records == payloads[: victim - 1]
    assert store.truncations_seen == 1
    assert zlib.crc32(bytes(torn)) != zlib.crc32(payloads[victim - 1])
