"""Journal fold semantics, checkpoint compaction, replay idempotence."""

from __future__ import annotations

import json

from repro.store.journal import (
    DirectoryJournal,
    GatewayJournal,
    fresh_gateway_state,
)
from repro.store.wal import MemWalStore


def gateway_journal(**kwargs) -> GatewayJournal:
    return GatewayJournal(MemWalStore(), "test-island", **kwargs)


def test_empty_journal_replays_to_fresh_state() -> None:
    journal = gateway_journal()
    assert journal.replay() == fresh_gateway_state()
    assert journal.replays == 1


def test_fold_rebuilds_registration_and_documents() -> None:
    journal = gateway_journal()
    journal.log_register("kitchen", "10.0.0.1:8080", renewed_at=12.5)
    journal.log_export("Light", "<wsdl/>")
    journal.log_export("Heater", "<wsdl2/>")
    journal.log_withdraw("Heater")
    state = journal.replay()
    assert state["registered"] == ["kitchen", "10.0.0.1:8080", 12.5]
    assert state["documents"] == {"Light": "<wsdl/>"}
    journal.log_unregister()
    assert journal.replay()["registered"] is None


def test_fold_mirrors_router_queue_flush_ack_cycle() -> None:
    journal = gateway_journal()
    event_a = {"topic": "x10/on", "seq": 1}
    event_b = {"topic": "x10/off", "seq": 2}
    journal.log_queue("den", event_a)
    journal.log_queue("den", event_b)
    journal.log_sequence(2)
    state = journal.replay()
    assert state["queues"]["den"] == [event_a, event_b]
    assert state["sequence"] == 2

    # flush retains the queue as the unacked batch...
    journal.log_flush("den", batch=7)
    state = journal.replay()
    assert state["queues"]["den"] == []
    assert state["unacked"]["den"] == [7, [event_a, event_b]]
    assert state["batch_seq"]["den"] == 7

    # ...an older ack does not release it, the matching one does.
    journal.log_ack("den", batch=6)
    assert journal.replay()["unacked"]["den"] == [7, [event_a, event_b]]
    journal.log_ack("den", batch=7)
    assert "den" not in journal.replay()["unacked"]


def test_fold_drain_discharges_queue_and_retained_batch() -> None:
    journal = gateway_journal()
    journal.log_queue("den", {"topic": "t", "seq": 1})
    journal.log_flush("den", batch=1)
    journal.log_queue("den", {"topic": "t", "seq": 2})
    journal.log_drain("den")
    state = journal.replay()
    assert state["queues"]["den"] == []
    assert "den" not in state["unacked"]


def test_fold_rule_engine_records() -> None:
    journal = gateway_journal()
    journal.log_rule_epoch("den-rules", epoch=3.0)
    journal.log_rule_seen("den-rules", "night-light", "ev-17")
    journal.log_rule_fired("den-rules", "night-light", at=4.25)
    state = journal.replay()
    assert state["rules"]["den-rules"] == {
        "seen": [["night-light", "ev-17"]],
        "last_fired": {"night-light": 4.25},
        "epoch": 3.0,
    }


def test_unknown_record_tags_are_skipped_not_fatal() -> None:
    journal = gateway_journal()
    journal.log_export("Light", "<wsdl/>")
    journal.store.append(b'{"t":"from-the-future","x":1}')
    state = journal.replay()
    assert state["documents"] == {"Light": "<wsdl/>"}


def test_checkpoint_compacts_medium_and_preserves_state() -> None:
    journal = gateway_journal()
    for index in range(10):
        journal.log_export(f"svc-{index}", "<wsdl/>")
    before = journal.snapshot_json()
    assert journal.store.record_count() == 10
    journal.checkpoint()
    assert journal.store.record_count() == 1  # one ckpt record
    assert journal.snapshot_json() == before
    # Records after the checkpoint fold on top of it.
    journal.log_withdraw("svc-3")
    state = journal.replay()
    assert "svc-3" not in state["documents"]
    assert len(state["documents"]) == 9


def test_auto_checkpoint_bounds_replay_length() -> None:
    journal = gateway_journal(checkpoint_every=8)
    for index in range(50):
        journal.log_sequence(index)
    # The medium never holds more than checkpoint_every records: each
    # compaction rewrites to [ckpt] and the counter restarts.
    assert journal.store.record_count() <= 8
    assert journal.checkpoints == 50 // 8
    assert journal.replay()["sequence"] == 49


def test_replay_is_idempotent_byte_for_byte() -> None:
    journal = gateway_journal(checkpoint_every=5)
    journal.log_register("a", "loc-a", renewed_at=1.0)
    for index in range(12):
        journal.log_queue("b", {"topic": "t", "seq": index})
    journal.log_flush("b", batch=1)
    assert journal.snapshot_json() == journal.snapshot_json()
    # And across an interleaved crash/reopen of the medium.
    first = journal.snapshot_json()
    journal.store.close()
    journal.store.reopen()
    assert journal.snapshot_json() == first


def test_replay_stops_at_torn_tail_and_counts_truncation() -> None:
    journal = gateway_journal()
    journal.log_export("Light", "<wsdl/>")
    journal.log_export("Heater", "<wsdl2/>")
    journal.store.truncate_tail(3)  # cut the second record's payload
    state = journal.replay()
    assert state["documents"] == {"Light": "<wsdl/>"}
    assert journal.truncations_detected == 1


def test_dump_carries_records_and_accounting() -> None:
    journal = gateway_journal()
    journal.log_export("Light", "<wsdl/>")
    dump = journal.dump()
    assert dump["label"] == "test-island"
    assert dump["records"] == [{"t": "exp", "service": "Light", "xml": "<wsdl/>"}]
    assert dump["truncated_tail"] is False
    assert dump["records_appended"] == 1
    assert json.dumps(dump)  # JSON-serialisable as uploaded


def test_directory_journal_folds_registry_and_documents() -> None:
    journal = DirectoryJournal(MemWalStore(), "uddi-directory")
    journal.log_publish("Light", "<wsdl/>")
    journal.log_register("kitchen", "10.0.0.1:8080")
    journal.log_register("den", "10.0.0.2:8080")
    journal.log_unregister("den")
    journal.log_withdraw("Light")
    journal.log_publish("Heater", "<wsdl2/>")
    state = journal.replay()
    assert state == {
        "documents": {"Heater": "<wsdl2/>"},
        "gateways": {"kitchen": "10.0.0.1:8080"},
    }
