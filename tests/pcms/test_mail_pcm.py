"""Tests for the Internet Mail PCM."""

import pytest


class TestClientProxyDirection:
    def test_internet_mail_in_catalog(self, home):
        catalog = home.sim.run_until_complete(home.mm.catalog())
        mail_doc = next(d for d in catalog if d.service == "InternetMail")
        assert mail_doc.context["island"] == "mail"
        assert mail_doc.has_operation("send")
        assert mail_doc.has_operation("check_inbox")

    def test_any_island_can_send_mail(self, home):
        for island in ("jini", "havi", "x10"):
            assert home.invoke_from(
                island, "InternetMail", "send",
                ["user@home.sim", f"from {island}", "body"],
            ) is True
        box = home.mail_server.store.mailbox("user@home.sim")
        assert sorted(m.subject for m in box.messages) == [
            "from havi", "from jini", "from x10",
        ]

    def test_check_inbox_round_trip(self, home):
        home.invoke_from("jini", "InternetMail", "send", ["a@home.sim", "s1", "b1"])
        inbox = home.invoke_from("havi", "InternetMail", "check_inbox", ["a@home.sim"])
        assert len(inbox) == 1
        assert inbox[0]["subject"] == "s1"
        # Drained: second check is empty.
        assert home.invoke_from("havi", "InternetMail", "check_inbox", ["a@home.sim"]) == []

    def test_real_smtp_traffic_flows(self, home):
        before = home.mail_server.smtp.messages_accepted
        home.invoke_from("x10", "InternetMail", "send", ["u@home.sim", "s", "b"])
        assert home.mail_server.smtp.messages_accepted == before + 1


class TestEventForwarding:
    def test_events_forwarded_as_email(self, home):
        pcm = home.islands["mail"].pcm
        home.sim.run_until_complete(pcm.forward_events_to("watcher@home.sim", "x10.ON"))
        home.motion_sensor.trigger()
        home.run(15.0)
        box = home.mail_server.store.mailbox("watcher@home.sim")
        assert len(box) == 1
        assert "x10.ON" in box.messages[0].subject
        assert "A9" in box.messages[0].body
        assert pcm.events_forwarded == 1
