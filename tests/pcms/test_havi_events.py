"""Tests for HAVi event bridging (FCM state changes on the framework bus)."""

import pytest


class TestHaviEventBridging:
    def subscribe(self, home, island, topic):
        received = []
        home.sim.run_until_complete(
            home.islands[island].gateway.subscribe(
                topic, lambda t, p, src: received.append((t, p))
            )
        )
        return received

    def test_camera_capture_event_crosses_islands(self, home):
        received = self.subscribe(home, "jini", "havi.capture")
        home.invoke_from("mail", "DV_Camera_camera", "start_capture")
        home.run(8.0)
        assert len(received) == 1
        topic, payload = received[0]
        assert payload["device_name"] == "DV_Camera"
        assert payload["payload"] is True

    def test_vcr_transport_events(self, home):
        received = self.subscribe(home, "x10", "havi.transport_state")
        home.invoke_from("jini", "DV_Camera_vcr", "record")
        home.invoke_from("jini", "DV_Camera_vcr", "stop")
        home.run(8.0)
        states = [payload["payload"] for _t, payload in received]
        assert states == ["RECORD", "STOP"]

    def test_no_event_without_state_change(self, home):
        received = self.subscribe(home, "jini", "havi.capture")
        home.invoke_from("jini", "DV_Camera_camera", "stop_capture")  # already stopped
        home.run(8.0)
        assert received == []

    def test_local_havi_control_also_bridged(self, home):
        """Events fired by *native* HAVi activity (not framework calls)
        still reach other islands."""
        received = self.subscribe(home, "jini", "havi.transport_state")
        home.camera_vcr.play()  # direct local FCM action
        home.run(8.0)
        assert [p["payload"] for _t, p in received] == ["PLAY"]

    def test_pcm_event_counter(self, home):
        pcm = home.islands["havi"].pcm
        before = pcm.events_bridged
        home.camera.start_capture()
        home.run(1.0)
        assert pcm.events_bridged == before + 1
