"""Tests for the X10 PCM: device exports, button bindings, event bridging."""

import pytest

from repro.errors import ConversionError
from repro.x10.codes import X10Address, X10Function


class TestClientProxyDirection:
    def test_mapped_devices_exported_sensors_excluded(self, home):
        catalog = home.sim.run_until_complete(home.mm.catalog())
        x10_services = {d.service for d in catalog if d.context.get("island") == "x10"}
        assert x10_services == {
            "X10_A1_hall_lamp", "X10_A2_porch_lamp", "X10_A3_fan", "X10_house_A",
        }

    def test_lamp_exports_dimming_appliance_does_not(self, home):
        catalog = home.sim.run_until_complete(home.mm.catalog())
        lamp = next(d for d in catalog if d.service == "X10_A1_hall_lamp")
        fan = next(d for d in catalog if d.service == "X10_A3_fan")
        assert lamp.has_operation("dim")
        assert not fan.has_operation("dim")

    def test_remote_call_drives_real_powerline(self, home):
        assert home.invoke_from("jini", "X10_A1_hall_lamp", "turn_on") is True
        assert home.lamps["hall"].on
        assert home.cm11a.transmissions >= 2  # address + function frames

    def test_dim_from_another_island(self, home):
        home.invoke_from("havi", "X10_A1_hall_lamp", "turn_on")
        home.invoke_from("havi", "X10_A1_hall_lamp", "dim", [50])
        assert 40 <= home.lamps["hall"].level <= 60

    def test_x10_latency_dominates_cross_island_call(self, home):
        """Figure 4's shape: the IP legs are milliseconds, the powerline
        legs hundreds of milliseconds."""
        t0 = home.sim.now
        home.invoke_from("jini", "X10_A3_fan", "turn_on")
        assert home.sim.now - t0 > 0.5


class TestServerProxyDirection:
    def test_button_binding_invokes_remote_service(self, home):
        pcm = home.islands["x10"].pcm
        pcm.bind_button(X10Address("A", 4), "Laserdisc", "play")
        home.handset.press_on(X10Address("A", 4))
        home.run(5.0)
        assert home.laserdisc.playing
        assert pcm.bindings[(X10Address("A", 4), X10Function.ON)].invocations == 1

    def test_binding_with_arguments(self, home):
        pcm = home.islands["x10"].pcm
        pcm.bind_button(X10Address("A", 5), "Digital_TV_tuner", "set_channel", [7])
        home.handset.press_on(X10Address("A", 5))
        home.run(5.0)
        assert home.tv_tuner.channel == 7

    def test_on_and_off_bind_separately(self, home):
        pcm = home.islands["x10"].pcm
        pcm.bind_button(X10Address("A", 4), "Laserdisc", "play", function=X10Function.ON)
        pcm.bind_button(X10Address("A", 4), "Laserdisc", "stop", function=X10Function.OFF)
        home.handset.press_on(X10Address("A", 4))
        home.run(5.0)
        assert home.laserdisc.playing
        home.handset.press_off(X10Address("A", 4))
        home.run(5.0)
        assert not home.laserdisc.playing

    def test_binding_unknown_service_rejected(self, home):
        pcm = home.islands["x10"].pcm
        with pytest.raises(ConversionError, match="not imported"):
            pcm.bind_button(X10Address("A", 4), "Ghost", "op")

    def test_unbind(self, home):
        pcm = home.islands["x10"].pcm
        pcm.bind_button(X10Address("A", 4), "Laserdisc", "play")
        pcm.unbind_button(X10Address("A", 4))
        home.handset.press_on(X10Address("A", 4))
        home.run(5.0)
        assert not home.laserdisc.playing


class TestEventBridging:
    def test_motion_sensor_event_reaches_other_islands(self, home):
        received = []
        home.sim.run_until_complete(
            home.islands["havi"].gateway.subscribe(
                "x10.ON", lambda t, p, src: received.append(p)
            )
        )
        home.motion_sensor.trigger()
        home.run(10.0)
        assert len(received) == 1
        assert received[0]["address"] == "A9"
        assert received[0]["function"] == "ON"

    def test_handset_presses_published_as_events(self, home):
        received = []
        home.sim.run_until_complete(
            home.islands["mail"].gateway.subscribe(
                "x10.OFF", lambda t, p, src: received.append(p)
            )
        )
        home.handset.press_off(X10Address("A", 2))
        home.run(10.0)
        assert [e["address"] for e in received] == ["A2"]


class TestHouseWideService:
    def test_house_service_in_catalog(self, home):
        catalog = home.sim.run_until_complete(home.mm.catalog())
        house = next(d for d in catalog if d.service == "X10_house_A")
        assert house.has_operation("all_units_off")
        assert house.has_operation("all_lights_on")
        assert house.context["x10_kind"] == "house"

    def test_all_lights_on_from_another_island(self, home):
        assert home.invoke_from("havi", "X10_house_A", "all_lights_on") is True
        assert home.lamps["hall"].on and home.lamps["porch"].on
        assert not home.fan.on  # appliances are not lights

    def test_all_units_off_from_another_island(self, home):
        home.invoke_from("jini", "X10_A1_hall_lamp", "turn_on")
        home.invoke_from("jini", "X10_A3_fan", "turn_on")
        assert home.invoke_from("mail", "X10_house_A", "all_units_off") is True
        assert not home.lamps["hall"].on
        assert not home.fan.on
