"""PCM tests all run against the fully built smart home."""

import pytest

from repro.apps.home import build_smart_home


@pytest.fixture
def home():
    built = build_smart_home()
    built.connect()
    return built
