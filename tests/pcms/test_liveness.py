"""Tests for liveness propagation and hot plug (Jini and UPnP PCMs)."""

import pytest

from repro.devices.av import Laserdisc
from repro.jini.service import JiniService, JiniHost


class TestJiniLiveness:
    @pytest.fixture
    def live_home(self, home):
        home.sim.run_until_complete(home.islands["jini"].pcm.enable_liveness())
        return home

    def test_hotplug_device_becomes_reachable_framework_wide(self, live_home):
        """Plug a brand-new Jini device in at runtime: without any refresh
        it appears in the VSR and other islands can call it."""
        home = live_home
        second_disc = Laserdisc()
        host = JiniHost(home.network, "jini-disc2", home.network.segment("jini-eth"))
        service = JiniService(
            host, second_disc, (Laserdisc.JINI_INTERFACE,),
            {"name": "Laserdisc2", "ops": Laserdisc.JINI_OPS},
        )
        home.sim.run_until_complete(service.publish(home.lookup.ref))
        home.run(2.0)  # transition event + export settle
        assert home.islands["jini"].pcm.hotplug_exports == 1
        assert home.invoke_from("havi", "Laserdisc2", "play") is True
        assert second_disc.playing

    def test_crashed_device_withdrawn_from_vsr(self, live_home):
        """Let the fridge's lease lapse: the framework catalog drops it."""
        home = live_home
        service = home.jini_services["Refrigerator"]
        service.renewals.forget(service.registration_lease)
        home.run(200.0)
        catalog = home.sim.run_until_complete(home.mm.catalog())
        assert "Refrigerator" not in {d.service for d in catalog}
        assert home.islands["jini"].pcm.withdrawals >= 1

    def test_healthy_services_unaffected(self, live_home):
        home = live_home
        home.run(300.0)
        catalog = home.sim.run_until_complete(home.mm.catalog())
        names = {d.service for d in catalog}
        assert {"Laserdisc", "Vcr", "Refrigerator", "AirConditioner"} <= names

    def test_liveness_registration_survives_many_lease_periods(self, live_home):
        """The PCM's own event-registration lease is auto-renewed."""
        home = live_home
        home.run(1000.0)
        # Crash a device after a long uptime: the watcher must still react.
        service = home.jini_services["AirConditioner"]
        service.renewals.forget(service.registration_lease)
        home.run(200.0)
        catalog = home.sim.run_until_complete(home.mm.catalog())
        assert "AirConditioner" not in {d.service for d in catalog}


class TestUpnpLiveness:
    @pytest.fixture
    def upnp_home(self, home):
        from repro.apps.home import add_upnp_island

        add_upnp_island(home)
        home.sim.run_until_complete(home.mm.refresh())
        return home

    def test_byebye_withdraws_services(self, upnp_home):
        home = upnp_home
        light = home.upnp_devices["light"]
        light.announcer.stop(send_byebye=True)
        home.run(3.0)
        catalog = home.sim.run_until_complete(home.mm.catalog())
        names = {d.service for d in catalog}
        assert "Porchlight_SwitchPower" not in names
        assert "Renderer_AVTransport" in names  # the other device stays
        assert home.islands["upnp"].pcm.withdrawals == 1

    def test_withdrawn_service_fails_from_other_islands(self, upnp_home):
        home = upnp_home
        home.upnp_devices["light"].announcer.stop(send_byebye=True)
        home.run(3.0)
        home.islands["jini"].gateway.vsr.invalidate("Porchlight_SwitchPower")
        with pytest.raises(Exception):
            home.invoke_from("jini", "Porchlight_SwitchPower", "GetStatus")
