"""Tests for the UPnP PCM and the late-join ('effortlessly') claim."""

import pytest

from repro.apps.home import add_upnp_island
from repro.net.transport import TransportStack
from repro.upnp.control import UpnpControlPoint


@pytest.fixture
def upnp_home(home):
    add_upnp_island(home)
    home.sim.run_until_complete(home.mm.refresh())
    return home


class TestLateJoin:
    def test_one_refresh_integrates_everything(self, upnp_home):
        catalog = upnp_home.sim.run_until_complete(upnp_home.mm.catalog())
        upnp_services = {d.service for d in catalog if d.context["island"] == "upnp"}
        assert upnp_services == {"Porchlight_SwitchPower", "Renderer_AVTransport"}
        assert len(catalog) == 15

    def test_existing_islands_unchanged(self, upnp_home):
        """Joining must not disturb the original four islands."""
        assert upnp_home.invoke_from("jini", "Digital_TV_tuner", "get_channel") == 1
        assert upnp_home.invoke_from("havi", "Refrigerator", "get_temperature") == 4.0

    def test_every_old_island_reaches_upnp(self, upnp_home):
        for island in ("jini", "havi", "x10", "mail"):
            assert upnp_home.invoke_from(island, "Renderer_AVTransport", "Play") is True

    def test_upnp_island_reaches_every_old_island(self, upnp_home):
        assert upnp_home.invoke_from("upnp", "Laserdisc", "play") is True
        assert upnp_home.invoke_from("upnp", "Digital_TV_display", "power_on") is True
        assert upnp_home.invoke_from("upnp", "X10_A1_hall_lamp", "turn_on") is True


class TestClientProxyDirection:
    def test_typed_interface_from_upnp_description(self, upnp_home):
        catalog = upnp_home.sim.run_until_complete(upnp_home.mm.catalog())
        transport = next(d for d in catalog if d.service == "Renderer_AVTransport")
        set_volume = transport.operation("SetVolume")
        assert set_volume.inputs[0].type == "int"
        assert set_volume.output == "int"

    def test_action_invocation_from_remote_island(self, upnp_home):
        assert upnp_home.invoke_from("jini", "Renderer_AVTransport", "SetVolume", [80]) == 80
        assert upnp_home.upnp_state["renderer"]["volume"] == 80

    def test_gena_events_bridged_to_framework_bus(self, upnp_home):
        received = []
        upnp_home.sim.run_until_complete(
            upnp_home.islands["jini"].gateway.subscribe(
                "upnp.Status", lambda t, p, src: received.append(p)
            )
        )
        upnp_home.invoke_from("havi", "Porchlight_SwitchPower", "SetTarget", [True])
        upnp_home.run(8.0)
        assert received == [{"udn": "uuid:upnp-light", "value": True}]


class TestServerProxyDirection:
    def native_control_point(self, upnp_home):
        node = upnp_home.network.create_node("native-cp")
        upnp_home.network.attach(node, upnp_home.network.segment("upnp-eth"))
        stack = TransportStack(node, upnp_home.network)
        control_point = UpnpControlPoint(stack)
        control_point.search("upnp-eth")
        upnp_home.run(2.0)
        return control_point

    def test_bridge_device_advertises_foreign_services(self, upnp_home):
        control_point = self.native_control_point(upnp_home)
        bridge_usn = "uuid:VSG_Bridge"
        assert bridge_usn in control_point.discovered
        description, base = upnp_home.sim.run_until_complete(
            control_point.fetch_description(control_point.discovered[bridge_usn])
        )
        ids = {s.service_id for s in description.services}
        assert "urn:repro:serviceId:Laserdisc" in ids
        assert "urn:repro:serviceId:X10_A1_hall_lamp" in ids
        assert "urn:repro:serviceId:InternetMail" in ids

    def test_native_control_point_drives_jini_device(self, upnp_home):
        control_point = self.native_control_point(upnp_home)
        description, base = upnp_home.sim.run_until_complete(
            control_point.fetch_description(control_point.discovered["uuid:VSG_Bridge"])
        )
        service = description.service("urn:repro:serviceId:Laserdisc")
        chapter = upnp_home.sim.run_until_complete(
            control_point.invoke(base, service, "goto_chapter", [12])
        )
        assert chapter == 12
        assert upnp_home.laserdisc.chapter == 12
