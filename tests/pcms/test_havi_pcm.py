"""Tests for the HAVi PCM: both proxy directions."""

import pytest

from repro.errors import ConversionError, HaviError, RemoteServiceError
from repro.havi.bus1394 import HaviNode
from repro.havi.dcm import FcmHandle
from repro.havi.messaging import REGISTRY_LOCAL_ID, Seid
from repro.havi.registry import RegistryClient
from repro.pcms.havi_pcm import interface_from_describe, service_name_for
from repro.core.interface import ValueType


class TestNamingAndTypes:
    def test_service_name_for(self):
        assert service_name_for("DV Camera", "camera") == "DV_Camera_camera"
        assert service_name_for("Digital-TV", "display") == "Digital_TV_display"
        with pytest.raises(ConversionError):
            service_name_for("@#$", "fcm")

    def test_interface_from_describe_maps_types(self):
        description = {
            "fcm_type": "camera",
            "commands": {"zoom": ["int"], "label": ["string", "boolean"]},
            "returns": {"zoom": "int"},
        }
        interface = interface_from_describe("Cam", description)
        zoom = interface.operation("zoom")
        assert zoom.params[0].type == ValueType.INT
        assert zoom.returns == ValueType.INT
        label = interface.operation("label")
        assert [p.type for p in label.params] == [ValueType.STRING, ValueType.BOOL]
        assert label.returns == ValueType.ANY  # unspecified return


class TestClientProxyDirection:
    def test_fcms_exported_per_function(self, home):
        catalog = home.sim.run_until_complete(home.mm.catalog())
        havi_services = {d.service for d in catalog if d.context.get("island") == "havi"}
        assert havi_services == {
            "Digital_TV_display",
            "Digital_TV_tuner",
            "DV_Camera_camera",
            "DV_Camera_vcr",
        }

    def test_context_carries_fcm_metadata(self, home):
        catalog = home.sim.run_until_complete(home.mm.catalog())
        camera = next(d for d in catalog if d.service == "DV_Camera_camera")
        assert camera.context["fcm_type"] == "camera"
        assert camera.context["device_class"] == "camcorder"

    def test_cross_island_call_becomes_havi_message(self, home):
        before = home.islands["havi"].pcm.havi_node.messaging.messages_sent
        assert home.invoke_from("jini", "Digital_TV_tuner", "set_channel", [42]) == 42
        assert home.tv_tuner.channel == 42
        after = home.islands["havi"].pcm.havi_node.messaging.messages_sent
        assert after > before  # real HAVi messages crossed the 1394 bus

    def test_havi_error_crosses_as_remote_fault(self, home):
        with pytest.raises(RemoteServiceError, match="out of range"):
            home.invoke_from("jini", "DV_Camera_camera", "zoom", [99])


class TestServerProxyDirection:
    def find_virtual_fcm(self, home, service):
        """A native HAVi controller node finds the bridged FCM through the
        ordinary registry."""
        controller = HaviNode(home.network, f"native-{service}", home.bus)
        registry_host = home.havi_registry.havi_node
        client = RegistryClient(
            controller.messaging, Seid(registry_host.guid, REGISTRY_LOCAL_ID)
        )
        seid, attrs = home.sim.run_until_complete(
            client.find_one({"fcm_type": "bridged", "device_name": service})
        )
        return FcmHandle(controller.messaging, seid), attrs

    def test_native_havi_controller_plays_jini_laserdisc(self, home):
        handle, attrs = self.find_virtual_fcm(home, "Laserdisc")
        assert attrs["bridged"] is True
        assert home.sim.run_until_complete(handle.call("play")) is True
        assert home.laserdisc.playing

    def test_virtual_fcm_describe_reflects_interface(self, home):
        handle, _ = self.find_virtual_fcm(home, "Laserdisc")
        description = home.sim.run_until_complete(handle.describe())
        assert description["fcm_type"] == "bridged"
        assert "goto_chapter" in description["commands"]

    def test_virtual_fcm_validates_types_before_forwarding(self, home):
        handle, _ = self.find_virtual_fcm(home, "Laserdisc")
        with pytest.raises(HaviError):
            home.sim.run_until_complete(handle.call("goto_chapter", "five"))

    def test_virtual_fcm_for_x10_lamp(self, home):
        handle, _ = self.find_virtual_fcm(home, "X10_A2_porch_lamp")
        assert home.sim.run_until_complete(handle.call("turn_on")) is True
        assert home.lamps["porch"].on

    def test_bridged_fcms_not_reexported(self, home):
        home.sim.run_until_complete(home.mm.refresh())
        catalog = home.sim.run_until_complete(home.mm.catalog())
        havi_names = [d.service for d in catalog if d.context.get("island") == "havi"]
        assert len(havi_names) == 4
