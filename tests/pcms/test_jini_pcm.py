"""Tests for the Jini PCM: both proxy directions, loop prevention."""

import pytest

from repro.errors import RemoteServiceError
from repro.jini.service import JiniClient, JiniHost
from repro.pcms.jini_pcm import interface_from_ops, ops_from_interface
from repro.core.interface import simple_interface


class TestOpsTables:
    def test_ops_interface_roundtrip(self):
        interface = simple_interface(
            "Svc", {"play": ("->boolean",), "seek": ("int", "double", "->int")}
        )
        assert interface_from_ops("Svc", ops_from_interface(interface)) == interface


class TestClientProxyDirection:
    def test_jini_services_appear_in_catalog(self, home):
        catalog = home.sim.run_until_complete(home.mm.catalog())
        jini_services = {d.service for d in catalog if d.context.get("island") == "jini"}
        assert jini_services == {"Laserdisc", "Vcr", "Refrigerator", "AirConditioner"}

    def test_exported_interface_matches_ops_table(self, home):
        catalog = home.sim.run_until_complete(home.mm.catalog())
        laserdisc = next(d for d in catalog if d.service == "Laserdisc")
        assert laserdisc.has_operation("goto_chapter")
        assert laserdisc.operation("goto_chapter").output == "int"
        assert laserdisc.context["middleware"] == "jini"

    def test_remote_call_reaches_jini_impl(self, home):
        result = home.invoke_from("havi", "Refrigerator", "set_temperature", [2.5])
        assert result == 2.5
        assert home.refrigerator.temperature == 2.5

    def test_jini_exception_crosses_as_remote_fault(self, home):
        with pytest.raises(RemoteServiceError, match="out of range"):
            home.invoke_from("havi", "Laserdisc", "goto_chapter", [999])


class TestServerProxyDirection:
    def lookup_bridged(self, home, service):
        """A plain Jini client (new host on the Jini segment) finds the
        bridged facade through the ordinary lookup service."""
        host = JiniHost(home.network, f"native-client-{service}", home.network.segment("jini-eth"))
        client = JiniClient(host)
        lookup_ref = home.sim.run_until_complete(client.discover_lookup())
        return client, home.sim.run_until_complete(
            client.lookup_one(lookup_ref, f"vsg.{service}")
        )

    def test_unmodified_jini_client_calls_havi_camera(self, home):
        """Figure 2's Server Proxy, live: a legacy Jini client drives a
        HAVi device without knowing HAVi exists."""
        client, proxy = self.lookup_bridged(home, "DV_Camera_camera")
        assert home.sim.run_until_complete(proxy.zoom(6)) == 6
        assert home.camera.zoom_level == 6

    def test_unmodified_jini_client_switches_x10_lamp(self, home):
        client, proxy = self.lookup_bridged(home, "X10_A1_hall_lamp")
        assert home.sim.run_until_complete(proxy.turn_on()) is True
        assert home.lamps["hall"].on

    def test_bridged_registrations_carry_origin_metadata(self, home):
        host = JiniHost(home.network, "inspector", home.network.segment("jini-eth"))
        client = JiniClient(host)
        lookup_ref = home.sim.run_until_complete(client.discover_lookup())
        items = home.sim.run_until_complete(
            client.lookup(lookup_ref, interface="vsg.DV_Camera_camera")
        )
        assert items[0].attributes["bridged"] is True
        assert items[0].attributes["origin_island"] == "havi"

    def test_bridges_not_reexported(self, home):
        """Loop prevention: re-running export must not turn Server Proxies
        back into neutral services."""
        home.sim.run_until_complete(home.mm.refresh())
        catalog = home.sim.run_until_complete(home.mm.catalog())
        jini_names = [d.service for d in catalog if d.context.get("island") == "jini"]
        assert sorted(jini_names) == ["AirConditioner", "Laserdisc", "Refrigerator", "Vcr"]

    def test_bridge_leases_renewed(self, home):
        """Bridged registrations survive well past their lease duration."""
        home.run(400.0)
        host = JiniHost(home.network, "late-client", home.network.segment("jini-eth"))
        client = JiniClient(host)
        lookup_ref = home.sim.run_until_complete(client.discover_lookup())
        items = home.sim.run_until_complete(
            client.lookup(lookup_ref, interface="vsg.Digital_TV_display")
        )
        assert len(items) == 1
