"""Tests for the discrete-event kernel."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError, TimeoutError
from repro.net.simkernel import SimFuture, Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, fired.append, "late")
        sim.schedule(1.0, fired.append, "early")
        sim.schedule(3.0, fired.append, "last")
        sim.run()
        assert fired == ["early", "late", "last"]
        assert sim.now == 3.0

    def test_same_instant_fires_fifo(self):
        sim = Simulator()
        fired = []
        for tag in range(5):
            sim.schedule(1.0, fired.append, tag)
        sim.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.at(1.0, lambda: None)

    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, fired.append, "x")
        event.cancel()
        sim.run()
        assert fired == []
        # Cancelling twice is harmless.
        event.cancel()

    def test_callback_can_schedule_more_events(self):
        sim = Simulator()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                sim.schedule(1.0, chain, n + 1)

        sim.schedule(1.0, chain, 0)
        sim.run()
        assert fired == [0, 1, 2, 3]
        assert sim.now == 4.0

    def test_run_until_bound_advances_clock_exactly(self):
        sim = Simulator()
        fired = []
        sim.schedule(10.0, fired.append, "future")
        sim.run(until=4.0)
        assert fired == []
        assert sim.now == 4.0
        sim.run_for(6.0)
        assert fired == ["future"]

    def test_call_soon_runs_after_queued_same_instant(self):
        sim = Simulator()
        fired = []
        sim.schedule(0.0, fired.append, "first")
        sim.call_soon(fired.append, "second")
        sim.run()
        assert fired == ["first", "second"]

    def test_step_returns_false_when_empty(self):
        sim = Simulator()
        assert sim.step() is False

    def test_pending_events_counts_only_live(self):
        sim = Simulator()
        keep = sim.schedule(1.0, lambda: None)
        cancelled = sim.schedule(1.0, lambda: None)
        cancelled.cancel()
        assert sim.pending_events == 1
        keep.cancel()
        assert sim.pending_events == 0

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
    def test_firing_order_is_sorted_by_time(self, delays):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, fired.append, delay)
        sim.run()
        assert fired == sorted(delays)


class TestCancellationEdges:
    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, fired.append, "x")
        sim.run()
        assert fired == ["x"]
        event.cancel()  # already fired: must not raise or corrupt the queue
        sim.schedule(1.0, fired.append, "y")
        sim.run()
        assert fired == ["x", "y"]

    def test_cancel_twice_then_run(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, fired.append, "x")
        event.cancel()
        event.cancel()
        sim.schedule(2.0, fired.append, "y")
        sim.run()
        assert fired == ["y"]
        event.cancel()  # and again after the queue drained

    def test_same_instant_fifo_survives_interleaved_cancellations(self):
        sim = Simulator()
        fired = []
        events = [sim.schedule(1.0, fired.append, tag) for tag in range(6)]
        events[1].cancel()
        events[4].cancel()
        sim.run()
        assert fired == [0, 2, 3, 5]


class TestTimeoutAbandonment:
    """What happens to the queue when ``run_until_complete`` times out.

    The contract: the clock lands exactly on the deadline and the
    would-have-resolved event stays queued.  A later ``run`` fires it at
    its original virtual time — the future late-resolves, it is not lost
    and nothing crashes — so consumers that keep a timed-out future
    around must expect a late resolution (the resilience layer's
    ``with_deadline`` ignores one; this pins the kernel behaviour that
    makes that guard necessary).
    """

    def test_timeout_leaves_clock_exactly_at_deadline(self):
        sim = Simulator()
        future = SimFuture()
        sim.schedule(100.0, future.set_result, "late")
        with pytest.raises(TimeoutError):
            sim.run_until_complete(future, timeout=10.0)
        assert sim.now == 10.0
        assert not future.done()

    def test_abandoned_future_resolves_at_original_time_on_next_run(self):
        sim = Simulator()
        future = SimFuture()
        resolved_at = []
        future.add_done_callback(lambda f: resolved_at.append(sim.now))
        sim.schedule(100.0, future.set_result, "late")
        with pytest.raises(TimeoutError):
            sim.run_until_complete(future, timeout=10.0)
        sim.run()
        assert future.done()
        assert future.result() == "late"
        assert resolved_at == [100.0]

    def test_events_scheduled_before_deadline_already_fired(self):
        sim = Simulator()
        future = SimFuture()
        fired = []
        sim.schedule(5.0, fired.append, "inside")
        sim.schedule(100.0, future.set_result, "late")
        with pytest.raises(TimeoutError):
            sim.run_until_complete(future, timeout=10.0)
        assert fired == ["inside"]


class TestSimFuture:
    def test_result_before_done_raises(self):
        future = SimFuture()
        with pytest.raises(SimulationError):
            future.result()

    def test_double_resolution_rejected(self):
        future = SimFuture()
        future.set_result(1)
        with pytest.raises(SimulationError):
            future.set_result(2)

    def test_callbacks_fire_on_resolution_and_late_add(self):
        future = SimFuture()
        seen = []
        future.add_done_callback(lambda f: seen.append(("early", f.result())))
        future.set_result(42)
        future.add_done_callback(lambda f: seen.append(("late", f.result())))
        assert seen == [("early", 42), ("late", 42)]

    def test_exception_propagates_through_result(self):
        future = SimFuture.failed(ValueError("boom"))
        assert isinstance(future.exception(), ValueError)
        with pytest.raises(ValueError):
            future.result()

    def test_run_until_complete_returns_value(self):
        sim = Simulator()
        future = SimFuture()
        sim.schedule(2.0, future.set_result, "done")
        assert sim.run_until_complete(future) == "done"
        assert sim.now == 2.0

    def test_run_until_complete_timeout(self):
        sim = Simulator()
        future = SimFuture()
        sim.schedule(100.0, future.set_result, "too late")
        with pytest.raises(TimeoutError):
            sim.run_until_complete(future, timeout=10.0)

    def test_run_until_complete_detects_deadlock(self):
        sim = Simulator()
        future = SimFuture()  # nothing will ever resolve it
        with pytest.raises(SimulationError):
            sim.run_until_complete(future)

    def test_gather_preserves_order(self):
        sim = Simulator()
        futures = [SimFuture() for _ in range(3)]
        sim.schedule(3.0, futures[0].set_result, "a")
        sim.schedule(1.0, futures[1].set_result, "b")
        sim.schedule(2.0, futures[2].set_result, "c")
        assert sim.gather(futures) == ["a", "b", "c"]
