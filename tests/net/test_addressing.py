"""Tests for addresses and the network resolution tables."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import AddressError, NetworkError
from repro.net.addressing import BROADCAST, HwAddress, NodeAddress
from repro.net.network import Network
from repro.net.segment import EthernetSegment
from repro.net.simkernel import Simulator


class TestAddresses:
    def test_broadcast_is_broadcast(self):
        assert BROADCAST.is_broadcast()
        assert not HwAddress(1).is_broadcast()

    def test_node_address_roundtrip(self):
        address = NodeAddress("jini-eth", 3)
        assert NodeAddress.parse(str(address)) == address

    @given(
        st.text(
            alphabet=st.characters(whitelist_categories=("Ll", "Nd"), whitelist_characters="-_"),
            min_size=1,
            max_size=20,
        ),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_node_address_roundtrip_property(self, segment, host):
        address = NodeAddress(segment, host)
        assert NodeAddress.parse(str(address)) == address

    @pytest.mark.parametrize("bad", ["", "nohost", "seg/", "/3", "seg/abc"])
    def test_malformed_node_address_rejected(self, bad):
        with pytest.raises(ValueError):
            NodeAddress.parse(bad)

    def test_hw_address_renders_mac_style(self):
        assert str(HwAddress(0x0102)) == "01:02"
        assert str(BROADCAST) == "ff:ff"


class TestNetworkTables:
    def test_attach_assigns_sequential_hosts_per_segment(self):
        sim = Simulator()
        net = Network(sim)
        seg_a = net.create_segment(EthernetSegment, "a")
        seg_b = net.create_segment(EthernetSegment, "b")
        n1, n2 = net.create_node("n1"), net.create_node("n2")
        i1 = net.attach(n1, seg_a)
        i2 = net.attach(n2, seg_a)
        i3 = net.attach(n2, seg_b)  # multi-homed
        assert i1.node_address == NodeAddress("a", 1)
        assert i2.node_address == NodeAddress("a", 2)
        assert i3.node_address == NodeAddress("b", 1)

    def test_resolution_both_directions(self):
        sim = Simulator()
        net = Network(sim)
        seg = net.create_segment(EthernetSegment, "s")
        node = net.create_node("n")
        iface = net.attach(node, seg)
        assert net.resolve(iface.node_address) is iface
        assert net.resolve_hw(iface.hw_address) is iface

    def test_unknown_addresses_raise(self):
        sim = Simulator()
        net = Network(sim)
        with pytest.raises(AddressError):
            net.resolve(NodeAddress("ghost", 1))
        with pytest.raises(AddressError):
            net.resolve_hw(HwAddress(999))

    def test_duplicate_names_rejected(self):
        sim = Simulator()
        net = Network(sim)
        net.create_segment(EthernetSegment, "s")
        net.create_node("n")
        with pytest.raises(NetworkError):
            net.create_segment(EthernetSegment, "s")
        with pytest.raises(NetworkError):
            net.create_node("n")

    def test_interface_on_requires_attachment(self):
        sim = Simulator()
        net = Network(sim)
        seg = net.create_segment(EthernetSegment, "s")
        node = net.create_node("n")
        with pytest.raises(NetworkError):
            node.interface_on(seg)

    def test_hw_addresses_globally_unique(self):
        sim = Simulator()
        net = Network(sim)
        seg_a = net.create_segment(EthernetSegment, "a")
        seg_b = net.create_segment(EthernetSegment, "b")
        seen = set()
        for index in range(10):
            node = net.create_node(f"n{index}")
            iface = net.attach(node, seg_a if index % 2 else seg_b)
            assert iface.hw_address not in seen
            seen.add(iface.hw_address)
