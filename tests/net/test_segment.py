"""Tests for broadcast media models."""

import pytest

from repro.errors import NetworkError
from repro.net.addressing import BROADCAST
from repro.net.frames import Frame
from repro.net.network import Network
from repro.net.segment import (
    EthernetSegment,
    IEEE1394Segment,
    PowerlineSegment,
    SerialLink,
)
from repro.net.simkernel import Simulator


def build(segment_cls, n_nodes=2, **kwargs):
    sim = Simulator()
    net = Network(sim)
    segment = net.create_segment(segment_cls, "seg", **kwargs)
    nodes = []
    for index in range(n_nodes):
        node = net.create_node(f"n{index}")
        net.attach(node, segment)
        nodes.append(node)
    return sim, net, segment, nodes


class TestTransmission:
    def test_unicast_reaches_only_addressee(self):
        sim, net, segment, (a, b) = build(EthernetSegment, 2)
        seen = []
        b.register_protocol("test", lambda iface, frame: seen.append(frame.payload))
        a.interfaces[0].send(b.interfaces[0].hw_address, "test", b"hello")
        sim.run()
        assert seen == [b"hello"]

    def test_unicast_not_delivered_to_third_party(self):
        sim, net, segment, (a, b, c) = build(EthernetSegment, 3)
        seen_c = []
        c.register_protocol("test", lambda iface, frame: seen_c.append(frame))
        a.interfaces[0].send(b.interfaces[0].hw_address, "test", b"private")
        sim.run()
        assert seen_c == []

    def test_broadcast_reaches_everyone_but_sender(self):
        sim, net, segment, nodes = build(EthernetSegment, 4)
        seen = {node.name: [] for node in nodes}
        for node in nodes:
            node.register_protocol(
                "test", lambda iface, frame, n=node.name: seen[n].append(frame.payload)
            )
        nodes[0].interfaces[0].broadcast("test", b"all")
        sim.run()
        assert seen["n0"] == []
        assert all(seen[f"n{i}"] == [b"all"] for i in (1, 2, 3))

    def test_promiscuous_interface_sees_foreign_unicast(self):
        sim, net, segment, (a, b, c) = build(EthernetSegment, 3)
        seen_c = []
        c.interfaces[0].promiscuous = True
        c.register_protocol("test", lambda iface, frame: seen_c.append(frame.payload))
        a.interfaces[0].send(b.interfaces[0].hw_address, "test", b"sniffed")
        sim.run()
        assert seen_c == [b"sniffed"]

    def test_down_interface_receives_nothing(self):
        sim, net, segment, (a, b) = build(EthernetSegment, 2)
        seen = []
        b.register_protocol("test", lambda iface, frame: seen.append(frame))
        b.interfaces[0].up = False
        a.interfaces[0].broadcast("test", b"x")
        sim.run()
        assert seen == []

    def test_down_interface_cannot_send(self):
        sim, net, segment, (a, b) = build(EthernetSegment, 2)
        a.interfaces[0].up = False
        with pytest.raises(NetworkError):
            a.interfaces[0].broadcast("test", b"x")


class TestTiming:
    def test_transmission_time_scales_with_size_and_bandwidth(self):
        sim, net, segment, (a, b) = build(EthernetSegment, 2)
        small = Frame(a.interfaces[0].hw_address, BROADCAST, "t", b"x" * 100)
        large = Frame(a.interfaces[0].hw_address, BROADCAST, "t", b"x" * 1000)
        assert segment.transmission_time(large) > segment.transmission_time(small)
        expected = (1000 + segment.header_overhead) * 8 / segment.bandwidth_bps
        assert segment.transmission_time(large) == pytest.approx(expected)

    def test_busy_medium_serialises_transmissions(self):
        sim, net, segment, (a, b) = build(EthernetSegment, 2)
        arrivals = []
        b.register_protocol("t", lambda iface, frame: arrivals.append(sim.now))
        # Two 1500-byte frames sent at the same instant must arrive one
        # transmission-time apart.
        a.interfaces[0].broadcast("t", b"x" * 1500)
        a.interfaces[0].broadcast("t", b"x" * 1500)
        sim.run()
        assert len(arrivals) == 2
        gap = arrivals[1] - arrivals[0]
        one_tx = segment.transmission_time(
            Frame(a.interfaces[0].hw_address, BROADCAST, "t", b"x" * 1500)
        )
        assert gap == pytest.approx(one_tx)

    def test_powerline_is_orders_of_magnitude_slower_than_ethernet(self):
        _, _, powerline, _ = build(PowerlineSegment, 2)
        _, _, ethernet, _ = build(EthernetSegment, 2)
        frame = Frame(BROADCAST, BROADCAST, "x10", b"\x66\x00")
        assert powerline.transmission_time(frame) > 1000 * ethernet.transmission_time(frame)
        # An X10 frame takes on the order of a third of a second.
        assert 0.1 < powerline.transmission_time(frame) < 1.0

    def test_ieee1394_is_fastest(self):
        _, _, firewire, _ = build(IEEE1394Segment, 2)
        _, _, ethernet, _ = build(EthernetSegment, 2)
        frame = Frame(BROADCAST, BROADCAST, "t", b"x" * 1000)
        assert firewire.transmission_time(frame) < ethernet.transmission_time(frame)


class TestTopologyRules:
    def test_serial_link_limited_to_two_endpoints(self):
        sim = Simulator()
        net = Network(sim)
        link = net.create_segment(SerialLink, "ser")
        for index in range(2):
            node = net.create_node(f"n{index}")
            net.attach(node, link)
        third = net.create_node("n2")
        with pytest.raises(NetworkError):
            net.attach(third, link)

    def test_double_attach_rejected(self):
        sim, net, segment, (a, b) = build(EthernetSegment, 2)
        with pytest.raises(NetworkError):
            segment.attach(a.interfaces[0])

    def test_zero_bandwidth_rejected(self):
        sim = Simulator()
        with pytest.raises(NetworkError):
            EthernetSegment(sim, "bad", bandwidth_bps=0)


class TestLossModel:
    def test_loss_model_drops_frames(self):
        sim, net, segment, (a, b) = build(PowerlineSegment, 2)
        seen = []
        b.register_protocol("t", lambda iface, frame: seen.append(frame))
        segment.loss_model = lambda frame: True  # drop everything
        a.interfaces[0].broadcast("t", b"\x01\x02")
        sim.run()
        assert seen == []
        assert segment.frames_sent == 1  # it still occupied the wire

    def test_deterministic_seeded_loss(self):
        import random

        rng = random.Random(42)
        sim, net, segment, (a, b) = build(PowerlineSegment, 2)
        seen = []
        b.register_protocol("t", lambda iface, frame: seen.append(frame))
        segment.loss_model = lambda frame: rng.random() < 0.5
        for _ in range(20):
            a.interfaces[0].broadcast("t", b"\x01\x02")
        sim.run()
        assert 0 < len(seen) < 20  # some lost, some delivered
