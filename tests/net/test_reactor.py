"""Tests for the per-node reactor: vectored writes, zero-copy dispatch,
continuation lifecycle, shutdown semantics and monitor conservation."""

import pytest

from repro.net.monitor import TrafficMonitor
from repro.net.reactor import VECTOR_MAX_PAYLOAD, Reactor
from repro.net.simkernel import Simulator
from repro.net.transport import PROTO_TCP, PROTO_TCPV, Connection
from repro.obs.export import snapshot_with_traffic
from repro.obs.metrics import MetricsRegistry

from tests.conftest import make_host


def establish(sim, a, b, port=80, on_conn=None, vectored=False):
    """Connect a -> b; optionally flip the client connection to the
    reactor's vectored path after the handshake (so handshake bytes stay
    identical in every test)."""
    server_conns = []

    def accept(conn):
        server_conns.append(conn)
        if on_conn is not None:
            on_conn(conn)

    b.listen(port, accept)
    conn = sim.run_until_complete(a.connect(b.local_address(), port))
    conn.vectored = vectored
    return conn, server_conns


class TestVectoredWrites:
    def test_single_frame_per_cycle_is_byte_identical_to_plain_path(self, sim, net, eth):
        """A cycle that finds one pending frame must emit exactly what the
        immediate path would have: same protocol tag, same wire size."""
        monitor = TrafficMonitor(trace_enabled=True).watch(eth)
        a = make_host(net, "a", eth)
        b = make_host(net, "b", eth)
        c = make_host(net, "c", eth)
        d = make_host(net, "d", eth)

        plain, _ = establish(sim, a, b, port=80)
        fast, _ = establish(sim, c, d, port=81, vectored=True)
        monitor.reset()

        plain.send(b"payload-x")
        sim.run()
        plain_entries = [
            (e.protocol, e.size) for e in monitor.trace if e.protocol != "udp"
        ]
        monitor.reset()

        fast.send(b"payload-x")
        sim.run()
        fast_entries = [
            (e.protocol, e.size) for e in monitor.trace if e.protocol != "udp"
        ]
        assert fast_entries == plain_entries
        assert all(protocol == PROTO_TCP for protocol, _size in fast_entries)
        assert monitor.frames_coalesced == 0

    def test_burst_coalesces_into_one_vectored_transmission(self, sim, net, eth):
        monitor = TrafficMonitor(trace_enabled=True).watch(eth)
        a = make_host(net, "a", eth)
        b = make_host(net, "b", eth)
        received = []
        conn, _ = establish(
            sim, a, b,
            on_conn=lambda c: c.set_receiver(lambda _c, data: received.append(bytes(data))),
            vectored=True,
        )
        monitor.reset()

        for index in range(5):
            conn.send(bytes([index]) * 20)
        sim.run()

        assert b"".join(received) == b"".join(bytes([i]) * 20 for i in range(5))
        tcpv = [e for e in monitor.trace if e.protocol == PROTO_TCPV]
        assert len(tcpv) == 1
        assert monitor.frames_coalesced == 5
        assert a.reactor.vector_frames == 1
        assert a.reactor.frames_coalesced == 5

    def test_burst_longer_than_vector_window_splits_into_batches(self, sim, net, eth):
        a = make_host(net, "a", eth)
        b = make_host(net, "b", eth)
        received = []
        conn, _ = establish(
            sim, a, b,
            on_conn=lambda c: c.set_receiver(lambda _c, data: received.append(bytes(data))),
            vectored=True,
        )
        blob = bytes(range(256)) * 512  # 128 KiB > one 64 KiB vector window
        conn.send(blob)
        sim.run()
        assert b"".join(received) == blob
        assert a.reactor.vector_frames >= 2

    def test_split_respects_vector_max_payload(self):
        frames = [(PROTO_TCP, b"x" * 30000)] * 5  # 150000 bytes total
        batches = Reactor._split(frames)
        assert [frame for batch in batches for frame in batch] == frames
        assert all(
            sum(len(payload) for _proto, payload in batch) <= VECTOR_MAX_PAYLOAD
            for batch in batches
        )
        assert len(batches) == 3

    def test_oversize_single_frame_still_ships_alone(self):
        big = (PROTO_TCP, b"y" * (VECTOR_MAX_PAYLOAD + 1))
        batches = Reactor._split([big, (PROTO_TCP, b"z")])
        assert batches[0] == [big]

    def test_zero_copy_connection_receives_memoryviews(self, sim, net, eth):
        a = make_host(net, "a", eth)
        b = make_host(net, "b", eth)
        chunks = []

        def accept(conn):
            conn.zero_copy = True
            conn.set_receiver(lambda _c, data: chunks.append(data))

        conn, _ = establish(sim, a, b, on_conn=accept, vectored=True)
        conn.send(b"one")
        conn.send(b"two")
        sim.run()
        assert [bytes(chunk) for chunk in chunks] == [b"one", b"two"]
        assert all(isinstance(chunk, memoryview) for chunk in chunks)

    def test_flush_failure_aborts_connection_not_reactor(self, sim, net, eth):
        a = make_host(net, "a", eth)
        b = make_host(net, "b", eth)
        conn, _ = establish(sim, a, b, vectored=True)
        conn.send(b"doomed")
        a.node.crash()  # flush will raise; reactor must survive
        sim.run()
        assert conn.state == Connection.CLOSED
        a.node.restart()
        # The reactor still works for new connections afterwards.
        c = make_host(net, "c", eth)
        conn2, _ = establish(sim, a, c, port=90, vectored=True)
        conn2.send(b"alive")
        sim.run()
        assert conn2.bytes_sent == 5


class TestMonitorConservation:
    def _run_traffic(self, vectored):
        """Same traffic twice; returns (monitor, segment, stack)."""
        sim = Simulator()
        from repro.net.network import Network
        from repro.net.segment import EthernetSegment

        net = Network(sim)
        eth = net.create_segment(EthernetSegment, "eth0")
        monitor = TrafficMonitor().watch(eth)
        a = make_host(net, "a", eth)
        b = make_host(net, "b", eth)
        conn, _ = establish(sim, a, b, vectored=vectored)
        for index in range(8):
            conn.send(b"m" * (10 + index))
        sim.run()
        return monitor, eth, a

    def test_per_protocol_tallies_identical_vectored_or_not(self):
        plain_monitor, _, _ = self._run_traffic(vectored=False)
        fast_monitor, _, _ = self._run_traffic(vectored=True)
        plain = {p: (s.frames, s.bytes) for p, s in plain_monitor.stats.items()}
        fast = {p: (s.frames, s.bytes) for p, s in fast_monitor.stats.items()}
        assert fast == plain
        assert plain_monitor.frames_coalesced == 0
        assert fast_monitor.frames_coalesced == 8

    def test_constituents_reconcile_with_segment_transmissions(self):
        monitor, eth, _ = self._run_traffic(vectored=True)
        by_protocol = monitor.per_segment[eth.name]
        seg_frames = sum(stats.frames for stats in by_protocol.values())
        extra = monitor.coalesced_extra_per_segment[eth.name]
        assert extra == monitor.frames_coalesced - 1  # 8 parts on 1 wire frame
        assert seg_frames - extra == eth.frames_sent

    def test_reset_clears_coalescing_accumulators(self):
        monitor, _, _ = self._run_traffic(vectored=True)
        assert monitor.frames_coalesced
        monitor.reset()
        fresh = TrafficMonitor()
        assert monitor.frames_coalesced == fresh.frames_coalesced == 0
        assert monitor.coalesced_extra_per_segment == {}
        assert monitor.coalesced_dropped_extra_per_segment == {}

    def test_frames_coalesced_surfaces_in_obs_snapshot(self):
        monitor, _, _ = self._run_traffic(vectored=True)
        snapshot = snapshot_with_traffic(MetricsRegistry(), monitor)
        assert snapshot["traffic.monitor.frames_coalesced"] == 8


class TestContinuations:
    def test_park_finish_cancel_lifecycle(self, sim, net, eth):
        stack = make_host(net, "a", eth)
        reactor = stack.reactor
        cancelled = []
        first = reactor.park("key", on_cancel=lambda: cancelled.append("first"))
        second = reactor.park("key", on_cancel=lambda: cancelled.append("second"))
        assert reactor.parked == 2
        first.finish()
        assert reactor.parked == 1
        assert reactor.cancel_key("key") == 1
        assert cancelled == ["second"]
        assert second.cancelled and not first.cancelled
        assert reactor.parked == 0

    def test_cancel_is_idempotent_and_finish_wins(self, sim, net, eth):
        reactor = make_host(net, "a", eth).reactor
        hits = []
        continuation = reactor.park("k", on_cancel=lambda: hits.append(1))
        continuation.finish()
        continuation.cancel()
        continuation.cancel()
        assert hits == []  # finished first: the cancel hook never runs

    def test_cancel_all_covers_every_key(self, sim, net, eth):
        reactor = make_host(net, "a", eth).reactor
        for key in ("x", "y", "z"):
            reactor.park(key)
            reactor.park(key)
        assert reactor.cancel_all() == 6
        assert reactor.parked == 0
        assert reactor.stats()["continuations_cancelled"] == 6

    def test_stats_keys_are_stable(self, sim, net, eth):
        reactor = make_host(net, "a", eth).reactor
        assert sorted(reactor.stats()) == [
            "continuations_cancelled",
            "continuations_parked",
            "cycles",
            "flushes",
            "frames_coalesced",
            "parked",
            "vector_frames",
        ]


class TestShutdownSemantics:
    def test_stack_shutdown_cancels_parked_continuations(self, sim, net, eth):
        a = make_host(net, "a", eth)
        b = make_host(net, "b", eth)
        conn, _ = establish(sim, a, b)
        cancelled = []
        a.reactor.park(conn, on_cancel=lambda: cancelled.append(conn))
        a.shutdown()
        sim.run()
        assert cancelled == [conn]
        assert a.reactor.parked == 0
        assert a.open_connections == 0

    def test_shutdown_fails_pending_connects(self, sim, net, eth):
        from repro.errors import TransportError

        a = make_host(net, "a", eth)
        b = make_host(net, "b", eth)
        b.listen(80, lambda conn: None)
        b.node.crash()  # SYN will go unanswered
        future = a.connect(b.local_address(), 80)
        a.shutdown()
        with pytest.raises(TransportError, match="shut down"):
            sim.run_until_complete(future)

    def test_shutdown_discards_queued_vectored_frames_cleanly(self, sim, net, eth):
        monitor = TrafficMonitor(trace_enabled=True).watch(eth)
        a = make_host(net, "a", eth)
        b = make_host(net, "b", eth)
        conn, _ = establish(sim, a, b, vectored=True)
        monitor.reset()
        conn.send(b"never flushed")
        a.shutdown()  # aborts the connection before the cycle flushes it
        sim.run()
        assert conn.state == Connection.CLOSED
        assert not any(e.protocol == PROTO_TCPV for e in monitor.trace)

    def test_determinism_identical_runs_identical_stats(self):
        def run():
            sim = Simulator()
            from repro.net.network import Network
            from repro.net.segment import EthernetSegment

            net = Network(sim)
            eth = net.create_segment(EthernetSegment, "eth0")
            a = make_host(net, "a", eth)
            b = make_host(net, "b", eth)
            conn, _ = establish(sim, a, b, vectored=True)
            for index in range(6):
                conn.send(bytes([index]) * 64)
            sim.run()
            return a.reactor.stats()

        assert run() == run()
