"""Tests for traffic accounting."""

from repro.net.monitor import TrafficMonitor
from repro.net.network import Network
from repro.net.segment import EthernetSegment
from repro.net.simkernel import Simulator


def build():
    sim = Simulator()
    net = Network(sim)
    segment = net.create_segment(EthernetSegment, "seg")
    a, b = net.create_node("a"), net.create_node("b")
    net.attach(a, segment)
    net.attach(b, segment)
    return sim, segment, a, b


class TestCounters:
    def test_frames_and_bytes_counted_per_protocol(self):
        sim, segment, a, b = build()
        monitor = TrafficMonitor().watch(segment)
        a.interfaces[0].broadcast("alpha", b"x" * 100)
        a.interfaces[0].broadcast("alpha", b"x" * 100)
        a.interfaces[0].broadcast("beta", b"y" * 50)
        sim.run()
        assert monitor.frames_for("alpha") == 2
        assert monitor.frames_for("beta") == 1
        assert monitor.bytes_for("alpha") == 2 * (100 + segment.header_overhead)
        assert monitor.total_frames == 3

    def test_per_segment_breakdown(self):
        sim, segment, a, b = build()
        net = Network(sim)
        other = net.create_segment(EthernetSegment, "other")
        node = net.create_node("c")
        net.attach(node, other)
        monitor = TrafficMonitor().watch(segment, other)
        a.interfaces[0].broadcast("p", b"1234")
        node.interfaces[0].broadcast("p", b"12")
        sim.run()
        assert set(monitor.per_segment) == {"seg", "other"}
        assert monitor.per_segment["seg"]["p"].frames == 1

    def test_dropped_frames_counted_separately(self):
        sim, segment, a, b = build()
        monitor = TrafficMonitor().watch(segment)
        segment.loss_model = lambda frame: True
        a.interfaces[0].broadcast("p", b"lost")
        sim.run()
        assert monitor.stats["p"].frames == 1
        assert monitor.stats["p"].dropped_frames == 1

    def test_trace_records_transmissions(self):
        sim, segment, a, b = build()
        monitor = TrafficMonitor(trace_enabled=True).watch(segment)
        a.interfaces[0].broadcast("p", b"abc", note="hello")
        sim.run()
        assert len(monitor.trace) == 1
        entry = monitor.trace[0]
        assert entry.protocol == "p"
        assert entry.segment == "seg"
        assert entry.note == "hello"

    def test_trace_respects_limit(self):
        sim, segment, a, b = build()
        monitor = TrafficMonitor(trace_enabled=True, trace_limit=3).watch(segment)
        for _ in range(10):
            a.interfaces[0].broadcast("p", b"x")
        sim.run()
        assert len(monitor.trace) == 3

    def test_trace_truncation_is_counted(self):
        sim, segment, a, b = build()
        monitor = TrafficMonitor(trace_enabled=True, trace_limit=3).watch(segment)
        for _ in range(10):
            a.interfaces[0].broadcast("p", b"x")
        sim.run()
        assert monitor.trace_dropped == 7
        # Truncation is an explicit field, not a sentinel row: the rows
        # stay pure protocol tallies and summary() carries the count.
        assert all(not row[0].startswith("(") for row in monitor.summary_rows())
        assert monitor.summary()["trace_dropped"] == 7
        # Counting only applies to the trace: frame/byte tallies are complete.
        assert monitor.frames_for("p") == 10

    def test_trace_dropped_stays_zero_within_limit(self):
        sim, segment, a, b = build()
        monitor = TrafficMonitor(trace_enabled=True, trace_limit=3).watch(segment)
        a.interfaces[0].broadcast("p", b"x")
        sim.run()
        assert monitor.trace_dropped == 0
        assert all(not row[0].startswith("(") for row in monitor.summary_rows())
        assert monitor.summary()["trace_dropped"] == 0

    def test_reset_clears_everything(self):
        sim, segment, a, b = build()
        monitor = TrafficMonitor(trace_enabled=True, trace_limit=1).watch(segment)
        a.interfaces[0].broadcast("p", b"x")
        a.interfaces[0].broadcast("p", b"x")
        sim.run()
        assert monitor.trace_dropped == 1
        monitor.reset()
        assert monitor.total_frames == 0
        assert monitor.trace == []
        assert monitor.trace_dropped == 0
        # Reset restores the just-constructed state (module docstring
        # contract): same public accumulators as a fresh monitor.
        fresh = TrafficMonitor(trace_enabled=True, trace_limit=1)
        assert (monitor.stats, monitor.per_segment, monitor.trace, monitor.trace_dropped) == (
            fresh.stats, fresh.per_segment, fresh.trace, fresh.trace_dropped
        )

    def test_unwatch_stops_counting(self):
        sim, segment, a, b = build()
        monitor = TrafficMonitor().watch(segment)
        monitor.unwatch(segment)
        a.interfaces[0].broadcast("p", b"x")
        sim.run()
        assert monitor.total_frames == 0

    def test_summary_rows_sorted_by_bytes(self):
        sim, segment, a, b = build()
        monitor = TrafficMonitor().watch(segment)
        a.interfaces[0].broadcast("small", b"x")
        a.interfaces[0].broadcast("big", b"y" * 500)
        sim.run()
        rows = monitor.summary_rows()
        assert rows[0][0] == "big"
        assert rows[1][0] == "small"
