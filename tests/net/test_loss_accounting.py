"""Segment.loss_model + TrafficMonitor accounting.

A dropped frame must be *tallied* by every watching monitor (frames, bytes,
dropped_frames) yet never reach a receiver: the books balance as
``delivered == sent - dropped``.
"""

from repro.net.monitor import TrafficMonitor


def wire_counting_receiver(net, name, received):
    node = net.node(name)
    node.register_protocol("test", lambda iface, frame: received.append(frame))
    return node


class TestLossAccounting:
    def make_pair(self, net, eth):
        received = []
        node_a = net.create_node("a")
        node_b = net.create_node("b")
        net.attach(node_a, eth)
        net.attach(node_b, eth)
        node_b.register_protocol("test", lambda iface, frame: received.append(frame))
        return node_a.interfaces[0], node_b.interfaces[0], received

    def test_dropped_frames_tallied_but_not_delivered(self, sim, net, eth):
        sender, receiver, received = self.make_pair(net, eth)
        monitor = TrafficMonitor().watch(eth)
        # Deterministic drop pattern: every third frame is lost.
        counter = {"n": 0}

        def every_third(frame):
            counter["n"] += 1
            return counter["n"] % 3 == 0

        eth.loss_model = every_third
        for k in range(30):
            sim.at(0.1 * k, sender.send, receiver.hw_address, "test", b"payload")
        sim.run()

        stats = monitor.stats["test"]
        assert stats.frames == 30
        assert stats.dropped_frames == 10
        assert len(received) == 30 - 10
        # Dropped frames still count their bytes (payload + framing), so
        # the byte total divides evenly across all 30 frames.
        assert stats.bytes % 30 == 0
        assert stats.bytes >= 30 * len(b"payload")

    def test_per_segment_books_match_the_totals(self, sim, net, eth):
        sender, receiver, received = self.make_pair(net, eth)
        monitor = TrafficMonitor().watch(eth)
        eth.loss_model = lambda frame: True  # black hole
        for k in range(5):
            sim.at(0.1 * k, sender.send, receiver.hw_address, "test", b"x")
        sim.run()
        assert len(received) == 0
        assert monitor.stats["test"].dropped_frames == 5
        assert monitor.per_segment["eth0"]["test"].dropped_frames == 5

    def test_no_loss_model_drops_nothing(self, sim, net, eth):
        sender, receiver, received = self.make_pair(net, eth)
        monitor = TrafficMonitor().watch(eth)
        for k in range(10):
            sim.at(0.1 * k, sender.send, receiver.hw_address, "test", b"x")
        sim.run()
        assert monitor.stats["test"].dropped_frames == 0
        assert len(received) == 10
