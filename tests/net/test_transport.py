"""Tests for the UDP/TCP-like transport layer."""

import pytest

from repro.errors import ConnectionClosedError, TransportError
from repro.net.network import Network
from repro.net.segment import EthernetSegment
from repro.net.simkernel import Simulator
from repro.net.transport import Connection, TransportStack

from tests.conftest import make_host


class TestDatagrams:
    def test_unicast_datagram(self, sim, net, eth, two_hosts):
        a, b = two_hosts
        received = []
        sock_b = b.udp_socket(9000)
        sock_b.on_datagram(lambda src, port, data: received.append((str(src), port, data)))
        sock_a = a.udp_socket(9001)
        sock_a.sendto(b.local_address(), 9000, b"ping")
        sim.run()
        assert received == [("eth0/1", 9001, b"ping")]

    def test_broadcast_reaches_all_bound_sockets(self, sim, net, eth):
        hosts = [make_host(net, f"h{i}", eth) for i in range(4)]
        received = {i: [] for i in range(4)}
        for index, host in enumerate(hosts[1:], start=1):
            sock = host.udp_socket(5000)
            sock.on_datagram(lambda s, p, d, i=index: received[i].append(d))
        sender = hosts[0].udp_socket(5000)
        sender.broadcast(eth, 5000, b"hello all")
        sim.run()
        assert all(received[i] == [b"hello all"] for i in (1, 2, 3))

    def test_datagram_to_unbound_port_is_dropped(self, sim, two_hosts):
        a, b = two_hosts
        sock = a.udp_socket()
        sock.sendto(b.local_address(), 7777, b"void")
        sim.run()  # silently dropped; nothing to assert but no crash

    def test_backlog_replayed_when_handler_installed_late(self, sim, two_hosts):
        a, b = two_hosts
        sock_b = b.udp_socket(9000)
        a.udp_socket().sendto(b.local_address(), 9000, b"early")
        sim.run()
        received = []
        sock_b.on_datagram(lambda s, p, d: received.append(d))
        assert received == [b"early"]

    def test_closed_socket_rejects_send_and_drops_rx(self, sim, two_hosts):
        a, b = two_hosts
        sock = a.udp_socket(9000)
        sock.close()
        with pytest.raises(ConnectionClosedError):
            sock.sendto(b.local_address(), 1, b"x")
        # Port is released: rebinding works.
        a.udp_socket(9000)

    def test_duplicate_bind_rejected(self, two_hosts):
        a, _ = two_hosts
        a.udp_socket(9000)
        with pytest.raises(TransportError):
            a.udp_socket(9000)


class TestConnections:
    def connect(self, sim, a, b, port=80, on_conn=None):
        b.listen(port, on_conn or (lambda conn: None))
        return sim.run_until_complete(a.connect(b.local_address(), port))

    def test_connect_and_echo(self, sim, two_hosts):
        a, b = two_hosts
        echoed = []

        def on_conn(conn):
            conn.set_receiver(lambda c, data: c.send(data.upper()))

        conn = self.connect(sim, a, b, on_conn=on_conn)
        conn.set_receiver(lambda c, data: echoed.append(data))
        conn.send(b"hello")
        sim.run()
        assert b"".join(echoed) == b"HELLO"

    def test_connection_refused(self, sim, two_hosts):
        a, b = two_hosts
        future = a.connect(b.local_address(), 4242)  # nobody listening
        with pytest.raises(TransportError, match="refused"):
            sim.run_until_complete(future)

    def test_large_transfer_is_segmented_and_reassembled(self, sim, eth, two_hosts):
        a, b = two_hosts
        blob = bytes(range(256)) * 64  # 16 KiB, > 10 MTUs
        received = []

        def on_conn(conn):
            conn.set_receiver(lambda c, data: received.append(data))

        conn = self.connect(sim, a, b, on_conn=on_conn)
        conn.send(blob)
        sim.run()
        assert b"".join(received) == blob
        # Segmentation actually happened.
        assert len(received) > 1
        assert all(len(chunk) <= eth.mtu for chunk in received)

    def test_ordered_delivery(self, sim, two_hosts):
        a, b = two_hosts
        received = []

        def on_conn(conn):
            conn.set_receiver(lambda c, data: received.append(data))

        conn = self.connect(sim, a, b, on_conn=on_conn)
        for index in range(20):
            conn.send(bytes([index]) * 10)
        sim.run()
        combined = b"".join(received)
        expected = b"".join(bytes([i]) * 10 for i in range(20))
        assert combined == expected

    def test_close_handshake_frees_both_ends(self, sim, two_hosts):
        a, b = two_hosts
        server_conns = []
        conn = self.connect(sim, a, b, on_conn=server_conns.append)
        sim.run()
        assert a.open_connections == 1
        assert b.open_connections == 1
        conn.close()
        sim.run()
        assert conn.state == Connection.CLOSED
        assert a.open_connections == 0
        assert b.open_connections == 0

    def test_send_after_close_raises(self, sim, two_hosts):
        a, b = two_hosts
        conn = self.connect(sim, a, b)
        conn.close()
        sim.run()
        with pytest.raises(ConnectionClosedError):
            conn.send(b"too late")

    def test_handshake_costs_round_trips(self, sim, two_hosts):
        """The 'TCP is heavy' premise: just connecting takes 3 frames of
        virtual time before any payload."""
        a, b = two_hosts
        t0 = sim.now
        conn = self.connect(sim, a, b)
        assert sim.now > t0
        assert conn.frames_sent >= 2  # SYN + ACK

    def test_loopback_same_node(self, sim, net, eth):
        host = make_host(net, "solo", eth)
        received = []

        def on_conn(conn):
            conn.set_receiver(lambda c, data: received.append(data))

        host.listen(80, on_conn)
        conn = sim.run_until_complete(host.connect(host.local_address(), 80))
        conn.send(b"to myself")
        sim.run()
        assert received == [b"to myself"]

    def test_byte_accounting(self, sim, two_hosts):
        a, b = two_hosts
        server_conns = []
        conn = self.connect(sim, a, b, on_conn=server_conns.append)
        conn.send(b"x" * 1000)
        sim.run()
        assert conn.bytes_sent == 1000
        assert server_conns[0].bytes_received == 1000


class TestMultiHoming:
    def test_gateway_relays_between_segments_at_app_layer(self, sim, net):
        """The paper's topology: islands only talk through a multi-homed
        gateway doing application-layer forwarding."""
        eth_a = net.create_segment(EthernetSegment, "island-a")
        eth_b = net.create_segment(EthernetSegment, "island-b")
        host_a = make_host(net, "a", eth_a)
        host_b = make_host(net, "b", eth_b)
        gw_node = net.create_node("gw")
        net.attach(gw_node, eth_a)
        net.attach(gw_node, eth_b)
        gw = TransportStack(gw_node, net)

        received_b = []

        def b_on_conn(conn):
            conn.set_receiver(lambda c, data: received_b.append(data))

        host_b.listen(90, b_on_conn)

        def gw_on_conn(conn):
            def relay(c, data):
                gw.connect(host_b.local_address(), 90).add_done_callback(
                    lambda f: f.result().send(data)
                )

            conn.set_receiver(relay)

        gw.listen(80, gw_on_conn)

        gw_address_on_a = gw_node.interface_on(eth_a).node_address
        conn = sim.run_until_complete(host_a.connect(gw_address_on_a, 80))
        conn.send(b"across islands")
        sim.run()
        assert b"".join(received_b) == b"across islands"

    def test_hosts_on_different_segments_cannot_talk_directly(self, sim, net):
        eth_a = net.create_segment(EthernetSegment, "seg-a")
        eth_b = net.create_segment(EthernetSegment, "seg-b")
        host_a = make_host(net, "a", eth_a)
        host_b = make_host(net, "b", eth_b)
        host_b.listen(80, lambda conn: None)
        future = host_a.connect(host_b.local_address(), 80)
        with pytest.raises(TransportError):
            sim.run_until_complete(future, timeout=5.0)


class TestPartitions:
    def test_connect_to_silent_peer_times_out(self, sim, two_hosts):
        a, b = two_hosts
        b.listen(80, lambda conn: None)
        # Partition b: its interface stops receiving.
        b.node.interfaces[0].up = False
        future = a.connect(b.local_address(), 80, timeout=10.0)
        t0 = sim.now
        with pytest.raises(TransportError, match="timed out"):
            sim.run_until_complete(future)
        assert sim.now - t0 >= 10.0

    def test_successful_connect_cancels_the_timer(self, sim, two_hosts):
        a, b = two_hosts
        b.listen(80, lambda conn: None)
        conn = sim.run_until_complete(a.connect(b.local_address(), 80))
        sim.run_for(60.0)  # long past any SYN timeout
        assert conn.state == Connection.ESTABLISHED

    def test_bridged_call_to_partitioned_island_fails_cleanly(self, sim):
        """Whole-stack version: a partitioned island produces a clean
        error at the caller, not a hung simulation."""
        from repro.apps.home import build_smart_home

        home = build_smart_home()
        home.connect()
        for iface in home.islands["havi"].node.interfaces:
            iface.up = False
        with pytest.raises(Exception):
            home.sim.run_until_complete(
                home.islands["jini"].gateway.invoke("Digital_TV_tuner", "get_channel", []),
                timeout=300.0,
            )
