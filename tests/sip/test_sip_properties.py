"""Property-based tests for the SIP grammar."""

from hypothesis import given, strategies as st

from repro.errors import SipError
from repro.net.addressing import NodeAddress
from repro.sip.messages import (
    METHODS,
    SipRequest,
    SipResponse,
    make_uri,
    parse_message,
    parse_uri,
)

_token = st.text(alphabet="abcdefghijklmnopqrstuvwxyzABC0123456789-._", min_size=1, max_size=16)
_header_value = st.text(
    alphabet=st.characters(blacklist_categories=("Cc", "Cs")), max_size=40
).map(lambda s: s.replace(":", "").strip())
_segment = st.text(alphabet="abcdefghij-", min_size=1, max_size=12)


class TestProperties:
    @given(
        st.sampled_from(METHODS),
        _token,
        _segment,
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=1, max_value=65535),
        st.dictionaries(_token, _header_value, max_size=5),
        st.binary(max_size=200),
    )
    def test_request_roundtrip(self, method, user, segment, host, port, headers, body):
        headers.pop("Content-Length", None)
        uri = make_uri(user, NodeAddress(segment, host), port)
        request = SipRequest(method=method, uri=uri, headers=dict(headers), body=body)
        parsed = parse_message(request.to_bytes())
        assert isinstance(parsed, SipRequest)
        assert parsed.method == method
        assert parsed.uri == uri
        assert parsed.body == body
        for name, value in headers.items():
            assert parsed.header(name) == value

    @given(st.integers(min_value=100, max_value=699), st.binary(max_size=200))
    def test_response_roundtrip(self, status, body):
        response = SipResponse(status=status, body=body)
        parsed = parse_message(response.to_bytes())
        assert isinstance(parsed, SipResponse)
        assert parsed.status == status
        assert parsed.body == body

    @given(_token, _segment, st.integers(min_value=0, max_value=10**6),
           st.integers(min_value=1, max_value=65535))
    def test_uri_roundtrip(self, user, segment, host, port):
        uri = make_uri(user, NodeAddress(segment, host), port)
        assert parse_uri(uri) == (user, NodeAddress(segment, host), port)

    @given(st.binary(max_size=120))
    def test_arbitrary_datagrams_never_crash_the_parser(self, junk):
        try:
            parse_message(junk)
        except SipError:
            pass
