"""Tests for the SIP substrate: grammar, transactions, user agents."""

import pytest

from repro.errors import SipError
from repro.net.addressing import NodeAddress
from repro.net.simkernel import SimFuture
from repro.sip.messages import (
    SipRequest,
    SipResponse,
    make_uri,
    parse_message,
    parse_uri,
)
from repro.sip.transaction import SipTransactionLayer
from repro.sip.ua import SipUserAgent


class TestGrammar:
    def test_request_roundtrip(self):
        request = SipRequest(
            method="MESSAGE",
            uri="sip:tv@backbone/2:5060",
            headers={"X-Thing": "1"},
            body=b"payload",
        )
        parsed = parse_message(request.to_bytes())
        assert isinstance(parsed, SipRequest)
        assert parsed.method == "MESSAGE"
        assert parsed.uri == request.uri
        assert parsed.body == b"payload"
        assert parsed.header("x-thing") == "1"

    def test_response_roundtrip(self):
        response = SipResponse(status=202, body=b"ok")
        parsed = parse_message(response.to_bytes())
        assert isinstance(parsed, SipResponse)
        assert parsed.status == 202
        assert parsed.reason == "Accepted"

    def test_uri_roundtrip(self):
        address = NodeAddress("backbone", 3)
        uri = make_uri("gateway", address, 5060)
        assert parse_uri(uri) == ("gateway", address, 5060)

    @pytest.mark.parametrize(
        "bad", ["http://x", "sip:nouser", "sip:u@host", "sip:u@seg/1"]
    )
    def test_bad_uris_rejected(self, bad):
        with pytest.raises(SipError):
            parse_uri(bad)

    def test_unknown_method_rejected(self):
        with pytest.raises(SipError):
            SipRequest(method="DANCE", uri="sip:a@s/1:5060")

    @pytest.mark.parametrize("junk", [b"", b"garbage", b"\xff\xfe", b"MESSAGE\r\n\r\n"])
    def test_malformed_messages_rejected(self, junk):
        with pytest.raises(SipError):
            parse_message(junk)


@pytest.fixture
def layers(sim, two_hosts):
    a, b = two_hosts
    return sim, SipTransactionLayer(a), SipTransactionLayer(b), b.local_address()


class TestTransactions:
    def test_request_response(self, layers):
        sim, client, server, address = layers
        server.on_request = lambda req, src, port: SipResponse(status=200, body=req.body.upper())
        request = SipRequest(method="MESSAGE", uri="sip:x@y/1:5060", body=b"hi")
        response = sim.run_until_complete(client.send_request(address, 5060, request))
        assert response.status == 200
        assert response.body == b"HI"

    def test_timeout_yields_408(self, sim, net, eth, two_hosts):
        a, _ = two_hosts
        client = SipTransactionLayer(a)
        ghost = NodeAddress("eth0", 2)
        request = SipRequest(method="MESSAGE", uri="sip:x@eth0/2:5060", body=b"")
        t0 = sim.now
        response = sim.run_until_complete(client.send_request(ghost, 5060, request))
        assert response.status == 408
        assert client.retransmissions == 3  # four attempts total
        assert sim.now - t0 >= 0.5 + 1.0 + 2.0  # doubling timers ran

    def test_retransmission_recovers_from_loss(self, sim, eth, layers):
        sim, client, server, address = layers
        server.on_request = lambda req, src, port: SipResponse(status=200)
        # Drop the first two datagrams on the segment.
        drops = {"left": 2}

        def lossy(frame):
            if drops["left"] > 0:
                drops["left"] -= 1
                return True
            return False

        eth.loss_model = lossy
        request = SipRequest(method="MESSAGE", uri="sip:x@y/1:5060")
        response = sim.run_until_complete(client.send_request(address, 5060, request))
        assert response.status == 200
        assert client.retransmissions >= 1

    def test_server_absorbs_retransmitted_requests(self, sim, eth, layers):
        sim, client, server, address = layers
        calls = []
        server.on_request = lambda req, src, port: (calls.append(1), SipResponse(status=200))[1]
        # Drop only responses (single direction): response frames come from
        # the server's interface.
        server_iface = server.stack.node.interfaces[0]
        dropped = {"n": 0}

        def drop_first_response(frame):
            if frame.src == server_iface.hw_address and dropped["n"] < 1:
                dropped["n"] += 1
                return True
            return False

        eth.loss_model = drop_first_response
        request = SipRequest(method="MESSAGE", uri="sip:x@y/1:5060")
        response = sim.run_until_complete(client.send_request(address, 5060, request))
        assert response.status == 200
        assert len(calls) == 1  # handler ran once despite retransmission

    def test_async_handler(self, layers):
        sim, client, server, address = layers

        def deferred(request, src, port):
            future = SimFuture()
            sim.schedule(0.2, future.set_result, SipResponse(status=200, body=b"later"))
            return future

        server.on_request = deferred
        request = SipRequest(method="MESSAGE", uri="sip:x@y/1:5060")
        response = sim.run_until_complete(client.send_request(address, 5060, request))
        assert response.body == b"later"

    def test_handler_exception_becomes_500(self, layers):
        sim, client, server, address = layers

        def broken(request, src, port):
            raise RuntimeError("handler bug")

        server.on_request = broken
        request = SipRequest(method="MESSAGE", uri="sip:x@y/1:5060")
        response = sim.run_until_complete(client.send_request(address, 5060, request))
        assert response.status == 500

    def test_no_handler_yields_501(self, layers):
        sim, client, server, address = layers
        request = SipRequest(method="MESSAGE", uri="sip:x@y/1:5060")
        response = sim.run_until_complete(client.send_request(address, 5060, request))
        assert response.status == 501


@pytest.fixture
def agents(sim, two_hosts):
    a, b = two_hosts
    return sim, SipUserAgent(a), SipUserAgent(b)


class TestUserAgents:
    def test_message_exchange(self, agents):
        sim, ua_a, ua_b = agents
        ua_b.on_message(lambda user, req: (200, f"hello {user}".encode()))
        response = sim.run_until_complete(
            ua_a.send_message(ua_b.uri("camera"), b"ping")
        )
        assert response.ok
        assert response.body == b"hello camera"

    def test_subscribe_notify_push(self, agents):
        """The capability HTTP lacks: the server pushes, unprompted."""
        sim, subscriber, publisher = agents
        received = []
        subscriber.on_event("motion", lambda event, body, src: received.append(body))
        response = sim.run_until_complete(
            subscriber.subscribe(publisher.uri("sensors"), "motion")
        )
        assert response.status == 202
        count = publisher.publish("motion", b"hall")
        assert count == 1
        sim.run_for(1.0)
        assert received == [b"hall"]

    def test_push_latency_is_network_rtt(self, agents):
        sim, subscriber, publisher = agents
        arrival = []
        subscriber.on_event("e", lambda event, body, src: arrival.append(sim.now))
        sim.run_until_complete(subscriber.subscribe(publisher.uri("p"), "e"))
        t0 = sim.now
        publisher.publish("e", b"x")
        sim.run_for(1.0)
        assert arrival and arrival[0] - t0 < 0.01  # milliseconds, not seconds

    def test_multiple_subscribers(self, sim, net, eth):
        from tests.conftest import make_host

        publisher = SipUserAgent(make_host(net, "pub", eth))
        subscribers = [SipUserAgent(make_host(net, f"sub{i}", eth)) for i in range(3)]
        received = []
        for index, subscriber in enumerate(subscribers):
            subscriber.on_event("e", lambda ev, body, src, i=index: received.append(i))
            sim.run_until_complete(subscriber.subscribe(publisher.uri("p"), "e"))
        publisher.publish("e", b"x")
        sim.run_for(1.0)
        assert sorted(received) == [0, 1, 2]

    def test_subscriptions_rejected_when_disabled(self, sim, two_hosts):
        a, b = two_hosts
        ua_a = SipUserAgent(a)
        ua_b = SipUserAgent(b, accept_subscriptions=False)
        response = sim.run_until_complete(ua_a.subscribe(ua_b.uri("x"), "e"))
        assert response.status == 405

    def test_options_ping(self, agents):
        sim, ua_a, ua_b = agents
        from repro.sip.messages import SipRequest

        request = SipRequest(method="OPTIONS", uri=ua_b.uri("any"))
        response = sim.run_until_complete(
            ua_a.transactions.send_request(ua_b.address, ua_b.port, request)
        )
        assert response.status == 200
