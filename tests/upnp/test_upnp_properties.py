"""Property-based tests for UPnP descriptions and URLs."""

from hypothesis import given, strategies as st

from repro.net.addressing import NodeAddress
from repro.upnp.description import (
    ARG_TYPES,
    Action,
    ActionArgument,
    DeviceDescription,
    ServiceDescription,
)
from repro.upnp.urls import make_url, parse_url

_name = st.text(alphabet="abcdefghijKLMNOP_", min_size=1, max_size=12)
_xml_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cc", "Cs"),
                           blacklist_characters="\r"),
    min_size=1, max_size=20,
).map(str.strip).filter(bool)

_argument = st.builds(ActionArgument, name=_name, type=st.sampled_from(ARG_TYPES))
_action = st.builds(
    Action,
    name=_name,
    inputs=st.lists(_argument, max_size=3).map(tuple),
    output=st.sampled_from(("",) + ARG_TYPES),
)
_service = st.builds(
    ServiceDescription,
    service_id=_name.map(lambda n: f"urn:x:serviceId:{n}"),
    service_type=_name.map(lambda n: f"urn:x:service:{n}:1"),
    control_path=_name.map(lambda n: f"/control/{n}"),
    event_path=_name.map(lambda n: f"/event/{n}"),
    actions=st.lists(_action, max_size=4).map(tuple),
)
_device = st.builds(
    DeviceDescription,
    friendly_name=_xml_text,
    device_type=_name.map(lambda n: f"urn:x:device:{n}:1"),
    udn=_name.map(lambda n: f"uuid:{n}"),
    services=st.lists(_service, max_size=3),
)


class TestProperties:
    @given(_device)
    def test_description_xml_roundtrip(self, description):
        assert DeviceDescription.from_xml(description.to_xml()) == description

    @given(
        st.text(alphabet="abcdef-", min_size=1, max_size=10),
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=1, max_value=65535),
        st.text(alphabet="abcdef/.-_", max_size=20),
    )
    def test_url_roundtrip(self, segment, host, port, path):
        address = NodeAddress(segment, host)
        url = make_url(address, port, "/" + path.lstrip("/"))
        parsed_address, parsed_port, parsed_path = parse_url(url)
        assert (parsed_address, parsed_port) == (address, port)
        assert parsed_path == "/" + path.lstrip("/")
