"""Tests for the UPnP substrate."""

import pytest

from repro.errors import SoapFault, UpnpError
from repro.net.addressing import NodeAddress
from repro.net.transport import TransportStack
from repro.upnp.control import UpnpControlPoint
from repro.upnp.description import (
    Action,
    ActionArgument,
    DeviceDescription,
    ServiceDescription,
)
from repro.upnp.device import UpnpDevice
from repro.upnp.urls import make_url, parse_url

from tests.conftest import make_host


@pytest.fixture
def light(sim, net, eth):
    device = UpnpDevice(
        net, "light", eth, friendly_name="Porchlight",
        device_type="urn:schemas-repro:device:BinaryLight:1",
    )
    state = {"on": False}

    def set_target(value):
        state["on"] = bool(value)
        device.notify("SwitchPower", "Status", state["on"])
        return state["on"]

    device.add_service(
        "SwitchPower",
        {
            "SetTarget": (set_target, (("NewTargetValue", "boolean"),), "boolean"),
            "GetStatus": (lambda: state["on"], (), "boolean"),
        },
    )
    return device, state


@pytest.fixture
def control_point(sim, net, eth):
    return UpnpControlPoint(make_host(net, "cp", eth))


class TestUrls:
    def test_roundtrip(self):
        url = make_url(NodeAddress("upnp-eth", 3), 8090, "/control/X")
        assert parse_url(url) == (NodeAddress("upnp-eth", 3), 8090, "/control/X")

    def test_pathless_url(self):
        assert parse_url("http://seg/1:80")[2] == "/"

    @pytest.mark.parametrize("bad", ["ftp://x/1:2/", "http://seg:80/", "http://seg/1/"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(UpnpError):
            parse_url(bad)


class TestDescriptions:
    def test_xml_roundtrip(self):
        description = DeviceDescription(
            friendly_name="TV Set",
            device_type="urn:x:device:TV:1",
            udn="uuid:tv-1",
            services=[
                ServiceDescription(
                    service_id="urn:x:serviceId:Display",
                    service_type="urn:x:service:Display:1",
                    control_path="/control/Display",
                    event_path="/event/Display",
                    actions=(
                        Action("PowerOn", (), "boolean"),
                        Action("SetInput", (ActionArgument("Input", "string"),), "string"),
                    ),
                )
            ],
        )
        assert DeviceDescription.from_xml(description.to_xml()) == description

    def test_unknown_types_rejected(self):
        with pytest.raises(UpnpError):
            ActionArgument("x", "u64")
        with pytest.raises(UpnpError):
            Action("a", (), "u64")


class TestDiscovery:
    def test_msearch_finds_device(self, sim, eth, light, control_point):
        device, _ = light
        control_point.search(eth)
        sim.run_for(1.0)
        assert device.udn in control_point.discovered
        assert control_point.discovered[device.udn] == device.location

    def test_periodic_announcements_heard(self, sim, eth, light, control_point):
        sim.run_for(35.0)  # one announce interval
        device, _ = light
        assert device.udn in control_point.discovered

    def test_byebye_removes_device(self, sim, eth, light, control_point):
        device, _ = light
        control_point.search(eth)
        sim.run_for(1.0)
        device.announcer.stop(send_byebye=True)
        sim.run_for(1.0)
        assert device.udn not in control_point.discovered

    def test_alive_watcher_callbacks(self, sim, eth, light, control_point):
        seen = []
        control_point.on_device_alive(lambda usn, location: seen.append(usn))
        control_point.search(eth)
        sim.run_for(1.0)
        assert seen == ["uuid:light"]


class TestControl:
    def fetch(self, sim, eth, control_point, device):
        control_point.search(eth)
        sim.run_for(1.0)
        return sim.run_until_complete(
            control_point.fetch_description(control_point.discovered[device.udn])
        )

    def test_description_fetch(self, sim, eth, light, control_point):
        device, _ = light
        description, base = self.fetch(sim, eth, control_point, device)
        assert description.friendly_name == "Porchlight"
        service = description.service("urn:repro:serviceId:SwitchPower")
        assert {a.name for a in service.actions} == {"SetTarget", "GetStatus"}

    def test_invoke_action(self, sim, eth, light, control_point):
        device, state = light
        description, base = self.fetch(sim, eth, control_point, device)
        service = description.service("urn:repro:serviceId:SwitchPower")
        assert sim.run_until_complete(
            control_point.invoke(base, service, "SetTarget", [True])
        ) is True
        assert state["on"] is True
        assert device.actions_served == 1

    def test_unknown_action_faults(self, sim, eth, light, control_point):
        device, _ = light
        description, base = self.fetch(sim, eth, control_point, device)
        service = description.service("urn:repro:serviceId:SwitchPower")
        with pytest.raises(SoapFault):
            sim.run_until_complete(control_point.invoke(base, service, "Explode", []))

    def test_action_error_faults(self, sim, eth, control_point, net):
        device = UpnpDevice(net, "broken", "eth0", friendly_name="B", device_type="urn:x:d:B:1")

        def bad():
            raise ValueError("hardware on fire")

        device.add_service("S", {"Bad": (bad, (), "")})
        description, base = self.fetch(sim, net.segment("eth0"), control_point, device)
        with pytest.raises(SoapFault, match="hardware on fire"):
            sim.run_until_complete(
                control_point.invoke(base, description.services[0], "Bad", [])
            )

    def test_duplicate_service_rejected(self, light):
        device, _ = light
        with pytest.raises(UpnpError):
            device.add_service("SwitchPower", {})


class TestEventing:
    def test_gena_subscribe_and_notify(self, sim, eth, light, control_point):
        device, state = light
        control_point.search(eth)
        sim.run_for(1.0)
        description, base = sim.run_until_complete(
            control_point.fetch_description(control_point.discovered[device.udn])
        )
        service = description.service("urn:repro:serviceId:SwitchPower")
        events = []
        sid = sim.run_until_complete(
            control_point.subscribe(
                base, service, device.udn,
                lambda udn, variable, value: events.append((udn, variable, value)),
            )
        )
        assert sid.startswith("uuid:sub-")
        # Toggle through control: the device notifies the subscriber.
        sim.run_until_complete(control_point.invoke(base, service, "SetTarget", [True]))
        sim.run_for(1.0)
        assert events == [("uuid:light", "Status", True)]
