"""End-to-end tests for the sharded, replicated VSR federation: ring
routing, scatter-gather degradation, breaker-aware replica failover,
same-shard lookup batching, negative caching, the find index, the legacy
wire pin, and the telemetry-plane fold."""

from __future__ import annotations

import random

import pytest

from repro.core.framework import MetaMiddleware
from repro.core.interface import simple_interface
from repro.core.shard import FederationConfig, HashRing, VsrFederation
from repro.core.vsr import FederatedDocuments, VsrDirectory, gateway_ring_key
from repro.errors import ServiceNotFoundError, SoapFault
from repro.net.monitor import TrafficMonitor
from repro.net.network import Network
from repro.net.segment import EthernetSegment
from repro.net.simkernel import Simulator
from repro.obs import Observability
from repro.obs.health import HealthPolicy, score_replica
from repro.soap.wsdl import WsdlDocument

from tests.core.toys import Lamp, Thermometer, ToyPcm

LAMP_IFACE = simple_interface(
    "Lamp", {"set_level": ("int", "->int"), "get_level": ("->int",)}
)
THERMO_IFACE = simple_interface("Thermo", {"read": ("->double",)})

FED_CONFIG = FederationConfig(
    shards=4,
    replicas=2,
    ring_seed="test-ring",
    sync_interval=1.0,
    find_deadline=3.0,
    breaker_threshold=2,
    breaker_reset_timeout=30.0,
)


def add_toy_island(mm, name, services):
    return mm.add_island(name, None, lambda island: ToyPcm(island.gateway, services))


@pytest.fixture
def fed_world(sim, net):
    backbone = net.create_segment(EthernetSegment, "backbone")
    mm = MetaMiddleware(net, backbone, federation=FED_CONFIG)
    island_a = add_toy_island(mm, "a", {"Lamp": (LAMP_IFACE, Lamp())})
    island_b = add_toy_island(mm, "b", {"Thermo": (THERMO_IFACE, Thermometer())})
    sim.run_until_complete(mm.connect())
    return mm, island_a, island_b


class TestRingRouting:
    def test_documents_land_on_ring_owner(self, sim, fed_world):
        mm, *_ = fed_world
        federation = mm.federation
        for shard, group in enumerate(federation.replicas):
            primary = group[0].directory
            for service in primary.service_names():
                assert federation.ring.owner(service) == shard
            for island in primary.gateways():
                assert federation.ring.owner(gateway_ring_key(island)) == shard

    def test_gateway_registrations_cover_all_islands(self, sim, fed_world):
        mm, *_ = fed_world
        assert set(mm.federation.view.gateways()) == {"a", "b"}

    def test_cross_island_calls_work_federated(self, sim, fed_world):
        mm, island_a, island_b = fed_world
        assert sim.run_until_complete(
            island_b.gateway.invoke("Lamp", "set_level", [7])
        ) == 7

    def test_keyed_lookup_routes_to_owner(self, sim, fed_world):
        mm, island_a, island_b = fed_world
        client = island_b.gateway.vsr
        owner = mm.federation.ring.owner("Lamp")
        before = [g[0].directory.queries for g in mm.federation.replicas]
        client.invalidate("Lamp")
        document = sim.run_until_complete(client.find_by_name("Lamp"))
        assert document.service == "Lamp"
        after = [g[0].directory.queries for g in mm.federation.replicas]
        # Only the owning shard's primary answered the lookup.
        assert after[owner] == before[owner] + 1
        for shard, count in enumerate(after):
            if shard != owner:
                assert count == before[shard]


class TestAntiEntropy:
    def test_replicas_converge_after_connect(self, sim, fed_world):
        mm, *_ = fed_world
        sim.run(until=sim.now + 10.0)
        federation = mm.federation
        assert federation.converged()
        for group in federation.replicas:
            states = {r.directory.canonical_state_json() for r in group}
            assert len(states) == 1

    def test_registration_survives_primary_loss(self, sim, fed_world):
        mm, island_a, island_b = fed_world
        sim.run(until=sim.now + 10.0)  # let anti-entropy replicate
        client = island_b.gateway.vsr
        owner = mm.federation.ring.owner("Lamp")
        mm.federation.replicas[owner][0].node.crash()
        client.invalidate("Lamp")
        document = sim.run_until_complete(client.find_by_name("Lamp"))
        assert document.service == "Lamp"
        assert client.failovers >= 1


class TestScatterGather:
    def test_find_merges_across_shards(self, sim, fed_world):
        mm, island_a, island_b = fed_world
        client = island_b.gateway.vsr
        documents = sim.run_until_complete(client.find({}))
        assert {d.service for d in documents} == {"Lamp", "Thermo"}
        assert isinstance(documents, FederatedDocuments)
        assert not documents.degraded

    def test_partitioned_shard_degrades_not_raises(self, sim, fed_world):
        # Satellite 3: one shard dark mid-query -> partial results flagged
        # degraded, not an exception.
        mm, island_a, island_b = fed_world
        sim.run(until=sim.now + 5.0)
        client = island_b.gateway.vsr
        owner = mm.federation.ring.owner("Lamp")
        for replica in mm.federation.replicas[owner]:
            replica.node.crash()
        documents = sim.run_until_complete(client.find({}))
        assert isinstance(documents, FederatedDocuments)
        assert documents.degraded
        assert owner in documents.missed_shards
        assert "Lamp" not in {d.service for d in documents}
        assert "Thermo" in {d.service for d in documents}
        assert client.partial_finds == 1

    def test_breaker_open_shard_skipped_without_deadline(self, sim, fed_world):
        # Satellite 3: a breaker-open shard is skipped synchronously — no
        # wire traffic, none of the scatter deadline consumed.
        mm, island_a, island_b = fed_world
        sim.run(until=sim.now + 5.0)
        client = island_b.gateway.vsr
        owner = mm.federation.ring.owner("Lamp")
        for index in range(len(mm.federation.replicas[owner])):
            breaker = client._shard_breaker(owner, index)
            for _ in range(FED_CONFIG.breaker_threshold):
                breaker.record_failure()
        skipped_before = client.replicas_skipped_open
        started = sim.now
        documents = sim.run_until_complete(client.find({}))
        elapsed = sim.now - started
        assert documents.degraded
        assert owner in documents.missed_shards
        assert client.replicas_skipped_open >= skipped_before + 2
        # The dark shard resolved synchronously: the sweep took only as
        # long as the healthy shards' round trips, nowhere near the
        # per-shard deadline the skip would otherwise have burned.
        assert elapsed < FED_CONFIG.find_deadline

    def test_all_shards_down_find_returns_fully_degraded(self, sim, fed_world):
        mm, island_a, island_b = fed_world
        sim.run(until=sim.now + 5.0)
        client = island_b.gateway.vsr
        for group in mm.federation.replicas:
            for replica in group:
                replica.node.crash()
        documents = sim.run_until_complete(client.find({}))
        assert documents == []
        assert documents.degraded
        assert list(documents.missed_shards) == [0, 1, 2, 3]


class TestLookupBatching:
    def test_same_shard_same_instant_lookups_batch(self, sim, fed_world):
        mm, island_a, island_b = fed_world
        client = island_b.gateway.vsr
        ring = mm.federation.ring
        # Publish a pile of extra services and find two on one shard.
        names = [f"Svc_batch{i}" for i in range(40)]
        for name in names:
            mm.federation.view.publish(
                WsdlDocument(
                    service=name,
                    location=f"soap://backbone/1:8080/{name}",
                    context={"island": "a"},
                )
            )
        by_shard: dict[int, list[str]] = {}
        for name in names:
            by_shard.setdefault(ring.owner(name), []).append(name)
        shard, group = next(
            (s, g) for s, g in sorted(by_shard.items()) if len(g) >= 3
        )
        wanted = group[:3]
        futures = [client.find_by_name(name) for name in wanted]
        sim.run(until=sim.now + 5.0)
        assert [f.result().service for f in futures] == wanted
        # Three distinct names, one shard, one instant: one find_many
        # exchange, two round trips saved.
        assert client.batched_lookups == 2

    def test_batched_absent_name_gets_not_found(self, sim, fed_world):
        mm, island_a, island_b = fed_world
        client = island_b.gateway.vsr
        ring = mm.federation.ring
        # Find a ghost name sharing a shard with a real service.
        ghost = next(
            f"Svc_ghost{i}"
            for i in range(1000)
            if ring.owner(f"Svc_ghost{i}") == ring.owner("Lamp")
        )
        client.invalidate("Lamp")
        real = client.find_by_name("Lamp")
        missing = client.find_by_name(ghost)
        sim.run(until=sim.now + 5.0)
        assert real.result().service == "Lamp"
        assert isinstance(missing.exception(), ServiceNotFoundError)


class TestNegativeCache:
    # Satellite 2: a failed find_by_name is negative-cached for a short
    # TTL, invalidated by publish/invalidate (the on_change chain).

    def test_negative_verdict_cached_within_ttl(self, sim, fed_world):
        mm, island_a, island_b = fed_world
        client = island_b.gateway.vsr
        with pytest.raises(SoapFault) as fault:
            sim.run_until_complete(client.find_by_name("Svc_nope"))
        assert fault.value.detail == "ServiceNotFoundError"  # authoritative
        lookups_before = client.remote_lookups
        with pytest.raises(ServiceNotFoundError, match="negative-cached"):
            sim.run_until_complete(client.find_by_name("Svc_nope"))
        assert client.negative_hits == 1
        assert client.remote_lookups == lookups_before  # no wire round trip

    def test_negative_entry_expires_after_ttl(self, sim, fed_world):
        mm, island_a, island_b = fed_world
        client = island_b.gateway.vsr
        with pytest.raises(SoapFault):
            sim.run_until_complete(client.find_by_name("Svc_nope"))
        sim.run(until=sim.now + client.negative_ttl + 0.001)
        lookups_before = client.remote_lookups
        with pytest.raises(SoapFault):
            sim.run_until_complete(client.find_by_name("Svc_nope"))
        assert client.remote_lookups == lookups_before + 1  # re-issued

    def test_invalidate_drops_negative_entry(self, sim, fed_world):
        mm, island_a, island_b = fed_world
        client = island_b.gateway.vsr
        with pytest.raises(SoapFault):
            sim.run_until_complete(client.find_by_name("Svc_late"))
        # The service appears; the on_change/unregister chain invalidates.
        mm.federation.view.publish(
            WsdlDocument(
                service="Svc_late",
                location="soap://backbone/1:8080/Svc_late",
                context={"island": "a"},
            )
        )
        client.invalidate("Svc_late")
        document = sim.run_until_complete(client.find_by_name("Svc_late"))
        assert document.service == "Svc_late"

    def test_own_publish_drops_negative_entry(self, sim, fed_world):
        mm, island_a, island_b = fed_world
        client = island_b.gateway.vsr
        with pytest.raises(SoapFault):
            sim.run_until_complete(client.find_by_name("Svc_mine"))
        sim.run_until_complete(
            client.publish(
                WsdlDocument(
                    service="Svc_mine",
                    location="soap://backbone/1:8080/Svc_mine",
                    context={"island": "b"},
                )
            )
        )
        document = sim.run_until_complete(client.find_by_name("Svc_mine"))
        assert document.service == "Svc_mine"

    def test_legacy_client_negative_cache_too(self, sim, net):
        # The TTL path is shared; pin it on the non-federated wire as well.
        backbone = net.create_segment(EthernetSegment, "backbone")
        mm = MetaMiddleware(net, backbone)
        island = add_toy_island(mm, "a", {"Lamp": (LAMP_IFACE, Lamp())})
        sim.run_until_complete(mm.connect())
        client = island.gateway.vsr
        with pytest.raises(SoapFault):
            sim.run_until_complete(client.find_by_name("Svc_nope"))
        before = client.remote_lookups
        with pytest.raises(ServiceNotFoundError, match="negative-cached"):
            sim.run_until_complete(client.find_by_name("Svc_nope"))
        assert client.negative_hits == 1
        assert client.remote_lookups == before


class TestFindIndex:
    # Satellite 1: the inverted context index must agree with the
    # reference linear scan on any directory and any filter.

    def test_index_matches_scan_on_randomized_directories(self):
        rng = random.Random(212)
        keys = ["island", "middleware", "kind", "room", "vendor"]
        values = ["a", "b", "c", "d"]
        for round_number in range(20):
            directory = VsrDirectory()
            live: set[str] = set()
            for i in range(rng.randrange(1, 60)):
                name = f"Svc_{rng.randrange(30)}"
                if name in live and rng.random() < 0.3:
                    directory.withdraw(name)
                    live.discard(name)
                    continue
                context = {
                    key: rng.choice(values)
                    for key in rng.sample(keys, rng.randrange(0, len(keys) + 1))
                }
                directory.publish(
                    WsdlDocument(
                        service=name,
                        location=f"soap://backbone/1:8080/{name}",
                        context=context,
                    )
                )
                live.add(name)
            for _ in range(15):
                query = {
                    key: rng.choice(values)
                    for key in rng.sample(keys, rng.randrange(0, 3))
                }
                assert directory.find(dict(query)) == directory._find_scan(
                    dict(query)
                ), f"round {round_number}: filter {query} diverged"

    def test_republish_updates_index(self):
        directory = VsrDirectory()
        directory.publish(
            WsdlDocument(service="S", location="soap://x/1:1/S", context={"k": "old"})
        )
        directory.publish(
            WsdlDocument(service="S", location="soap://x/1:1/S", context={"k": "new"})
        )
        assert directory.find({"k": "old"}) == []
        assert [d.service for d in directory.find({"k": "new"})] == ["S"]
        assert directory.find({"k": "old"}) == directory._find_scan({"k": "old"})


class TestLegacyWirePin:
    def test_trivial_federation_wire_is_byte_identical(self):
        # The acceptance pin: a 1-shard/1-replica federation must produce
        # the exact frames the legacy single directory does.
        def run_world(federation_config):
            sim = Simulator()
            net = Network(sim)
            backbone = net.create_segment(EthernetSegment, "backbone")
            monitor = TrafficMonitor(trace_enabled=True).watch(backbone)
            mm = MetaMiddleware(net, backbone, federation=federation_config)
            island_a = add_toy_island(mm, "a", {"Lamp": (LAMP_IFACE, Lamp())})
            island_b = add_toy_island(
                mm, "b", {"Thermo": (THERMO_IFACE, Thermometer())}
            )
            sim.run_until_complete(mm.connect())
            sim.run_until_complete(island_b.gateway.invoke("Lamp", "set_level", [3]))
            sim.run_until_complete(island_b.gateway.vsr.find({}))
            mm.shutdown()
            sim.run(until=sim.now + 60.0)
            return monitor.trace

        legacy = run_world(None)
        trivial = run_world(FederationConfig(shards=1, replicas=1))
        assert legacy == trivial


class TestTelemetryFold:
    # Satellite 6: shard/replica gauges + health scoring.

    def test_observe_registers_and_refreshes_gauges(self, sim, net):
        backbone = net.create_segment(EthernetSegment, "backbone")
        obs = Observability(sim)
        federation = VsrFederation(
            net, backbone, FederationConfig(shards=2, replicas=2), obs=obs
        )
        federation.observe(obs)
        snapshot = obs.metrics.snapshot()
        assert snapshot["vsr.fed.shards"] == 2
        assert snapshot["vsr.fed.ring_points"] == 2 * 64
        federation.view.publish(
            WsdlDocument(service="S", location="soap://x/1:1/S", context={})
        )
        federation.refresh_gauges()
        snapshot = obs.metrics.snapshot()
        owner = federation.ring.owner("S")
        assert snapshot[f"vsr.fed.vsr-s{owner}r0.keys_owned"] == 1

    def test_unconverged_replica_scores_unhealthy(self):
        policy = HealthPolicy()
        fine = score_replica(
            policy, "r0", convergence_lag=1.0, sync_interval=2.0, peers=2
        )
        assert fine["status"] == "healthy"
        chasing = score_replica(
            policy, "r0", convergence_lag=5.0, sync_interval=2.0, peers=2
        )
        assert chasing["status"] == "degraded"
        assert "converging" in chasing["reasons"]
        dark = score_replica(
            policy, "r0", convergence_lag=11.0, sync_interval=2.0, peers=2
        )
        assert dark["status"] == "unhealthy"
        assert "unconverged" in dark["reasons"]
        down = score_replica(
            policy, "r0", convergence_lag=0.0, sync_interval=2.0, peers=2, alive=False
        )
        assert down["status"] == "unhealthy"
        assert "replica-down" in down["reasons"]

    def test_collector_snapshot_folds_federation(self, sim, fed_world):
        mm, island_a, island_b = fed_world
        from repro.obs.telemetry import TelemetryCollector

        sim.run(until=sim.now + 10.0)  # converge first
        collector = TelemetryCollector(island_b.gateway).attach_federation(
            mm.federation
        )
        snapshot = collector.federation_snapshot()
        section = snapshot["vsr_federation"]
        assert section["shards"] == FED_CONFIG.shards
        assert section["converged"] is True
        replica_entries = [
            entry
            for shard in section["per_shard"]
            for entry in shard["replicas"]
        ]
        assert len(replica_entries) == FED_CONFIG.shards * FED_CONFIG.replicas
        assert all(e["health"]["status"] == "healthy" for e in replica_entries)

    def test_collector_flags_dead_replica(self, sim, fed_world):
        mm, island_a, island_b = fed_world
        from repro.obs.telemetry import TelemetryCollector

        sim.run(until=sim.now + 10.0)
        mm.federation.replicas[0][1].node.crash()
        collector = TelemetryCollector(island_b.gateway).attach_federation(
            mm.federation
        )
        section = collector.federation_snapshot()["vsr_federation"]
        entry = section["per_shard"][0]["replicas"][1]
        assert entry["health"]["status"] == "unhealthy"
        assert "replica-down" in entry["health"]["reasons"]


class TestRingRebalance:
    def test_moved_keys_is_the_exact_migration_set(self):
        keys = [f"Svc_{i}" for i in range(500)]
        old = HashRing(4, seed="r")
        new = HashRing(5, seed="r")
        moved = set(HashRing.moved_keys(old, new, keys))
        for key in keys:
            assert (old.owner(key) != new.owner(key)) == (key in moved)
