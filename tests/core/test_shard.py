"""Unit tests for the federation substrate (``repro.core.shard``):
consistent-hash ring placement, the replicated directory's op ledger and
LWW merge, and the shard service-queue load model."""

from __future__ import annotations

import random

import pytest

from repro.core.shard import HashRing, ReplicaDirectory, ShardLoadModel
from repro.net.simkernel import Simulator
from repro.soap.wsdl import WsdlDocument
from repro.store import DirectoryJournal, MemWalStore


def doc(service: str, island: str = "isl", **context: str) -> WsdlDocument:
    return WsdlDocument(
        service=service,
        location=f"soap://backbone/1:8080/{service}",
        context={"island": island, **context},
    )


# ---------------------------------------------------------------------------
# HashRing
# ---------------------------------------------------------------------------


class TestHashRing:
    def test_placement_is_deterministic(self):
        a = HashRing(8, virtual_nodes=32, seed="s")
        b = HashRing(8, virtual_nodes=32, seed="s")
        keys = [f"Svc_{i}" for i in range(500)]
        assert [a.owner(k) for k in keys] == [b.owner(k) for k in keys]

    def test_different_seed_different_placement(self):
        a = HashRing(8, seed="one")
        b = HashRing(8, seed="two")
        keys = [f"Svc_{i}" for i in range(500)]
        assert [a.owner(k) for k in keys] != [b.owner(k) for k in keys]

    def test_single_shard_owns_everything(self):
        ring = HashRing(1)
        assert {ring.owner(f"k{i}") for i in range(100)} == {0}

    def test_distribution_covers_all_shards(self):
        ring = HashRing(16, virtual_nodes=64)
        keys = [f"Svc_stub{i}" for i in range(4000)]
        counts = [0] * 16
        for key in keys:
            counts[ring.owner(key)] += 1
        assert all(count > 0 for count in counts)
        # With 64 vnodes the spread is rough but never degenerate: no
        # shard should own more than ~4x its fair share.
        assert max(counts) < 4 * (len(keys) / 16)

    def test_owner_in_range(self):
        ring = HashRing(5, virtual_nodes=8)
        for i in range(200):
            assert 0 <= ring.owner(f"key-{i}") < 5

    def test_moved_keys_bounded_on_grow(self):
        keys = [f"Svc_{i}" for i in range(2000)]
        old = HashRing(8, virtual_nodes=64)
        new = HashRing(9, virtual_nodes=64)
        moved = HashRing.moved_keys(old, new, keys)
        # Consistent hashing: growing 8 -> 9 shards should move roughly
        # 1/9 of the keys, not rehash the world.  Allow generous slack.
        assert 0 < len(moved) < len(keys) / 3
        # Every moved key must now land on some shard; unmoved keys keep
        # their owner by definition.
        for key in keys:
            if key not in moved:
                assert old.owner(key) == new.owner(key)

    def test_dump_round_trip_fields(self):
        ring = HashRing(4, virtual_nodes=16, seed="dump")
        dump = ring.dump()
        assert dump["shards"] == 4
        assert dump["virtual_nodes"] == 16
        assert dump["seed"] == "dump"
        assert len(dump["points"]) == 4 * 16
        assert dump["points"] == sorted(dump["points"])

    def test_rejects_degenerate_shapes(self):
        with pytest.raises(ValueError):
            HashRing(0)
        with pytest.raises(ValueError):
            HashRing(2, virtual_nodes=0)


# ---------------------------------------------------------------------------
# ReplicaDirectory: ledger, version vectors, LWW merge
# ---------------------------------------------------------------------------


class TestReplicaDirectory:
    def test_local_mutations_append_ops(self):
        replica = ReplicaDirectory(0, "r0")
        replica.publish(doc("Svc_a"))
        replica.register_gateway("isl", "soap://backbone/1:9000")
        replica.withdraw("Svc_a")
        assert replica.version_vector() == {"r0": 3}
        ops = replica.deltas_since({})
        assert [op["kind"] for op in ops] == ["publish", "register", "withdraw"]
        assert [op["seq"] for op in ops] == [1, 2, 3]

    def test_deltas_respect_known_vector_and_limit(self):
        replica = ReplicaDirectory(0, "r0")
        for i in range(10):
            replica.publish(doc(f"Svc_{i}"))
        assert len(replica.deltas_since({"r0": 4})) == 6
        page = replica.deltas_since({}, limit=3)
        assert [op["seq"] for op in page] == [1, 2, 3]

    def test_apply_delta_skips_duplicates_and_gaps(self):
        source = ReplicaDirectory(0, "r0")
        for i in range(4):
            source.publish(doc(f"Svc_{i}"))
        sink = ReplicaDirectory(0, "r1")
        ops = source.deltas_since({})
        assert sink.apply_delta(ops[:2]) == 2
        # Replay the same page: all duplicates.
        assert sink.apply_delta(ops[:2]) == 0
        # A gap (op 4 without op 3) is dropped, not applied out of order.
        assert sink.apply_delta([ops[3]]) == 0
        assert sink.version_vector() == {"r0": 2}
        # The contiguous remainder lands.
        assert sink.apply_delta(ops[2:]) == 2
        assert sink.canonical_state_json() == source.canonical_state_json()

    def test_lww_merge_is_order_independent(self):
        # Two replicas take concurrent writes to the same key, then sync
        # in opposite orders: both must end up byte-identical.
        r1 = ReplicaDirectory(0, "r1")
        r2 = ReplicaDirectory(0, "r2")
        r1.publish(doc("Svc_x", version="from-r1"))
        r2.publish(doc("Svc_x", version="from-r2"))
        r2.publish(doc("Svc_y"))

        d1 = r1.deltas_since({})
        d2 = r2.deltas_since({})
        r1.apply_delta(d2)
        r2.apply_delta(d1)
        assert r1.canonical_state_json() == r2.canonical_state_json()
        # (lamport, origin) LWW: equal lamports break on origin, and
        # "r2" > "r1", so r2's version of Svc_x wins everywhere.
        assert r1.find_by_name("Svc_x").context["version"] == "from-r2"

    def test_tombstone_beats_older_publish(self):
        r1 = ReplicaDirectory(0, "r1")
        r2 = ReplicaDirectory(0, "r2")
        r1.publish(doc("Svc_x"))
        r2.apply_delta(r1.deltas_since({}))
        # r1 withdraws; the publish op arrives at a third replica AFTER
        # the withdraw (late, out of origin order is impossible, but late
        # relative to other origins is routine).
        r1.withdraw("Svc_x")
        r3 = ReplicaDirectory(0, "r3")
        r3.apply_delta(r1.deltas_since({}))
        assert "Svc_x" not in r3.service_names()
        assert r3.canonical_state_json() == r1.canonical_state_json()

    def test_unregister_tombstone_wins(self):
        r1 = ReplicaDirectory(0, "r1")
        r2 = ReplicaDirectory(0, "r2")
        r1.register_gateway("isl", "soap://backbone/1:9000")
        r1.unregister_gateway("isl")
        r2.apply_delta(r1.deltas_since({}))
        assert r2.gateways() == {}

    def test_remote_apply_does_not_renotify(self):
        r1 = ReplicaDirectory(0, "r1")
        r2 = ReplicaDirectory(0, "r2")
        seen: list[str] = []
        r2.on_change(lambda service, document: seen.append(service))
        r1.publish(doc("Svc_x"))
        r2.apply_delta(r1.deltas_since({}))
        # Change listeners hang off the primary that took the write; a
        # replica folding replicated ops must not replay notifications.
        assert seen == []

    def test_cold_recover_reincarnates_origin(self):
        replica = ReplicaDirectory(0, "r0")
        journal = DirectoryJournal(MemWalStore(), "r0")
        replica.attach_journal(journal)
        replica.publish(doc("Svc_a"))
        replica.register_gateway("isl", "soap://backbone/1:9000")
        pre_crash_state = replica.canonical_state_json()

        replica.cold_crash()
        assert replica.version_vector() == {}
        replica.cold_recover()
        # Tables rebuilt from the WAL...
        assert replica.canonical_state_json() == pre_crash_state
        # ...and re-recorded under a fresh origin so peers whose version
        # vectors already cover the old stream still pull the rebuilt one.
        assert replica.origin == "r0+1"
        assert replica.version_vector() == {"r0+1": 2}

    def test_reincarnated_ops_lose_to_newer_remote_writes(self):
        r1 = ReplicaDirectory(0, "r1")
        journal = DirectoryJournal(MemWalStore(), "r1")
        r1.attach_journal(journal)
        r1.publish(doc("Svc_x", version="old"))
        r2 = ReplicaDirectory(0, "r2")
        r2.apply_delta(r1.deltas_since({}))
        r2.publish(doc("Svc_x", version="new"))

        r1.cold_crash()
        r1.cold_recover()
        # The reincarnated op carries a low lamport stamp; r2's newer
        # write must win when the streams cross.
        r1.apply_delta(r2.deltas_since(r1.version_vector()))
        r2.apply_delta(r1.deltas_since(r2.version_vector()))
        assert r1.find_by_name("Svc_x").context["version"] == "new"
        assert r1.canonical_state_json() == r2.canonical_state_json()


# ---------------------------------------------------------------------------
# Randomized convergence: any delivery interleaving, same final state
# ---------------------------------------------------------------------------


def test_randomized_pairwise_sync_converges():
    rng = random.Random(1410)
    replicas = [ReplicaDirectory(0, f"r{i}") for i in range(3)]
    for step in range(60):
        actor = rng.choice(replicas)
        kind = rng.random()
        if kind < 0.5:
            actor.publish(doc(f"Svc_{rng.randrange(12)}", stamp=str(step)))
        elif kind < 0.7:
            actor.withdraw(f"Svc_{rng.randrange(12)}")
        elif kind < 0.85:
            actor.register_gateway(f"isl{rng.randrange(5)}", f"loc-{step}")
        else:
            # Random pairwise pull, pages of 7 to exercise the limit.
            puller, source = rng.sample(replicas, 2)
            while True:
                page = source.deltas_since(puller.version_vector(), limit=7)
                if not page or puller.apply_delta(page) == 0:
                    break
    # Drain: keep pulling all pairs until no replica learns anything new.
    progress = True
    while progress:
        progress = False
        for puller in replicas:
            for source in replicas:
                if puller is source:
                    continue
                page = source.deltas_since(puller.version_vector(), limit=7)
                if page and puller.apply_delta(page):
                    progress = True
    states = {replica.canonical_state_json() for replica in replicas}
    assert len(states) == 1


# ---------------------------------------------------------------------------
# ShardLoadModel
# ---------------------------------------------------------------------------


class TestShardLoadModel:
    def test_fifo_queueing(self):
        sim = Simulator()
        load = ShardLoadModel(sim, service_time=2.0)
        assert load.enqueue() == 2.0  # empty queue: one service time
        assert load.enqueue() == 4.0  # behind the first
        assert load.enqueue(1.0) == 5.0  # custom cost
        assert load.operations == 3

    def test_idle_queue_drains(self):
        sim = Simulator()
        load = ShardLoadModel(sim, service_time=1.0)
        load.enqueue()
        sim.schedule(10.0, lambda: None)
        sim.run()
        # Long idle: a new arrival starts fresh, not behind history.
        assert load.enqueue() == 1.0

    def test_inject_consumes_capacity(self):
        sim = Simulator()
        load = ShardLoadModel(sim, service_time=0.5)
        load.inject()
        load.inject()
        # Background work queues ahead of the next real operation.
        assert load.enqueue() == 1.5
