"""Tests for the resilience layer: CallPolicy, circuit breaker, deadlines,
retries, heartbeats, VSR degraded reads, and gateway pause — at unit level
and end-to-end through MetaMiddleware."""

import pytest

from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    DirectoryUnavailableError,
    RemoteServiceError,
    TransportError,
)
from repro.core.framework import MetaMiddleware
from repro.core.interface import simple_interface
from repro.core.resilience import (
    CallPolicy,
    CircuitBreaker,
    ResilientExecutor,
    with_deadline,
)
from repro.net.segment import EthernetSegment
from repro.net.simkernel import SimFuture

from tests.core.toys import Lamp, Thermometer, ToyPcm

LAMP_IFACE = simple_interface(
    "Lamp", {"set_level": ("int", "->int"), "get_level": ("->int",), "fail": ()}
)
THERMO_IFACE = simple_interface("Thermo", {"read": ("->double",)})

#: Aggressive policy so the failure paths run in a few virtual seconds.
CHAOS_POLICY = CallPolicy(
    deadline=2.0,
    max_retries=0,
    breaker_threshold=2,
    breaker_reset_timeout=5.0,
    directory_deadline=2.0,
    seed=7,
)


# ---------------------------------------------------------------------------
# Unit level
# ---------------------------------------------------------------------------


class TestWithDeadline:
    def test_resolves_in_time(self, sim):
        inner = SimFuture()
        guarded = with_deadline(sim, inner, 5.0, lambda: DeadlineExceededError("late"))
        sim.schedule(1.0, inner.set_result, "ok")
        assert sim.run_until_complete(guarded) == "ok"

    def test_times_out(self, sim):
        guarded = with_deadline(
            sim, SimFuture(), 5.0, lambda: DeadlineExceededError("late")
        )
        with pytest.raises(DeadlineExceededError):
            sim.run_until_complete(guarded)
        assert sim.now == 5.0

    def test_late_resolution_ignored(self, sim):
        inner = SimFuture()
        guarded = with_deadline(sim, inner, 1.0, lambda: DeadlineExceededError("late"))
        sim.schedule(2.0, inner.set_result, "too late")
        sim.run()
        with pytest.raises(DeadlineExceededError):
            guarded.result()

    def test_zero_deadline_disables(self, sim):
        inner = SimFuture()
        assert with_deadline(sim, inner, 0.0, lambda: AssertionError) is inner


class TestCircuitBreaker:
    def make(self, sim, threshold=3, reset=10.0, probes=1):
        policy = CallPolicy(
            breaker_threshold=threshold,
            breaker_reset_timeout=reset,
            breaker_half_open_probes=probes,
        )
        return CircuitBreaker(sim, policy, "island")

    def test_opens_at_threshold(self, sim):
        breaker = self.make(sim, threshold=3)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.opens == 1

    def test_success_resets_the_count(self, sim):
        breaker = self.make(sim, threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_open_fails_fast_until_reset_timeout(self, sim):
        breaker = self.make(sim, threshold=1, reset=10.0)
        breaker.record_failure()
        with pytest.raises(CircuitOpenError) as excinfo:
            breaker.admit()
        assert excinfo.value.island == "island"
        assert breaker.fast_failures == 1

    def test_half_open_probe_then_close(self, sim):
        breaker = self.make(sim, threshold=1, reset=10.0)
        breaker.record_failure()
        sim.run(until=10.0)
        breaker.admit()  # the probe
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_failed_probe_reopens(self, sim):
        breaker = self.make(sim, threshold=1, reset=10.0)
        breaker.record_failure()
        sim.run(until=10.0)
        breaker.admit()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.opens == 2

    def test_half_open_limits_concurrent_probes(self, sim):
        breaker = self.make(sim, threshold=1, reset=10.0, probes=1)
        breaker.record_failure()
        sim.run(until=10.0)
        breaker.admit()
        with pytest.raises(CircuitOpenError):
            breaker.admit()

    def test_disabled_breaker_never_opens(self, sim):
        breaker = self.make(sim, threshold=0)
        for _ in range(50):
            breaker.record_failure()
        breaker.admit()
        assert breaker.state == CircuitBreaker.CLOSED


class TestResilientExecutor:
    def test_deadline_bounds_a_hanging_attempt(self, sim):
        executor = ResilientExecutor(sim, CallPolicy(deadline=3.0))
        result = executor.execute("a", SimFuture)  # a future nobody resolves
        with pytest.raises(DeadlineExceededError):
            sim.run_until_complete(result)
        assert sim.now == 3.0
        assert executor.timeouts == 1

    def test_retries_until_success(self, sim):
        executor = ResilientExecutor(
            sim, CallPolicy(deadline=0.0, max_retries=3, backoff_base=0.5)
        )
        calls = []

        def attempt():
            calls.append(sim.now)
            if len(calls) < 3:
                return SimFuture.failed(TransportError("flaky"))
            return SimFuture.completed("finally")

        assert sim.run_until_complete(executor.execute("a", attempt)) == "finally"
        assert len(calls) == 3
        assert executor.retries == 2
        assert executor.successes == 1
        # Exponential backoff: second gap about twice the first.
        gap1, gap2 = calls[1] - calls[0], calls[2] - calls[1]
        assert gap2 > gap1 > 0

    def test_backoff_is_deterministic_across_executors(self, sim):
        policy = CallPolicy(backoff_jitter=0.5, seed=99)
        delays_a = [ResilientExecutor(sim, policy).backoff_delay(i) for i in range(4)]
        delays_b = [ResilientExecutor(sim, policy).backoff_delay(i) for i in range(4)]
        assert delays_a == delays_b

    def test_remote_fault_not_retried_and_resets_breaker(self, sim):
        executor = ResilientExecutor(
            sim, CallPolicy(max_retries=5, breaker_threshold=2)
        )
        breaker = executor.breaker_for("a")
        breaker.record_failure()  # one connectivity strike already

        def attempt():
            return SimFuture.failed(RemoteServiceError("Boom", "app error", "a"))

        with pytest.raises(RemoteServiceError):
            sim.run_until_complete(executor.execute("a", attempt))
        assert executor.retries == 0
        # The island answered, so the strike count was wiped.
        assert breaker._consecutive_failures == 0

    def test_breaker_opens_then_fails_fast(self, sim):
        executor = ResilientExecutor(
            sim, CallPolicy(breaker_threshold=2, breaker_reset_timeout=10.0)
        )

        def attempt():
            return SimFuture.failed(TransportError("down"))

        for _ in range(2):
            with pytest.raises(TransportError):
                sim.run_until_complete(executor.execute("a", attempt))
        with pytest.raises(CircuitOpenError):
            sim.run_until_complete(executor.execute("a", attempt))
        assert executor.stats()["breakers"]["a"]["state"] == "open"
        assert executor.stats()["breakers"]["a"]["fast_failures"] == 1

    def test_breakers_are_per_island(self, sim):
        executor = ResilientExecutor(sim, CallPolicy(breaker_threshold=1))
        with pytest.raises(TransportError):
            sim.run_until_complete(
                executor.execute("a", lambda: SimFuture.failed(TransportError("x")))
            )
        assert sim.run_until_complete(
            executor.execute("b", lambda: SimFuture.completed(1))
        ) == 1
        snap = executor.stats()["breakers"]
        assert snap["a"]["state"] == "open"
        assert snap["b"]["state"] == "closed"


# ---------------------------------------------------------------------------
# End-to-end through MetaMiddleware
# ---------------------------------------------------------------------------


@pytest.fixture
def framework(sim, net):
    backbone = net.create_segment(EthernetSegment, "backbone")
    return MetaMiddleware(net, backbone, policy=CHAOS_POLICY)


def add_toy_island(mm, name, services, **kwargs):
    return mm.add_island(
        name, None, lambda island: ToyPcm(island.gateway, services), **kwargs
    )


@pytest.fixture
def two_islands(sim, framework):
    lamp = Lamp()
    island_a = add_toy_island(framework, "a", {"Lamp": (LAMP_IFACE, lamp)})
    island_b = add_toy_island(framework, "b", {"Thermo": (THERMO_IFACE, Thermometer())})
    sim.run_until_complete(framework.connect())
    return framework, island_a, island_b, lamp


class TestCrashedIslandCalls:
    def test_call_to_crashed_island_times_out_not_hangs(self, sim, two_islands):
        framework, island_a, island_b, lamp = two_islands
        island_a.node.crash()
        t0 = sim.now
        with pytest.raises(DeadlineExceededError):
            sim.run_until_complete(island_b.gateway.invoke("Lamp", "get_level", []))
        # Two attempt sets (original + stale-refresh), one 2 s deadline each.
        assert sim.now - t0 <= 2 * CHAOS_POLICY.deadline + 0.5

    def test_breaker_opens_then_half_open_probe_recovers(self, sim, two_islands):
        framework, island_a, island_b, lamp = two_islands
        island_a.node.crash()
        with pytest.raises(DeadlineExceededError):
            sim.run_until_complete(island_b.gateway.invoke("Lamp", "get_level", []))
        breaker = island_b.gateway.resilience.breaker_for("a")
        assert breaker.state == CircuitBreaker.OPEN
        # While open: fast failure, no network activity.
        t0 = sim.now
        with pytest.raises(CircuitOpenError):
            sim.run_until_complete(island_b.gateway.invoke("Lamp", "get_level", []))
        assert sim.now == t0
        # Restart the node, wait out the reset timeout: the half-open probe
        # succeeds and service resumes.
        island_a.node.restart()
        sim.run_for(CHAOS_POLICY.breaker_reset_timeout)
        value = sim.run_until_complete(island_b.gateway.invoke("Lamp", "get_level", []))
        assert value == 0
        assert breaker.state == CircuitBreaker.CLOSED
        stats = island_b.gateway.resilience_stats()
        assert stats["timeouts"] >= 2
        assert stats["breakers"]["a"]["opens"] >= 1

    def test_identical_runs_produce_identical_counters(self, sim):
        def run_once():
            from repro.net.network import Network
            from repro.net.simkernel import Simulator

            local_sim = Simulator()
            local_net = Network(local_sim)
            backbone = local_net.create_segment(EthernetSegment, "backbone")
            mm = MetaMiddleware(local_net, backbone, policy=CHAOS_POLICY)
            lamp = Lamp()
            island_a = add_toy_island(mm, "a", {"Lamp": (LAMP_IFACE, lamp)})
            island_b = add_toy_island(
                mm, "b", {"Thermo": (THERMO_IFACE, Thermometer())}
            )
            local_sim.run_until_complete(mm.connect())
            island_a.node.crash()
            for _ in range(3):
                future = island_b.gateway.invoke("Lamp", "get_level", [])
                try:
                    local_sim.run_until_complete(future)
                except Exception:
                    pass
            island_a.node.restart()
            local_sim.run_for(CHAOS_POLICY.breaker_reset_timeout)
            local_sim.run_until_complete(
                island_b.gateway.invoke("Lamp", "get_level", [])
            )
            return island_b.gateway.resilience_stats()

        assert run_once() == run_once()


class TestPausedGateway:
    def test_paused_gateway_call_hits_deadline_then_resume_recovers(
        self, sim, two_islands
    ):
        framework, island_a, island_b, lamp = two_islands
        island_a.gateway.pause()
        assert island_a.gateway.paused
        with pytest.raises(DeadlineExceededError):
            sim.run_until_complete(island_b.gateway.invoke("Lamp", "get_level", []))
        island_a.gateway.resume()
        sim.run_for(CHAOS_POLICY.breaker_reset_timeout)
        assert (
            sim.run_until_complete(island_b.gateway.invoke("Lamp", "get_level", []))
            == 0
        )

    def test_parked_calls_execute_on_resume(self, sim, two_islands):
        framework, island_a, island_b, lamp = two_islands
        island_a.gateway.pause()
        future = island_b.gateway.invoke("Lamp", "set_level", [7])
        with pytest.raises(DeadlineExceededError):
            sim.run_until_complete(future)
        assert lamp.level == 0  # parked, never executed
        island_a.gateway.resume()
        sim.run_for(1.0)
        # The parked call (and its stale-refresh twin) ran on resume.
        assert lamp.level == 7


class TestVsrDegradedMode:
    def test_lookups_survive_directory_outage_from_cache(self, sim, two_islands):
        framework, island_a, island_b, lamp = two_islands
        gateway = island_b.gateway
        # Prime the read cache, then lose the directory and outlive the TTL.
        assert sim.run_until_complete(gateway.invoke("Lamp", "get_level", [])) == 0
        framework.directory_node.crash()
        sim.run_for(gateway.vsr.cache_ttl + 1.0)
        assert sim.run_until_complete(gateway.invoke("Lamp", "get_level", [])) == 0
        assert gateway.vsr.degraded_reads >= 1
        assert gateway.vsr.lookup_failures >= 1
        stats = gateway.resilience_stats()
        assert stats["vsr_degraded_reads"] == gateway.vsr.degraded_reads

    def test_uncached_lookup_fails_cleanly_when_directory_down(
        self, sim, two_islands
    ):
        framework, island_a, island_b, lamp = two_islands
        framework.directory_node.crash()
        with pytest.raises(DirectoryUnavailableError):
            sim.run_until_complete(
                island_b.gateway.invoke("NeverSeen", "noop", [])
            )

    def test_directory_restart_ends_degraded_mode(self, sim, two_islands):
        framework, island_a, island_b, lamp = two_islands
        gateway = island_b.gateway
        assert sim.run_until_complete(gateway.invoke("Lamp", "get_level", [])) == 0
        framework.directory_node.crash()
        sim.run_for(gateway.vsr.cache_ttl + 1.0)
        sim.run_until_complete(gateway.invoke("Lamp", "get_level", []))
        degraded_before = gateway.vsr.degraded_reads
        framework.directory_node.restart()
        sim.run_for(1.0)
        assert sim.run_until_complete(gateway.invoke("Lamp", "get_level", [])) == 0
        assert gateway.vsr.degraded_reads == degraded_before


class TestHeartbeat:
    def test_health_tracks_crash_and_restart(self, sim, net):
        backbone = net.create_segment(EthernetSegment, "backbone")
        policy = CallPolicy(
            heartbeat_interval=1.0,
            heartbeat_deadline=0.5,
            heartbeat_failure_threshold=2,
        )
        mm = MetaMiddleware(net, backbone, policy=policy)
        island_a = add_toy_island(mm, "a", {"Lamp": (LAMP_IFACE, Lamp())})
        island_b = add_toy_island(
            mm, "b", {"Thermo": (THERMO_IFACE, Thermometer())}
        )
        sim.run_until_complete(mm.connect())
        sim.run_for(3.0)
        health = island_b.gateway.heartbeat.snapshot()
        assert health["a"]["alive"] is True
        island_a.node.crash()
        sim.run_for(4.0)
        health = island_b.gateway.heartbeat.snapshot()
        assert health["a"]["alive"] is False
        assert health["a"]["failures"] >= 2
        island_a.node.restart()
        sim.run_for(3.0)
        assert island_b.gateway.heartbeat.snapshot()["a"]["alive"] is True

    def test_heartbeat_disabled_by_default(self, sim, net):
        backbone = net.create_segment(EthernetSegment, "backbone")
        mm = MetaMiddleware(net, backbone)
        island_a = add_toy_island(mm, "a", {"Lamp": (LAMP_IFACE, Lamp())})
        sim.run_until_complete(mm.connect())
        sim.run_for(10.0)
        assert island_a.gateway.heartbeat.ticks == 0


# ---------------------------------------------------------------------------
# Pooled keep-alive connections under injected faults
# ---------------------------------------------------------------------------


class TestPooledConnectionsUnderFaults:
    """The fast interchange must not let a pooled keep-alive connection
    outlive the path it runs over: partitions and crashes give no close
    event (frames just vanish), so eviction has to come from the
    resilience layer's connectivity failures."""

    @pytest.fixture
    def fast_islands(self, sim, net):
        from repro.soap.http import FAST_INTERCHANGE

        backbone = net.create_segment(EthernetSegment, "backbone")
        mm = MetaMiddleware(
            net, backbone, policy=CHAOS_POLICY, interchange=FAST_INTERCHANGE
        )
        lamp = Lamp()
        island_a = add_toy_island(mm, "a", {"Lamp": (LAMP_IFACE, lamp)})
        island_b = add_toy_island(mm, "b", {"Thermo": (THERMO_IFACE, Thermometer())})
        sim.run_until_complete(mm.connect())
        return mm, island_a, island_b, lamp

    def test_partition_mid_keepalive_evicts_and_retry_succeeds(
        self, sim, net, fast_islands
    ):
        from repro.faults import FaultInjector, FaultPlan, Partition

        mm, island_a, island_b, lamp = fast_islands
        http = island_b.gateway.protocol.client.http
        # Warm the pool: one bridged call pools a keep-alive connection.
        assert sim.run_until_complete(
            island_b.gateway.invoke("Lamp", "set_level", [5])
        ) == 5
        assert http.pooled_destinations >= 1
        pooled_before = http.pooled_exchanges

        # Partition a's gateway off the backbone mid-keep-alive.  The b
        # side keeps its ESTABLISHED pooled connection — frames are
        # silently dropped, no FIN/RST ever arrives.
        plan = FaultPlan(seed=3).at(
            sim.now,
            Partition(
                segment="backbone",
                groups=(
                    frozenset({"gw-a"}),
                    frozenset({"gw-b", "uddi-directory"}),
                ),
                duration=6.0,
            ),
        )
        FaultInjector(net, plan).arm()
        sim.run_for(0.1)  # let the partition install

        with pytest.raises(DeadlineExceededError):
            sim.run_until_complete(island_b.gateway.invoke("Lamp", "get_level", []))
        # The connectivity failure condemned the pooled connection.
        assert http.pooled_evictions >= 1
        assert http.pooled_destinations == 0

        # Heal, wait out the breaker reset, retry: a *fresh* pooled
        # connection must carry the call end to end.
        sim.run_for(6.0 + CHAOS_POLICY.breaker_reset_timeout)
        assert sim.run_until_complete(
            island_b.gateway.invoke("Lamp", "get_level", [])
        ) == 5
        assert http.pooled_exchanges > pooled_before
        assert http.pooled_destinations >= 1

    def test_crash_mid_keepalive_evicts_and_restart_recovers(self, sim, fast_islands):
        mm, island_a, island_b, lamp = fast_islands
        http = island_b.gateway.protocol.client.http
        assert sim.run_until_complete(
            island_b.gateway.invoke("Lamp", "set_level", [7])
        ) == 7
        assert http.pooled_destinations >= 1

        island_a.node.crash()
        with pytest.raises(DeadlineExceededError):
            sim.run_until_complete(island_b.gateway.invoke("Lamp", "get_level", []))
        assert http.pooled_evictions >= 1
        assert http.pooled_destinations == 0

        island_a.node.restart()
        sim.run_for(CHAOS_POLICY.breaker_reset_timeout)
        assert sim.run_until_complete(
            island_b.gateway.invoke("Lamp", "get_level", [])
        ) == 7

    def test_breaker_open_evicts_pooled_connection(self, sim, fast_islands):
        """The breaker-open hook itself (not just per-call failures) must
        clear the pool, so half-open probes start from a clean slate."""
        mm, island_a, island_b, lamp = fast_islands
        sim.run_until_complete(island_b.gateway.invoke("Lamp", "set_level", [1]))
        island_a.node.crash()
        # CHAOS_POLICY.breaker_threshold == 2: one invoke (original +
        # stale-refresh retry = 2 connectivity failures) opens the breaker.
        with pytest.raises(DeadlineExceededError):
            sim.run_until_complete(island_b.gateway.invoke("Lamp", "get_level", []))
        breaker = island_b.gateway.resilience.breaker_for("a")
        assert breaker.state == CircuitBreaker.OPEN
        assert island_b.gateway.protocol.client.http.pooled_destinations == 0
