"""Direct test for the VSG stale-cache retry path.

When a service moves between islands, callers holding a cached WSDL document
still dial the old gateway.  That gateway answers (so this is *not* a
connectivity failure) with a not-found fault; the caller must invalidate the
cache, re-resolve through the VSR, and retry exactly once.
"""

from repro.core.framework import MetaMiddleware
from repro.core.interface import simple_interface
from repro.net.segment import EthernetSegment

from tests.core.toys import Lamp, ToyPcm

import pytest

LAMP_IFACE = simple_interface(
    "Lamp", {"set_level": ("int", "->int"), "get_level": ("->int",), "fail": ()}
)


@pytest.fixture
def home(sim, net):
    backbone = net.create_segment(EthernetSegment, "backbone")
    mm = MetaMiddleware(net, backbone)
    lamp = Lamp()
    island_a = mm.add_island(
        "a", None, lambda island: ToyPcm(island.gateway, {"Lamp": (LAMP_IFACE, lamp)})
    )
    island_b = mm.add_island("b", None, lambda island: ToyPcm(island.gateway, {}))
    island_c = mm.add_island("c", None, lambda island: ToyPcm(island.gateway, {}))
    sim.run_until_complete(mm.connect())
    return mm, island_a, island_b, island_c, lamp


def move_lamp(sim, source, destination, lamp):
    """Relocate the Lamp export the way a migrating device would: the old
    island stops serving it, the new island publishes it (overwriting the
    VSR registry entry with its own location)."""
    del source.gateway._local["Lamp"]
    sim.run_until_complete(
        destination.gateway.export_service(
            "Lamp", LAMP_IFACE, lambda op, args: getattr(lamp, op)(*args)
        )
    )


class TestStaleCacheRetry:
    def test_moved_service_refreshes_and_retries_exactly_once(self, sim, home):
        mm, island_a, island_b, island_c, lamp = home
        caller = island_c.gateway
        # Prime c's cache with the Lamp living on island a.
        assert sim.run_until_complete(caller.invoke("Lamp", "set_level", [3])) == 3
        lookups_before = caller.vsr.remote_lookups
        assert caller.stale_refreshes == 0

        move_lamp(sim, island_a, island_b, lamp)

        # The cached location now points at island a, which answers
        # not-found; one invalidate + re-resolve reaches island b.
        assert sim.run_until_complete(caller.invoke("Lamp", "set_level", [8])) == 8
        assert lamp.level == 8
        assert caller.stale_refreshes == 1
        assert caller.vsr.remote_lookups == lookups_before + 1

    def test_refreshed_location_is_cached_for_later_calls(self, sim, home):
        mm, island_a, island_b, island_c, lamp = home
        caller = island_c.gateway
        sim.run_until_complete(caller.invoke("Lamp", "get_level", []))
        move_lamp(sim, island_a, island_b, lamp)
        sim.run_until_complete(caller.invoke("Lamp", "get_level", []))
        lookups_after_refresh = caller.vsr.remote_lookups
        # Follow-up calls use the refreshed cache entry: no new lookup,
        # no new refresh.
        assert sim.run_until_complete(caller.invoke("Lamp", "set_level", [5])) == 5
        assert caller.vsr.remote_lookups == lookups_after_refresh
        assert caller.stale_refreshes == 1

    def test_healthy_calls_never_trigger_a_refresh(self, sim, home):
        mm, island_a, island_b, island_c, lamp = home
        caller = island_c.gateway
        for level in (1, 2, 3):
            assert (
                sim.run_until_complete(caller.invoke("Lamp", "set_level", [level]))
                == level
            )
        assert caller.stale_refreshes == 0
