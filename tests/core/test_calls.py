"""Tests for the neutral call/fault records."""

import pytest

from repro.errors import RemoteServiceError
from repro.core.calls import ServiceCall, ServiceFault, ServiceResult


class TestServiceCall:
    def test_wire_roundtrip(self):
        call = ServiceCall("Lamp", "dim", [50], source_island="jini", call_id=7)
        restored = ServiceCall.from_wire(call.to_wire())
        assert restored == call

    def test_from_partial_wire_uses_defaults(self):
        call = ServiceCall.from_wire({"service": "S", "operation": "op"})
        assert call.args == []
        assert call.source_island == ""
        assert call.call_id == 0

    def test_wire_form_is_marshallable_everywhere(self):
        from repro.havi.codec import decode as havi_decode, encode as havi_encode
        from repro.jini.marshalling import marshal, unmarshal
        from repro.soap.envelope import build_request, parse_envelope

        call = ServiceCall("S", "op", [1, "x", {"k": True}], "jini", 3)
        wire = call.to_wire()
        assert unmarshal(marshal(wire)) == wire
        assert havi_decode(havi_encode(wire)) == wire
        assert parse_envelope(build_request("invoke", [wire])).args[0] == wire


class TestServiceFault:
    def test_exception_roundtrip(self):
        fault = ServiceFault("HaviError", "zoom out of range", "havi")
        exc = fault.to_exception()
        assert isinstance(exc, RemoteServiceError)
        assert exc.code == "HaviError"
        assert "zoom out of range" in str(exc)
        assert "havi" in str(exc)
        back = ServiceFault.from_exception(exc)
        assert back == fault

    def test_from_arbitrary_exception(self):
        fault = ServiceFault.from_exception(ValueError("nope"), island="x10")
        assert fault.code == "ValueError"
        assert fault.message == "nope"
        assert fault.island == "x10"

    def test_result_holds_value(self):
        assert ServiceResult(42).value == 42
        assert ServiceResult().value is None
