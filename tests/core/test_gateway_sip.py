"""Tests for the SIP gateway binding — the pluggable-protocol claim."""

import pytest

from repro.errors import RemoteServiceError
from repro.core.framework import MetaMiddleware
from repro.core.gateway_sip import SipGatewayProtocol
from repro.core.interface import simple_interface
from repro.net.segment import EthernetSegment

from tests.core.toys import Lamp, Thermometer, ToyPcm

LAMP_IFACE = simple_interface(
    "Lamp", {"set_level": ("int", "->int"), "get_level": ("->int",), "fail": ()}
)
THERMO_IFACE = simple_interface("Thermo", {"read": ("->double",)})


@pytest.fixture
def sip_framework(sim, net):
    backbone = net.create_segment(EthernetSegment, "backbone")
    mm = MetaMiddleware(net, backbone)
    lamp = Lamp()

    def protocol_factory(stack):
        return SipGatewayProtocol(stack)

    island_a = mm.add_island(
        "a", None, lambda i: ToyPcm(i.gateway, {"Lamp": (LAMP_IFACE, lamp)}),
        protocol_factory=protocol_factory,
    )
    island_b = mm.add_island(
        "b", None, lambda i: ToyPcm(i.gateway, {"Thermo": (THERMO_IFACE, Thermometer())}),
        protocol_factory=protocol_factory,
    )
    sim.run_until_complete(mm.connect())
    return mm, island_a, island_b, lamp


class TestSipBinding:
    def test_cross_island_call(self, sim, sip_framework):
        mm, island_a, island_b, lamp = sip_framework
        assert sim.run_until_complete(island_b.gateway.invoke("Lamp", "set_level", [4])) == 4
        assert lamp.level == 4

    def test_locations_are_sip_uris(self, sim, sip_framework):
        mm, island_a, island_b, lamp = sip_framework
        catalog = sim.run_until_complete(mm.catalog())
        for document in catalog:
            assert document.location.startswith("sip:")
            assert document.context["protocol"] == "sip"

    def test_faults_cross_the_sip_gateway(self, sim, sip_framework):
        mm, island_a, island_b, lamp = sip_framework
        with pytest.raises(RemoteServiceError, match="lamp hardware fault"):
            sim.run_until_complete(island_b.gateway.invoke("Lamp", "fail", []))

    def test_events_pushed_not_polled(self, sim, sip_framework):
        mm, island_a, island_b, lamp = sip_framework
        arrivals = []
        sim.run_until_complete(
            island_b.gateway.subscribe("alerts", lambda t, p, src: arrivals.append(sim.now))
        )
        t0 = sim.now
        island_a.gateway.publish_event("alerts", {"x": 1})
        sim.run_for(5.0)
        assert len(arrivals) == 1
        # Push latency is network RTT (ms), far below any plausible poll.
        assert arrivals[0] - t0 < 0.01
        assert island_b.gateway.events.polls_performed == 0

    def test_push_beats_polling_side_by_side(self, sim, net):
        """A2's headline shape on one network: same workload, SOAP-polling
        vs SIP-push, an order of magnitude apart on event latency."""
        backbone = net.create_segment(EthernetSegment, "bb2")
        mm = MetaMiddleware(net, backbone)
        soap_a = mm.add_island("sa", None, lambda i: ToyPcm(i.gateway, {}), poll_interval=2.0)
        soap_b = mm.add_island("sb", None, lambda i: ToyPcm(i.gateway, {}), poll_interval=2.0)
        sip_a = mm.add_island(
            "pa", None, lambda i: ToyPcm(i.gateway, {}),
            protocol_factory=lambda s: SipGatewayProtocol(s),
        )
        sip_b = mm.add_island(
            "pb", None, lambda i: ToyPcm(i.gateway, {}),
            protocol_factory=lambda s: SipGatewayProtocol(s),
        )
        sim.run_until_complete(mm.connect())

        soap_latency = {}
        sip_latency = {}
        sim.run_until_complete(
            soap_b.gateway.subscribe("t1", lambda t, p, src: soap_latency.update(done=sim.now))
        )
        sim.run_until_complete(
            sip_b.gateway.subscribe("t2", lambda t, p, src: sip_latency.update(done=sim.now))
        )
        t0 = sim.now
        soap_a.gateway.publish_event("t1", 1)
        sip_a.gateway.publish_event("t2", 1)
        sim.run_for(10.0)
        assert (soap_latency["done"] - t0) > 10 * (sip_latency["done"] - t0)
