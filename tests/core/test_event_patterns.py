"""Topic-pattern (prefix wildcard) subscriptions on the EventRouter —
and the regression guard that exact-match behavior is unchanged."""

import pytest

from repro.core.framework import MetaMiddleware
from repro.core.vsg import FullEventCallback, topic_matches
from repro.net.segment import EthernetSegment

from tests.core.toys import ToyPcm


class TestTopicMatches:
    def test_exact(self):
        assert topic_matches("x10.ON", "x10.ON")
        assert not topic_matches("x10.ON", "x10.OFF")

    def test_prefix_wildcard(self):
        assert topic_matches("x10.*", "x10.ON")
        assert topic_matches("x10.*", "x10.DIM")
        assert topic_matches("*", "anything")
        assert not topic_matches("x10.*", "havi.stream")

    def test_star_must_be_terminal(self):
        # Only a trailing * is a wildcard; an embedded one is literal.
        assert not topic_matches("x10.*.extra", "x10.ON.extra")


@pytest.fixture
def gateway_pair(sim, net):
    backbone = net.create_segment(EthernetSegment, "backbone")
    mm = MetaMiddleware(net, backbone)
    island_a = mm.add_island("a", None, lambda i: ToyPcm(i.gateway, {}))
    island_b = mm.add_island("b", None, lambda i: ToyPcm(i.gateway, {}))
    sim.run_until_complete(mm.connect())
    return sim, island_a.gateway, island_b.gateway


class TestLocalPatternDelivery:
    def test_pattern_callback_sees_matching_topics(self, gateway_pair):
        sim, gw_a, gw_b = gateway_pair
        heard = []
        sim.run_until_complete(
            gw_a.subscribe("x10.*", lambda t, p, i: heard.append(t))
        )
        gw_a.publish_event("x10.ON", {})
        gw_a.publish_event("x10.OFF", {})
        gw_a.publish_event("havi.stream", {})
        sim.run_for(1.0)
        assert heard == ["x10.ON", "x10.OFF"]

    def test_exact_and_pattern_subscribers_both_fire(self, gateway_pair):
        sim, gw_a, gw_b = gateway_pair
        heard = []
        sim.run_until_complete(gw_a.subscribe("x10.ON", lambda t, p, i: heard.append("exact")))
        sim.run_until_complete(gw_a.subscribe("x10.*", lambda t, p, i: heard.append("pattern")))
        gw_a.publish_event("x10.ON", {})
        sim.run_for(1.0)
        assert sorted(heard) == ["exact", "pattern"]

    def test_full_event_callback_gets_whole_event(self, gateway_pair):
        sim, gw_a, gw_b = gateway_pair
        events = []
        gw_a.events._register_local("x10.*", FullEventCallback(events.append))
        gw_a.publish_event("x10.ON", {"address": "A9"})
        assert events and events[0]["sequence"] == 1
        assert events[0]["island"] == "a"
        assert events[0]["payload"] == {"address": "A9"}


class TestRemotePatternDelivery:
    def test_cross_island_pattern_subscription(self, gateway_pair):
        sim, gw_a, gw_b = gateway_pair
        heard = []
        sim.run_until_complete(gw_b.subscribe("x10.*", lambda t, p, i: heard.append((t, i))))
        gw_a.publish_event("x10.ON", {})
        gw_a.publish_event("havi.stream", {})
        sim.run_for(10.0)  # let a poll cycle (or push) deliver
        assert ("x10.ON", "a") in heard
        assert all(topic != "havi.stream" for topic, _ in heard)

    def test_remote_exact_fast_path_unchanged(self, gateway_pair):
        """Regression: with only exact subscriptions, remote queueing is
        exactly the historical membership test — patterns never scanned."""
        sim, gw_a, gw_b = gateway_pair
        router = gw_a.events
        router.handle_subscribe("b", "t1", "")
        router.publish("t1", 1)
        router.publish("t2", 2)
        assert [e["topic"] for e in router.handle_fetch("b")] == ["t1"]

    def test_remote_pattern_matches_on_publisher_side(self, gateway_pair):
        sim, gw_a, gw_b = gateway_pair
        router = gw_a.events
        router.handle_subscribe("b", "x10.*", "")
        router.publish("x10.ON", 1)
        router.publish("havi.s", 2)
        assert [e["topic"] for e in router.handle_fetch("b")] == ["x10.ON"]
