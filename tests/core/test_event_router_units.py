"""Direct unit tests for EventRouter bookkeeping and gateway control ops,
plus the Jini remote-event wire forms that carry lookup transitions."""

import pytest

from repro.core.framework import MetaMiddleware
from repro.jini.events import EventRegistration, RemoteEvent
from repro.jini.lease import Lease
from repro.net.segment import EthernetSegment

from tests.core.toys import ToyPcm


class TestJiniEventWireForms:
    def test_remote_event_roundtrip(self):
        event = RemoteEvent("lookup", 3, 17, {"transition": 1})
        restored = RemoteEvent.from_wire(event.to_wire())
        assert (restored.source, restored.event_id, restored.sequence) == ("lookup", 3, 17)
        assert restored.payload == {"transition": 1}

    def test_remote_event_defaults_on_partial_wire(self):
        event = RemoteEvent.from_wire({})
        assert event.source == "" and event.event_id == 0 and event.payload is None

    def test_event_registration_roundtrip(self):
        registration = EventRegistration(5, Lease(9, 120.0))
        restored = EventRegistration.from_wire(registration.to_wire())
        assert restored.event_id == 5
        assert restored.lease.lease_id == 9
        assert restored.lease.expiration == 120.0


@pytest.fixture
def gateway_pair(sim, net):
    backbone = net.create_segment(EthernetSegment, "backbone")
    mm = MetaMiddleware(net, backbone)
    island_a = mm.add_island("a", None, lambda i: ToyPcm(i.gateway, {}))
    island_b = mm.add_island("b", None, lambda i: ToyPcm(i.gateway, {}))
    sim.run_until_complete(mm.connect())
    return sim, island_a.gateway, island_b.gateway


class TestEventRouterUnits:
    def test_handle_subscribe_records_topics_per_island(self, gateway_pair):
        sim, gw_a, gw_b = gateway_pair
        router = gw_a.events
        assert router.handle_subscribe("b", "t1", "soap://backbone/3:8080/soap/_gateway")
        router.handle_subscribe("b", "t2", "")
        router.publish("t1", 1)
        router.publish("t2", 2)
        router.publish("t3", 3)  # nobody subscribed
        queued = router.handle_fetch("b")
        assert [e["topic"] for e in queued] == ["t1", "t2"]

    def test_fetch_drains_the_queue(self, gateway_pair):
        sim, gw_a, gw_b = gateway_pair
        router = gw_a.events
        router.handle_subscribe("b", "t", "")
        router.publish("t", "x")
        assert len(router.handle_fetch("b")) == 1
        assert router.handle_fetch("b") == []

    def test_handle_push_delivers_locally(self, gateway_pair):
        sim, gw_a, gw_b = gateway_pair
        received = []
        gw_a.events._local_subs.setdefault("t", []).append(
            lambda topic, payload, island: received.append((payload, island))
        )
        gw_a.events.handle_push(
            {"topic": "t", "payload": 5, "island": "elsewhere", "published_at": 0.0}
        )
        assert received == [(5, "elsewhere")]

    def test_sequence_numbers_monotonic(self, gateway_pair):
        sim, gw_a, gw_b = gateway_pair
        router = gw_a.events
        router.handle_subscribe("b", "t", "")
        for value in range(5):
            router.publish("t", value)
        sequences = [e["sequence"] for e in router.handle_fetch("b")]
        assert sequences == sorted(sequences)
        assert len(set(sequences)) == 5

    def test_delivery_log_cap(self, gateway_pair):
        sim, gw_a, gw_b = gateway_pair
        router = gw_a.events
        router.delivery_log_limit = 3
        router._local_subs.setdefault("t", []).append(lambda *a: None)
        for value in range(10):
            router.publish("t", value)
        assert len(router.delivery_log) == 3

    def test_delivery_log_dropped_counts_entries_past_the_cap(self, gateway_pair):
        sim, gw_a, gw_b = gateway_pair
        router = gw_a.events
        router.delivery_log_limit = 3
        router._local_subs.setdefault("t", []).append(lambda *a: None)
        for value in range(10):
            router.publish("t", value)
        assert router.delivery_log_dropped == 7
        # Entries below the cap are never counted as dropped.
        assert router.delivery_log_dropped + len(router.delivery_log) == 10


class TestPollPruneOnUnregister:
    """A gateway that leaves the VSR must stop costing poll round trips."""

    def _subscribed(self, gateway_pair):
        sim, gw_a, gw_b = gateway_pair
        sim.run_until_complete(gw_b.subscribe("t", lambda *a: None))
        router = gw_b.events
        assert len(router._poll_timers) == 1
        return sim, gw_a, gw_b, router

    def test_vsr_unregister_chain(self, gateway_pair):
        sim, gw_a, gw_b = gateway_pair
        assert sim.run_until_complete(gw_a.unregister_with_directory()) is True
        islands = sim.run_until_complete(gw_b.vsr.list_gateways())
        assert "a" not in islands
        # A second unregister is a no-op, not an error.
        assert sim.run_until_complete(gw_a.unregister_with_directory()) is False

    def test_poll_loop_pruned_after_island_leaves_vsr(self, gateway_pair):
        sim, gw_a, gw_b, router = self._subscribed(gateway_pair)
        location = next(iter(router._poll_timers))
        sim.run_until_complete(gw_a.unregister_with_directory())
        gw_a.protocol.stop()  # island goes dark: polls start failing
        sim.run_for(30.0)
        # Two consecutive failures trigger the registry check, the check
        # finds the island gone, and the loop (plus its state) is pruned.
        assert router._poll_timers == {}
        assert location not in router._remote_islands
        assert location not in router._poll_failures

    def test_registered_island_keeps_its_poll_loop_through_failures(
        self, gateway_pair
    ):
        sim, gw_a, gw_b, router = self._subscribed(gateway_pair)
        gw_a.protocol.stop()  # down, but still in the directory
        sim.run_for(30.0)
        # The registry still lists "a" (an outage, not a departure), so
        # polling continues for when the island comes back.
        assert len(router._poll_timers) == 1


class TestGatewayControlOps:
    def test_ping_identifies_the_island(self, gateway_pair):
        sim, gw_a, gw_b = gateway_pair
        from repro.soap.wsdl import parse_location

        address, port, service = parse_location(gw_a.protocol.control_location())
        answer = sim.run_until_complete(
            gw_b.protocol.client.call(address, service, "ping", [], port=port)
        )
        assert answer == "a"

    def test_unknown_control_operation_faults(self, gateway_pair):
        sim, gw_a, gw_b = gateway_pair
        from repro.errors import SoapFault
        from repro.soap.wsdl import parse_location

        address, port, service = parse_location(gw_a.protocol.control_location())
        with pytest.raises(SoapFault):
            sim.run_until_complete(
                gw_b.protocol.client.call(address, service, "reboot", [], port=port)
            )
