"""Tests for the Virtual Service Repository."""

import pytest

from repro.errors import RepositoryError, ServiceNotFoundError, SoapFault
from repro.core.interface import simple_interface
from repro.core.vsr import UddiSoapService, VsrClient, VsrDirectory
from repro.soap.server import SoapServer
from repro.soap.wsdl import WsdlDocument


def document(name="Svc", island="jini", **context):
    interface = simple_interface(name, {"ping": ("->string",)})
    full_context = {"island": island}
    full_context.update(context)
    return interface.to_wsdl(f"soap://backbone/1:8080/soap/{name}", full_context)


class TestDirectory:
    def test_publish_and_find(self):
        directory = VsrDirectory()
        directory.publish(document("A"))
        assert directory.find_by_name("A").service == "A"
        assert directory.service_count == 1

    def test_republish_replaces(self):
        directory = VsrDirectory()
        directory.publish(document("A", island="jini"))
        directory.publish(document("A", island="havi"))
        assert directory.service_count == 1
        assert directory.find_by_name("A").context["island"] == "havi"

    def test_withdraw(self):
        directory = VsrDirectory()
        directory.publish(document("A"))
        assert directory.withdraw("A") is True
        assert directory.withdraw("A") is False
        with pytest.raises(ServiceNotFoundError):
            directory.find_by_name("A")

    def test_context_filtering(self):
        directory = VsrDirectory()
        directory.publish(document("A", island="jini", room="kitchen"))
        directory.publish(document("B", island="havi", room="kitchen"))
        directory.publish(document("C", island="jini"))
        assert {d.service for d in directory.find({"island": "jini"})} == {"A", "C"}
        assert {d.service for d in directory.find({"room": "kitchen"})} == {"A", "B"}
        assert [d.service for d in directory.find({})] == ["A", "B", "C"]

    def test_unnamed_document_rejected(self):
        directory = VsrDirectory()
        with pytest.raises(RepositoryError):
            directory.publish(WsdlDocument(service="", location="soap://x/1:1/soap/x"))

    def test_change_listeners(self):
        directory = VsrDirectory()
        changes = []
        directory.on_change(lambda name, doc: changes.append((name, doc is not None)))
        directory.publish(document("A"))
        directory.withdraw("A")
        assert changes == [("A", True), ("A", False)]

    def test_gateway_registry(self):
        directory = VsrDirectory()
        directory.register_gateway("jini", "soap://b/1:8080/soap/_gateway")
        directory.register_gateway("havi", "soap://b/2:8080/soap/_gateway")
        assert set(directory.gateways()) == {"jini", "havi"}


@pytest.fixture
def uddi_setup(sim, two_hosts):
    server_stack, client_stack = two_hosts
    soap_server = SoapServer(server_stack)
    uddi = UddiSoapService(soap_server)
    client = VsrClient(client_stack, server_stack.local_address(), cache_ttl=30.0)
    return sim, uddi, client


class TestSoapFacade:
    def test_publish_find_roundtrip_over_the_wire(self, uddi_setup):
        sim, uddi, client = uddi_setup
        original = document("Laserdisc")
        sim.run_until_complete(client.publish(original))
        fetched = sim.run_until_complete(client.find_by_name("Laserdisc"))
        assert fetched == original

    def test_find_unknown_faults(self, uddi_setup):
        sim, uddi, client = uddi_setup
        with pytest.raises(SoapFault):
            sim.run_until_complete(client.find_by_name("Ghost"))

    def test_context_query_over_the_wire(self, uddi_setup):
        sim, uddi, client = uddi_setup
        sim.run_until_complete(client.publish(document("A", island="jini")))
        sim.run_until_complete(client.publish(document("B", island="x10")))
        docs = sim.run_until_complete(client.find({"island": "x10"}))
        assert [d.service for d in docs] == ["B"]

    def test_gateway_registration_over_the_wire(self, uddi_setup):
        sim, uddi, client = uddi_setup
        sim.run_until_complete(client.register_gateway("jini", "soap://b/9:8080/soap/_gateway"))
        gateways = sim.run_until_complete(client.list_gateways())
        assert gateways == {"jini": "soap://b/9:8080/soap/_gateway"}

    def test_client_cache_avoids_repeat_lookups(self, uddi_setup):
        sim, uddi, client = uddi_setup
        sim.run_until_complete(client.publish(document("A")))
        sim.run_until_complete(client.find_by_name("A"))
        assert client.remote_lookups == 1
        sim.run_until_complete(client.find_by_name("A"))
        assert client.remote_lookups == 1
        assert client.cache_hits == 1

    def test_cache_expires_after_ttl(self, uddi_setup):
        sim, uddi, client = uddi_setup
        sim.run_until_complete(client.publish(document("A")))
        sim.run_until_complete(client.find_by_name("A"))
        sim.run_for(31.0)
        sim.run_until_complete(client.find_by_name("A"))
        assert client.remote_lookups == 2

    def test_own_publish_invalidates_cache(self, uddi_setup):
        sim, uddi, client = uddi_setup
        sim.run_until_complete(client.publish(document("A", island="jini")))
        sim.run_until_complete(client.find_by_name("A"))
        sim.run_until_complete(client.publish(document("A", island="havi")))
        fetched = sim.run_until_complete(client.find_by_name("A"))
        assert fetched.context["island"] == "havi"

    def test_explicit_invalidate(self, uddi_setup):
        sim, uddi, client = uddi_setup
        sim.run_until_complete(client.publish(document("A")))
        sim.run_until_complete(client.find_by_name("A"))
        client.invalidate("A")
        sim.run_until_complete(client.find_by_name("A"))
        assert client.remote_lookups == 2
