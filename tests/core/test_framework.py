"""Tests for the VSG, the SOAP gateway binding, and MetaMiddleware."""

import pytest

from repro.errors import (
    ConversionError,
    FrameworkError,
    GatewayError,
    RemoteServiceError,
    ServiceNotFoundError,
)
from repro.core.framework import MetaMiddleware
from repro.core.interface import simple_interface
from repro.net.segment import EthernetSegment

from tests.core.toys import Lamp, Thermometer, ToyPcm

LAMP_IFACE = simple_interface(
    "Lamp", {"set_level": ("int", "->int"), "get_level": ("->int",), "fail": ()}
)
THERMO_IFACE = simple_interface("Thermo", {"read": ("->double",)})


@pytest.fixture
def framework(sim, net):
    backbone = net.create_segment(EthernetSegment, "backbone")
    return MetaMiddleware(net, backbone)


def add_toy_island(mm, name, services):
    return mm.add_island(name, None, lambda island: ToyPcm(island.gateway, services))


@pytest.fixture
def two_islands(sim, framework):
    lamp = Lamp()
    island_a = add_toy_island(framework, "a", {"Lamp": (LAMP_IFACE, lamp)})
    island_b = add_toy_island(framework, "b", {"Thermo": (THERMO_IFACE, Thermometer())})
    sim.run_until_complete(framework.connect())
    return framework, island_a, island_b, lamp


class TestIntegration:
    def test_catalog_lists_both_islands(self, sim, two_islands):
        framework, island_a, island_b, lamp = two_islands
        catalog = sim.run_until_complete(framework.catalog())
        assert {(d.service, d.context["island"]) for d in catalog} == {
            ("Lamp", "a"),
            ("Thermo", "b"),
        }

    def test_cross_island_call_round_trip(self, sim, two_islands):
        framework, island_a, island_b, lamp = two_islands
        value = sim.run_until_complete(island_b.gateway.invoke("Lamp", "set_level", [9]))
        assert value == 9
        assert lamp.level == 9

    def test_imported_facade_is_typed_proxy(self, sim, two_islands):
        framework, island_a, island_b, lamp = two_islands
        facade = island_b.pcm.facades["Lamp"]
        assert sim.run_until_complete(facade.get_level()) == 0
        with pytest.raises(ConversionError):
            facade.set_level("high")

    def test_local_calls_short_circuit(self, sim, two_islands):
        framework, island_a, island_b, lamp = two_islands
        before = island_a.gateway.calls_out
        sim.run_until_complete(island_a.gateway.invoke("Lamp", "get_level", []))
        assert island_a.gateway.calls_out == before  # never left the island
        assert island_a.gateway.calls_local >= 1

    def test_remote_fault_carries_original_error(self, sim, two_islands):
        framework, island_a, island_b, lamp = two_islands
        with pytest.raises(RemoteServiceError, match="lamp hardware fault"):
            sim.run_until_complete(island_b.gateway.invoke("Lamp", "fail", []))

    def test_unknown_service_fails_cleanly(self, sim, two_islands):
        framework, island_a, island_b, lamp = two_islands
        with pytest.raises(Exception):
            sim.run_until_complete(island_b.gateway.invoke("Toaster", "pop", []))

    def test_wrong_arity_rejected_at_gateway(self, sim, two_islands):
        framework, island_a, island_b, lamp = two_islands
        with pytest.raises(RemoteServiceError):
            sim.run_until_complete(island_b.gateway.invoke("Lamp", "set_level", []))

    def test_own_island_import_refused(self, sim, two_islands):
        framework, island_a, island_b, lamp = two_islands
        document = LAMP_IFACE.to_wsdl("soap://backbone/1:8080/soap/Lamp", {"island": "a"})
        with pytest.raises(ConversionError, match="own island"):
            island_a.pcm.import_service(document)

    def test_duplicate_island_name_rejected(self, framework):
        add_toy_island(framework, "x", {})
        with pytest.raises(FrameworkError):
            add_toy_island(framework, "x", {})

    def test_duplicate_export_rejected(self, sim, two_islands):
        framework, island_a, island_b, lamp = two_islands
        with pytest.raises(GatewayError, match="already exports"):
            island_a.gateway.export_service("Lamp", LAMP_IFACE, lambda op, args: None)


class TestLateJoin:
    def test_new_island_joins_with_refresh(self, sim, two_islands):
        """The paper's 'effortlessly': one add_island + refresh, everything
        reachable both ways with zero changes to existing islands."""
        framework, island_a, island_b, lamp = two_islands
        late_lamp = Lamp()
        island_c = add_toy_island(framework, "c", {"Lamp2": (LAMP_IFACE, late_lamp)})
        sim.run_until_complete(framework.refresh())
        # New island reaches old services...
        assert sim.run_until_complete(island_c.gateway.invoke("Thermo", "read", [])) == 21.5
        # ...and old islands reach the new service.
        assert sim.run_until_complete(island_a.gateway.invoke("Lamp2", "set_level", [3])) == 3
        assert late_lamp.level == 3

    def test_refresh_does_not_duplicate_imports(self, sim, two_islands):
        framework, island_a, island_b, lamp = two_islands
        sim.run_until_complete(framework.refresh())
        sim.run_until_complete(framework.refresh())
        assert list(island_b.pcm.facades) == ["Lamp"]


class TestEvents:
    def test_cross_island_event_via_polling(self, sim, two_islands):
        framework, island_a, island_b, lamp = two_islands
        received = []
        sim.run_until_complete(
            island_b.gateway.subscribe("alerts", lambda t, p, src: received.append((p, src)))
        )
        island_a.gateway.publish_event("alerts", {"level": "red"})
        sim.run_for(5.0)
        assert received == [({"level": "red"}, "a")]

    def test_local_subscribers_get_events_immediately(self, sim, two_islands):
        framework, island_a, island_b, lamp = two_islands
        received = []
        sim.run_until_complete(
            island_a.gateway.subscribe("alerts", lambda t, p, src: received.append(p))
        )
        island_a.gateway.publish_event("alerts", 1)
        sim.run_for(0.1)
        assert received == [1]

    def test_unsubscribed_topics_not_delivered(self, sim, two_islands):
        framework, island_a, island_b, lamp = two_islands
        received = []
        sim.run_until_complete(
            island_b.gateway.subscribe("alerts", lambda t, p, src: received.append(p))
        )
        island_a.gateway.publish_event("other-topic", 1)
        sim.run_for(5.0)
        assert received == []

    def test_polling_latency_bounded_below_by_interval(self, sim, net):
        """The C3 negative result in miniature: with a 10 s poll interval a
        cross-island event cannot arrive faster than the next poll."""
        backbone = net.create_segment(EthernetSegment, "bb")
        mm = MetaMiddleware(net, backbone)
        island_a = mm.add_island("a", None, lambda i: ToyPcm(i.gateway, {}), poll_interval=10.0)
        island_b = mm.add_island("b", None, lambda i: ToyPcm(i.gateway, {}), poll_interval=10.0)
        sim.run_until_complete(mm.connect())
        arrivals = []
        sim.run_until_complete(
            island_b.gateway.subscribe("t", lambda t, p, src: arrivals.append(sim.now))
        )
        published_at = sim.now
        island_a.gateway.publish_event("t", "x")
        sim.run_for(30.0)
        assert len(arrivals) == 1
        assert arrivals[0] - published_at >= 1.0  # far above network RTT

    def test_event_sequence_preserved(self, sim, two_islands):
        framework, island_a, island_b, lamp = two_islands
        received = []
        sim.run_until_complete(
            island_b.gateway.subscribe("seq", lambda t, p, src: received.append(p))
        )
        for index in range(5):
            island_a.gateway.publish_event("seq", index)
        sim.run_for(10.0)
        assert received == [0, 1, 2, 3, 4]


class TestResilience:
    def test_stale_location_retried_after_cache_invalidation(self, sim, two_islands):
        framework, island_a, island_b, lamp = two_islands
        # Prime island b's cache with Lamp's current location.
        sim.run_until_complete(island_b.gateway.invoke("Lamp", "get_level", []))
        # Move Lamp: simulate island a's gateway restarting on a new port.
        island_a.gateway.protocol.stop()
        from repro.core.gateway_soap import SoapGatewayProtocol

        new_protocol = SoapGatewayProtocol(island_a.stack, port=9090)
        island_a.gateway.protocol = new_protocol
        new_protocol.start(island_a.gateway)
        interface, handler = island_a.gateway._local["Lamp"]
        document = interface.to_wsdl(
            new_protocol.location("Lamp"), {"island": "a", "protocol": "soap"}
        )
        sim.run_until_complete(island_a.gateway.vsr.publish(document))
        # The cached (stale) location fails; the gateway must refetch and retry.
        value = sim.run_until_complete(island_b.gateway.invoke("Lamp", "get_level", []))
        assert value == lamp.level

    def test_dead_island_produces_transport_error(self, sim, two_islands):
        framework, island_a, island_b, lamp = two_islands
        island_a.gateway.protocol.stop()
        with pytest.raises(Exception):
            sim.run_until_complete(
                island_b.gateway.invoke("Lamp", "get_level", []), timeout=120.0
            )

    def test_withdrawn_service_disappears_from_catalog(self, sim, two_islands):
        framework, island_a, island_b, lamp = two_islands
        sim.run_until_complete(island_a.gateway.withdraw_service("Lamp"))
        catalog = sim.run_until_complete(framework.catalog())
        assert {d.service for d in catalog} == {"Thermo"}
