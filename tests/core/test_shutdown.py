"""Tests for orderly framework shutdown."""

import pytest

from repro.apps.home import build_smart_home


class TestShutdown:
    def test_shutdown_stops_polling_and_listeners(self):
        home = build_smart_home()
        home.connect()
        # Arm some event polling first.
        home.sim.run_until_complete(
            home.islands["havi"].gateway.subscribe("x10.ON", lambda t, p, s: None)
        )
        home.run(5.0)
        polls_before = home.islands["havi"].gateway.events.polls_performed
        assert polls_before > 0
        home.mm.shutdown()
        home.run(30.0)
        assert home.islands["havi"].gateway.events.polls_performed == polls_before

    def test_calls_fail_after_shutdown(self):
        home = build_smart_home()
        home.connect()
        home.mm.shutdown()
        with pytest.raises(Exception):
            home.invoke_from("jini", "Digital_TV_tuner", "get_channel")

    def test_shutdown_unpublishes_jini_bridges(self):
        home = build_smart_home()
        home.connect()
        bridged_before = sum(
            1 for item in home.lookup.items() if item.attributes.get("bridged")
        )
        assert bridged_before > 0
        home.mm.shutdown()
        home.run(5.0)
        bridged_after = sum(
            1 for item in home.lookup.items() if item.attributes.get("bridged")
        )
        assert bridged_after == 0

    def test_shutdown_is_idempotent(self):
        home = build_smart_home()
        home.connect()
        home.mm.shutdown()
        home.mm.shutdown()  # second call must not raise
