"""Tests for orderly framework shutdown."""

import pytest

from repro.apps.home import build_smart_home


class TestShutdown:
    def test_shutdown_stops_polling_and_listeners(self):
        home = build_smart_home()
        home.connect()
        # Arm some event polling first.
        home.sim.run_until_complete(
            home.islands["havi"].gateway.subscribe("x10.ON", lambda t, p, s: None)
        )
        home.run(5.0)
        polls_before = home.islands["havi"].gateway.events.polls_performed
        assert polls_before > 0
        home.mm.shutdown()
        home.run(30.0)
        assert home.islands["havi"].gateway.events.polls_performed == polls_before

    def test_calls_fail_after_shutdown(self):
        home = build_smart_home()
        home.connect()
        home.mm.shutdown()
        with pytest.raises(Exception):
            home.invoke_from("jini", "Digital_TV_tuner", "get_channel")

    def test_shutdown_unpublishes_jini_bridges(self):
        home = build_smart_home()
        home.connect()
        bridged_before = sum(
            1 for item in home.lookup.items() if item.attributes.get("bridged")
        )
        assert bridged_before > 0
        home.mm.shutdown()
        home.run(5.0)
        bridged_after = sum(
            1 for item in home.lookup.items() if item.attributes.get("bridged")
        )
        assert bridged_after == 0

    def test_shutdown_is_idempotent(self):
        home = build_smart_home()
        home.connect()
        home.mm.shutdown()
        home.mm.shutdown()  # second call must not raise

    def test_shutdown_during_inflight_poll_does_not_resurrect_loop(self):
        """Regression: a poll reply arriving *after* shutdown used to
        reschedule the poll loop, resurrecting it (and the connections it
        keeps warm) forever.  Shut down at the exact instant a poll request
        is on the wire and its reply has not landed yet."""
        home = build_smart_home()
        home.connect()
        gateway = home.islands["havi"].gateway
        home.sim.run_until_complete(gateway.subscribe("x10.ON", lambda t, p, s: None))
        events = gateway.events
        before = events.polls_performed
        # Step to the instant the next poll request has just been issued;
        # its reply is still in flight.
        while events.polls_performed == before:
            assert home.sim.step(), "poll loop died before polling"
        home.mm.shutdown()
        frozen = events.polls_performed
        home.run(60.0)
        assert events.polls_performed == frozen
        assert not events._poll_timers
