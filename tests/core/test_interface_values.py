"""Tests for the neutral type system and value checking."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConversionError, InterfaceError
from repro.core.interface import (
    Operation,
    Parameter,
    ServiceInterface,
    ValueType,
    simple_interface,
)
from repro.core.values import check_args, check_result, check_value


class TestInterfaceDefinitions:
    def test_simple_interface_builder(self):
        interface = simple_interface(
            "Lamp", {"turn_on": ("->boolean",), "dim": ("int", "->int"), "name": ()}
        )
        assert interface.operation("turn_on").returns == ValueType.BOOL
        dim = interface.operation("dim")
        assert [p.type for p in dim.params] == [ValueType.INT]
        assert interface.operation("name").returns == ValueType.VOID

    def test_duplicate_operation_rejected(self):
        op = Operation("x")
        with pytest.raises(InterfaceError):
            ServiceInterface("S", (op, op))

    def test_duplicate_parameter_rejected(self):
        with pytest.raises(InterfaceError):
            Operation("op", (Parameter("a", ValueType.INT), Parameter("a", ValueType.INT)))

    def test_void_parameter_rejected(self):
        with pytest.raises(InterfaceError):
            Parameter("p", ValueType.VOID)

    def test_oneway_cannot_return(self):
        with pytest.raises(InterfaceError):
            Operation("op", (), ValueType.INT, oneway=True)

    @pytest.mark.parametrize("bad", ["", "has space", "1start", "a<b"])
    def test_bad_names_rejected(self, bad):
        with pytest.raises(InterfaceError):
            ServiceInterface(bad)
        with pytest.raises(InterfaceError):
            Operation(bad)

    def test_wsdl_roundtrip(self):
        interface = simple_interface(
            "Camera",
            {
                "zoom": ("int", "->int"),
                "status": ("->anyType",),
                "label": ("string", "->void"),
            },
        )
        document = interface.to_wsdl("soap://b/1:8080/soap/Camera", {"island": "havi"})
        assert ServiceInterface.from_wsdl(document) == interface
        assert document.context["island"] == "havi"

    def test_missing_operation_raises(self):
        interface = simple_interface("S", {"a": ()})
        with pytest.raises(InterfaceError):
            interface.operation("b")
        assert interface.has_operation("a")
        assert not interface.has_operation("b")

    def test_value_type_xsd_mapping(self):
        for member in ValueType:
            assert ValueType.from_xsd(member.xsd_name) == member
        with pytest.raises(InterfaceError):
            ValueType.from_xsd("hyperreal")


class TestValueChecking:
    def test_scalar_acceptance(self):
        assert check_value(5, ValueType.INT) == 5
        assert check_value(2, ValueType.FLOAT) == 2.0
        assert isinstance(check_value(2, ValueType.FLOAT), float)
        assert check_value("x", ValueType.STRING) == "x"
        assert check_value(True, ValueType.BOOL) is True
        assert check_value(bytearray(b"ab"), ValueType.BYTES) == b"ab"

    @pytest.mark.parametrize(
        "value,value_type",
        [
            ("5", ValueType.INT),
            (5.0, ValueType.INT),
            (True, ValueType.INT),
            (True, ValueType.FLOAT),
            ("x", ValueType.FLOAT),
            (5, ValueType.STRING),
            (1, ValueType.BOOL),
            ("x", ValueType.BYTES),
        ],
    )
    def test_scalar_rejection(self, value, value_type):
        with pytest.raises(ConversionError):
            check_value(value, value_type)

    def test_void_accepts_only_none(self):
        assert check_value(None, ValueType.VOID) is None
        with pytest.raises(ConversionError):
            check_value(0, ValueType.VOID)

    def test_any_deep_validation(self):
        checked = check_value({"a": [1, (2, 3)], "b": bytearray(b"x")}, ValueType.ANY)
        assert checked == {"a": [1, [2, 3]], "b": b"x"}
        with pytest.raises(ConversionError):
            check_value({"a": object()}, ValueType.ANY)
        with pytest.raises(ConversionError):
            check_value({1: "non-string key"}, ValueType.ANY)

    def test_check_args_arity(self):
        op = Operation("op", (Parameter("a", ValueType.INT),))
        assert check_args(op, [1]) == [1]
        with pytest.raises(ConversionError, match="expects 1"):
            check_args(op, [])
        with pytest.raises(ConversionError, match="expects 1"):
            check_args(op, [1, 2])

    def test_check_result(self):
        op = Operation("op", (), ValueType.INT)
        assert check_result(op, 5) == 5
        with pytest.raises(ConversionError):
            check_result(op, "five")

    def test_error_messages_name_the_operation(self):
        op = Operation("zoom", (Parameter("level", ValueType.INT),), ValueType.INT)
        with pytest.raises(ConversionError, match="zoom.level"):
            check_args(op, ["high"])

    @given(st.integers())
    def test_int_passthrough_property(self, value):
        assert check_value(value, ValueType.INT) == value

    @given(
        st.recursive(
            st.one_of(st.none(), st.booleans(), st.integers(), st.text(max_size=10)),
            lambda c: st.one_of(st.lists(c, max_size=4), st.dictionaries(st.text(max_size=5), c, max_size=4)),
            max_leaves=10,
        )
    )
    def test_any_accepts_marshallable_trees(self, value):
        check_value(value, ValueType.ANY)  # must not raise
