"""Tests for the stream meta-middleware (the paper's future work)."""

import pytest

from repro.errors import FrameworkError, StreamNotBridgeableError
from repro.apps.home import build_smart_home
from repro.core.streams import (
    FORMAT_LADDER,
    StreamMetaMiddleware,
    StreamSink,
    fit_format,
)
from repro.havi.streams import FORMAT_BANDWIDTH


@pytest.fixture
def stream_home():
    home = build_smart_home(with_x10=False, with_mail=False)
    home.connect()
    meta = StreamMetaMiddleware(home.mm)
    meta.attach("havi")
    meta.attach("jini")
    return home, meta


class TestFormatFitting:
    def test_dv_transcodes_down_on_10mbps(self):
        assert fit_format("DV", 10e6) == "MPEG2"

    def test_dv_passes_through_on_fast_backbone(self):
        assert fit_format("DV", 100e6) == "DV"

    def test_requested_format_is_a_ceiling(self):
        assert fit_format("MPEG2", 100e6) == "MPEG2"  # never upscale

    def test_nothing_fits_a_trickle(self):
        with pytest.raises(StreamNotBridgeableError):
            fit_format("DV", 100_000)

    def test_unknown_format_rejected(self):
        with pytest.raises(FrameworkError):
            fit_format("VHS", 10e6)

    def test_ladder_is_ordered_by_bandwidth(self):
        bandwidths = [FORMAT_BANDWIDTH[fmt] for fmt in FORMAT_LADDER]
        assert bandwidths == sorted(bandwidths, reverse=True)


class TestRelay:
    def test_cross_island_stream_flows(self, stream_home):
        home, meta = stream_home
        sink = StreamSink.counter()
        meta.register_sink("jini", "pc", sink)
        stream = home.sim.run_until_complete(meta.relay("havi", "jini", "pc", fmt="DV"))
        assert stream.delivered_format == "MPEG2"
        assert stream.transcoded
        home.run(10.0)
        achieved_bps = sink.bytes_received * 8 / 10.0
        assert achieved_bps == pytest.approx(FORMAT_BANDWIDTH["MPEG2"], rel=0.15)

    def test_sink_receives_first_bytes_quickly(self, stream_home):
        home, meta = stream_home
        sink = StreamSink.counter()
        meta.register_sink("jini", "pc", sink)
        stream = home.sim.run_until_complete(meta.relay("havi", "jini", "pc"))
        home.run(2.0)
        assert sink.first_byte_at is not None
        assert sink.first_byte_at - stream.opened_at < 1.0

    def test_close_stops_the_flow(self, stream_home):
        home, meta = stream_home
        sink = StreamSink.counter()
        meta.register_sink("jini", "pc", sink)
        stream = home.sim.run_until_complete(meta.relay("havi", "jini", "pc"))
        home.run(2.0)
        stream.close()
        flowed = sink.bytes_received
        home.run(5.0)
        # Chunks already on the wire at close time may still land; after
        # that, the flow is dead (strictly less than one pump tick more).
        one_tick = stream.bandwidth_bps / 8 * 0.25
        assert sink.bytes_received - flowed <= one_tick
        assert meta.active_streams == 0

    def test_forced_format_overruns_the_backbone(self, stream_home):
        """The reproduction of *why* conversion is mandatory: forcing DV
        onto the 10 Mb/s backbone caps delivery below the offer."""
        home, meta = stream_home
        sink = StreamSink.counter()
        meta.register_sink("jini", "pc", sink)
        stream = home.sim.run_until_complete(
            meta.relay("havi", "jini", "pc", fmt="DV", force_format=True)
        )
        home.run(10.0)
        offered = stream.stats()["offered_bps"]
        achieved = sink.bytes_received * 8 / 10.0
        assert offered == pytest.approx(FORMAT_BANDWIDTH["DV"], rel=0.15)
        assert achieved < home.mm.backbone.bandwidth_bps  # physics wins
        assert achieved < offered * 0.5

    def test_unknown_sink_fails(self, stream_home):
        home, meta = stream_home
        with pytest.raises(FrameworkError, match="no sink"):
            home.sim.run_until_complete(meta.relay("havi", "jini", "ghost"))

    def test_unattached_island_fails(self, stream_home):
        home, meta = stream_home
        with pytest.raises(FrameworkError, match="no stream receiver"):
            home.sim.run_until_complete(meta.relay("havi", "nowhere", "pc"))
        with pytest.raises(FrameworkError, match="no stream receiver"):
            meta.register_sink("nowhere", "pc", StreamSink.counter())

    def test_fcm_sink_adapter(self, stream_home):
        """A HAVi display FCM on another island consumes the relay."""
        home, meta = stream_home
        sink = StreamSink.wrap_fcm(home.tv_display)
        meta.register_sink("jini", "virtual-display", sink)
        home.sim.run_until_complete(meta.relay("havi", "jini", "virtual-display"))
        home.run(5.0)
        assert home.tv_display.bytes_displayed > 1_000_000

    def test_coexists_with_vsg_calls(self, stream_home):
        """Section 6: 'the middleware would be able to coexist with our
        framework' — calls keep flowing while a stream saturates."""
        home, meta = stream_home
        sink = StreamSink.counter()
        meta.register_sink("jini", "pc", sink)
        home.sim.run_until_complete(meta.relay("havi", "jini", "pc"))
        home.run(3.0)
        t0 = home.sim.now
        assert home.invoke_from("havi", "Refrigerator", "get_temperature") == 4.0
        call_latency = home.sim.now - t0
        # The stream loads the backbone, so calls are slower but bounded.
        assert call_latency < 2.0

    def test_two_streams_share_the_backbone(self, stream_home):
        home, meta = stream_home
        sinks = [StreamSink.counter(), StreamSink.counter()]
        meta.register_sink("jini", "pc-a", sinks[0])
        meta.register_sink("jini", "pc-b", sinks[1])
        home.sim.run_until_complete(meta.relay("havi", "jini", "pc-a", fmt="MPEG2"))
        home.sim.run_until_complete(meta.relay("havi", "jini", "pc-b", fmt="AUDIO"))
        home.run(10.0)
        assert sinks[0].bytes_received > 0
        assert sinks[1].bytes_received > 0
        assert meta.active_streams == 2
