"""Stateful property testing of the two bookkeeping cores: the lease table
and the VSR directory.  Hypothesis drives arbitrary interleavings of the
public operations against a plain-Python model."""

from hypothesis import strategies as st
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.errors import LeaseExpiredError, ServiceNotFoundError
from repro.core.interface import simple_interface
from repro.core.vsr import VsrDirectory
from repro.jini.lease import LeaseTable
from repro.net.simkernel import Simulator


class LeaseTableMachine(RuleBasedStateMachine):
    """The lease table must agree with a model of {id: expiry} at all
    virtual times, under any interleaving of grant/renew/cancel/advance."""

    def __init__(self):
        super().__init__()
        self.sim = Simulator()
        self.table = LeaseTable(self.sim, max_duration=50.0)
        self.model: dict[int, float] = {}

    leases = Bundle("leases")

    @rule(target=leases, duration=st.floats(min_value=0.1, max_value=100.0))
    def grant(self, duration):
        lease = self.table.grant(duration)
        self.model[lease.lease_id] = self.sim.now + min(duration, 50.0)
        return lease.lease_id

    @rule(lease_id=leases, duration=st.floats(min_value=0.1, max_value=100.0))
    def renew(self, lease_id, duration):
        alive_in_model = self.model.get(lease_id, -1.0) > self.sim.now
        try:
            self.table.renew(lease_id, duration)
            assert alive_in_model, "renewed a lease the model says is dead"
            self.model[lease_id] = self.sim.now + min(duration, 50.0)
        except LeaseExpiredError:
            assert not alive_in_model, "refused to renew a live lease"
            self.model.pop(lease_id, None)

    @rule(lease_id=leases)
    def cancel(self, lease_id):
        self.table.cancel(lease_id)
        self.model.pop(lease_id, None)

    @rule(amount=st.floats(min_value=0.0, max_value=60.0))
    def advance(self, amount):
        self.sim.run_for(amount)
        self.model = {
            lease_id: expiry
            for lease_id, expiry in self.model.items()
            if expiry > self.sim.now
        }

    @invariant()
    def liveness_agrees_with_model(self):
        for lease_id, expiry in self.model.items():
            assert self.table.is_live(lease_id) == (expiry > self.sim.now)


class VsrDirectoryMachine(RuleBasedStateMachine):
    """Publish/withdraw/find must behave like a dict keyed by service."""

    def __init__(self):
        super().__init__()
        self.directory = VsrDirectory()
        self.model: dict[str, str] = {}  # service -> island

    names = st.sampled_from(["Alpha", "Beta", "Gamma", "Delta"])
    islands = st.sampled_from(["jini", "havi", "x10"])

    @rule(name=names, island=islands)
    def publish(self, name, island):
        interface = simple_interface(name, {"ping": ("->string",)})
        self.directory.publish(
            interface.to_wsdl(f"soap://b/1:8080/soap/{name}", {"island": island})
        )
        self.model[name] = island

    @rule(name=names)
    def withdraw(self, name):
        existed = self.directory.withdraw(name)
        assert existed == (name in self.model)
        self.model.pop(name, None)

    @rule(name=names)
    def find_by_name(self, name):
        if name in self.model:
            document = self.directory.find_by_name(name)
            assert document.context["island"] == self.model[name]
        else:
            try:
                self.directory.find_by_name(name)
                assert False, "found a withdrawn service"
            except ServiceNotFoundError:
                pass

    @rule(island=islands)
    def find_by_context(self, island):
        found = {d.service for d in self.directory.find({"island": island})}
        expected = {n for n, i in self.model.items() if i == island}
        assert found == expected

    @invariant()
    def count_matches_model(self):
        assert self.directory.service_count == len(self.model)
        assert set(self.directory.service_names()) == set(self.model)


TestLeaseTableStateful = LeaseTableMachine.TestCase
TestVsrDirectoryStateful = VsrDirectoryMachine.TestCase
