"""A minimal in-process PCM used by core tests (no middleware substrate)."""

from __future__ import annotations

from typing import Any

from repro.core.interface import ServiceInterface
from repro.core.pcm import ProtocolConversionManager
from repro.net.simkernel import SimFuture


class ToyPcm(ProtocolConversionManager):
    """Exposes plain Python objects; imports become generated proxies."""

    middleware_name = "toy"

    def __init__(self, vsg, services: dict[str, tuple[ServiceInterface, Any]]):
        super().__init__(vsg)
        self._services = services
        self.facades: dict[str, Any] = {}

    def _discover_local_services(self):
        discovered = []
        for name, (interface, obj) in self._services.items():
            def handler(operation, args, _obj=obj):
                return getattr(_obj, operation)(*args)

            discovered.append((name, interface, handler, {}))
        return SimFuture.completed(discovered)

    def _materialise(self, document, interface):
        self.facades[document.service] = self.remote_proxy(document)
        return SimFuture.completed(True)


class Lamp:
    def __init__(self):
        self.level = 0

    def set_level(self, value):
        self.level = value
        return value

    def get_level(self):
        return self.level

    def fail(self):
        raise RuntimeError("lamp hardware fault")


class Thermometer:
    def read(self):
        return 21.5
