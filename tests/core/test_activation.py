"""Tests for dynamic service activation (the future-work extension)."""

import pytest

from repro.core.activation import ACTIVE, DORMANT, ActivatableService
from repro.core.interface import simple_interface
from repro.net.simkernel import Simulator


class Player:
    instances = 0

    def __init__(self):
        Player.instances += 1
        self.plays = 0
        self.shut_down = False

    def play(self):
        self.plays += 1
        return self.plays

    def boom(self):
        raise RuntimeError("device fault")

    def shutdown(self):
        self.shut_down = True


@pytest.fixture(autouse=True)
def reset_counter():
    Player.instances = 0


class TestActivation:
    def test_first_call_pays_activation_delay(self):
        sim = Simulator()
        service = ActivatableService(sim, Player, activation_delay=2.0)
        assert service.state == DORMANT
        future = service("play", [])
        t0 = sim.now
        assert sim.run_until_complete(future) == 1
        assert sim.now - t0 >= 2.0
        assert service.state == ACTIVE
        assert Player.instances == 1

    def test_subsequent_calls_are_immediate(self):
        sim = Simulator()
        service = ActivatableService(sim, Player, activation_delay=2.0)
        sim.run_until_complete(service("play", []))
        t0 = sim.now
        assert sim.run_until_complete(service("play", [])) == 2
        assert sim.now == t0  # no new activation
        assert service.activations == 1

    def test_calls_during_activation_queue_in_order(self):
        sim = Simulator()
        service = ActivatableService(sim, Player, activation_delay=1.0)
        futures = [service("play", []) for _ in range(3)]
        results = [sim.run_until_complete(f) for f in futures]
        assert results == [1, 2, 3]
        assert Player.instances == 1  # one activation serves all three

    def test_idle_timeout_deactivates_and_reactivates(self):
        sim = Simulator()
        service = ActivatableService(sim, Player, activation_delay=0.5, idle_timeout=10.0)
        sim.run_until_complete(service("play", []))
        first_instance = service.instance
        sim.run_for(11.0)
        assert service.state == DORMANT
        assert first_instance.shut_down  # orderly shutdown hook ran
        assert service.deactivations == 1
        # Next call re-activates with a fresh instance.
        assert sim.run_until_complete(service("play", [])) == 1
        assert Player.instances == 2

    def test_activity_postpones_idle_timeout(self):
        sim = Simulator()
        service = ActivatableService(sim, Player, activation_delay=0.1, idle_timeout=10.0)
        sim.run_until_complete(service("play", []))
        for _ in range(4):
            sim.run_for(8.0)
            sim.run_until_complete(service("play", []))
        assert service.state == ACTIVE
        assert service.deactivations == 0

    def test_implementation_errors_propagate(self):
        sim = Simulator()
        service = ActivatableService(sim, Player, activation_delay=0.1)
        with pytest.raises(RuntimeError, match="device fault"):
            sim.run_until_complete(service("boom", []))


class TestThroughTheFramework:
    def test_activatable_service_across_islands(self, sim, net):
        """An island exports a dormant service; the first cross-island call
        wakes it — dynamic activation end to end."""
        from repro.core.framework import MetaMiddleware
        from repro.net.segment import EthernetSegment
        from tests.core.toys import ToyPcm

        backbone = net.create_segment(EthernetSegment, "backbone")
        mm = MetaMiddleware(net, backbone)
        island_a = mm.add_island("a", None, lambda i: ToyPcm(i.gateway, {}))
        island_b = mm.add_island("b", None, lambda i: ToyPcm(i.gateway, {}))
        sim.run_until_complete(mm.connect())

        interface = simple_interface("SleepyPlayer", {"play": ("->int",)})
        service = ActivatableService(sim, Player, activation_delay=3.0)
        sim.run_until_complete(
            island_a.gateway.export_service("SleepyPlayer", interface, service)
        )
        sim.run_until_complete(mm.refresh())

        assert service.state == DORMANT
        t0 = sim.now
        assert sim.run_until_complete(
            island_b.gateway.invoke("SleepyPlayer", "play", [])
        ) == 1
        first_latency = sim.now - t0
        assert first_latency >= 3.0  # paid the activation

        t0 = sim.now
        assert sim.run_until_complete(
            island_b.gateway.invoke("SleepyPlayer", "play", [])
        ) == 2
        assert sim.now - t0 < 1.0  # warm path
