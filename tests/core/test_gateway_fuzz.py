"""Property-based fuzzing of the gateway's neutral call path.

Whatever a caller throws at ``invoke`` — unknown services, unknown
operations, wrong arities, hostile argument values — the outcome must be a
resolved future (value or typed error), never a hung simulation or an
escaped exception inside the event loop.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.framework import MetaMiddleware
from repro.core.interface import simple_interface
from repro.net.network import Network
from repro.net.segment import EthernetSegment
from repro.net.simkernel import Simulator

from tests.core.toys import ToyPcm


class Target:
    def echo(self, value):
        return value

    def add(self, a, b):
        return a + b


def build_pair():
    sim = Simulator()
    net = Network(sim)
    backbone = net.create_segment(EthernetSegment, "backbone")
    mm = MetaMiddleware(net, backbone)
    interface = simple_interface(
        "Target", {"echo": ("anyType", "->anyType"), "add": ("int", "int", "->int")}
    )
    island_a = mm.add_island("a", None, lambda i: ToyPcm(i.gateway, {"Target": (interface, Target())}))
    island_b = mm.add_island("b", None, lambda i: ToyPcm(i.gateway, {}))
    sim.run_until_complete(mm.connect())
    return sim, island_b.gateway


_names = st.text(max_size=20)
_args = st.lists(
    st.one_of(
        st.none(), st.booleans(), st.integers(), st.floats(allow_nan=False),
        st.text(max_size=20), st.binary(max_size=20),
        st.lists(st.integers(), max_size=3),
        st.dictionaries(st.text(alphabet="abc", min_size=1, max_size=3), st.integers(), max_size=3),
    ),
    max_size=4,
)


class TestGatewayFuzz:
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(service=_names, operation=_names, args=_args)
    def test_arbitrary_invocations_always_resolve(self, service, operation, args):
        sim, gateway = build_pair()
        future = gateway.invoke(service, operation, args)
        try:
            sim.run_until_complete(future, timeout=600.0)
        except Exception:
            pass  # a typed error is a fine outcome; hanging is not
        assert future.done()

    @settings(max_examples=30, deadline=None)
    @given(args=_args)
    def test_valid_service_wrong_shapes_fault_cleanly(self, args):
        sim, gateway = build_pair()
        future = gateway.invoke("Target", "add", args)
        if len(args) == 2 and all(isinstance(a, int) and not isinstance(a, bool) for a in args):
            assert sim.run_until_complete(future) == args[0] + args[1]
        else:
            with pytest.raises(Exception):
                sim.run_until_complete(future, timeout=600.0)

    @settings(max_examples=20, deadline=None)
    @given(
        value=st.recursive(
            st.one_of(st.none(), st.booleans(), st.integers(min_value=-(2**53), max_value=2**53),
                      st.text(alphabet="abcXYZ ", max_size=15)),
            lambda c: st.one_of(
                st.lists(c, max_size=3),
                st.dictionaries(st.text(alphabet="abc", min_size=1, max_size=4), c, max_size=3),
            ),
            max_leaves=8,
        )
    )
    def test_any_marshallable_value_round_trips_through_the_bridge(self, value):
        sim, gateway = build_pair()
        result = sim.run_until_complete(gateway.invoke("Target", "echo", [value]))
        assert result == value
