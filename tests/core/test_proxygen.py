"""Tests for runtime proxy generation (the Javassist analog)."""

import pytest

from repro.errors import ConversionError, InterfaceError
from repro.core.interface import simple_interface
from repro.core.proxygen import ProxyFactory, generate_proxy_class


def recording_invoker(log):
    def invoke(operation, args):
        log.append((operation, args))
        return ("result", operation)

    return invoke


@pytest.fixture
def lamp_interface():
    return simple_interface(
        "Lamp",
        {"turn_on": ("->boolean",), "dim": ("int", "->boolean"), "label": ("string",)},
    )


class TestGeneratedClasses:
    def test_methods_exist_and_route_through_invoker(self, lamp_interface):
        log = []
        proxy_cls = generate_proxy_class(lamp_interface)
        proxy = proxy_cls(recording_invoker(log))
        assert proxy.turn_on() == ("result", "turn_on")
        assert proxy.dim(5) == ("result", "dim")
        assert log == [("turn_on", []), ("dim", [5])]

    def test_class_name_derived_from_interface(self, lamp_interface):
        assert generate_proxy_class(lamp_interface).__name__ == "LampProxy"

    def test_argument_types_validated_before_invoker(self, lamp_interface):
        log = []
        proxy = generate_proxy_class(lamp_interface)(recording_invoker(log))
        with pytest.raises(ConversionError):
            proxy.dim("fifty")
        with pytest.raises(ConversionError):
            proxy.dim()
        with pytest.raises(ConversionError):
            proxy.dim(1, 2)
        assert log == []  # nothing leaked through

    def test_generated_docstrings_describe_signature(self, lamp_interface):
        proxy_cls = generate_proxy_class(lamp_interface)
        assert "dim(arg0: INT) -> BOOL" in proxy_cls.dim.__doc__

    def test_interface_property(self, lamp_interface):
        proxy = generate_proxy_class(lamp_interface)(lambda op, args: None)
        assert proxy.interface is lamp_interface

    def test_colliding_operation_names_rejected(self):
        with pytest.raises(InterfaceError):
            generate_proxy_class(simple_interface("Bad", {"interface": ()}))

    def test_missing_method_raises_attribute_error(self, lamp_interface):
        proxy = generate_proxy_class(lamp_interface)(lambda op, args: None)
        with pytest.raises(AttributeError):
            proxy.explode()


class TestProxyFactory:
    def test_cache_shared_for_identical_shapes(self, lamp_interface):
        factory = ProxyFactory()
        first = factory.proxy_class(lamp_interface)
        same_shape = simple_interface(
            "Lamp",
            {"turn_on": ("->boolean",), "dim": ("int", "->boolean"), "label": ("string",)},
        )
        second = factory.proxy_class(same_shape)
        assert first is second
        assert factory.classes_generated == 1
        assert factory.cache_hits == 1

    def test_different_shapes_get_different_classes(self, lamp_interface):
        factory = ProxyFactory()
        first = factory.proxy_class(lamp_interface)
        other = factory.proxy_class(simple_interface("Lamp", {"turn_on": ()}))
        assert first is not other
        assert factory.classes_generated == 2

    def test_create_instantiates_with_invoker(self, lamp_interface):
        factory = ProxyFactory()
        log = []
        proxy = factory.create(lamp_interface, recording_invoker(log))
        proxy.label("kitchen")
        assert log == [("label", ["kitchen"])]

    def test_generation_scales_to_many_interfaces(self):
        factory = ProxyFactory()
        for index in range(50):
            interface = simple_interface(f"Svc{index}", {f"op{index}": ("int", "->int")})
            proxy = factory.create(interface, lambda op, args: args[0])
            assert getattr(proxy, f"op{index}")(index) == index
        assert factory.classes_generated == 50


class TestGlobalClassCache:
    """Process-wide memoization of synthesized classes by fingerprint."""

    def test_same_interface_object_reuses_class(self):
        from repro.core.proxygen import clear_proxy_class_cache

        clear_proxy_class_cache()
        interface = simple_interface("CachedSvc", {"go": ("int", "->int")})
        assert generate_proxy_class(interface) is generate_proxy_class(interface)

    def test_equal_interfaces_share_synthesized_methods(self):
        from repro.core.proxygen import clear_proxy_class_cache

        clear_proxy_class_cache()
        first = simple_interface("CachedSvc", {"go": ("int", "->int")})
        second = simple_interface("CachedSvc", {"go": ("int", "->int")})
        cls_a = generate_proxy_class(first)
        cls_b = generate_proxy_class(second)
        # The expensive part — the method functions — is shared; only the
        # interface back-pointer differs.
        assert cls_b.go is cls_a.go
        assert cls_a._interface is first
        assert cls_b._interface is second

    def test_fresh_factories_share_the_global_cache(self):
        from repro.core.proxygen import clear_proxy_class_cache

        clear_proxy_class_cache()
        interface = simple_interface("CachedSvc", {"go": ("int", "->int")})
        cls_a = ProxyFactory().proxy_class(interface)
        cls_b = ProxyFactory().proxy_class(interface)
        assert cls_a is cls_b

    def test_per_factory_counters_unchanged(self):
        interface = simple_interface("CachedSvc", {"go": ("int", "->int")})
        factory = ProxyFactory()
        factory.proxy_class(interface)
        factory.proxy_class(interface)
        assert factory.classes_generated == 1
        assert factory.cache_hits == 1
