"""Push event channel: negotiation, latency, coalescing, acks, fallback.

Two PUSH_INTERCHANGE islands must stream events over a held exchange with
no polling; anything less than two-sided opt-in must stay on the poll
wire; and a dead channel must degrade to polling without losing events,
then re-establish behind the resilience backoff.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.framework import MetaMiddleware
from repro.errors import TransportError
from repro.net.network import Network
from repro.net.segment import EthernetSegment
from repro.net.simkernel import Simulator
from repro.soap.http import FAST_INTERCHANGE, PUSH_INTERCHANGE, InterchangeConfig


def build_home(
    a_cfg: InterchangeConfig | None,
    b_cfg: InterchangeConfig | None,
    poll_interval: float = 2.0,
):
    """Two bare islands (no PCMs) with per-island interchange configs."""
    sim = Simulator()
    net = Network(sim)
    backbone = net.create_segment(EthernetSegment, "backbone")
    mm = MetaMiddleware(net, backbone)
    island_a = mm.add_island("a", None, interchange=a_cfg, poll_interval=poll_interval)
    island_b = mm.add_island("b", None, interchange=b_cfg, poll_interval=poll_interval)
    sim.run_until_complete(mm.connect())
    return sim, mm, island_a, island_b


def subscribe(sim, island, topic, sink):
    return sim.run_until_complete(
        island.gateway.subscribe(topic, lambda t, p, i: sink.append(p))
    )


class TestChannelEstablishment:
    def test_push_pair_opens_channel_and_stops_polling(self):
        sim, mm, a, b = build_home(PUSH_INTERCHANGE, PUSH_INTERCHANGE)
        received: list = []
        assert subscribe(sim, b, "t", received) == 1
        router = b.gateway.events
        assert len(router._channels) == 1
        assert router._poll_timers == {}
        polls_before = router.polls_performed
        sim.run_for(30.0)
        assert router.polls_performed == polls_before
        a.gateway.publish_event("t", 1)
        sim.run_for(1.0)
        assert received == [1]

    def test_channel_needs_both_sides_to_opt_in(self):
        pairings = (
            (FAST_INTERCHANGE, PUSH_INTERCHANGE),  # publisher lacks the route
            (PUSH_INTERCHANGE, FAST_INTERCHANGE),  # subscriber lacks the config
            (None, PUSH_INTERCHANGE),  # legacy publisher
        )
        for a_cfg, b_cfg in pairings:
            sim, mm, a, b = build_home(a_cfg, b_cfg)
            received: list = []
            subscribe(sim, b, "t", received)
            router = b.gateway.events
            assert router._channels == {}
            assert len(router._poll_timers) == 1
            a.gateway.publish_event("t", "polled")
            sim.run_for(5.0)
            assert received == ["polled"]


class TestPushDelivery:
    def test_notification_latency_is_rtt_not_poll_interval(self):
        sim, mm, a, b = build_home(
            PUSH_INTERCHANGE, PUSH_INTERCHANGE, poll_interval=5.0
        )
        delivered_at: list = []
        sim.run_until_complete(
            b.gateway.subscribe("t", lambda t, p, i: delivered_at.append(sim.now))
        )
        sim.run_for(1.0)  # wait is parked on the publisher
        published_at = sim.now
        a.gateway.publish_event("t", "x")
        sim.run_for(1.0)
        assert len(delivered_at) == 1
        assert delivered_at[0] - published_at < 0.05

    def test_same_instant_burst_coalesces_into_one_frame(self):
        sim, mm, a, b = build_home(PUSH_INTERCHANGE, PUSH_INTERCHANGE)
        received: list = []
        subscribe(sim, b, "t", received)
        sim.run_for(1.0)
        channel = next(iter(b.gateway.events._channels.values()))
        for value in range(10):
            a.gateway.publish_event("t", value)
        sim.run_for(1.0)
        assert received == list(range(10))
        assert channel.frames_received == 1
        assert a.gateway.events.events_pushed == 10

    def test_flush_window_coalesces_spread_burst(self):
        cfg = replace(PUSH_INTERCHANGE, event_flush_window=0.5)
        sim, mm, a, b = build_home(cfg, cfg)
        received: list = []
        subscribe(sim, b, "t", received)
        sim.run_for(1.0)
        channel = next(iter(b.gateway.events._channels.values()))
        a.gateway.publish_event("t", 1)
        sim.run_for(0.2)  # inside the window
        a.gateway.publish_event("t", 2)
        sim.run_for(2.0)
        assert received == [1, 2]
        assert channel.frames_received == 1

    def test_idle_channel_sends_only_keepalives(self):
        sim, mm, a, b = build_home(PUSH_INTERCHANGE, PUSH_INTERCHANGE)
        received: list = []
        subscribe(sim, b, "t", received)
        router = b.gateway.events
        channel = next(iter(router._channels.values()))
        sim.run_for(60.0)
        # event_max_hold=25 -> roughly two empty keepalive frames per
        # minute, versus 30 fetch round trips at the default 2 s poll.
        assert 1 <= channel.frames_received <= 4
        assert router.polls_performed == 0
        assert received == []


class TestChannelDeath:
    def test_killed_channel_falls_back_to_polling_without_losing_events(self):
        sim, mm, a, b = build_home(PUSH_INTERCHANGE, PUSH_INTERCHANGE)
        received: list = []
        subscribe(sim, b, "t", received)
        sim.run_for(1.0)
        router = b.gateway.events
        channel = next(iter(router._channels.values()))
        # Disable re-establishment so the fallback path stays observable.
        b.gateway.protocol.interchange = FAST_INTERCHANGE
        channel.kill(TransportError("injected channel death"))
        assert router._channels == {}
        assert len(router._poll_timers) == 1
        assert router.channel_deaths == 1
        a.gateway.publish_event("t", "via-poll")
        sim.run_for(5.0)
        assert received == ["via-poll"]
        assert router.polls_performed > 0

    def test_reannounce_reopens_channel_after_death(self):
        sim, mm, a, b = build_home(PUSH_INTERCHANGE, PUSH_INTERCHANGE)
        received: list = []
        subscribe(sim, b, "t", received)
        sim.run_for(1.0)
        router = b.gateway.events
        next(iter(router._channels.values())).kill(TransportError("injected"))
        assert router._channels == {}
        # First retry fires at the resilience backoff's initial delay.
        sim.run_for(5.0)
        assert len(router._channels) == 1
        assert router.channels_opened == 2
        assert router._poll_timers == {}
        a.gateway.publish_event("t", "via-new-channel")
        sim.run_for(1.0)
        assert received == ["via-new-channel"]

    def test_breaker_open_kills_channel_immediately(self):
        sim, mm, a, b = build_home(PUSH_INTERCHANGE, PUSH_INTERCHANGE)
        received: list = []
        subscribe(sim, b, "t", received)
        router = b.gateway.events
        assert len(router._channels) == 1
        router.on_island_unreachable("a")
        assert router._channels == {}
        assert len(router._poll_timers) == 1

    def test_shutdown_quiesces_channels(self):
        sim, mm, a, b = build_home(PUSH_INTERCHANGE, PUSH_INTERCHANGE)
        received: list = []
        subscribe(sim, b, "t", received)
        router = b.gateway.events
        assert len(router._channels) == 1
        mm.shutdown()
        sim.run_for(120.0)
        assert router._channels == {}
        for channel in router.channel_clients:
            assert channel.http.open_connections() == []


class TestPublisherWaitProtocol:
    """Unit-level publisher semantics through handle_wait/handle_fetch."""

    def _router(self):
        sim, mm, a, b = build_home(PUSH_INTERCHANGE, PUSH_INTERCHANGE)
        router = a.gateway.events
        router.handle_subscribe("ghost", "t", "")
        return sim, router

    def test_wait_parks_until_publish_then_flushes_batch(self):
        sim, router = self._router()
        held = router.handle_wait("ghost", 0, 10.0)
        assert not held.done()
        router.publish("t", 1)
        router.publish("t", 2)
        sim.run_for(0.01)
        batch, events = held.result()
        assert batch == 1
        assert [event["payload"] for event in events] == [1, 2]

    def test_unacked_batch_redelivered_on_reconnect(self):
        sim, router = self._router()
        held = router.handle_wait("ghost", 0, 10.0)
        router.publish("t", "x")
        sim.run_for(0.01)
        batch, events = held.result()
        # The subscriber never acked (channel died mid-response): a new
        # wait carrying the stale ack gets the batch again, immediately.
        again = router.handle_wait("ghost", 0, 10.0)
        assert again.done()
        assert again.result() == (batch, events)
        # Acking releases the retained copy; the next wait parks.
        parked = router.handle_wait("ghost", batch, 10.0)
        assert not parked.done()

    def test_unacked_batch_folds_into_fallback_fetch(self):
        sim, router = self._router()
        held = router.handle_wait("ghost", 0, 10.0)
        router.publish("t", "lost")
        sim.run_for(0.01)
        assert held.done()
        router.publish("t", "queued")  # channel already dead: plain queue
        drained = router.handle_fetch("ghost")
        assert [event["payload"] for event in drained] == ["lost", "queued"]
        assert router.handle_fetch("ghost") == []

    def test_hold_expiry_answers_empty_keepalive(self):
        sim, router = self._router()
        held = router.handle_wait("ghost", 0, 0.5)
        sim.run_for(1.0)
        assert held.result() == (0, [])

    def test_new_wait_supersedes_stale_parked_wait(self):
        sim, router = self._router()
        stale = router.handle_wait("ghost", 0, 30.0)
        fresh = router.handle_wait("ghost", 0, 30.0)
        assert stale.done() and stale.result() == (0, [])
        assert not fresh.done()
