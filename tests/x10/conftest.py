"""X10 test fixtures: powerline, serial link, CM11A and controller."""

import pytest

from repro.net.segment import PowerlineSegment, SerialLink
from repro.x10.cm11a import Cm11aInterface
from repro.x10.controller import X10Controller


@pytest.fixture
def powerline(net):
    return net.create_segment(PowerlineSegment, "powerline")


@pytest.fixture
def serial(net):
    return net.create_segment(SerialLink, "serial0")


@pytest.fixture
def x10_setup(sim, net, powerline, serial):
    cm11a = Cm11aInterface(net, "cm11a", serial, powerline)
    pc = net.create_node("pc")
    controller = X10Controller(net, pc, serial)
    return cm11a, controller
