"""Tests for powerline transceivers and device modules."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import X10Error
from repro.x10.codes import HOUSE_CODES, X10Address, X10Function
from repro.x10.devices import ApplianceModule, LampModule, MotionSensor, RemoteHandset
from repro.x10.powerline import PowerlineTransceiver, X10Signal


class TestSignals:
    @given(st.sampled_from(sorted(HOUSE_CODES)), st.integers(min_value=1, max_value=16))
    def test_address_signal_roundtrip(self, house, unit):
        signal = X10Signal.for_address(X10Address(house, unit))
        assert X10Signal.decode(signal.encode()) == signal

    @given(
        st.sampled_from(sorted(HOUSE_CODES)),
        st.sampled_from(list(X10Function)),
        st.integers(min_value=0, max_value=22),
    )
    def test_function_signal_roundtrip(self, house, function, dims):
        signal = X10Signal.for_function(house, function, dims)
        assert X10Signal.decode(signal.encode()) == signal

    def test_frame_is_exactly_two_bytes(self):
        assert len(X10Signal.for_address(X10Address("A", 1)).encode()) == 2

    def test_bad_frame_length_rejected(self):
        with pytest.raises(X10Error):
            X10Signal.decode(b"\x66")
        with pytest.raises(X10Error):
            X10Signal.decode(b"\x66\x00\x00")


class TestTransceiverTiming:
    def test_command_takes_realistic_powerline_time(self, sim, net, powerline):
        node = net.create_node("tx")
        transceiver = PowerlineTransceiver(net, node, powerline)
        done_at = transceiver.transmit_command(X10Address("A", 1), X10Function.ON)
        # Address + function frames at ~120 b/s: several tenths of a second.
        assert 0.4 < done_at < 2.0

    def test_receivers_hear_all_signals(self, sim, net, powerline):
        sender_node = net.create_node("tx")
        sender = PowerlineTransceiver(net, sender_node, powerline)
        receiver_node = net.create_node("rx")
        receiver = PowerlineTransceiver(net, receiver_node, powerline)
        heard = []
        receiver.on_signal(heard.append)
        sender.transmit_command(X10Address("B", 3), X10Function.OFF)
        sim.run()
        assert len(heard) == 2
        assert heard[0].address == X10Address("B", 3)
        assert heard[1].function == X10Function.OFF


@pytest.fixture
def lamp(net, powerline):
    return LampModule(net, "lamp", powerline, X10Address("A", 1))


@pytest.fixture
def handset(net, powerline):
    return RemoteHandset(net, "handset", powerline)


class TestModules:
    def test_selection_semantics(self, sim, net, powerline, lamp, handset):
        """A function only affects units addressed since the last select."""
        other = LampModule(net, "other", powerline, X10Address("A", 2))
        handset.press_on(X10Address("A", 1))
        sim.run()
        assert lamp.on and not other.on
        # Address A2 then OFF: only A2 affected.
        handset.press_off(X10Address("A", 2))
        sim.run()
        assert lamp.on and not other.on  # other was already off
        assert not other.selected or True  # state machine consistent

    def test_house_code_isolation(self, sim, net, powerline, lamp, handset):
        foreign = LampModule(net, "foreign", powerline, X10Address("B", 1))
        handset.press_on(X10Address("A", 1))
        sim.run()
        assert lamp.on and not foreign.on

    def test_all_units_off(self, sim, net, powerline, lamp, handset):
        fan = ApplianceModule(net, "fan", powerline, X10Address("A", 3))
        handset.press_on(X10Address("A", 1))
        handset.press_on(X10Address("A", 3))
        sim.run()
        assert lamp.on and fan.on
        handset.transceiver.transmit_function("A", X10Function.ALL_UNITS_OFF)
        sim.run()
        assert not lamp.on and not fan.on

    def test_all_lights_on_ignores_appliances(self, sim, net, powerline, lamp, handset):
        fan = ApplianceModule(net, "fan", powerline, X10Address("A", 3))
        handset.transceiver.transmit_function("A", X10Function.ALL_LIGHTS_ON)
        sim.run()
        assert lamp.on and not fan.on

    def test_lamp_dimming_steps(self, sim, net, powerline, lamp, handset):
        handset.press_on(X10Address("A", 1))
        sim.run()
        assert lamp.level == 100
        handset.press(X10Address("A", 1), X10Function.DIM, dims=11)  # half range
        sim.run()
        assert lamp.level == 50
        handset.press(X10Address("A", 1), X10Function.BRIGHT, dims=22)
        sim.run()
        assert lamp.level == 100

    def test_appliance_ignores_dim(self, sim, net, powerline, handset):
        fan = ApplianceModule(net, "fan", powerline, X10Address("A", 3))
        handset.press_on(X10Address("A", 3))
        handset.press(X10Address("A", 3), X10Function.DIM, dims=10)
        sim.run()
        assert fan.on  # unchanged by DIM

    def test_motion_sensor_on_then_auto_off(self, sim, net, powerline):
        sensor = MotionSensor(net, "pir", powerline, X10Address("A", 9), off_delay=10.0)
        watcher_node = net.create_node("watcher")
        watcher = PowerlineTransceiver(net, watcher_node, powerline)
        heard = []
        watcher.on_signal(heard.append)
        sensor.trigger()
        sim.run_for(5.0)
        functions = [s.function for s in heard if s.is_function]
        assert functions == [X10Function.ON]
        sim.run_for(10.0)
        functions = [s.function for s in heard if s.is_function]
        assert functions == [X10Function.ON, X10Function.OFF]

    def test_motion_retrigger_postpones_off(self, sim, net, powerline):
        sensor = MotionSensor(net, "pir", powerline, X10Address("A", 9), off_delay=10.0)
        watcher_node = net.create_node("watcher")
        watcher = PowerlineTransceiver(net, watcher_node, powerline)
        heard = []
        watcher.on_signal(heard.append)
        sensor.trigger()
        sim.run_for(6.0)
        sensor.trigger()
        sim.run_for(6.0)  # first off_delay has passed, but was postponed
        functions = [s.function for s in heard if s.is_function]
        assert X10Function.OFF not in functions
        sim.run_for(6.0)
        functions = [s.function for s in heard if s.is_function]
        assert functions.count(X10Function.OFF) == 1
