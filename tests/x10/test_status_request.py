"""Tests for two-way X10: STATUS_REQUEST / STATUS_ON / STATUS_OFF."""

import pytest

from repro.errors import X10Error
from repro.x10.codes import X10Address
from repro.x10.devices import ApplianceModule, LampModule


class TestStatusRequest:
    def test_status_of_off_module(self, sim, net, powerline, x10_setup):
        cm11a, controller = x10_setup
        LampModule(net, "lamp", powerline, X10Address("A", 1))
        assert sim.run_until_complete(controller.status_request(X10Address("A", 1))) is False

    def test_status_reflects_state_changes(self, sim, net, powerline, x10_setup):
        cm11a, controller = x10_setup
        lamp = LampModule(net, "lamp", powerline, X10Address("A", 1))
        sim.run_until_complete(controller.turn_on(X10Address("A", 1)))
        assert sim.run_until_complete(controller.status_request(X10Address("A", 1))) is True
        sim.run_until_complete(controller.turn_off(X10Address("A", 1)))
        assert sim.run_until_complete(controller.status_request(X10Address("A", 1))) is False

    def test_appliance_modules_also_answer(self, sim, net, powerline, x10_setup):
        cm11a, controller = x10_setup
        fan = ApplianceModule(net, "fan", powerline, X10Address("B", 5))
        sim.run_until_complete(controller.turn_on(X10Address("B", 5)))
        assert sim.run_until_complete(controller.status_request(X10Address("B", 5))) is True

    def test_absent_module_times_out(self, sim, net, powerline, x10_setup):
        cm11a, controller = x10_setup
        future = controller.status_request(X10Address("C", 9), timeout=10.0)
        with pytest.raises(X10Error, match="no status reply"):
            sim.run_until_complete(future)

    def test_only_addressed_module_replies(self, sim, net, powerline, x10_setup):
        cm11a, controller = x10_setup
        on_lamp = LampModule(net, "on-lamp", powerline, X10Address("A", 1))
        off_lamp = LampModule(net, "off-lamp", powerline, X10Address("A", 2))
        sim.run_until_complete(controller.turn_on(X10Address("A", 1)))
        # Ask the OFF lamp: the ON lamp must stay quiet.
        assert sim.run_until_complete(controller.status_request(X10Address("A", 2))) is False

    def test_is_on_operation_through_the_framework(self, sim):
        from repro.apps import build_smart_home

        home = build_smart_home()
        home.connect()
        assert home.invoke_from("jini", "X10_A3_fan", "is_on") is False
        home.invoke_from("jini", "X10_A3_fan", "turn_on")
        assert home.invoke_from("jini", "X10_A3_fan", "is_on") is True
