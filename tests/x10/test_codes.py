"""Tests for the X10 code tables — byte-exact against the CM11A spec."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import X10Error
from repro.x10.codes import (
    HOUSE_CODES,
    UNIT_CODES,
    X10Address,
    X10Function,
    decode_address_byte,
    decode_function_byte,
    encode_address_byte,
    encode_function_byte,
)


class TestSpecTables:
    def test_known_house_codes_from_cm11a_spec(self):
        # Spot checks against the published table.
        assert HOUSE_CODES["A"] == 0b0110
        assert HOUSE_CODES["M"] == 0b0000
        assert HOUSE_CODES["P"] == 0b1100
        assert HOUSE_CODES["E"] == 0b0001

    def test_house_and_unit_tables_are_permutations(self):
        assert sorted(HOUSE_CODES.values()) == list(range(16))
        assert sorted(UNIT_CODES.values()) == list(range(16))

    def test_a1_encodes_to_0x66(self):
        # House A = 0110, unit 1 = 0110 -> 0x66, the classic A1 byte.
        assert encode_address_byte(X10Address("A", 1)) == 0x66

    def test_function_byte_layout(self):
        # House A + ON (0010) -> 0110_0010.
        assert encode_function_byte("A", X10Function.ON) == 0x62
        assert encode_function_byte("P", X10Function.STATUS_REQUEST) == 0xCF


class TestRoundTrips:
    @given(st.sampled_from(sorted(HOUSE_CODES)), st.integers(min_value=1, max_value=16))
    def test_address_roundtrip(self, house, unit):
        address = X10Address(house, unit)
        assert decode_address_byte(encode_address_byte(address)) == address

    @given(st.sampled_from(sorted(HOUSE_CODES)), st.sampled_from(list(X10Function)))
    def test_function_roundtrip(self, house, function):
        byte = encode_function_byte(house, function)
        assert decode_function_byte(byte) == (house, function)

    @given(st.integers(min_value=0, max_value=255))
    def test_every_byte_decodes_as_some_address(self, byte):
        address = decode_address_byte(byte)
        assert encode_address_byte(address) == byte


class TestValidation:
    @pytest.mark.parametrize("house,unit", [("Q", 1), ("a", 1), ("", 1), ("A", 0), ("A", 17)])
    def test_bad_addresses_rejected(self, house, unit):
        with pytest.raises(X10Error):
            X10Address(house, unit)

    def test_parse(self):
        assert X10Address.parse("A1") == X10Address("A", 1)
        assert X10Address.parse("p16") == X10Address("P", 16)
        for bad in ["", "A", "1A", "A0", "AX"]:
            with pytest.raises(X10Error):
                X10Address.parse(bad)

    def test_str_roundtrip(self):
        for house in HOUSE_CODES:
            for unit in (1, 9, 16):
                address = X10Address(house, unit)
                assert X10Address.parse(str(address)) == address

    def test_bad_house_for_function_rejected(self):
        with pytest.raises(X10Error):
            encode_function_byte("Z", X10Function.ON)
