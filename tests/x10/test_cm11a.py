"""Tests for the CM11A serial protocol and the high-level controller."""

import pytest

from repro.errors import ChecksumError
from repro.net.frames import Frame
from repro.net.monitor import TrafficMonitor
from repro.x10.cm11a import make_header
from repro.x10.codes import X10Address, X10Function
from repro.x10.devices import LampModule, MotionSensor, RemoteHandset
from repro.x10.powerline import PowerlineTransceiver


class TestHeaderByte:
    def test_address_header(self):
        assert make_header(is_function=False) == 0x04

    def test_function_header(self):
        assert make_header(is_function=True) == 0x06

    def test_dim_bits(self):
        assert make_header(is_function=True, dims=11) == (11 << 3) | 0x06


class TestTransmitPath:
    def test_command_drives_powerline(self, sim, net, powerline, x10_setup):
        cm11a, controller = x10_setup
        lamp = LampModule(net, "lamp", powerline, X10Address("A", 1))
        sim.run_until_complete(controller.turn_on(X10Address("A", 1)))
        assert lamp.on
        assert cm11a.transmissions == 2  # address + function

    def test_serial_handshake_byte_sequence(self, sim, net, powerline, serial, x10_setup):
        """Verify the documented [hdr,code] / checksum / 0x00 / 0x55 dance
        happens on the serial wire."""
        cm11a, controller = x10_setup
        monitor = TrafficMonitor(trace_enabled=True).watch(serial)
        sim.run_until_complete(controller.turn_on(X10Address("A", 1)))
        # 2 transmissions x 4 serial exchanges ([hdr,code], cksum, ack, ready)
        assert monitor.frames_for("serial") == 8

    def test_commands_queue_when_busy(self, sim, net, powerline, x10_setup):
        cm11a, controller = x10_setup
        lamp_a = LampModule(net, "a", powerline, X10Address("A", 1))
        lamp_b = LampModule(net, "b", powerline, X10Address("A", 2))
        future_a = controller.turn_on(X10Address("A", 1))
        future_b = controller.turn_on(X10Address("A", 2))
        sim.run_until_complete(future_a)
        sim.run_until_complete(future_b)
        assert lamp_a.on and lamp_b.on

    def test_dim_percent_mapped_to_steps(self, sim, net, powerline, x10_setup):
        cm11a, controller = x10_setup
        lamp = LampModule(net, "lamp", powerline, X10Address("A", 1))
        sim.run_until_complete(controller.turn_on(X10Address("A", 1)))
        sim.run_until_complete(controller.dim(X10Address("A", 1), 50))
        assert 40 <= lamp.level <= 60

    def test_checksum_corruption_retried_then_fails(self, sim, net, powerline, serial, x10_setup):
        cm11a, controller = x10_setup

        # Corrupt every serial frame from the CM11A to the PC: flip bytes of
        # single-byte checksum frames.
        original_transmit = serial.transmit

        def corrupting_transmit(sender, frame):
            if sender is cm11a.port.interface and len(frame.payload) == 1:
                frame = Frame(frame.src, frame.dst, frame.protocol,
                              bytes([frame.payload[0] ^ 0xFF]), frame.note)
            return original_transmit(sender, frame)

        serial.transmit = corrupting_transmit
        future = controller.turn_on(X10Address("A", 1))
        with pytest.raises(ChecksumError):
            sim.run_until_complete(future, timeout=300.0)
        assert controller.driver.checksum_retries >= 3


class TestReceivePath:
    def test_handset_press_surfaces_as_event(self, sim, net, powerline, x10_setup):
        cm11a, controller = x10_setup
        events = []
        controller.on_event(lambda a, f, d: events.append((str(a), f)))
        handset = RemoteHandset(net, "handset", powerline)
        handset.press_on(X10Address("C", 7))
        sim.run_for(5.0)
        assert events == [("C7", X10Function.ON)]

    def test_motion_sensor_events(self, sim, net, powerline, x10_setup):
        cm11a, controller = x10_setup
        events = []
        controller.on_event(lambda a, f, d: events.append((str(a), f)))
        sensor = MotionSensor(net, "pir", powerline, X10Address("A", 9), off_delay=8.0)
        sensor.trigger()
        sim.run_for(20.0)
        assert ("A9", X10Function.ON) in events
        assert ("A9", X10Function.OFF) in events

    def test_multiple_events_batched_in_one_upload(self, sim, net, powerline, x10_setup):
        cm11a, controller = x10_setup
        events = []
        controller.on_event(lambda a, f, d: events.append(str(a)))
        handset = RemoteHandset(net, "handset", powerline)
        handset.press_on(X10Address("A", 1))
        handset.press_on(X10Address("A", 2))
        sim.run_for(10.0)
        assert events == ["A1", "A2"]

    def test_function_without_address_not_reported_per_unit(self, sim, net, powerline, x10_setup):
        cm11a, controller = x10_setup
        events = []
        controller.on_event(lambda a, f, d: events.append((str(a), f)))
        sender_node = net.create_node("bare")
        sender = PowerlineTransceiver(net, sender_node, powerline)
        sender.transmit_function("D", X10Function.ON)  # no preceding address
        sim.run_for(5.0)
        assert events == []

    def test_rx_buffer_overrun_drops_silently(self, sim, net, powerline, serial, x10_setup):
        cm11a, controller = x10_setup
        # Detach the PC by breaking the serial link so polls are never
        # answered; flood the powerline.
        for iface in list(serial.interfaces):
            iface.up = False
        handset = RemoteHandset(net, "handset", powerline)
        for unit in range(1, 13):
            handset.press_on(X10Address("A", ((unit - 1) % 16) + 1))
        sim.run_for(60.0)
        # Buffer capped; the box survives.
        assert len(cm11a._rx_buffer) <= 8
