"""Property-based tests for CM11A header bytes and end-to-end commands."""

from hypothesis import given, settings, strategies as st

from repro.net.network import Network
from repro.net.segment import PowerlineSegment, SerialLink
from repro.net.simkernel import Simulator
from repro.x10.cm11a import Cm11aInterface, make_header
from repro.x10.codes import HOUSE_CODES, X10Address, X10Function
from repro.x10.controller import X10Controller
from repro.x10.devices import ApplianceModule


class TestHeaderProperties:
    @given(st.booleans(), st.integers(min_value=0, max_value=22))
    def test_header_fields_recoverable(self, is_function, dims):
        header = make_header(is_function, dims)
        assert bool(header & 0x02) == is_function
        assert (header >> 3) & 0x1F == dims
        assert header & 0x04  # the always-set bit

    @given(st.booleans(), st.integers(min_value=0, max_value=22))
    def test_header_is_one_byte(self, is_function, dims):
        assert 0 <= make_header(is_function, dims) <= 0xFF


class TestEndToEndProperty:
    @settings(max_examples=20, deadline=None)
    @given(
        st.sampled_from(sorted(HOUSE_CODES)),
        st.integers(min_value=1, max_value=16),
    )
    def test_any_address_commandable(self, house, unit):
        """Whatever the address, a full CM11A round trip switches exactly
        that module."""
        sim = Simulator()
        net = Network(sim)
        powerline = net.create_segment(PowerlineSegment, "pl")
        serial = net.create_segment(SerialLink, "ser")
        Cm11aInterface(net, "cm11a", serial, powerline)
        pc = net.create_node("pc")
        controller = X10Controller(net, pc, serial)
        target = ApplianceModule(net, "target", powerline, X10Address(house, unit))
        other_unit = unit % 16 + 1
        other = ApplianceModule(net, "other", powerline, X10Address(house, other_unit))
        sim.run_until_complete(controller.turn_on(X10Address(house, unit)))
        assert target.on
        assert not other.on
