"""Tests for the HTTP/1.0-style transport."""

import pytest

from repro.errors import HttpError
from repro.net.simkernel import SimFuture
from repro.soap.http import (
    HttpClient,
    HttpRequest,
    HttpResponse,
    HttpServer,
    expect_ok,
)


@pytest.fixture
def server_client(sim, two_hosts):
    a, b = two_hosts
    server = HttpServer(b, 80)
    client = HttpClient(a)
    return sim, server, client, b.local_address()


class TestMessages:
    def test_request_serialisation(self):
        request = HttpRequest("POST", "/soap/Calc", {"X-Thing": "1"}, b"body")
        raw = request.to_bytes()
        assert raw.startswith(b"POST /soap/Calc HTTP/1.0\r\n")
        assert b"Content-Length: 4" in raw
        assert b"Connection: close" in raw
        assert raw.endswith(b"\r\n\r\nbody")

    def test_response_defaults_reason(self):
        assert HttpResponse(404).reason == "Not Found"
        assert HttpResponse(200).ok
        assert not HttpResponse(500).ok

    def test_header_lookup_case_insensitive(self):
        request = HttpRequest("GET", "/", {"Content-Type": "text/xml"})
        assert request.header("content-type") == "text/xml"
        assert request.header("missing", "dflt") == "dflt"

    def test_expect_ok_raises_on_error_status(self):
        with pytest.raises(HttpError):
            expect_ok(HttpResponse(500, body=b"oops"))
        response = HttpResponse(200)
        assert expect_ok(response) is response


class TestExchanges:
    def test_get_roundtrip(self, server_client):
        sim, server, client, address = server_client
        server.register("/hello", lambda req: HttpResponse(200, body=b"hi " + req.method.encode()))
        response = sim.run_until_complete(client.get(address, 80, "/hello"))
        assert response.status == 200
        assert response.body == b"hi GET"

    def test_post_body_delivered(self, server_client):
        sim, server, client, address = server_client
        bodies = []

        def handler(request):
            bodies.append(request.body)
            return HttpResponse(200, body=b"ok")

        server.register("/submit", handler)
        payload = b"x" * 5000  # several MTUs
        response = sim.run_until_complete(client.post(address, 80, "/submit", payload))
        assert response.status == 200
        assert bodies == [payload]

    def test_unknown_path_404(self, server_client):
        sim, server, client, address = server_client
        response = sim.run_until_complete(client.get(address, 80, "/nope"))
        assert response.status == 404

    def test_prefix_routing(self, server_client):
        sim, server, client, address = server_client
        server.register_prefix("/soap/", lambda req: HttpResponse(200, body=req.path.encode()))
        response = sim.run_until_complete(client.get(address, 80, "/soap/AnyService"))
        assert response.body == b"/soap/AnyService"

    def test_handler_exception_becomes_500(self, server_client):
        sim, server, client, address = server_client

        def broken(request):
            raise RuntimeError("handler bug")

        server.register("/broken", broken)
        response = sim.run_until_complete(client.get(address, 80, "/broken"))
        assert response.status == 500
        assert b"handler bug" in response.body

    def test_async_handler_resolves_later(self, server_client):
        sim, server, client, address = server_client

        def slow(request):
            future = SimFuture()
            sim.schedule(5.0, future.set_result, HttpResponse(200, body=b"eventually"))
            return future

        server.register("/slow", slow)
        t0 = sim.now
        response = sim.run_until_complete(client.get(address, 80, "/slow"))
        assert response.body == b"eventually"
        assert sim.now - t0 >= 5.0

    def test_async_handler_failure_becomes_500(self, server_client):
        sim, server, client, address = server_client

        def failing(request):
            return SimFuture.failed(ValueError("deferred bug"))

        server.register("/fail", failing)
        response = sim.run_until_complete(client.get(address, 80, "/fail"))
        assert response.status == 500

    def test_each_exchange_uses_fresh_connection(self, server_client):
        """HTTP/1.0 behaviour: connection per request (the stack weight
        the paper's Section 4.2 complains about)."""
        sim, server, client, address = server_client
        server.register("/a", lambda req: HttpResponse(200))
        for _ in range(3):
            sim.run_until_complete(client.get(address, 80, "/a"))
        assert client.requests_sent == 3
        assert server.requests_served == 3
        # After the close handshakes drain, no connections linger.
        sim.run()
        assert client.stack.open_connections == 0

    def test_closed_server_refuses(self, sim, two_hosts):
        a, b = two_hosts
        server = HttpServer(b, 80)
        client = HttpClient(a)
        server.close()
        with pytest.raises(Exception):
            sim.run_until_complete(client.get(b.local_address(), 80, "/"))

    def test_concurrent_requests_from_one_client(self, server_client):
        sim, server, client, address = server_client
        server.register("/n", lambda req: HttpResponse(200, body=req.header("X-N").encode()))
        futures = [
            client.request(address, 80, "GET", "/n", headers={"X-N": str(n)})
            for n in range(5)
        ]
        results = [sim.run_until_complete(f) for f in futures]
        assert [r.body for r in results] == [b"0", b"1", b"2", b"3", b"4"]
