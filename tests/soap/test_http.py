"""Tests for the HTTP/1.0-style transport and the keep-alive fast path."""

import pytest

from repro.errors import HttpError
from repro.net.simkernel import SimFuture
from repro.soap.http import (
    FAST_INTERCHANGE,
    FEATURES_HEADER,
    HttpClient,
    HttpRequest,
    HttpResponse,
    HttpServer,
    InterchangeConfig,
    _parse_head,
    expect_ok,
    gzip_bytes,
)


@pytest.fixture
def server_client(sim, two_hosts):
    a, b = two_hosts
    server = HttpServer(b, 80)
    client = HttpClient(a)
    return sim, server, client, b.local_address()


class TestMessages:
    def test_request_serialisation(self):
        request = HttpRequest("POST", "/soap/Calc", {"X-Thing": "1"}, b"body")
        raw = request.to_bytes()
        assert raw.startswith(b"POST /soap/Calc HTTP/1.0\r\n")
        assert b"Content-Length: 4" in raw
        assert b"Connection: close" in raw
        assert raw.endswith(b"\r\n\r\nbody")

    def test_response_defaults_reason(self):
        assert HttpResponse(404).reason == "Not Found"
        assert HttpResponse(200).ok
        assert not HttpResponse(500).ok

    def test_header_lookup_case_insensitive(self):
        request = HttpRequest("GET", "/", {"Content-Type": "text/xml"})
        assert request.header("content-type") == "text/xml"
        assert request.header("missing", "dflt") == "dflt"

    def test_expect_ok_raises_on_error_status(self):
        with pytest.raises(HttpError):
            expect_ok(HttpResponse(500, body=b"oops"))
        response = HttpResponse(200)
        assert expect_ok(response) is response


class TestExchanges:
    def test_get_roundtrip(self, server_client):
        sim, server, client, address = server_client
        server.register("/hello", lambda req: HttpResponse(200, body=b"hi " + req.method.encode()))
        response = sim.run_until_complete(client.get(address, 80, "/hello"))
        assert response.status == 200
        assert response.body == b"hi GET"

    def test_post_body_delivered(self, server_client):
        sim, server, client, address = server_client
        bodies = []

        def handler(request):
            bodies.append(request.body)
            return HttpResponse(200, body=b"ok")

        server.register("/submit", handler)
        payload = b"x" * 5000  # several MTUs
        response = sim.run_until_complete(client.post(address, 80, "/submit", payload))
        assert response.status == 200
        assert bodies == [payload]

    def test_unknown_path_404(self, server_client):
        sim, server, client, address = server_client
        response = sim.run_until_complete(client.get(address, 80, "/nope"))
        assert response.status == 404

    def test_prefix_routing(self, server_client):
        sim, server, client, address = server_client
        server.register_prefix("/soap/", lambda req: HttpResponse(200, body=req.path.encode()))
        response = sim.run_until_complete(client.get(address, 80, "/soap/AnyService"))
        assert response.body == b"/soap/AnyService"

    def test_handler_exception_becomes_500(self, server_client):
        sim, server, client, address = server_client

        def broken(request):
            raise RuntimeError("handler bug")

        server.register("/broken", broken)
        response = sim.run_until_complete(client.get(address, 80, "/broken"))
        assert response.status == 500
        assert b"handler bug" in response.body

    def test_async_handler_resolves_later(self, server_client):
        sim, server, client, address = server_client

        def slow(request):
            future = SimFuture()
            sim.schedule(5.0, future.set_result, HttpResponse(200, body=b"eventually"))
            return future

        server.register("/slow", slow)
        t0 = sim.now
        response = sim.run_until_complete(client.get(address, 80, "/slow"))
        assert response.body == b"eventually"
        assert sim.now - t0 >= 5.0

    def test_async_handler_failure_becomes_500(self, server_client):
        sim, server, client, address = server_client

        def failing(request):
            return SimFuture.failed(ValueError("deferred bug"))

        server.register("/fail", failing)
        response = sim.run_until_complete(client.get(address, 80, "/fail"))
        assert response.status == 500

    def test_each_exchange_uses_fresh_connection(self, server_client):
        """HTTP/1.0 behaviour: connection per request (the stack weight
        the paper's Section 4.2 complains about)."""
        sim, server, client, address = server_client
        server.register("/a", lambda req: HttpResponse(200))
        for _ in range(3):
            sim.run_until_complete(client.get(address, 80, "/a"))
        assert client.requests_sent == 3
        assert server.requests_served == 3
        # After the close handshakes drain, no connections linger.
        sim.run()
        assert client.stack.open_connections == 0

    def test_closed_server_refuses(self, sim, two_hosts):
        a, b = two_hosts
        server = HttpServer(b, 80)
        client = HttpClient(a)
        server.close()
        with pytest.raises(Exception):
            sim.run_until_complete(client.get(b.local_address(), 80, "/"))

    def test_concurrent_requests_from_one_client(self, server_client):
        sim, server, client, address = server_client
        server.register("/n", lambda req: HttpResponse(200, body=req.header("X-N").encode()))
        futures = [
            client.request(address, 80, "GET", "/n", headers={"X-N": str(n)})
            for n in range(5)
        ]
        results = [sim.run_until_complete(f) for f in futures]
        assert [r.body for r in results] == [b"0", b"1", b"2", b"3", b"4"]


class TestHeaderParsing:
    def test_duplicate_headers_fold_comma_joined(self):
        """Repeated header lines must fold per RFC 2616 §4.2, not silently
        overwrite each other (regression: the old parser kept only the
        last occurrence)."""
        raw = (
            b"GET / HTTP/1.0\r\n"
            b"X-Tag: one\r\n"
            b"X-Tag: two\r\n"
            b"x-tag: three"
        )
        _start, headers = _parse_head(raw)
        assert headers == {"X-Tag": "one, two, three"}

    def test_duplicate_fold_keeps_first_spelling(self):
        raw = b"GET / HTTP/1.0\r\nAccept-encoding: gzip\r\nACCEPT-ENCODING: br"
        _start, headers = _parse_head(raw)
        assert headers == {"Accept-encoding": "gzip, br"}

    def test_header_index_survives_post_construction_mutation(self):
        """The case-folded index is built once, but additions after
        construction must still be visible through header()."""
        response = HttpResponse(200, headers={"Content-Type": "text/xml"})
        response.headers["X-Late"] = "yes"
        assert response.header("x-late") == "yes"
        assert response.header("CONTENT-TYPE") == "text/xml"


class TestExtensionHeaderRoundTrip:
    """Unknown ``X-*`` extension headers (the trace context travels as
    ``X-Trace``) must survive serialize → parse unchanged, in both
    directions, without the transport knowing what they mean."""

    @staticmethod
    def _head_of(raw: bytes):
        head, _sep, _body = raw.partition(b"\r\n\r\n")
        return _parse_head(head)

    def test_request_extension_headers_round_trip(self):
        request = HttpRequest(
            "POST",
            "/soap/Calc",
            {"X-Trace": "t000001;s000003", "X-Custom-Flag": "on"},
            b"<xml/>",
        )
        start, headers = self._head_of(request.to_bytes())
        assert start == ["POST", "/soap/Calc", "HTTP/1.0"]
        assert headers["X-Trace"] == "t000001;s000003"
        assert headers["X-Custom-Flag"] == "on"

    def test_response_extension_headers_round_trip(self):
        response = HttpResponse(200, headers={"X-Trace": "t000001;s000004"})
        _start, headers = self._head_of(response.to_bytes())
        assert headers["X-Trace"] == "t000001;s000004"

    def test_reserialized_message_preserves_extension_headers(self):
        """Parse a request off the wire, rebuild it, and the unknown
        header is still there — proxies/servers that reconstruct messages
        must not shed extension headers."""
        original = HttpRequest("POST", "/p", {"X-Trace": "t000002;s000001"}, b"hi")
        start, headers = self._head_of(original.to_bytes())
        rebuilt = HttpRequest(start[0], start[1], headers, b"hi", version=start[2])
        _start2, headers2 = self._head_of(rebuilt.to_bytes())
        assert headers2["X-Trace"] == "t000002;s000001"

    def test_duplicate_extension_headers_fold_on_parse(self):
        """Duplicate X-* lines fold comma-joined (RFC 2616 §4.2) like any
        other header — the folded value then round-trips as one line."""
        raw = (
            b"POST /p HTTP/1.0\r\n"
            b"X-Trace: t000001;s000001\r\n"
            b"x-trace: t000001;s000002"
        )
        _start, headers = _parse_head(raw)
        assert headers == {"X-Trace": "t000001;s000001, t000001;s000002"}
        rebuilt = HttpRequest("POST", "/p", headers, b"")
        _s, reparsed = self._head_of(rebuilt.to_bytes())
        assert reparsed["X-Trace"] == "t000001;s000001, t000001;s000002"


class TestKeepAlive:
    @pytest.fixture
    def fast_pair(self, sim, two_hosts):
        a, b = two_hosts
        server = HttpServer(b, 80)
        client = HttpClient(a, FAST_INTERCHANGE)
        return sim, server, client, b.local_address()

    def test_connection_reused_across_exchanges(self, fast_pair):
        sim, server, client, address = fast_pair
        server.register("/a", lambda req: HttpResponse(200, body=b"ok"))
        for _ in range(4):
            response = sim.run_until_complete(client.get(address, 80, "/a"))
            assert response.status == 200
        assert server.requests_served == 4
        assert server.keepalive_reuses == 3
        assert client.pooled_destinations == 1

    def test_idle_timeout_closes_pooled_connection(self, sim, two_hosts):
        a, b = two_hosts
        server = HttpServer(b, 80)
        client = HttpClient(a, InterchangeConfig(keep_alive=True, idle_timeout=5.0))
        server.register("/a", lambda req: HttpResponse(200))
        sim.run_until_complete(client.get(b.local_address(), 80, "/a"))
        assert client.pooled_destinations == 1
        sim.run()  # drains the idle timer
        assert client.pooled_destinations == 0
        assert client.stack.open_connections == 0

    def test_invalidate_evicts_and_future_requests_reconnect(self, fast_pair):
        sim, server, client, address = fast_pair
        server.register("/a", lambda req: HttpResponse(200))
        sim.run_until_complete(client.get(address, 80, "/a"))
        client.invalidate(address)
        assert client.pooled_destinations == 0
        assert client.pooled_evictions == 1
        response = sim.run_until_complete(client.get(address, 80, "/a"))
        assert response.status == 200

    def test_pool_lru_cap_evicts_idle_destination(self, sim, net, eth):
        from tests.conftest import make_host

        hosts = [make_host(net, f"h{i}", eth) for i in range(4)]
        client_stack = make_host(net, "client", eth)
        servers = [HttpServer(stack, 80) for stack in hosts]
        for server in servers:
            server.register("/a", lambda req: HttpResponse(200))
        client = HttpClient(
            client_stack, InterchangeConfig(keep_alive=True, pool_destinations=2)
        )
        for stack in hosts[:3]:
            sim.run_until_complete(client.get(stack.local_address(), 80, "/a"))
        # Cap is 2: pooling the 3rd destination evicted the LRU first one.
        assert client.pooled_destinations == 2
        assert client.pooled_evictions == 1

    def test_legacy_server_close_degrades_transparently(self, sim, two_hosts):
        """A keep-alive client talking to a server that answers
        ``Connection: close`` must still complete every exchange."""
        a, b = two_hosts
        server = HttpServer(b, 80)
        # Handler forces legacy behaviour by overriding the connection token.
        server.register(
            "/a", lambda req: HttpResponse(200, headers={"Connection": "close"})
        )
        client = HttpClient(a, InterchangeConfig(keep_alive=True))
        for _ in range(3):
            response = sim.run_until_complete(client.get(b.local_address(), 80, "/a"))
            assert response.status == 200
        sim.run()
        assert client.stack.open_connections == 0


class TestCompression:
    def test_gzip_negotiation_roundtrip(self, sim, two_hosts):
        a, b = two_hosts
        server = HttpServer(b, 80)
        client = HttpClient(a, InterchangeConfig(compress=True, compress_min_bytes=10))
        big = b"event " * 200

        def handler(request):
            return HttpResponse(200, body=big)

        server.register("/big", handler)
        address = b.local_address()
        first = sim.run_until_complete(client.post(address, 80, "/big", b"hello-world"))
        # First exchange: response was compressed (we advertised), and the
        # server's capability echo taught us the peer speaks gzip.
        assert first.body == big
        assert first.header("Content-Encoding") == "gzip"
        assert "gzip" in client.peer_features(address, 80)
        # Second request: body large enough now travels compressed.
        second = sim.run_until_complete(client.post(address, 80, "/big", b"x" * 500))
        assert second.body == big
        assert client.compressed_requests == 1

    def test_gzip_deterministic(self):
        assert gzip_bytes(b"payload" * 50) == gzip_bytes(b"payload" * 50)

    def test_legacy_exchange_carries_no_negotiation_headers(self, server_client):
        """A default-config client must not leak fast-path headers — the
        2002 wire format is the baseline the experiments measure."""
        sim, server, client, address = server_client
        seen = {}

        def handler(request):
            seen.update(request.headers)
            return HttpResponse(200, body=b"ok" * 200)

        server.register("/a", handler)
        response = sim.run_until_complete(client.get(address, 80, "/a"))
        assert FEATURES_HEADER not in seen
        assert "Accept-Encoding" not in seen
        assert response.header("Content-Encoding") == ""
        assert response.header(FEATURES_HEADER) == ""
