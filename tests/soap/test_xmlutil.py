"""Focused tests for the XML toolkit helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SoapError
from repro.soap import xmlutil
from repro.soap.xmlutil import is_xml_name, local_name, parse_document, qname


class TestNames:
    @pytest.mark.parametrize(
        "name", ["a", "Abc", "_x", "op_1", "with-dash", "with.dot", "arg0"]
    )
    def test_valid_names(self, name):
        assert is_xml_name(name)

    @pytest.mark.parametrize(
        "name", ["", "1abc", "-x", ".x", "has space", "a<b", "a&b", "Ĳ", "漢字", "a:b"]
    )
    def test_invalid_names(self, name):
        assert not is_xml_name(name)

    @given(st.text(max_size=20))
    def test_accepted_names_are_always_parseable_as_element_names(self, name):
        if not is_xml_name(name):
            return
        parsed = parse_document(f"<{name}/>".encode())
        assert parsed.tag == name


class TestParsing:
    def test_qname_and_local_name(self):
        element = parse_document(b'<a xmlns="urn:x"><b/></a>')
        assert element.tag == qname("urn:x", "a")
        assert local_name(element) == "a"
        assert local_name(list(element)[0]) == "b"

    def test_unprefixed_local_name_passthrough(self):
        element = parse_document(b"<plain/>")
        assert local_name(element) == "plain"

    def test_require_child_errors_name_the_parent(self):
        element = parse_document(b'<a xmlns="urn:x"/>')
        with pytest.raises(SoapError, match="missing required element"):
            xmlutil.require_child(element, "urn:x", "b")

    def test_find_child_returns_none_when_absent(self):
        element = parse_document(b'<a xmlns="urn:x"/>')
        assert xmlutil.find_child(element, "urn:x", "b") is None

    def test_namespaced_attribute_lookup(self):
        element = parse_document(
            b'<a xmlns:p="urn:p" p:type="int" plain="1"/>'
        )
        assert xmlutil.attr(element, "urn:p", "type") == "int"
        assert xmlutil.attr(element, "urn:p", "missing") is None

    @pytest.mark.parametrize("bad", [b"", b"<", b"<a>", b"<a></b>", b"text only"])
    def test_malformed_documents_raise_soap_error(self, bad):
        with pytest.raises(SoapError):
            parse_document(bad)

    def test_str_input_accepted(self):
        assert parse_document("<a/>").tag == "a"
