"""Tests for the SOAP RPC client/server pair."""

import pytest

from repro.errors import SoapFault
from repro.net.simkernel import SimFuture
from repro.soap.client import SoapClient
from repro.soap.server import SoapServer


@pytest.fixture
def rpc(sim, two_hosts):
    a, b = two_hosts
    server = SoapServer(b)

    def calc(operation, args):
        if operation == "add":
            return args[0] + args[1]
        if operation == "divide":
            return args[0] / args[1]
        if operation == "echo":
            return args[0]
        raise ValueError(f"no operation {operation}")

    server.register_service("Calc", calc)
    client = SoapClient(a)
    return sim, server, client, b.local_address()


class TestRpc:
    def test_simple_call(self, rpc):
        sim, server, client, address = rpc
        assert sim.run_until_complete(client.call(address, "Calc", "add", [40, 2])) == 42
        assert server.calls_handled == 1
        assert client.calls_sent == 1

    def test_structured_arguments_and_results(self, rpc):
        sim, server, client, address = rpc
        payload = {"device": "vcr", "commands": ["play", "stop"], "level": 0.5}
        result = sim.run_until_complete(client.call(address, "Calc", "echo", [payload]))
        assert result == payload

    def test_remote_exception_becomes_fault(self, rpc):
        sim, server, client, address = rpc
        with pytest.raises(SoapFault) as excinfo:
            sim.run_until_complete(client.call(address, "Calc", "frobnicate", [1]))
        assert "no operation" in excinfo.value.faultstring
        assert server.faults_returned == 1

    def test_python_error_in_dispatcher_becomes_fault(self, rpc):
        sim, server, client, address = rpc
        with pytest.raises(SoapFault):
            sim.run_until_complete(client.call(address, "Calc", "divide", [1, 0]))

    def test_unknown_service_faults(self, rpc):
        sim, server, client, address = rpc
        with pytest.raises(SoapFault) as excinfo:
            sim.run_until_complete(client.call(address, "Ghost", "op", []))
        assert "no such service" in excinfo.value.faultstring

    def test_async_dispatcher(self, rpc):
        sim, server, client, address = rpc

        def deferred(operation, args):
            future = SimFuture()
            sim.schedule(2.0, future.set_result, args[0] * 2)
            return future

        server.register_service("Async", deferred)
        assert sim.run_until_complete(client.call(address, "Async", "double", [21])) == 42

    def test_async_dispatcher_failure_becomes_fault(self, rpc):
        sim, server, client, address = rpc

        def deferred(operation, args):
            future = SimFuture()
            sim.schedule(1.0, future.set_exception, RuntimeError("late boom"))
            return future

        server.register_service("AsyncFail", deferred)
        with pytest.raises(SoapFault, match="late boom"):
            sim.run_until_complete(client.call(address, "AsyncFail", "op", []))

    def test_multiple_services_one_server(self, rpc):
        sim, server, client, address = rpc
        server.register_service("Other", lambda op, args: "other:" + op)
        assert sim.run_until_complete(client.call(address, "Other", "ping", [])) == "other:ping"
        assert sim.run_until_complete(client.call(address, "Calc", "add", [1, 1])) == 2
        assert server.service_names == ["Calc", "Other"]

    def test_duplicate_service_registration_rejected(self, rpc):
        _, server, _, _ = rpc
        with pytest.raises(Exception):
            server.register_service("Calc", lambda op, args: None)

    def test_unregister_makes_service_unknown(self, rpc):
        sim, server, client, address = rpc
        server.unregister_service("Calc")
        with pytest.raises(SoapFault):
            sim.run_until_complete(client.call(address, "Calc", "add", [1, 2]))

    def test_call_latency_reflects_handshake_and_payload(self, rpc):
        """SOAP's cost is visible: one call takes multiple network RTTs."""
        sim, server, client, address = rpc
        t0 = sim.now
        sim.run_until_complete(client.call(address, "Calc", "add", [1, 2]))
        elapsed = sim.now - t0
        assert elapsed > 0.001  # more than a millisecond of virtual time
