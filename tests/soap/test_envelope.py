"""Tests for SOAP envelopes and the Section-5 value encoding."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import MarshallingError, SoapError, SoapFault
from repro.soap import envelope
from repro.soap.envelope import build_fault, build_request, build_response, parse_envelope
from repro.soap.xmlutil import XmlWriter


def roundtrip_value(value):
    data = build_request("op", [value])
    message = parse_envelope(data)
    assert message.kind == "request"
    return message.args[0]


# Identifier-like ASCII keys only: SOAP structs become XML element names.
_keys = st.text(alphabet="abcdefghijKLMNOP", min_size=1, max_size=10)

# XML 1.0 cannot carry control characters or unpaired surrogates.
_xml_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cc", "Cs")), max_size=50
)

_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False),
    _xml_text,
    st.binary(max_size=50),
)

_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(_keys, children, max_size=5),
    ),
    max_leaves=20,
)


class TestValueRoundTrips:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -42,
            2**31,
            1.5,
            -0.25,
            "",
            "plain",
            "escapes <&> \"quotes\" 'and' é漢",
            b"",
            b"\x00\xff binary",
            [],
            [1, "two", 3.0, None],
            {},
            {"nested": {"list": [1, [2, [3]]]}},
        ],
    )
    def test_specific_values(self, value):
        result = roundtrip_value(value)
        if isinstance(value, tuple):
            value = list(value)
        assert result == value

    @given(_values)
    def test_arbitrary_values_roundtrip(self, value):
        def normalise(v):
            if isinstance(v, tuple):
                return [normalise(item) for item in v]
            if isinstance(v, list):
                return [normalise(item) for item in v]
            if isinstance(v, dict):
                return {k: normalise(m) for k, m in v.items()}
            if isinstance(v, bytearray):
                return bytes(v)
            return v

        assert roundtrip_value(value) == normalise(value)

    def test_bool_distinct_from_int(self):
        assert roundtrip_value(True) is True
        assert roundtrip_value(1) == 1
        assert not isinstance(roundtrip_value(1), bool)

    def test_unencodable_value_rejected(self):
        with pytest.raises(MarshallingError):
            build_request("op", [object()])

    def test_bad_struct_key_rejected(self):
        with pytest.raises(MarshallingError):
            build_request("op", [{"no spaces allowed": 1}])
        with pytest.raises(MarshallingError):
            build_request("op", [{1: "non-string key"}])


class TestEnvelopes:
    def test_request_shape(self):
        message = parse_envelope(build_request("turnOn", [1, "two"]))
        assert message.kind == "request"
        assert message.operation == "turnOn"
        assert message.args == [1, "two"]

    def test_response_shape(self):
        message = parse_envelope(build_response("turnOn", {"ok": True}))
        assert message.kind == "response"
        assert message.operation == "turnOn"
        assert message.value == {"ok": True}

    def test_void_response(self):
        message = parse_envelope(build_response("reset", None))
        assert message.value is None

    def test_fault_shape_and_raise(self):
        message = parse_envelope(build_fault("SOAP-ENV:Server", "boom", "detail here"))
        assert message.kind == "fault"
        assert message.faultcode == "SOAP-ENV:Server"
        with pytest.raises(SoapFault) as excinfo:
            message.raise_if_fault()
        assert excinfo.value.detail == "detail here"

    def test_request_envelope_is_textual_xml(self):
        data = build_request("op", [42])
        text = data.decode("utf-8")
        assert text.startswith('<?xml version="1.0"')
        assert "SOAP-ENV:Envelope" in text
        assert 'xsi:type="xsd:int"' in text

    def test_bad_operation_name_rejected(self):
        with pytest.raises(SoapError):
            build_request("has space", [])
        with pytest.raises(SoapError):
            build_response("1digit", None)

    @pytest.mark.parametrize(
        "bad",
        [
            b"",
            b"not xml at all",
            b"<wrong/>",
            b'<?xml version="1.0"?><SOAP-ENV:Envelope xmlns:SOAP-ENV="http://schemas.xmlsoap.org/soap/envelope/"><SOAP-ENV:Body/></SOAP-ENV:Envelope>',
        ],
    )
    def test_malformed_envelopes_rejected(self, bad):
        with pytest.raises(SoapError):
            parse_envelope(bad)

    def test_xml_payload_size_is_many_times_binary(self):
        """The cost the paper accepts for SOAP's simplicity."""
        from repro.jini.marshalling import marshal

        args = [5, "play", True]
        soap_size = len(build_request("invoke", args))
        binary_size = len(marshal({"op": "invoke", "args": args}))
        assert soap_size > 3 * binary_size


class TestXmlWriter:
    def test_nested_document(self):
        writer = XmlWriter(declaration=False)
        writer.open("a", {"x": "1"})
        writer.leaf("b", text="text")
        writer.leaf("c")
        writer.close()
        assert writer.tostring() == '<a x="1"><b>text</b><c/></a>'

    def test_unclosed_elements_detected(self):
        writer = XmlWriter()
        writer.open("a")
        with pytest.raises(SoapError):
            writer.tostring()

    def test_close_without_open_detected(self):
        writer = XmlWriter()
        with pytest.raises(SoapError):
            writer.close()

    def test_attribute_escaping(self):
        writer = XmlWriter(declaration=False)
        writer.leaf("a", {"v": 'quote " amp & lt <'}, None)
        text = writer.tostring()
        assert "&quot;" in text and "&amp;" in text and "&lt;" in text

    @given(st.text(max_size=100))
    def test_text_escaping_roundtrips_through_parser(self, text):
        import xml.etree.ElementTree as ET

        # Strip control chars XML 1.0 cannot carry at all, and \r which the
        # parser normalises to \n per the XML spec.
        clean = "".join(
            ch for ch in text if ch in "\t\n" or (ord(ch) >= 0x20 and ord(ch) != 0x7F)
        )
        # Also strip surrogates, which cannot be encoded.
        clean = clean.encode("utf-8", errors="ignore").decode("utf-8")
        writer = XmlWriter(declaration=False)
        writer.leaf("t", text=clean)
        parsed = ET.fromstring(writer.tostring())
        assert (parsed.text or "") == clean


class TestTerseEnvelopes:
    """The negotiated compact encoding: same value model, far fewer bytes."""

    def roundtrip_terse(self, value):
        data = envelope.build_request_terse("op", [value])
        message = parse_envelope(data)
        assert message.kind == "request"
        assert message.wire_format == "terse"
        return message.args[0]

    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -42,
            2**31,
            1.5,
            -0.25,
            "",
            "plain",
            "escapes <&> \"quotes\" 'and' é漢",
            b"",
            b"\x00\xffbinary",
            [],
            [1, "two", 3.0],
            {},
            {"a": 1, "b": [True, None]},
            {"nested": {"deep": {"x": b"\x01"}}},
        ],
    )
    def test_examples_roundtrip(self, value):
        assert self.roundtrip_terse(value) == value

    @given(_values)
    def test_any_value_roundtrips(self, value):
        assert self.roundtrip_terse(value) == value

    def test_request_shape(self):
        data = envelope.build_request_terse("setPower", [True, "lamp"])
        assert data.startswith(b"<E><Q n=\"setPower\">")
        message = parse_envelope(data)
        assert message.operation == "setPower"
        assert message.args == [True, "lamp"]

    def test_response_roundtrip(self):
        data = envelope.build_response_terse("getTemp", 21.5)
        message = parse_envelope(data)
        assert message.kind == "response"
        assert message.operation == "getTemp"
        assert message.value == 21.5
        assert message.wire_format == "terse"

    def test_fault_roundtrip(self):
        data = envelope.build_fault_terse("SOAP-ENV:Server", "boom", "Detail")
        message = parse_envelope(data)
        assert message.kind == "fault"
        assert message.faultcode == "SOAP-ENV:Server"
        assert message.faultstring == "boom"
        assert message.detail == "Detail"

    def test_terse_is_much_smaller_than_verbose(self):
        args = [{"reading": 21.5, "unit": "C", "ok": True}, [1, 2, 3], "sensor-7"]
        verbose = build_request("report", args)
        terse = envelope.build_request_terse("report", args)
        assert len(terse) * 2 < len(verbose)

    def test_verbose_messages_still_parse_as_verbose(self):
        message = parse_envelope(build_request("op", [1]))
        assert message.wire_format == "verbose"

    def test_bad_operation_name_rejected(self):
        with pytest.raises(SoapError):
            envelope.build_request_terse("not a name", [])

    def test_bad_struct_key_rejected(self):
        with pytest.raises(MarshallingError):
            envelope.build_request_terse("op", [{"bad key": 1}])
