"""Tests for the reactor-era HTTP fast path: pipelined exchanges over one
pooled connection, vectored-wire negotiation, server shutdown answering
held exchanges with 503, and the idle-heap pool eviction (satellite of the
reactor transport PR)."""

import pytest

from repro.errors import TransportError
from repro.net.monitor import TrafficMonitor
from repro.net.simkernel import SimFuture
from repro.net.transport import PROTO_TCPV
from repro.soap.http import (
    REACTOR_INTERCHANGE,
    HttpClient,
    HttpResponse,
    HttpServer,
    InterchangeConfig,
)

from tests.conftest import make_host

#: Depth-8 reactor config without compression, so wire assertions stay
#: readable in tests that inspect traffic.
PIPELINED = InterchangeConfig(keep_alive=True, vectored=True, pipeline_depth=8)


@pytest.fixture
def reactor_pair(sim, two_hosts):
    a, b = two_hosts
    server = HttpServer(b, 80)
    client = HttpClient(a, PIPELINED)
    return sim, server, client, b.local_address()


def warm_up(sim, client, address, server):
    """One completed exchange: proves keep-alive so later requests pipeline."""
    server.register("/warmup", lambda req: HttpResponse(200))
    response = sim.run_until_complete(client.get(address, 80, "/warmup"))
    assert response.status == 200


class TestPipelining:
    def test_overlapped_exchanges_share_one_connection(self, reactor_pair):
        sim, server, client, address = reactor_pair

        def slow(request):
            future = SimFuture()
            sim.schedule(1.0, future.set_result, HttpResponse(200, body=request.path.encode()))
            return future

        server.register_prefix("/slow/", slow)
        warm_up(sim, client, address, server)
        t0 = sim.now
        futures = [client.get(address, 80, f"/slow/{n}") for n in range(6)]
        results = [sim.run_until_complete(f) for f in futures]
        assert [r.body for r in results] == [f"/slow/{n}".encode() for n in range(6)]
        # Pipelined: all six 1-second handlers ran concurrently on one
        # connection instead of serially (~6s) or per-connection.
        assert sim.now - t0 < 2.0
        assert client.pooled_destinations == 1
        assert server.keepalive_reuses >= 6

    def test_responses_flush_in_request_order(self, reactor_pair):
        sim, server, client, address = reactor_pair
        resolvers = {}

        def parked(request):
            future = SimFuture()
            resolvers[request.path] = future
            return future

        server.register_prefix("/p/", parked)
        warm_up(sim, client, address, server)
        first = client.get(address, 80, "/p/first")
        second = client.get(address, 80, "/p/second")
        # run_for, not run: a full drain would fire the exchange watchdog
        # on the deliberately-parked handlers.
        sim.run_for(1.0)
        # Resolve out of order: the second handler answers before the first.
        resolvers["/p/second"].set_result(HttpResponse(200, body=b"2nd"))
        sim.run_for(1.0)
        assert not first.done() and not second.done()  # head-of-line holds
        resolvers["/p/first"].set_result(HttpResponse(200, body=b"1st"))
        sim.run_for(1.0)
        assert first.result().body == b"1st"
        assert second.result().body == b"2nd"

    def test_first_exchange_on_fresh_connection_never_pipelines(self, reactor_pair):
        """Until the peer proves keep-alive, depth stays 1 — a legacy
        server must never see overlapped requests."""
        sim, server, client, address = reactor_pair
        concurrent = {"now": 0, "peak": 0}

        def tracking(request):
            concurrent["now"] += 1
            concurrent["peak"] = max(concurrent["peak"], concurrent["now"])
            future = SimFuture()

            def answer():
                concurrent["now"] -= 1
                future.set_result(HttpResponse(200))

            sim.schedule(0.5, answer)
            return future

        server.register_prefix("/t/", tracking)
        futures = [client.get(address, 80, f"/t/{n}") for n in range(4)]
        sim.run_until_complete(futures[0])
        assert concurrent["peak"] == 1  # unproven peer: strictly serial
        for future in futures[1:]:
            sim.run_until_complete(future)
        assert concurrent["peak"] > 1  # proof arrived: the rest overlapped

    def test_legacy_close_server_degrades_to_serial(self, sim, two_hosts):
        """A reactor client against a server that answers Connection:
        close completes every exchange, one connection each."""
        a, b = two_hosts
        server = HttpServer(b, 80)
        server.register(
            "/a", lambda req: HttpResponse(200, headers={"Connection": "close"})
        )
        client = HttpClient(a, PIPELINED)
        futures = [client.get(b.local_address(), 80, "/a") for _ in range(3)]
        for future in futures:
            assert sim.run_until_complete(future).status == 200
        sim.run()
        assert client.stack.open_connections == 0

    def test_reactor_interchange_advertises_vectored(self):
        assert "vectored" in REACTOR_INTERCHANGE.advertised_features.split()
        assert REACTOR_INTERCHANGE.pipeline_depth > 1
        assert REACTOR_INTERCHANGE.fast


class TestVectoredWire:
    def test_pipelined_burst_rides_vectored_frames(self, sim, net, eth):
        monitor = TrafficMonitor(trace_enabled=True).watch(eth)
        a = make_host(net, "client", eth)
        b = make_host(net, "server", eth)
        server = HttpServer(b, 80)
        server.register_prefix("/b/", lambda req: HttpResponse(200, body=b"ok"))
        client = HttpClient(a, PIPELINED)
        address = b.local_address()
        warm_up(sim, client, address, server)
        monitor.reset()
        futures = [client.get(address, 80, f"/b/{n}") for n in range(5)]
        for future in futures:
            assert sim.run_until_complete(future).status == 200
        # The same-instant burst coalesced client-side, and the server
        # (which saw the "vectored" advert) coalesced its responses too.
        assert monitor.frames_coalesced > 0
        assert any(entry.protocol == PROTO_TCPV for entry in monitor.trace)

    def test_legacy_client_wire_stays_plain(self, sim, net, eth):
        monitor = TrafficMonitor(trace_enabled=True).watch(eth)
        a = make_host(net, "client", eth)
        b = make_host(net, "server", eth)
        server = HttpServer(b, 80)
        server.register("/a", lambda req: HttpResponse(200, body=b"ok"))
        client = HttpClient(a)  # legacy config: no advert, no reactor wire
        for _ in range(3):
            assert sim.run_until_complete(client.get(b.local_address(), 80, "/a")).ok
        assert monitor.frames_coalesced == 0
        assert not any(entry.protocol == PROTO_TCPV for entry in monitor.trace)


class TestServerShutdown:
    def test_close_answers_parked_handlers_with_503(self, reactor_pair):
        sim, server, client, address = reactor_pair
        server.register("/held", lambda req: SimFuture())  # never resolves
        warm_up(sim, client, address, server)
        held = client.get(address, 80, "/held")
        sim.run_for(1.0)  # not run(): a drain would fire the watchdog
        assert not held.done()
        assert server.stack.reactor.parked == 1
        server.close()
        sim.run_for(1.0)
        response = held.result()
        assert response.status == 503
        assert server.stack.reactor.parked == 0

    def test_node_kill_fails_held_exchange_cleanly(self, reactor_pair):
        sim, server, client, address = reactor_pair
        server.register("/held", lambda req: SimFuture())
        warm_up(sim, client, address, server)
        held = client.get(address, 80, "/held")
        sim.run_for(1.0)
        server.stack.shutdown()  # node decommission, not a polite close
        sim.run_for(1.0)
        with pytest.raises(TransportError):
            held.result()
        assert server.stack.reactor.parked == 0
        assert server.stack.open_connections == 0

    def test_late_handler_resolution_after_close_is_harmless(self, reactor_pair):
        sim, server, client, address = reactor_pair
        parked = []

        def handler(request):
            future = SimFuture()
            parked.append(future)
            return future

        server.register("/held", handler)
        warm_up(sim, client, address, server)
        held = client.get(address, 80, "/held")
        sim.run_for(1.0)
        server.close()
        sim.run_for(1.0)
        assert held.result().status == 503
        # The original handler future resolving later must not answer the
        # already-503'd slot a second time.
        parked[0].set_result(HttpResponse(200, body=b"too late"))
        sim.run_for(1.0)
        assert held.result().status == 503


class TestIdleHeapEviction:
    """Satellite: pool idle eviction indexed by expiry deadline.  Finding
    the next victim pops the heap head — O(evicted + stale records) — and
    never scans the full pool."""

    def _filled_client(self, sim, net, eth, destinations):
        server_stack = make_host(net, "server", eth)
        client_stack = make_host(net, "client", eth)
        ports = list(range(8000, 8000 + destinations))
        for port in ports + [9000]:  # 9000: the over-cap destination
            HttpServer(server_stack, port).register(
                "/a", lambda req: HttpResponse(200)
            )
        client = HttpClient(
            client_stack,
            InterchangeConfig(
                keep_alive=True, pool_destinations=destinations, idle_timeout=0.0
            ),
        )
        address = server_stack.local_address()
        for port in ports:
            assert sim.run_until_complete(client.get(address, port, "/a")).ok
        return client, address, ports

    def test_thousand_idle_connections_evict_in_constant_pops(
        self, sim, net, eth, monkeypatch
    ):
        client, address, ports = self._filled_client(sim, net, eth, 1000)
        assert client.pooled_destinations == 1000

        import heapq as real_heapq

        import repro.soap.http as http_mod

        pops = {"count": 0}

        class CountingHeapq:
            heappush = staticmethod(real_heapq.heappush)

            @staticmethod
            def heappop(heap):
                pops["count"] += 1
                return real_heapq.heappop(heap)

        monkeypatch.setattr(http_mod, "heapq", CountingHeapq)
        # The 1001st destination must evict exactly one entry — the first
        # to go idle — by popping the heap head, not scanning 1000 entries.
        assert sim.run_until_complete(client.get(address, 9000, "/a")).status == 200
        assert pops["count"] == 1
        assert client.pooled_destinations == 1000
        assert client.pooled_evictions == 1
        assert (address, ports[0]) not in client._pool

    def test_stale_records_skip_without_scanning_pool(
        self, sim, net, eth, monkeypatch
    ):
        client, address, ports = self._filled_client(sim, net, eth, 50)
        # Re-use ten entries: their old idle records go stale (generation
        # bump) and each finishes by pushing one fresh record.
        for port in ports[:10]:
            assert sim.run_until_complete(client.get(address, port, "/a")).ok

        import heapq as real_heapq

        import repro.soap.http as http_mod

        pops = {"count": 0}

        class CountingHeapq:
            heappush = staticmethod(real_heapq.heappush)

            @staticmethod
            def heappop(heap):
                pops["count"] += 1
                return real_heapq.heappop(heap)

        monkeypatch.setattr(http_mod, "heapq", CountingHeapq)
        assert sim.run_until_complete(client.get(address, 9000, "/a")).status == 200
        # Victim search popped the 10 stale head records plus 1 live one;
        # stale records are discarded permanently (amortised O(1) each).
        assert pops["count"] == 11
        assert client.pooled_evictions == 1
        # The evicted entry is the oldest *currently idle* one: ports[10],
        # since ports[0..9] re-idled later with fresher deadlines.
        assert (address, ports[10]) not in client._pool
        assert (address, ports[0]) in client._pool

    def test_busy_entries_are_never_evicted(self, sim, net, eth):
        client, address, ports = self._filled_client(sim, net, eth, 3)
        # Make the oldest destination busy again, then immediately demand
        # a fresh destination: the busy entry's idle record is stale, so
        # the next-oldest idle one is evicted instead.
        busy = client.get(address, ports[0], "/a")
        fresh = client.get(address, 9000, "/a")
        sim.run_until_complete(busy)
        sim.run_until_complete(fresh)
        assert (address, ports[0]) in client._pool
        assert (address, ports[1]) not in client._pool
