"""Two-sided mixed wire-format matrix (extends C8/C9).

A home where islands disagree about the interchange must still bridge in
both directions, and the side pinned to the legacy config must put byte-
for-byte legacy frames on the wire even though its *peer* negotiates
gzip+terse — per-island configs are an island-local commitment, not a
home-wide mode switch.
"""

from __future__ import annotations

from repro.core.framework import MetaMiddleware
from repro.core.interface import simple_interface
from repro.net.monitor import TrafficMonitor
from repro.net.network import Network
from repro.net.segment import EthernetSegment
from repro.net.simkernel import Simulator
from repro.soap.http import FAST_INTERCHANGE, PUSH_INTERCHANGE, InterchangeConfig

ALPHA_IFACE = simple_interface("Alpha", {"ping": ("string", "->string")})
BETA_IFACE = simple_interface("Beta", {"ping": ("string", "->string")})

#: Fat enough to clear the gzip floor on the fast side.
PAYLOAD = "status=OK;reading=21.5C;battery=97%;mode=auto;" * 12


def build_mixed_home(
    a_cfg: InterchangeConfig | None, b_cfg: InterchangeConfig | None, trace: bool = False
):
    """Two islands with *per-island* interchange configs; each exports one
    echo service so calls can be bridged in both directions."""
    sim = Simulator()
    net = Network(sim)
    backbone = net.create_segment(EthernetSegment, "backbone")
    mm = MetaMiddleware(net, backbone)
    island_a = mm.add_island("a", None, interchange=a_cfg)
    island_b = mm.add_island("b", None, interchange=b_cfg)

    def echo(operation, args):
        return PAYLOAD + args[0]

    sim.run_until_complete(island_a.gateway.export_service("Alpha", ALPHA_IFACE, echo))
    sim.run_until_complete(island_b.gateway.export_service("Beta", BETA_IFACE, echo))
    sim.run_until_complete(mm.connect())
    monitor = TrafficMonitor(trace_enabled=trace).watch(backbone)
    return sim, mm, island_a, island_b, monitor


def call(sim, island, service, tag):
    return sim.run_until_complete(island.gateway.invoke(service, "ping", [tag]))


class TestMixedFormatBridging:
    def test_bridged_calls_work_in_both_directions(self):
        sim, mm, a, b, _ = build_mixed_home(None, FAST_INTERCHANGE)
        for round_trip in range(3):
            assert call(sim, a, "Beta", f"a{round_trip}") == PAYLOAD + f"a{round_trip}"
            assert call(sim, b, "Alpha", f"b{round_trip}") == PAYLOAD + f"b{round_trip}"

    def test_fast_side_upgrades_after_negotiation(self):
        """The fast island learns the legacy island's server capabilities
        from the X-Interchange echo and starts pooling/compressing; the
        legacy island never does."""
        sim, mm, a, b, _ = build_mixed_home(None, FAST_INTERCHANGE)
        for round_trip in range(4):
            # Fat argument: request bodies must clear the gzip floor, not
            # just the responses.
            call(sim, b, "Alpha", PAYLOAD + f"x{round_trip}")
            call(sim, a, "Beta", f"y{round_trip}")
        b_http = b.gateway.protocol.client.http
        a_http = a.gateway.protocol.client.http
        gw_a_addr = a.stack.local_address(mm.backbone)
        assert "terse" in b_http.peer_features(gw_a_addr, 8080)
        assert "gzip" in b_http.peer_features(gw_a_addr, 8080)
        assert b_http.pooled_exchanges > 0
        assert b_http.compressed_requests > 0
        # The legacy side stays on the 2002 wire: no pooling, no gzip.
        assert a_http.pooled_exchanges == 0
        assert a_http.compressed_requests == 0

    def test_first_fast_exchange_is_legacy_shaped(self):
        """Negotiation is in-band: before the first echo the fast client
        has learned nothing and must not assume."""
        sim, mm, a, b, _ = build_mixed_home(None, FAST_INTERCHANGE)
        gw_a_addr = a.stack.local_address(mm.backbone)
        # connect() already exchanged directory traffic, but nothing with
        # island a's gateway server itself yet.
        assert b.gateway.protocol.client.http.peer_features(gw_a_addr, 8080) == frozenset()
        call(sim, b, "Alpha", "first")
        assert "terse" in b.gateway.protocol.client.http.peer_features(gw_a_addr, 8080)


class TestLegacySideByteIdentity:
    def _legacy_island_frames(self, b_cfg: InterchangeConfig | None):
        """Frame trace projected onto island a's gateway (time elided:
        the peer's config legitimately shifts absolute timestamps)."""
        sim, mm, a, b, monitor = build_mixed_home(None, b_cfg, trace=True)
        hw = str(a.node.interfaces[0].hw_address)
        for round_trip in range(3):
            call(sim, a, "Beta", f"t{round_trip}")
        return [
            (entry.protocol, entry.src, entry.dst, entry.size, entry.note)
            for entry in monitor.trace
            if entry.src == hw or entry.dst == hw
        ]

    def test_legacy_island_wire_unchanged_by_fast_peer(self):
        """Every frame island a sends or receives — sizes, endpoints,
        order — is identical whether its peer runs legacy or gzip+terse:
        the fast path never leaks into a conversation with a client that
        did not opt in."""
        against_legacy = self._legacy_island_frames(None)
        against_fast = self._legacy_island_frames(FAST_INTERCHANGE)
        assert against_legacy == against_fast
        assert len(against_legacy) > 0

    def _legacy_event_frames(self, b_cfg: InterchangeConfig | None):
        """Frame trace of island a running the legacy *event* wire —
        subscribe announce plus poll round trips — against peer b."""
        sim, mm, a, b, monitor = build_mixed_home(None, b_cfg, trace=True)
        hw = str(a.node.interfaces[0].hw_address)
        received: list = []
        sim.run_until_complete(
            a.gateway.subscribe("news", lambda t, p, i: received.append(p))
        )
        # Publish at a fixed absolute instant: the event's embedded
        # ``published_at`` must not vary with the peer's startup timing.
        sim.run_for(30.0 - sim.now)
        b.gateway.publish_event("news", "payload-1")
        sim.run_for(6.0)
        assert received == ["payload-1"]
        return [
            (entry.protocol, entry.src, entry.dst, entry.size, entry.note)
            for entry in monitor.trace
            if entry.src == hw or entry.dst == hw
        ]

    def test_legacy_event_wire_unchanged_by_push_peer(self):
        """A legacy subscriber polling a push-capable publisher sees the
        exact frames it would see against a legacy publisher: the channel
        route and feature token only surface for peers that advertise."""
        against_legacy = self._legacy_event_frames(None)
        against_push = self._legacy_event_frames(PUSH_INTERCHANGE)
        assert against_legacy == against_push
        assert len(against_legacy) > 0


class TestPushFallbackMatrix:
    """Mixed push capability must negotiate down to polling, and a
    two-sided push pair must leave the poll wire entirely."""

    def _home_with_subscription(
        self, a_cfg: InterchangeConfig | None, b_cfg: InterchangeConfig | None
    ):
        sim, mm, a, b, monitor = build_mixed_home(a_cfg, b_cfg, trace=False)
        events: list = []
        sim.run_until_complete(
            b.gateway.subscribe("news", lambda t, p, i: events.append(p))
        )
        return sim, mm, a, b, events

    def test_push_island_with_legacy_peer_degrades_to_polling(self):
        sim, mm, a, b, events = self._home_with_subscription(None, PUSH_INTERCHANGE)
        router = b.gateway.events
        assert router._channels == {}
        assert len(router._poll_timers) == 1
        a.gateway.publish_event("news", "flash")
        sim.run_for(5.0)
        assert events == ["flash"]
        assert router.polls_performed > 0

    def test_push_island_with_fast_peer_degrades_to_polling(self):
        sim, mm, a, b, events = self._home_with_subscription(
            FAST_INTERCHANGE, PUSH_INTERCHANGE
        )
        router = b.gateway.events
        assert router._channels == {}
        a.gateway.publish_event("news", "flash")
        sim.run_for(5.0)
        assert events == ["flash"]

    def test_push_pair_opens_channel_and_stops_polls(self):
        sim, mm, a, b, events = self._home_with_subscription(
            PUSH_INTERCHANGE, PUSH_INTERCHANGE
        )
        router = b.gateway.events
        assert len(router._channels) == 1
        assert router._poll_timers == {}
        polls_before = router.polls_performed
        a.gateway.publish_event("news", "flash")
        sim.run_for(5.0)
        assert events == ["flash"]
        assert router.polls_performed == polls_before
