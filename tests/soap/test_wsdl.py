"""Tests for WSDL documents and location strings."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SoapError
from repro.net.addressing import NodeAddress
from repro.soap.wsdl import (
    WsdlDocument,
    WsdlOperation,
    WsdlPart,
    make_location,
    parse_location,
)


def sample_document():
    return WsdlDocument(
        service="Laserdisc",
        location="soap://backbone/2:8080/soap/Laserdisc",
        operations=(
            WsdlOperation("play", (), "boolean"),
            WsdlOperation(
                "goto_chapter", (WsdlPart("arg0", "int"),), "int"
            ),
            WsdlOperation("notify", (WsdlPart("arg0", "string"),), "void", oneway=True),
        ),
        context={"island": "jini", "middleware": "jini"},
    )


class TestDocuments:
    def test_xml_roundtrip(self):
        document = sample_document()
        assert WsdlDocument.from_xml(document.to_xml()) == document

    def test_roundtrip_without_operations_or_context(self):
        document = WsdlDocument(service="S", location="soap://b/1:1/soap/S")
        assert WsdlDocument.from_xml(document.to_xml()) == document

    def test_operation_lookup(self):
        document = sample_document()
        assert document.operation("play").output == "boolean"
        assert document.has_operation("goto_chapter")
        assert not document.has_operation("rewind")
        with pytest.raises(SoapError):
            document.operation("rewind")

    def test_unknown_types_rejected(self):
        with pytest.raises(SoapError):
            WsdlPart("x", "quaternion")
        with pytest.raises(SoapError):
            WsdlOperation("op", (), "quaternion")

    def test_not_wsdl_rejected(self):
        with pytest.raises(SoapError):
            WsdlDocument.from_xml(b"<other/>")

    @given(
        st.text(alphabet="abcdefgh", min_size=1, max_size=10),
        st.lists(
            st.sampled_from(["int", "double", "string", "boolean", "base64", "anyType"]),
            max_size=4,
        ),
        st.sampled_from(["int", "double", "string", "boolean", "void", "anyType"]),
    )
    def test_roundtrip_property(self, name, param_types, output):
        operations = (
            WsdlOperation(
                "op",
                tuple(WsdlPart(f"arg{i}", t) for i, t in enumerate(param_types)),
                output,
            ),
        )
        document = WsdlDocument(
            service=name, location=f"soap://seg/1:8080/soap/{name}", operations=operations
        )
        assert WsdlDocument.from_xml(document.to_xml()) == document


class TestLocations:
    def test_roundtrip(self):
        address = NodeAddress("backbone", 7)
        location = make_location(address, 8080, "TV")
        assert parse_location(location) == (address, 8080, "TV")

    @pytest.mark.parametrize(
        "bad",
        [
            "http://x/1:80/soap/S",  # wrong scheme
            "soap://backbone/2/soap/S",  # no port
            "soap://backbone/2:80/other/S",  # wrong path
            "garbage",
        ],
    )
    def test_malformed_locations_rejected(self, bad):
        with pytest.raises(SoapError):
            parse_location(bad)
