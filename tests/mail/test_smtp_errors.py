"""SMTP protocol error paths, driven over raw TCP."""

import pytest

from repro.mail.mailbox import MailServer


@pytest.fixture
def raw_smtp(sim, two_hosts):
    server_stack, client_stack = two_hosts
    server = MailServer(server_stack, domain="home.sim")
    conn = sim.run_until_complete(
        client_stack.connect(server_stack.local_address(), 25)
    )
    replies = []
    conn.set_receiver(lambda _c, data: replies.extend(data.split(b"\r\n")))
    sim.run()  # greeting
    return sim, server, conn, replies


def send_line(sim, conn, line: bytes):
    conn.send(line + b"\r\n")
    sim.run()


class TestSmtpErrors:
    def test_greeting_is_220(self, raw_smtp):
        sim, server, conn, replies = raw_smtp
        assert replies[0].startswith(b"220")

    def test_rcpt_before_mail_rejected(self, raw_smtp):
        sim, server, conn, replies = raw_smtp
        send_line(sim, conn, b"HELO client")
        send_line(sim, conn, b"RCPT TO:<a@home.sim>")
        assert any(r.startswith(b"503") for r in replies)
        assert server.smtp.commands_rejected == 1

    def test_data_before_rcpt_rejected(self, raw_smtp):
        sim, server, conn, replies = raw_smtp
        send_line(sim, conn, b"HELO client")
        send_line(sim, conn, b"MAIL FROM:<a@home.sim>")
        send_line(sim, conn, b"DATA")
        assert any(r.startswith(b"503") for r in replies)

    def test_unknown_verb_rejected(self, raw_smtp):
        sim, server, conn, replies = raw_smtp
        send_line(sim, conn, b"EXPLODE now")
        assert any(r.startswith(b"500") for r in replies)

    def test_noop_and_quit(self, raw_smtp):
        sim, server, conn, replies = raw_smtp
        send_line(sim, conn, b"NOOP")
        assert any(r.startswith(b"250") for r in replies)
        send_line(sim, conn, b"QUIT")
        assert any(r.startswith(b"221") for r in replies)

    def test_full_manual_transaction(self, raw_smtp):
        sim, server, conn, replies = raw_smtp
        for line in (
            b"HELO hand-rolled",
            b"MAIL FROM:<tester@home.sim>",
            b"RCPT TO:<inbox@home.sim>",
            b"DATA",
        ):
            send_line(sim, conn, line)
        assert any(r.startswith(b"354") for r in replies)
        send_line(sim, conn, b"Subject: manual\r\n\r\nbody text\r\n.")
        assert any(r.startswith(b"250 message accepted") for r in replies)
        box = server.store.mailbox("inbox@home.sim")
        assert len(box) == 1
        assert box.messages[0].body == "body text"

    def test_unparseable_message_554(self, raw_smtp):
        sim, server, conn, replies = raw_smtp
        for line in (
            b"HELO x",
            b"MAIL FROM:<a@home.sim>",
            b"RCPT TO:<b@home.sim>",
            b"DATA",
        ):
            send_line(sim, conn, line)
        # A body whose headers make MailMessage invalid is still delivered
        # using the envelope (routing follows MAIL FROM/RCPT TO), so craft
        # a body that *parses* but ensure the envelope wins.
        send_line(sim, conn, b"From: spoof@elsewhere\r\nTo: spoof@elsewhere\r\n\r\nx\r\n.")
        box = server.store.mailbox("b@home.sim")
        assert len(box) == 1  # envelope routing, not the spoofed headers
