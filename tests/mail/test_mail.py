"""Tests for the Internet Mail substrate."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import MailError
from repro.mail.mailbox import MailServer, MailStore, PopClient
from repro.mail.message import MailMessage
from repro.mail.smtp import SmtpClient


@pytest.fixture
def mail(sim, two_hosts):
    server_stack, client_stack = two_hosts
    server = MailServer(server_stack, domain="home.sim")
    smtp = SmtpClient(client_stack)
    pop = PopClient(client_stack)
    return sim, server, smtp, pop, server_stack.local_address()


def message(body="hello", to=("user@home.sim",), subject="test"):
    return MailMessage("sender@home.sim", tuple(to), subject, body)


class TestMessages:
    def test_rfc822_roundtrip(self):
        original = MailMessage(
            "a@x.sim", ("b@x.sim", "c@x.sim"), "Subject here",
            "line one\r\nline two", {"X-Extra": "1"}, sent_at=12.5,
        )
        restored = MailMessage.from_rfc822(original.to_rfc822())
        assert restored == original

    @given(st.text(alphabet=st.characters(blacklist_categories=("Cs",)), max_size=200))
    def test_arbitrary_bodies_roundtrip(self, body):
        # Header/body separation is by blank line; normalise line endings
        # the way transport would.
        safe_body = body.replace("\r\n", "\n").replace("\r", "\n").replace("\n", "\r\n")
        original = message(body=safe_body)
        restored = MailMessage.from_rfc822(original.to_rfc822())
        assert restored.body == safe_body

    @pytest.mark.parametrize(
        "sender,recipients",
        [("nosign", ("a@b",)), ("a@b", ()), ("a@b", ("bad",))],
    )
    def test_malformed_addresses_rejected(self, sender, recipients):
        with pytest.raises(MailError):
            MailMessage(sender, recipients)


class TestSmtpDelivery:
    def test_send_and_deliver(self, mail):
        sim, server, smtp, pop, address = mail
        assert sim.run_until_complete(smtp.send(address, message()))
        assert server.store.delivered == 1
        box = server.store.mailbox("user@home.sim")
        assert len(box) == 1
        assert box.messages[0].subject == "test"

    def test_multiple_recipients_fan_out(self, mail):
        sim, server, smtp, pop, address = mail
        sim.run_until_complete(
            smtp.send(address, message(to=("a@home.sim", "b@home.sim")))
        )
        assert len(server.store.mailbox("a@home.sim")) == 1
        assert len(server.store.mailbox("b@home.sim")) == 1

    def test_foreign_domain_bounced(self, mail):
        sim, server, smtp, pop, address = mail
        sim.run_until_complete(smtp.send(address, message(to=("x@elsewhere.org",))))
        assert server.store.bounced == 1
        assert server.store.delivered == 0

    def test_dot_stuffing_preserves_leading_dots(self, mail):
        sim, server, smtp, pop, address = mail
        tricky = ".leading dot\r\n..double dot\r\nnormal"
        sim.run_until_complete(smtp.send(address, message(body=tricky)))
        stored = server.store.mailbox("user@home.sim").messages[0]
        assert stored.body == tricky

    def test_envelope_overrides_headers(self, mail):
        """Routing follows MAIL FROM / RCPT TO, not the header block."""
        sim, server, smtp, pop, address = mail
        msg = MailMessage("real@home.sim", ("envelope@home.sim",), "s", "b")
        sim.run_until_complete(smtp.send(address, msg))
        assert len(server.store.mailbox("envelope@home.sim")) == 1

    def test_smtp_counters(self, mail):
        sim, server, smtp, pop, address = mail
        for _ in range(3):
            sim.run_until_complete(smtp.send(address, message()))
        assert server.smtp.messages_accepted == 3
        assert smtp.messages_sent == 3


class TestPopRetrieval:
    def test_drain_fetches_and_clears(self, mail):
        sim, server, smtp, pop, address = mail
        for index in range(3):
            sim.run_until_complete(smtp.send(address, message(subject=f"m{index}")))
        inbox = sim.run_until_complete(pop.fetch_all(address, "user@home.sim"))
        assert [m.subject for m in inbox] == ["m0", "m1", "m2"]
        assert sim.run_until_complete(pop.fetch_all(address, "user@home.sim")) == []

    def test_multiline_bodies_survive_pop_framing(self, mail):
        sim, server, smtp, pop, address = mail
        body = "\r\n".join(f"line {i}" for i in range(20))
        sim.run_until_complete(smtp.send(address, message(body=body)))
        inbox = sim.run_until_complete(pop.fetch_all(address, "user@home.sim"))
        assert inbox[0].body == body

    def test_empty_mailbox_fetch(self, mail):
        sim, server, smtp, pop, address = mail
        assert sim.run_until_complete(pop.fetch_all(address, "nobody@home.sim")) == []


class TestStore:
    def test_mailboxes_auto_created(self):
        store = MailStore()
        assert store.mailbox_count == 0
        store.deliver(message(to=("new@home.sim",)))
        assert store.mailbox_count == 1

    def test_local_part_only_address_accepted(self):
        store = MailStore()
        msg = MailMessage("a@b.sim", ("a@b.sim",), "s", "b")
        # Construct with a bare local recipient via the store path.
        store.deliver(MailMessage("a@b.sim", ("a@b.sim",)))
        assert store.bounced == 1  # b.sim is not home.sim
