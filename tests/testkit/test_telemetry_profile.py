"""ISSUE-8 acceptance: mid-run island crash under the telemetry band.

A testkit run that crashes one island mid-workload must (a) leave a
deterministic flight-recorder dump for that island, (b) have the
federation collector mark it unhealthy within one heartbeat-failure
window of the crash, and (c) keep the surviving islands' telemetry
flowing past the crash instant.
"""

from __future__ import annotations

import json

from repro.faults.plan import NodeCrash
from repro.testkit.runner import generate, replay
from repro.testkit.telemetry_profile import generate_telemetry

SEED = 400  # telemetry band: every island streams reports to one collector


def crash_scenario():
    """Scripts for SEED with its drawn faults replaced by one mid-run,
    no-restart crash of an island that is NOT the collector host."""
    spec, ops, _faults = generate(SEED)
    collector_island = generate_telemetry(spec)["collector"]
    victims = [name for name in sorted(spec.island_names) if name != collector_island]
    assert victims, "seed must draw at least two islands"
    victim = victims[0]
    crash_at = max(op.time for op in ops) * 0.5
    faults = [(crash_at, NodeCrash(node=f"gw-{victim}", restart_after=None))]
    return spec, ops, faults, victim, collector_island, crash_at


class TestCrashAcceptance:
    def test_crash_dumps_black_box_and_goes_unhealthy_within_window(self):
        spec, ops, faults, victim, collector_island, crash_at = crash_scenario()
        result = replay(spec, ops, faults)
        assert result.error == ""
        crash_time = result.start_time + crash_at

        # (a) The crashed island's recorder dumped on the crash signal.
        recorder = result.world.flight[victim]
        reasons = [dump["reason"] for dump in recorder.dumps]
        assert "node-crash" in reasons
        crash_dump = recorder.dumps[reasons.index("node-crash")]
        assert crash_dump["dumped_at"] == crash_time
        kinds = {entry["kind"] for entry in crash_dump["records"]}
        assert "fault" in kinds  # the injector's own record made the ring

        # (b) The collector condemned the victim within one
        # heartbeat-failure window: threshold straight misses, each a
        # ping that can take up to the heartbeat deadline to fail.
        collector = result.world.telemetry_collector
        policy = result.world.mm.islands[collector_island].gateway.policy
        window = (
            policy.heartbeat_failure_threshold * policy.heartbeat_interval
            + policy.heartbeat_deadline
        )
        condemned = [
            t
            for t in collector.transitions
            if t["island"] == victim and t["to"] == "unhealthy"
        ]
        assert condemned, f"victim never went unhealthy: {collector.transitions}"
        assert condemned[0]["time"] <= crash_time + window + 1.0
        assert collector.status(victim) == "unhealthy"

        # (c) Surviving islands kept streaming past the crash instant.
        survivors = [
            name for name in sorted(spec.island_names) if name != victim
        ]
        for name in survivors:
            assert collector.island_last_time(name) > crash_time, name
        gauge = result.world.obs.metrics.gauge(
            f"telemetry.{collector_island}.health.{victim}"
        )
        assert gauge.value == 2  # unhealthy gauge level

    def test_crash_run_is_byte_deterministic(self):
        spec, ops, faults, victim, _collector_island, _crash_at = crash_scenario()
        first = replay(spec, ops, faults)
        second = replay(spec, ops, faults)
        assert first.flight_dumps_json() == second.flight_dumps_json()
        assert (
            first.world.telemetry_collector.snapshot_json()
            == second.world.telemetry_collector.snapshot_json()
        )
        assert first.metrics_json() == second.metrics_json()
        # The artifact is non-trivial: it holds the victim's dump.
        merged = json.loads(first.flight_dumps_json())
        assert victim in merged
