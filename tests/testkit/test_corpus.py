"""Fixed seed corpus + opt-in randomized sweep.

The corpus pins 30 seeds forever: every oracle must hold on each of them
on every commit.  The sweep (``--testkit-seeds N``) explores fresh seeds
beyond the corpus; CI runs it nightly with N=200 and uploads a shrunk
repro when a seed fails (see docs/TESTING.md for how to replay one).
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.testkit import check, shrink_failure, sweep

#: Never reorder or remove entries; append only.  A corpus seed that starts
#: failing is a regression in the system or a newly-tightened oracle.
#: Seeds 100-104 sit in the push-profile band (see repro.testkit.runner):
#: push-capable islands, publish-heavy workloads, streamed event channels.
#: Seeds 200-204 sit in the rules band: deterministic rule engines run
#: over the workload, judged by the rule-dedup and rule-schedule oracles.
#: Seeds 300-304 sit in the reactor band: vectored/pipelined islands with
#: call-heavy workloads, so the coalescing transport core and the legacy
#: wire interoperate under the same fault schedules on every commit.
#: Seeds 400-404 sit in the telemetry band: every island streams delta
#: reports to one collector, judged by the telemetry-soundness oracle
#: (no double-counted redelivery, no fabricated sequence numbers).
#: Seeds 500-504 sit in the persistence band: WAL journals on every
#: gateway and the directory, guaranteed cold crash→restart cycles, and
#: the event-durability + replay-idempotence oracles judging recovery.
#: Seeds 600-604 sit in the scale band: a sharded, replicated directory
#: plane (4-16 shards × 2-3 replicas) under 1k-4k stub registrations,
#: judged by the ring-placement and replica-convergence oracles.
CORPUS = (
    list(range(30))
    + [100, 101, 102, 103, 104]
    + [200, 201, 202, 203, 204]
    + [300, 301, 302, 303, 304]
    + [400, 401, 402, 403, 404]
    + [500, 501, 502, 503, 504]
    + [600, 601, 602, 603, 604]
)

#: Sweep seeds live far above the corpus so the nightly never rechecks
#: what every push already covers.
SWEEP_BASE = 10_000


@pytest.mark.parametrize("seed", CORPUS)
def test_corpus_seed_holds_all_invariants(seed: int) -> None:
    result = check(seed)
    assert result.ok, result.render_repro()


def test_killed_channels_mid_run_keep_all_oracles() -> None:
    """Killing every live push channel mid-workload must not silently
    drop calls, leak pooled connections or unbalance frame accounting —
    the subscriber falls back to polling and later re-establishes."""
    from repro.errors import TransportError
    from repro.faults.injector import FaultInjector
    from repro.faults.plan import FaultPlan
    from repro.testkit.oracles import InvariantSuite
    from repro.testkit.runner import QUIESCE_MARGIN, generate
    from repro.testkit.topology import build_world
    from repro.testkit.workload import WorkloadRunner

    spec, ops, _faults = generate(101)  # push-profile seed, no extra faults
    world = build_world(spec)
    suite = InvariantSuite(world)
    runner = WorkloadRunner(world)
    world.sim.run_until_complete(world.mm.connect())
    start = world.sim.now
    runner.schedule(ops, start)

    killed: list = []

    def kill_live_channels() -> None:
        for island in world.mm.islands.values():
            for channel in list(island.gateway.events._channels.values()):
                channel.kill(TransportError("testkit channel kill"))
                killed.append(channel)

    horizon = max(op.time for op in ops)
    for fraction in (0.4, 0.6, 0.8):
        world.sim.at(start + horizon * fraction, kill_live_channels)

    injector = FaultInjector(world.network, FaultPlan(seed=spec.seed), mm=world.mm).arm()
    end = start + horizon + 1.0
    world.sim.run(until=end)
    world.mm.shutdown()
    world.sim.run(until=end + QUIESCE_MARGIN)

    violations = suite.finish(runner, injector.report())
    assert killed, "no live channels to kill: seed no longer opens any"
    assert violations == [], "\n".join(v.render() for v in violations)


def test_persistence_band_full_sweep() -> None:
    """Every seed in the restart-torture band [500, 600), not just the
    five corpus pins.  Opt-in (CI runs it nightly): set
    ``TESTKIT_PERSISTENCE_SWEEP=1``."""
    if not os.environ.get("TESTKIT_PERSISTENCE_SWEEP"):
        pytest.skip(
            "full persistence-band sweep disabled (set TESTKIT_PERSISTENCE_SWEEP=1)"
        )
    from repro.testkit.runner import PERSISTENCE_SEED_BASE, PERSISTENCE_SEED_SPAN

    seeds = list(
        range(PERSISTENCE_SEED_BASE, PERSISTENCE_SEED_BASE + PERSISTENCE_SEED_SPAN)
    )
    failures = sweep(seeds)
    if not failures:
        return
    first = failures[0]
    shrunk = shrink_failure(first.seed)
    out_dir = os.environ.get("TESTKIT_OUTPUT_DIR")
    if out_dir:
        path = pathlib.Path(out_dir)
        path.mkdir(parents=True, exist_ok=True)
        (path / f"repro-seed-{first.seed}.txt").write_text(shrunk.render())
        (path / f"flight-seed-{first.seed}.json").write_text(
            first.flight_dumps_json()
        )
        (path / f"wal-seed-{first.seed}.json").write_text(first.wal_dumps_json())
    pytest.fail(
        f"{len(failures)} of {len(seeds)} persistence-band seeds failed "
        f"(first: seed={first.seed})\n\n{shrunk.render()}"
    )


def test_scale_band_full_sweep() -> None:
    """Every seed in the sharded-directory scale band [600, 700), not
    just the five corpus pins.  Opt-in (CI runs it nightly): set
    ``TESTKIT_SCALE_SWEEP=1``."""
    if not os.environ.get("TESTKIT_SCALE_SWEEP"):
        pytest.skip("full scale-band sweep disabled (set TESTKIT_SCALE_SWEEP=1)")
    import json

    from repro.testkit.runner import SCALE_SEED_BASE, SCALE_SEED_SPAN

    seeds = list(range(SCALE_SEED_BASE, SCALE_SEED_BASE + SCALE_SEED_SPAN))
    failures = sweep(seeds)
    if not failures:
        return
    first = failures[0]
    shrunk = shrink_failure(first.seed)
    out_dir = os.environ.get("TESTKIT_OUTPUT_DIR")
    if out_dir:
        path = pathlib.Path(out_dir)
        path.mkdir(parents=True, exist_ok=True)
        (path / f"repro-seed-{first.seed}.txt").write_text(shrunk.render())
        (path / f"flight-seed-{first.seed}.json").write_text(
            first.flight_dumps_json()
        )
        # The ring is the routing ground truth: a placement or
        # convergence violation is only debuggable against the exact
        # vnode layout the failing seed drew.
        if first.world.federation is not None:
            (path / f"ring-seed-{first.seed}.json").write_text(
                json.dumps(first.world.federation.ring_dump(), indent=2)
            )
    pytest.fail(
        f"{len(failures)} of {len(seeds)} scale-band seeds failed "
        f"(first: seed={first.seed})\n\n{shrunk.render()}"
    )


def test_sweep_random_seeds(request: pytest.FixtureRequest) -> None:
    count = request.config.getoption("--testkit-seeds")
    if not count:
        pytest.skip("randomized sweep disabled (pass --testkit-seeds N)")
    seeds = list(range(SWEEP_BASE, SWEEP_BASE + count))
    failures = sweep(seeds)
    if not failures:
        return
    # Shrink the first failure to a minimal repro and persist it where CI
    # can pick it up as an artifact.
    first = failures[0]
    shrunk = shrink_failure(first.seed)
    out_dir = os.environ.get("TESTKIT_OUTPUT_DIR")
    if out_dir:
        path = pathlib.Path(out_dir)
        path.mkdir(parents=True, exist_ok=True)
        (path / f"repro-seed-{first.seed}.txt").write_text(shrunk.render())
        # Black box next to the repro: the failing run's flight-recorder
        # dumps (oracle failures trigger every node's recorder).
        (path / f"flight-seed-{first.seed}.json").write_text(
            first.flight_dumps_json()
        )
        # Persistence-band failures also ship every journal's WAL dump
        # (record stream + truncation accounting) for offline replay.
        wal_dumps = first.wal_dumps_json()
        if wal_dumps != "{}":
            (path / f"wal-seed-{first.seed}.json").write_text(wal_dumps)
    pytest.fail(
        f"{len(failures)} of {count} sweep seeds failed "
        f"(first: seed={first.seed})\n\n{shrunk.render()}"
    )
