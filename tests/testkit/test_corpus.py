"""Fixed seed corpus + opt-in randomized sweep.

The corpus pins 30 seeds forever: every oracle must hold on each of them
on every commit.  The sweep (``--testkit-seeds N``) explores fresh seeds
beyond the corpus; CI runs it nightly with N=200 and uploads a shrunk
repro when a seed fails (see docs/TESTING.md for how to replay one).
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.testkit import check, shrink_failure, sweep

#: Never reorder or remove entries; append only.  A corpus seed that starts
#: failing is a regression in the system or a newly-tightened oracle.
CORPUS = list(range(30))

#: Sweep seeds live far above the corpus so the nightly never rechecks
#: what every push already covers.
SWEEP_BASE = 10_000


@pytest.mark.parametrize("seed", CORPUS)
def test_corpus_seed_holds_all_invariants(seed: int) -> None:
    result = check(seed)
    assert result.ok, result.render_repro()


def test_sweep_random_seeds(request: pytest.FixtureRequest) -> None:
    count = request.config.getoption("--testkit-seeds")
    if not count:
        pytest.skip("randomized sweep disabled (pass --testkit-seeds N)")
    seeds = list(range(SWEEP_BASE, SWEEP_BASE + count))
    failures = sweep(seeds)
    if not failures:
        return
    # Shrink the first failure to a minimal repro and persist it where CI
    # can pick it up as an artifact.
    first = failures[0]
    shrunk = shrink_failure(first.seed)
    out_dir = os.environ.get("TESTKIT_OUTPUT_DIR")
    if out_dir:
        path = pathlib.Path(out_dir)
        path.mkdir(parents=True, exist_ok=True)
        (path / f"repro-seed-{first.seed}.txt").write_text(shrunk.render())
    pytest.fail(
        f"{len(failures)} of {count} sweep seeds failed "
        f"(first: seed={first.seed})\n\n{shrunk.render()}"
    )
