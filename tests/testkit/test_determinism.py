"""Identical seed => byte-identical run.

This is the property every other testkit promise leans on: a seed printed
by a failing CI job must reproduce the same world, the same workload
outcomes, and the same end-of-run counters on a developer laptop.
"""

from __future__ import annotations

import pytest

from repro.testkit import TopologyGen, WorkloadGen, check
from repro.testkit.runner import FaultPlanGen, generate

SEEDS = [1, 7, 23]


@pytest.mark.parametrize("seed", SEEDS)
def test_workload_log_is_byte_identical(seed: int) -> None:
    first = check(seed)
    second = check(seed)
    assert first.workload_json() == second.workload_json()


@pytest.mark.parametrize("seed", SEEDS)
def test_metric_snapshot_is_byte_identical(seed: int) -> None:
    first = check(seed)
    second = check(seed)
    assert first.metrics_json() == second.metrics_json()


def test_scripts_are_pure_data() -> None:
    """Generation never consults the simulation, so regenerating scripts
    must give structurally equal results without building any world."""
    for seed in SEEDS:
        spec_a, ops_a, faults_a = generate(seed)
        spec_b, ops_b, faults_b = generate(seed)
        assert spec_a == spec_b
        assert ops_a == ops_b
        assert faults_a == faults_b


def test_distinct_seeds_give_distinct_worlds() -> None:
    specs = {TopologyGen().generate(seed).describe() for seed in range(10)}
    assert len(specs) > 1, "topology generation ignores the seed"


def test_workload_depends_on_seed_not_object_identity() -> None:
    spec = TopologyGen().generate(5)
    ops_a = WorkloadGen().generate(spec, 40)
    ops_b = WorkloadGen().generate(spec, 40)
    assert ops_a == ops_b
    faults_a = FaultPlanGen().generate(spec, ops_a, 5)
    faults_b = FaultPlanGen().generate(spec, ops_b, 5)
    assert faults_a == faults_b
