"""Every oracle must be demonstrably live.

A clean run passing proves nothing about an invariant checker — a suite
of always-true oracles passes too.  Each test here plants one canned bug
(`inject_bug`) and demands the matching oracle, and only reasoning about
that bug, convicts it.
"""

from __future__ import annotations

import pytest

from repro.testkit import check
from repro.testkit.runner import INJECTABLE_BUGS

#: Seed with a known-interesting topology (multiple islands, mixed
#: interchange) used for all liveness probes.
SEED = 3

BUG_TO_ORACLE = {
    "swallow-call": "call-completion",
    "illegal-breaker": "breaker-transitions",
    "phantom-island": "vsr-islands",
    "leak-connection": "pool-leak",
    "unfinished-span": "span-hygiene",
    "uncounted-drop": "conservation",
}


def test_every_injectable_bug_is_covered() -> None:
    assert set(BUG_TO_ORACLE) == set(INJECTABLE_BUGS)


def test_clean_run_is_green() -> None:
    result = check(SEED)
    assert result.ok, result.render_repro()


@pytest.mark.parametrize("bug", sorted(BUG_TO_ORACLE))
def test_injected_bug_trips_its_oracle(bug: str) -> None:
    result = check(SEED, inject_bug=bug)
    oracles = {violation.oracle for violation in result.violations}
    assert BUG_TO_ORACLE[bug] in oracles, (
        f"{bug} did not trip {BUG_TO_ORACLE[bug]}; got {sorted(oracles)}\n"
        + result.render_repro()
    )


def test_unknown_bug_name_rejected() -> None:
    with pytest.raises(ValueError):
        check(SEED, inject_bug="not-a-bug")
