"""The scale seed band (sharded directory plane under stub load), plus
liveness proof for the ring-placement and replica-convergence oracles.

Band seeds build a federated directory (4-16 shards × 2-3 replicas),
seed 1k-4k stub registrations straight into the plane after connect, and
drive a lookup-heavy workload against it; the oracles then demand that
every key sits on the shard the ring assigns it and that every live
replica group converged to one canonical state by quiesce.
"""

from __future__ import annotations

import json

import pytest

from repro.soap.wsdl import WsdlDocument
from repro.testkit.oracles import InvariantSuite
from repro.testkit.runner import (
    SCALE_SEED_BASE,
    SCALE_SEED_SPAN,
    _profile_for,
    check,
    generate,
)
from repro.testkit.topology import TopologyGen

SEED = SCALE_SEED_BASE + 2  # corpus-pinned band seed


@pytest.fixture(scope="module")
def band_result():
    result = check(SEED)
    assert result.ok, result.render_repro()
    return result


class TestBand:
    def test_band_selects_scale_profile(self):
        assert _profile_for(SCALE_SEED_BASE) == "scale"
        assert _profile_for(SCALE_SEED_BASE + SCALE_SEED_SPAN - 1) == "scale"
        assert _profile_for(SCALE_SEED_BASE - 1) == "persistence"
        assert _profile_for(SCALE_SEED_BASE + SCALE_SEED_SPAN) == "default"

    def test_pinned_seeds_outside_band_unchanged(self):
        """Every older band must replay byte-identical scripts: the scale
        profile may not perturb their draws."""
        for seed in (0, 7, 100, 200, 300, 400, 500):
            spec, _ops, _faults = generate(seed)
            assert spec == TopologyGen().generate(seed, profile=_profile_for(seed))
            assert spec.federation_shards == 0
            assert spec.stub_islands == 0

    def test_band_draws_a_sharded_plane(self):
        for seed in range(SCALE_SEED_BASE, SCALE_SEED_BASE + 10):
            spec, _ops, _faults = generate(seed)
            assert spec.federation_shards in (4, 8, 16)
            assert spec.federation_replicas in (2, 3)
            assert spec.stub_islands in (1000, 2000, 4000)
            # Stub islands never heartbeat: the band measures the
            # directory plane, not 4k fake liveness timers.
            assert spec.heartbeat_interval == 0.0
            names = spec.directory_node_names
            assert len(names) == spec.federation_shards * spec.federation_replicas
            assert all(name.startswith("vsr-s") for name in names)


class TestRun:
    def test_stubs_installed_and_spread(self, band_result):
        world = band_result.world
        assert len(world.scale_stubs) == world.spec.stub_islands
        federation = world.federation
        assert federation is not None
        # The ring must actually spread the stub registrations: every
        # shard's primary owns a non-trivial slice.
        for group in federation.replicas:
            assert group[0].directory.service_count > 0

    def test_metrics_snapshot_carries_federation_section(self, band_result):
        snapshot = json.loads(band_result.metrics_json())
        section = snapshot["federation"]
        assert section["shards"] == band_result.world.spec.federation_shards
        assert section["converged"] is True
        for shard_entry in section["per_shard"]:
            assert shard_entry["converged"] is True

    def test_anti_entropy_actually_ran(self, band_result):
        snapshot = json.loads(band_result.metrics_json())
        rounds = sum(
            replica.get("digest_rounds", 0)
            for shard in snapshot["federation"]["per_shard"]
            for replica in shard["replicas"]
        )
        assert rounds > 0, "no replica ever gossiped"

    def test_identical_seed_identical_artifacts(self):
        first = check(SEED)
        second = check(SEED)
        assert first.metrics_json() == second.metrics_json()
        assert first.flight_dumps_json() == second.flight_dumps_json()


def _misplaced_key(federation, shard):
    """A service name the ring does NOT assign to ``shard``."""
    for i in range(10_000):
        name = f"Svc_misplaced{i}"
        if federation.ring.owner(name) != shard:
            return name
    raise AssertionError("ring maps everything to one shard?")


class TestOracleLiveness:
    def test_ring_placement_fires_on_misplaced_document(self):
        result = check(SEED)
        world = result.world
        federation = world.federation
        rogue = _misplaced_key(federation, 0)
        document = WsdlDocument(
            service=rogue,
            location=f"soap://backbone/1:8080/{rogue}",
            context={"island": "stub0"},
        )
        for replica in federation.replicas[0]:
            replica.directory.publish(document)
        suite = InvariantSuite(world)
        suite._check_federation()
        assert "ring-placement" in {v.oracle for v in suite.violations}
        assert any(rogue in v.message for v in suite.violations)

    def test_replica_convergence_fires_on_diverged_replica(self):
        result = check(SEED)
        world = result.world
        federation = world.federation
        rogue = "Svc_diverge"
        federation.replicas[federation.ring.owner(rogue)][1].directory.publish(
            WsdlDocument(
                service=rogue,
                location=f"soap://backbone/1:8080/{rogue}",
                context={"island": "stub0"},
            )
        )
        suite = InvariantSuite(world)
        suite._check_federation()
        assert "replica-convergence" in {v.oracle for v in suite.violations}

    def test_replica_convergence_excuses_dead_replicas(self):
        result = check(SEED)
        world = result.world
        federation = world.federation
        rogue = "Svc_diverge"
        shard = federation.ring.owner(rogue)
        replica = federation.replicas[shard][1]
        replica.directory.publish(
            WsdlDocument(
                service=rogue,
                location=f"soap://backbone/1:8080/{rogue}",
                context={"island": "stub0"},
            )
        )
        replica.node.crash()  # permanently down: it catches up on return
        suite = InvariantSuite(world)
        suite._check_federation()
        assert "replica-convergence" not in {v.oracle for v in suite.violations}
