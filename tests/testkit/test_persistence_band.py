"""The persistence seed band (restart torture), plus liveness proof for
the event-durability and replay-idempotence oracles.

Band seeds attach a WAL journal to every gateway and the directory and
guarantee 1-3 cold crash→restart cycles on gateway nodes; the oracles
then demand that every queued event either reaches its (surviving)
subscriber or was discharged on a declared at-most-once window, and that
WAL replay is a pure fold.
"""

from __future__ import annotations

import json

import pytest

from repro.faults.plan import NodeCrash
from repro.testkit.oracles import InvariantSuite
from repro.testkit.runner import (
    PERSISTENCE_SEED_BASE,
    PERSISTENCE_SEED_SPAN,
    QUIESCE_MARGIN,
    _profile_for,
    check,
    generate,
)
from repro.testkit.topology import TopologyGen, build_world
from repro.testkit.workload import WorkloadRunner

SEED = PERSISTENCE_SEED_BASE + 2  # corpus-pinned band seed


@pytest.fixture(scope="module")
def band_result():
    result = check(SEED)
    assert result.ok, result.render_repro()
    return result


class TestBand:
    def test_band_selects_persistence_profile(self):
        assert _profile_for(PERSISTENCE_SEED_BASE) == "persistence"
        assert (
            _profile_for(PERSISTENCE_SEED_BASE + PERSISTENCE_SEED_SPAN - 1)
            == "persistence"
        )
        assert _profile_for(PERSISTENCE_SEED_BASE - 1) == "telemetry"
        assert _profile_for(PERSISTENCE_SEED_BASE + PERSISTENCE_SEED_SPAN) == "scale"

    def test_pinned_seeds_outside_band_unchanged(self):
        """Every older band must replay byte-identical scripts: the
        persistence profile may not perturb their draws."""
        for seed in (0, 7, 100, 200, 300, 400):
            spec, _ops, _faults = generate(seed)
            assert spec == TopologyGen().generate(seed, profile=_profile_for(seed))

    def test_band_guarantees_restarting_gateway_crashes(self):
        for seed in range(PERSISTENCE_SEED_BASE, PERSISTENCE_SEED_BASE + 10):
            _spec, _ops, faults = generate(seed)
            cycles = [
                action
                for _, action in faults
                if isinstance(action, NodeCrash)
                and action.node.startswith("gw-")
                and action.restart_after is not None
            ]
            assert cycles, f"seed {seed} drew no crash→restart cycle"


class TestReplay:
    def test_journals_attached_everywhere(self, band_result):
        world = band_result.world
        assert sorted(world.journals) == sorted(world.spec.island_names)
        assert world.directory_journal is not None

    def test_crashes_were_cold_and_recovered(self, band_result):
        snapshot = json.loads(band_result.metrics_json())
        persistence = snapshot["persistence"]
        cold = sum(
            entry["cold_crashes"]
            for name, entry in persistence.items()
            if name != "uddi-directory"
        )
        assert cold >= 1, "band seed never cold-crashed a gateway"
        for name, entry in persistence.items():
            assert entry["recoveries"] <= entry["cold_crashes"]
            assert entry["records"] > 0, f"{name} journaled nothing"

    def test_replay_judges_with_both_new_oracles(self, band_result):
        # The run is clean, so the proof the oracles *ran* is structural:
        # obligations were tracked and every journal replays idempotently.
        world = band_result.world
        suite = InvariantSuite(world)
        suite._check_event_durability()
        suite._check_replay_idempotence()
        assert suite.violations == []

    def test_identical_seed_identical_artifacts(self):
        first = check(SEED)
        second = check(SEED)
        assert first.metrics_json() == second.metrics_json()
        assert first.wal_dumps_json() == second.wal_dumps_json()
        assert first.flight_dumps_json() == second.flight_dumps_json()


class TestWireInvisibility:
    def _run(self, with_journals: bool):
        spec, ops, _faults = generate(0)  # historical default-band seed
        world = build_world(spec)
        if with_journals:
            from repro.testkit.persistence_profile import install_persistence

            install_persistence(world)
        runner = WorkloadRunner(world)
        world.sim.run_until_complete(world.mm.connect())
        start = world.sim.now
        runner.schedule(ops, start)
        end = start + max(op.time for op in ops) + 1.0
        world.sim.run(until=end)
        world.mm.shutdown()
        world.sim.run(until=end + QUIESCE_MARGIN)
        traffic = {
            protocol: (stats.frames, stats.bytes, stats.dropped_frames)
            for protocol, stats in sorted(world.monitor.stats.items())
        }
        return world, traffic

    def test_journaling_is_wire_invisible(self):
        """Journal appends are node-local: the same scripts produce a
        byte-identical wire with and without WAL journals attached."""
        bare_world, bare_traffic = self._run(with_journals=False)
        wal_world, wal_traffic = self._run(with_journals=True)
        assert wal_traffic == bare_traffic
        # ...and not because nothing was journaled.
        appended = sum(
            journal.store.records_appended
            for journal in wal_world.journals.values()
        )
        assert appended > 0
        assert bare_world.journals == {}


class _FakeJournal:
    """Minimal journal surface for the replay-idempotence walk."""

    class _Store:
        closed = False

    def __init__(self) -> None:
        self.store = self._Store()
        self._flips = 0

    def snapshot_json(self) -> str:
        self._flips += 1
        return f'{{"impure":{self._flips}}}'


class TestOracleLiveness:
    def test_event_durability_fires_on_undelivered_obligation(self):
        result = check(SEED)
        world = result.world
        pub, sub, *_ = sorted(world.journals)
        router = world.mm.islands[pub].gateway.events
        router.retention_obligations[(sub, 999_999)] = {
            "topic": "tk/fake",
            "seq": 999_999,
        }
        suite = InvariantSuite(world)
        suite._check_event_durability()
        assert [v.oracle for v in suite.violations] == ["event-durability"]
        assert pub in suite.violations[0].message
        assert sub in suite.violations[0].message

    def test_event_durability_quiet_on_discharged_obligations(self):
        result = check(SEED)
        world = result.world
        pub, sub, *_ = sorted(world.journals)
        router = world.mm.islands[pub].gateway.events
        # One obligation delivered at the subscriber, one handed over on
        # the poll-reply wire (legal at-most-once loss window).
        router.retention_obligations[(sub, 999_998)] = {"topic": "a", "seq": 999_998}
        world.mm.islands[sub].gateway.events.delivered_keys.add((pub, 999_998))
        router.retention_obligations[(sub, 999_999)] = {"topic": "b", "seq": 999_999}
        router.fetch_discharged.add((sub, 999_999))
        suite = InvariantSuite(world)
        suite._check_event_durability()
        assert suite.violations == []

    def test_event_durability_quiet_when_subscriber_stays_dead(self):
        result = check(SEED)
        world = result.world
        pub, sub, *_ = sorted(world.journals)
        router = world.mm.islands[pub].gateway.events
        router.retention_obligations[(sub, 999_999)] = {"topic": "t", "seq": 999_999}
        world.mm.islands[sub].gateway.node.crash()  # never restarts
        suite = InvariantSuite(world)
        suite._check_event_durability()
        assert suite.violations == []

    def test_replay_idempotence_fires_on_impure_fold(self):
        result = check(SEED)
        world = result.world
        world.journals["zz-fake"] = _FakeJournal()
        suite = InvariantSuite(world)
        suite._check_replay_idempotence()
        assert [v.oracle for v in suite.violations] == ["replay-idempotence"]
        assert "zz-fake" in suite.violations[0].message
