"""Shrinking: a seeded bug must reduce to a handful of operations."""

from __future__ import annotations

import pytest

from repro.testkit import shrink_failure
from repro.testkit.shrink import _Budget, _minimize


class TestMinimize:
    def _fails_if_contains(self, needle):
        return lambda items: needle in items

    def test_reduces_to_single_culprit(self) -> None:
        items = list(range(20))
        result = _minimize(items, self._fails_if_contains(13), _Budget(300))
        assert result == [13]

    def test_keeps_conjunction_of_two_culprits(self) -> None:
        def fails(items):
            return 3 in items and 17 in items

        result = _minimize(list(range(20)), fails, _Budget(300))
        assert result == [3, 17]

    def test_budget_exhaustion_returns_best_so_far(self) -> None:
        items = list(range(50))
        result = _minimize(items, self._fails_if_contains(49), _Budget(2))
        # Not minimal, but still failing and never empty.
        assert 49 in result

    def test_green_predicate_keeps_everything(self) -> None:
        items = list(range(8))
        assert _minimize(items, lambda _items: False, _Budget(300)) == items


class TestShrinkFailure:
    def test_seeded_bug_shrinks_to_small_repro(self) -> None:
        """Acceptance bar from the issue: a deliberately seeded bug found
        by the sweep shrinks to <= 10 operations."""
        shrunk = shrink_failure(3, inject_bug="swallow-call")
        assert shrunk.oracle == "call-completion"
        assert len(shrunk.ops) <= 10
        assert not shrunk.result.ok
        # The rendered repro tells a human how to replay it.
        assert "reproduce:" in shrunk.render()
        assert f"--seed {shrunk.seed}" in shrunk.render()

    def test_shrunk_scripts_still_fail_same_oracle(self) -> None:
        shrunk = shrink_failure(3, inject_bug="swallow-call")
        oracles = {violation.oracle for violation in shrunk.result.violations}
        assert shrunk.oracle in oracles

    def test_green_seed_refuses_to_shrink(self) -> None:
        with pytest.raises(ValueError):
            shrink_failure(3)
