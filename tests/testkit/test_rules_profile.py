"""The rules seed band: deterministic engines over generated worlds,
plus liveness proof for the two rule oracles."""

from __future__ import annotations

import json

from repro.rules import dsl
from repro.rules.engine import Firing
from repro.testkit import check
from repro.testkit.oracles import InvariantSuite
from repro.testkit.runner import (
    RULES_SEED_BASE,
    RULES_SEED_SPAN,
    _profile_for,
    generate,
)
from repro.testkit.rules_profile import OUT_TOPIC, generate_rules
from repro.testkit.topology import TopologyGen, build_world
from repro.testkit.workload import TOPICS

SEED = RULES_SEED_BASE + 1  # 201: both event- and schedule-triggered rules


class TestBand:
    def test_band_selects_rules_profile(self):
        assert _profile_for(RULES_SEED_BASE) == "rules"
        assert _profile_for(RULES_SEED_BASE + RULES_SEED_SPAN - 1) == "rules"
        assert _profile_for(RULES_SEED_BASE - 1) == "push"
        # Seed 300 opens the reactor band (see tests/net/test_reactor.py
        # and the corpus); "default" resumes past it.
        assert _profile_for(RULES_SEED_BASE + RULES_SEED_SPAN) == "reactor"

    def test_pinned_seeds_outside_band_unchanged(self):
        """The historical corpus and push bands must replay byte-identical
        scripts: the rules profile may not perturb their draws."""
        for seed in (0, 7, 100):
            spec, ops, faults = generate(seed)
            assert spec == TopologyGen().generate(seed, profile=_profile_for(seed))


class TestGeneratedRules:
    def test_pure_data_and_serializable(self):
        spec = TopologyGen().generate(SEED, profile="rules")
        first = generate_rules(spec)
        second = generate_rules(spec)
        assert first == second
        for rules in first.values():
            assert dsl.loads(dsl.dumps(rules)) == rules

    def test_triggers_target_workload_topics_only(self):
        """Generated triggers listen on workload topics (or prefixes of
        them) and never on OUT_TOPIC — rules cannot feed rules."""
        spec = TopologyGen().generate(SEED, profile="rules")
        for rules in generate_rules(spec).values():
            for rule in rules:
                for trigger in rule.triggers:
                    topic = getattr(trigger, "topic", None)
                    if topic is None:
                        continue
                    assert not OUT_TOPIC.startswith(topic.rstrip("*"))
                    assert any(t.startswith(topic.rstrip("*")) for t in TOPICS)


class TestReplay:
    def test_rules_seed_runs_clean_and_snapshots_engines(self):
        result = check(SEED)
        assert result.ok, result.render_repro()
        snapshot = json.loads(result.metrics_json())
        assert snapshot["rules"], "no rule engines installed on a rules seed"
        totals = sum(section["firings"] for section in snapshot["rules"].values())
        assert totals > 0, "no rule ever fired over the whole run"
        assert any(
            section["schedule_occurrences"] > 0
            for section in snapshot["rules"].values()
        ), "no scheduled occurrence fired"

    def test_identical_seed_identical_schedule_log(self):
        first = check(SEED)
        second = check(SEED)
        assert first.metrics_json() == second.metrics_json()
        logs = lambda r: {  # noqa: E731
            name: engine.schedule_log
            for name, engine in r.world.rule_engines.items()
        }
        assert logs(first) == logs(second)

    def test_engines_stopped_before_shutdown(self):
        result = check(SEED)
        for engine in result.world.rule_engines.values():
            assert not engine._running


class _FakeEngine:
    """Just enough engine surface for the oracle walk."""

    def __init__(self, rules=(), firings=(), schedule_log=(), epoch=0.0):
        self.rules = tuple(rules)
        self.firings = list(firings)
        self.schedule_log = list(schedule_log)
        self.epoch = epoch


def _suite_over_fake(engine) -> list:
    spec = TopologyGen().generate(0)
    world = build_world(spec)
    suite = InvariantSuite(world)
    world.rule_engines["fake"] = engine
    suite._check_rules()
    return suite.violations


def _firing(rule: str, key: str) -> Firing:
    return Firing(rule=rule, key=key, trigger_kind="event", fired_at=1.0, topic="t")


class TestOracleLiveness:
    def test_rule_dedup_oracle_fires_on_duplicate(self):
        engine = _FakeEngine(firings=[_firing("r", "evt:a:1"), _firing("r", "evt:a:1")])
        violations = _suite_over_fake(engine)
        assert [v.oracle for v in violations] == ["rule-dedup"]

    def test_rule_dedup_oracle_quiet_on_distinct_keys(self):
        engine = _FakeEngine(firings=[_firing("r", "evt:a:1"), _firing("r", "evt:a:2")])
        assert _suite_over_fake(engine) == []

    def test_rule_schedule_oracle_fires_on_drifted_due(self):
        rule = (
            dsl.rule("r").when(dsl.every(5.0, offset=1.0)).then(dsl.invoke("S", "get"))
        ).build()
        bad_due = {"rule": "r", "trigger": 0, "n": 2, "due": 11.5, "fired_at": 11.5}
        late = {"rule": "r", "trigger": 0, "n": 3, "due": 16.0, "fired_at": 16.25}
        engine = _FakeEngine(rules=[rule], schedule_log=[bad_due, late])
        violations = _suite_over_fake(engine)
        assert [v.oracle for v in violations] == ["rule-schedule", "rule-schedule"]

    def test_rule_schedule_oracle_quiet_on_closed_form(self):
        rule = (
            dsl.rule("r").when(dsl.every(5.0, offset=1.0)).then(dsl.invoke("S", "get"))
        ).build()
        good = {"rule": "r", "trigger": 0, "n": 2, "due": 11.0, "fired_at": 11.0}
        engine = _FakeEngine(rules=[rule], schedule_log=[good])
        assert _suite_over_fake(engine) == []
