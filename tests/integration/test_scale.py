"""Scale behaviour: many islands, many services.

The paper argues the framework's integration cost grows linearly with the
number of middleware.  These tests push well past the prototype's four
islands to make sure nothing in the implementation is accidentally
quadratic or order-dependent.
"""

import pytest

from repro.core.framework import MetaMiddleware
from repro.core.interface import simple_interface
from repro.net.network import Network
from repro.net.segment import EthernetSegment
from repro.net.simkernel import Simulator

from tests.core.toys import ToyPcm


class Echo:
    def __init__(self, tag):
        self.tag = tag

    def whoami(self):
        return self.tag


def build(n_islands: int, services_per_island: int):
    sim = Simulator()
    net = Network(sim)
    backbone = net.create_segment(EthernetSegment, "backbone")
    mm = MetaMiddleware(net, backbone)
    interface_cache = simple_interface("Echo", {"whoami": ("->string",)})
    islands = []
    for island_index in range(n_islands):
        services = {
            f"Echo_{island_index}_{service_index}": (
                interface_cache,
                Echo(f"{island_index}/{service_index}"),
            )
            for service_index in range(services_per_island)
        }
        islands.append(
            mm.add_island(f"island{island_index}", None,
                          lambda i, s=services: ToyPcm(i.gateway, s))
        )
    sim.run_until_complete(mm.connect())
    return sim, mm, islands


class TestScale:
    def test_ten_islands_fifty_services(self):
        sim, mm, islands = build(10, 5)
        catalog = sim.run_until_complete(mm.catalog())
        assert len(catalog) == 50
        # Spot-check corner-to-corner reachability.
        assert sim.run_until_complete(
            islands[0].gateway.invoke("Echo_9_4", "whoami", [])
        ) == "9/4"
        assert sim.run_until_complete(
            islands[9].gateway.invoke("Echo_0_0", "whoami", [])
        ) == "0/0"

    def test_every_island_imported_every_foreign_service(self):
        sim, mm, islands = build(6, 3)
        for index, island in enumerate(islands):
            foreign = 5 * 3  # 5 other islands x 3 services
            assert len(island.pcm.facades) == foreign

    def test_connect_cost_grows_roughly_linearly(self):
        """Virtual integration time per island stays flat as N doubles
        (each island's exports/imports are independent work)."""
        times = {}
        for n in (4, 8):
            sim, mm, islands = build(n, 2)
            times[n] = sim.now / n
        assert times[8] < times[4] * 2.5

    def test_event_fanout_at_scale(self):
        sim, mm, islands = build(8, 1)
        received = []
        for island in islands[1:]:
            sim.run_until_complete(
                island.gateway.subscribe(
                    "broadcast", lambda t, p, src, name=island.name: received.append(name)
                )
            )
        islands[0].gateway.publish_event("broadcast", "hello")
        sim.run_for(10.0)
        assert sorted(received) == sorted(island.name for island in islands[1:])
