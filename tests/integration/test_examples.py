"""Every shipped example must run to completion.

Executed in-process via runpy so failures surface as ordinary test
failures with tracebacks (and the suite stays fast).
"""

from __future__ import annotations

import io
import runpy
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name):
    captured = io.StringIO()
    with redirect_stdout(captured):
        runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    output = captured.getvalue()
    assert output.strip(), f"{name} printed nothing"


def test_expected_examples_present():
    assert {
        "quickstart.py",
        "universal_remote.py",
        "auto_recording.py",
        "surveillance.py",
        "join_upnp.py",
        "scenes.py",
    } <= set(EXAMPLES)


class TestExampleOutcomes:
    """Spot-check that the examples demonstrate what they claim."""

    def run(self, name):
        captured = io.StringIO()
        with redirect_stdout(captured):
            runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
        return captured.getvalue()

    def test_quickstart_reaches_all_islands(self):
        output = self.run("quickstart.py")
        assert "island=jini" in output and "island=havi" in output
        assert "island=x10" in output and "island=mail" in output
        assert "laserdisc: PLAY" in output

    def test_surveillance_shows_the_verdict(self):
        output = self.run("surveillance.py")
        assert "StreamNotBridgeableError" in output
        assert "faster at asynchronous notification" in output
        assert "transcoded=True" in output

    def test_join_upnp_two_way(self):
        output = self.run("join_upnp.py")
        assert "catalog now 15 services" in output
        assert "laserdisc (Jini island) state: PLAY" in output
