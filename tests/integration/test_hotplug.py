"""Devices added after the initial integration.

The paper's home is not static: appliances get plugged in.  Each
middleware has its own appearance mechanism (Jini registration, HAVi bus
join + registry, UPnP ssdp:alive, an X10 module simply existing at an
address); these tests cover how each one becomes framework-visible.
"""

import pytest

from repro.havi.bus1394 import HaviNode
from repro.havi.dcm import Dcm
from repro.havi.fcm_types import TunerFcm
from repro.havi.registry import RegistryClient
from repro.pcms.x10_pcm import X10DeviceInfo
from repro.x10.codes import X10Address
from repro.x10.devices import ApplianceModule


@pytest.fixture
def home():
    from repro.apps.home import build_smart_home

    built = build_smart_home()
    built.connect()
    return built


class TestLateDevices:
    def test_late_havi_device_appears_after_refresh(self, home):
        """Plug a HAVi radio in: bus reset, registry registration, then one
        framework refresh makes it callable from any island."""
        radio_node = HaviNode(home.network, "havi-radio", home.bus)
        radio_dcm = Dcm(radio_node, "Kitchen_Radio", "tuner", room="kitchen")
        radio = TunerFcm(radio_dcm)
        client = RegistryClient.for_bus(radio_node, home.havi_registry.havi_node)
        home.sim.run_until_complete(radio_dcm.register(client))
        home.sim.run_until_complete(home.mm.refresh())
        assert home.invoke_from("jini", "Kitchen_Radio_tuner", "set_channel", [3]) == 3
        assert radio.channel == 3

    def test_bus_reset_does_not_break_existing_services(self, home):
        """The join's bus reset reassigns phy ids; GUIDs (and therefore
        SEIDs) are stable, so in-flight service wiring survives."""
        HaviNode(home.network, "havi-newcomer", home.bus)  # join -> reset
        assert home.bus.reset_count >= 4
        assert home.invoke_from("jini", "DV_Camera_camera", "zoom", [2]) == 2

    def test_late_x10_module_with_device_map_update(self, home):
        """X10 has no discovery: the installer adds the module *and* the
        map entry, then refresh exports it."""
        heater = ApplianceModule(home.network, "heater", "powerline", X10Address("A", 6))
        pcm = home.islands["x10"].pcm
        pcm.device_map.append(X10DeviceInfo(X10Address("A", 6), "heater", "appliance", room="bath"))
        home.sim.run_until_complete(home.mm.refresh())
        assert home.invoke_from("havi", "X10_A6_heater", "turn_on") is True
        assert heater.on

    def test_late_devices_searchable_by_context(self, home):
        radio_node = HaviNode(home.network, "havi-radio", home.bus)
        radio_dcm = Dcm(radio_node, "Kitchen_Radio", "tuner", room="kitchen")
        TunerFcm(radio_dcm)
        client = RegistryClient.for_bus(radio_node, home.havi_registry.havi_node)
        home.sim.run_until_complete(radio_dcm.register(client))
        home.sim.run_until_complete(home.mm.refresh())
        kitchen = {d.service for d in home.find_services(room="kitchen")}
        assert "Kitchen_Radio_tuner" in kitchen
        assert "Refrigerator" in kitchen  # spans middleware

    def test_refresh_is_cheap_when_nothing_changed(self, home):
        t0 = home.sim.now
        home.sim.run_until_complete(home.mm.refresh())
        assert home.sim.now - t0 < 1.0  # re-export skips, imports dedupe
