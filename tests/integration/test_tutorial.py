"""The docs/TUTORIAL.md code must keep working verbatim-in-spirit."""

from repro.apps import build_smart_home
from repro.core.interface import simple_interface
from repro.core.pcm import ProtocolConversionManager
from repro.net.simkernel import SimFuture


class BlinkHub:
    def __init__(self):
        self.devices = {}


class BlinkLight:
    def __init__(self):
        self.lit = False

    def flash(self, times: int) -> int:
        self.lit = True
        return times


class BlinkPcm(ProtocolConversionManager):
    middleware_name = "blinknet"

    def __init__(self, vsg, hub: BlinkHub):
        super().__init__(vsg)
        self.hub = hub

    def _discover_local_services(self):
        discovered = []
        for name, device in self.hub.devices.items():
            if name in self.imported:
                continue  # a facade we installed: never re-export (loop!)
            interface = simple_interface(name, {"flash": ("int", "->int")})

            def handler(operation, args, _device=device):
                return getattr(_device, operation)(*args)

            discovered.append((name, interface, handler, {"vendor": "blink"}))
        return SimFuture.completed(discovered)

    def _materialise(self, document, interface):
        self.hub.devices[document.service] = self.remote_proxy(document)
        return SimFuture.completed(True)


class TestTutorial:
    def build(self):
        home = build_smart_home()
        home.connect()
        hub = BlinkHub()
        hub.devices["PorchBlinker"] = BlinkLight()
        home.mm.add_island("blinknet", None, lambda i: BlinkPcm(i.gateway, hub))
        home.sim.run_until_complete(home.mm.refresh())
        return home, hub

    def test_old_islands_reach_blinknet(self):
        home, hub = self.build()
        assert home.invoke_from("jini", "PorchBlinker", "flash", [3]) == 3
        assert hub.devices["PorchBlinker"].lit

    def test_blinknet_native_clients_reach_old_islands(self):
        home, hub = self.build()
        laserdisc = hub.devices["Laserdisc"]
        home.sim.run_until_complete(laserdisc.play())
        assert home.laserdisc.playing

    def test_loop_prevention_on_double_refresh(self):
        """Facades must never be re-exported: names AND owning islands of
        every catalog entry must survive a second refresh (a hijacked
        service keeps its name but moves island — check both)."""
        home, hub = self.build()

        def snapshot():
            return {
                (d.service, d.context["island"])
                for d in home.sim.run_until_complete(home.mm.catalog())
            }

        before = snapshot()
        home.sim.run_until_complete(home.mm.refresh())
        assert snapshot() == before
        # Foreign services still live on their own islands and still work.
        assert ("Laserdisc", "jini") in before
        assert home.invoke_from("havi", "Laserdisc", "get_state") in ("PLAY", "STOP")
