"""The full smart home over the SIP gateway binding.

The paper's Section 3.1 makes the VSG protocol a choice; this suite proves
the choice is real: the complete four-island prototype — devices, PCMs,
applications — runs unchanged over SIP/UDP instead of SOAP/HTTP.
"""

import pytest

from repro.apps.home import build_smart_home
from repro.apps.universal_remote import UniversalRemote
from repro.core.gateway_sip import SipGatewayProtocol


@pytest.fixture
def sip_home():
    home = build_smart_home(protocol_factory=lambda stack: SipGatewayProtocol(stack))
    home.connect()
    return home


class TestSipHome:
    def test_catalog_complete(self, sip_home):
        catalog = sip_home.sim.run_until_complete(sip_home.mm.catalog())
        assert len(catalog) == 13
        assert all(d.location.startswith("sip:") for d in catalog)

    def test_cross_middleware_calls(self, sip_home):
        assert sip_home.invoke_from("havi", "Laserdisc", "play") is True
        assert sip_home.invoke_from("jini", "DV_Camera_camera", "zoom", [4]) == 4
        assert sip_home.invoke_from("mail", "X10_A1_hall_lamp", "turn_on") is True
        assert sip_home.lamps["hall"].on

    def test_universal_remote_works_over_sip(self, sip_home):
        remote = UniversalRemote(sip_home)
        remote.bind_default_layout()
        remote.press("A4")
        assert sip_home.laserdisc.playing

    def test_events_are_pushed(self, sip_home):
        received = []
        sip_home.sim.run_until_complete(
            sip_home.islands["havi"].gateway.subscribe(
                "x10.ON", lambda t, p, src: received.append(sip_home.sim.now)
            )
        )
        sip_home.motion_sensor.trigger()
        sip_home.run(5.0)
        assert len(received) == 1
        # No polling machinery ever engaged.
        for island in sip_home.islands.values():
            assert island.gateway.events.polls_performed == 0

    def test_faults_cross_sip_gateways(self, sip_home):
        from repro.errors import RemoteServiceError

        with pytest.raises(RemoteServiceError, match="out of range"):
            sip_home.invoke_from("jini", "DV_Camera_camera", "zoom", [99])

    def test_no_backbone_tcp_connections_used_by_gateways(self, sip_home):
        """The 'small devices' benefit: SIP gateways keep zero TCP state on
        the backbone.  (Island-internal state is the middleware's own
        affair — the Jini PCM legitimately caches JRMP connections on the
        jini-eth segment; the VSR/UDDI exchange is transient.)"""
        sip_home.invoke_from("havi", "Refrigerator", "get_temperature")
        sip_home.run(5.0)
        for island in sip_home.islands.values():
            backbone_conns = [
                key for key in island.stack._connections
                if key[0].segment == "backbone"
            ]
            assert backbone_conns == []
