"""Failure injection across the whole bridged home.

The framework's job is to make heterogeneity invisible; these tests make
sure *failures* stay visible and contained: a broken island degrades its
own services only, faults keep their meaning across two protocol
conversions, and recovery paths (lease expiry, cache invalidation,
gateway restart) actually run.
"""

import pytest

from repro.errors import RemoteServiceError, ServiceNotFoundError
from repro.apps.home import build_smart_home


@pytest.fixture
def home():
    built = build_smart_home()
    built.connect()
    return built


class TestIslandFailures:
    def test_dead_gateway_degrades_only_its_island(self, home):
        home.islands["havi"].gateway.shutdown()
        # HAVi services are now unreachable...
        with pytest.raises(Exception):
            home.invoke_from("jini", "DV_Camera_camera", "zoom", [3])
        # ...but every other island keeps working.
        assert home.invoke_from("jini", "Refrigerator", "get_temperature") == 4.0
        assert home.invoke_from("mail", "X10_A1_hall_lamp", "turn_on") is True
        assert home.invoke_from("x10", "InternetMail", "send",
                                ["u@home.sim", "s", "b"]) is True

    def test_gateway_restart_on_new_port_recovers(self, home):
        """VSR staleness: the gateway moves, cached locations go stale, the
        retry-after-invalidate path restores service."""
        from repro.core.gateway_soap import SoapGatewayProtocol

        # Prime the jini island's cache with the HAVi gateway's location.
        assert home.invoke_from("jini", "Digital_TV_tuner", "get_channel") == 1
        havi = home.islands["havi"]
        havi.gateway.protocol.stop()
        new_protocol = SoapGatewayProtocol(havi.stack, port=9191)
        havi.gateway.protocol = new_protocol
        new_protocol.start(havi.gateway)
        # Republishing is what a restarted gateway does on boot.
        for name in havi.gateway.exported_services:
            interface, _handler = havi.gateway._local[name]
            document = interface.to_wsdl(
                new_protocol.location(name),
                {"island": "havi", "protocol": "soap", "middleware": "havi"},
            )
            home.sim.run_until_complete(havi.gateway.vsr.publish(document))
        assert home.invoke_from("jini", "Digital_TV_tuner", "get_channel") == 1

    def test_withdrawn_service_fails_with_not_found(self, home):
        home.sim.run_until_complete(
            home.islands["jini"].gateway.withdraw_service("Laserdisc")
        )
        home.islands["havi"].gateway.vsr.invalidate("Laserdisc")
        with pytest.raises(Exception) as excinfo:
            home.invoke_from("havi", "Laserdisc", "play")
        assert "Laserdisc" in str(excinfo.value)


class TestFaultTranslation:
    def test_device_error_survives_double_conversion(self, home):
        """HAVi error -> neutral fault -> SOAP Fault -> neutral fault ->
        caller exception, with the message intact."""
        with pytest.raises(RemoteServiceError, match="zoom level 99 out of range"):
            home.invoke_from("jini", "DV_Camera_camera", "zoom", [99])

    def test_type_error_rejected_at_the_first_boundary(self, home):
        before = home.camera.zoom_level
        with pytest.raises(RemoteServiceError):
            home.invoke_from("jini", "DV_Camera_camera", "zoom", ["wide"])
        assert home.camera.zoom_level == before  # never reached the device

    def test_arity_error_rejected(self, home):
        with pytest.raises(RemoteServiceError, match="expects"):
            home.invoke_from("havi", "Refrigerator", "set_temperature", [])

    def test_unknown_operation_rejected(self, home):
        with pytest.raises(RemoteServiceError):
            home.invoke_from("havi", "Refrigerator", "defrost_everything", [])


class TestLossyMedia:
    def test_powerline_loss_is_contained(self, home):
        """A lossy powerline breaks X10 commands but nothing else; after
        the interference clears, X10 recovers."""
        import random

        powerline = home.network.segment("powerline")
        rng = random.Random(7)
        powerline.loss_model = lambda frame: rng.random() < 1.0  # total loss
        home.invoke_from("jini", "X10_A1_hall_lamp", "turn_on")
        assert not home.lamps["hall"].on  # frames never arrived
        # The rest of the home is untouched.
        assert home.invoke_from("jini", "Refrigerator", "get_temperature") == 4.0
        # Interference clears; X10 works again.
        powerline.loss_model = None
        home.invoke_from("jini", "X10_A1_hall_lamp", "turn_on")
        assert home.lamps["hall"].on

    def test_serial_corruption_retried_transparently(self, home):
        """Corrupt the first CM11A checksum; the driver retries and the
        command still lands."""
        from repro.net.frames import Frame

        serial = home.network.segment("serial0")
        original_transmit = serial.transmit
        corrupted = {"done": False}

        def corrupt_once(sender, frame):
            if (not corrupted["done"] and sender is home.cm11a.port.interface
                    and len(frame.payload) == 1):
                corrupted["done"] = True
                frame = Frame(frame.src, frame.dst, frame.protocol,
                              bytes([frame.payload[0] ^ 0xFF]), frame.note)
            return original_transmit(sender, frame)

        serial.transmit = corrupt_once
        assert home.invoke_from("havi", "X10_A1_hall_lamp", "turn_on") is True
        assert home.lamps["hall"].on
        assert home.controller.driver.checksum_retries == 1


class TestLeaseDynamics:
    def test_jini_service_crash_disappears_via_lease_expiry(self, home):
        """Stop renewing the fridge's lease (simulating a crash): the
        lookup service withdraws it; the bridged view goes stale but the
        lookup itself is truthful."""
        service = home.jini_services["Refrigerator"]
        service.renewals.forget(service.registration_lease)
        before = home.lookup.registered_count
        home.run(200.0)
        assert home.lookup.registered_count < before

    def test_bridged_registrations_outlive_many_lease_periods(self, home):
        home.run(1000.0)  # many 120s bridge leases
        from repro.jini.service import JiniClient, JiniHost

        host = JiniHost(home.network, "survivor-check", home.network.segment("jini-eth"))
        client = JiniClient(host)
        lookup_ref = home.sim.run_until_complete(client.discover_lookup())
        items = home.sim.run_until_complete(
            client.lookup(lookup_ref, interface="vsg.InternetMail")
        )
        assert len(items) == 1


class TestMalformedTraffic:
    def test_garbage_to_the_soap_port_is_survivable(self, home):
        """Raw TCP garbage at a gateway's SOAP endpoint must not break the
        gateway for legitimate callers."""
        from repro.net.transport import TransportStack

        node = home.network.create_node("fuzzer")
        home.network.attach(node, home.mm.backbone)
        stack = TransportStack(node, home.network)
        gateway_address = home.islands["jini"].stack.local_address(home.mm.backbone)
        conn = home.sim.run_until_complete(stack.connect(gateway_address, 8080))
        conn.send(b"\xde\xad\xbe\xef" * 100)
        conn.send(b"POST /soap/Laserdisc HTTP/1.0\r\nContent-Length: 3\r\n\r\nxml")
        home.run(2.0)
        assert home.invoke_from("havi", "Laserdisc", "get_state") in ("PLAY", "STOP")

    def test_garbage_on_discovery_ports_is_ignored(self, home):
        from repro.net.transport import TransportStack

        node = home.network.create_node("udp-fuzzer")
        home.network.attach(node, home.network.segment("jini-eth"))
        stack = TransportStack(node, home.network)
        sock = stack.udp_socket()
        for payload in (b"", b"\x00", b"\xac\xed\x00\x05\xfe", b"not-marshalled"):
            sock.broadcast(home.network.segment("jini-eth"), 4160, payload)
        home.run(2.0)
        # Discovery still works afterwards.
        from repro.jini.service import JiniClient, JiniHost

        host = JiniHost(home.network, "post-fuzz", home.network.segment("jini-eth"))
        client = JiniClient(host)
        assert home.sim.run_until_complete(client.discover_lookup()) == home.lookup.ref
