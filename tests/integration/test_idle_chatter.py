"""Background-traffic regression guard.

The bridged home is never perfectly silent: Jini lookup announcements,
lease renewals, CM11A polling, SOAP event polls.  This suite pins the
*composition* of that idle chatter so a future change that accidentally
introduces a chatty loop (or silences a keepalive) fails loudly.
"""

import pytest

from repro.apps.home import build_smart_home
from repro.net.monitor import TrafficMonitor


@pytest.fixture
def idle_minute():
    home = build_smart_home()
    home.connect()
    monitor = TrafficMonitor().watch(*home.network.segments.values())
    home.run(60.0)
    return home, monitor


class TestIdleChatter:
    def test_backbone_is_quiet_without_subscriptions(self, idle_minute):
        """With no event subscriptions, an idle minute costs (almost)
        nothing on the backbone: no polling loops are armed.  A few stray
        TCP close-handshake frames from connect time may still drain."""
        home, monitor = idle_minute
        backbone = monitor.per_segment.get("backbone", {})
        backbone_bytes = sum(stats.bytes for stats in backbone.values())
        assert backbone_bytes < 200

    def test_jini_island_carries_announcements_and_renewals(self, idle_minute):
        home, monitor = idle_minute
        jini = monitor.per_segment["jini-eth"]
        assert jini["udp"].frames >= 3   # periodic multicast announcements
        assert jini["tcp"].frames > 0    # lease renewals over RMI

    def test_powerline_is_silent_when_nothing_happens(self, idle_minute):
        home, monitor = idle_minute
        assert "powerline" not in monitor.per_segment

    def test_havi_bus_is_silent_at_idle(self, idle_minute):
        home, monitor = idle_minute
        assert "havi-1394" not in monitor.per_segment

    def test_idle_minute_total_is_bounded(self, idle_minute):
        """The whole home idles on under 10 KB/min of management traffic —
        the kind of number a 2002 embedded deployment would care about."""
        home, monitor = idle_minute
        assert monitor.total_bytes < 10_000

    def test_subscriptions_add_polling_load_to_backbone_only(self):
        home = build_smart_home(poll_interval=2.0)
        home.connect()
        home.sim.run_until_complete(
            home.islands["havi"].gateway.subscribe("x10.ON", lambda t, p, s: None)
        )
        monitor = TrafficMonitor().watch(*home.network.segments.values())
        home.run(60.0)
        backbone_bytes = sum(
            stats.bytes for stats in monitor.per_segment.get("backbone", {}).values()
        )
        assert backbone_bytes > 10_000  # ~30 polls/min of HTTP exchanges
        assert "powerline" not in monitor.per_segment
