"""Experiment A3 — the future-work extension, measured (Section 6).

The paper defers multimedia to "another Meta middleware ... for
multimedia application[s]".  We built it (`repro.core.streams`) and here
quantify the trade it makes against native HAVi isochronous streaming:

| path | guarantee | bandwidth |
|---|---|---|
| native 1394 iso | reserved channel, lossless | full DV |
| relay, transcoded | best-effort TCP | best format fitting the backbone |
| relay, forced DV | best-effort TCP | collapses at the bottleneck |

Expected shape: native iso delivers the full 28.8 Mb/s; the transcoded
relay delivers a steady MPEG2-rate stream across islands (something the
VSG alone can never do); the forced-DV relay saturates the 10 Mb/s
backbone and falls ever further behind — the quantitative reason the
future work lists "conversion of multimedia streams" as a requirement.
"""

from __future__ import annotations

import pytest

from repro.apps.home import build_smart_home
from repro.core.streams import StreamMetaMiddleware, StreamSink
from repro.havi.streams import FORMAT_BANDWIDTH, Plug

from benchmarks.conftest import report

MEASURE_SECONDS = 20.0


def run_comparison():
    home = build_smart_home(with_x10=False, with_mail=False)
    home.connect()

    # Path 1: native isochronous DV on the 1394 bus.
    native_start = home.sim.now
    connection = home.stream_manager.connect(
        Plug(home.camera, "out"), Plug(home.tv_display, "in"), "DV"
    )
    home.run(MEASURE_SECONDS)
    native_bps = home.tv_display.bytes_displayed * 8 / MEASURE_SECONDS
    connection.disconnect()

    # Paths 2 and 3: the stream meta-middleware across islands.
    meta = StreamMetaMiddleware(home.mm)
    meta.attach("havi")
    meta.attach("jini")

    transcoded_sink = StreamSink.counter()
    meta.register_sink("jini", "pc-a", transcoded_sink)
    stream = home.sim.run_until_complete(meta.relay("havi", "jini", "pc-a", fmt="DV"))
    home.run(MEASURE_SECONDS)
    transcoded_bps = transcoded_sink.bytes_received * 8 / MEASURE_SECONDS
    transcoded_format = stream.delivered_format
    stream.close()
    home.run(1.0)

    forced_sink = StreamSink.counter()
    meta.register_sink("jini", "pc-b", forced_sink)
    forced = home.sim.run_until_complete(
        meta.relay("havi", "jini", "pc-b", fmt="DV", force_format=True)
    )
    home.run(MEASURE_SECONDS)
    forced_bps = forced_sink.bytes_received * 8 / MEASURE_SECONDS
    forced_offer = forced.stats()["offered_bps"]
    forced.close()

    rows = [
        ("native 1394 iso (DV)", "same island", f"{native_bps / 1e6:.1f} Mb/s", "reserved channel"),
        (f"relay, transcoded ({transcoded_format})", "cross island",
         f"{transcoded_bps / 1e6:.1f} Mb/s", "fits the backbone"),
        ("relay, forced DV", "cross island",
         f"{forced_bps / 1e6:.1f} Mb/s of {forced_offer / 1e6:.1f} offered",
         "queueing collapse"),
    ]
    return rows, native_bps, transcoded_bps, forced_bps, forced_offer


def test_a3_stream_relay_ablation(bench_once):
    rows, native_bps, transcoded_bps, forced_bps, forced_offer = bench_once(run_comparison)
    report("A3: multimedia across islands — native vs stream meta-middleware",
           rows, ("path", "scope", "delivered", "property"))
    assert native_bps == pytest.approx(FORMAT_BANDWIDTH["DV"], rel=0.15)
    assert transcoded_bps == pytest.approx(FORMAT_BANDWIDTH["MPEG2"], rel=0.15)
    # The forced stream cannot exceed the backbone and trails its offer.
    assert forced_bps < 10e6
    assert forced_bps < 0.5 * forced_offer
