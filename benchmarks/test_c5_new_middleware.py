"""Experiment C5 — claim: "new middleware can be participated in our
framework effortlessly" (Sections 3 and 6).

The measurement: take the running four-island prototype, join a UPnP
island at runtime, and count what it took — modules written (exactly one
PCM), changes to existing islands (zero), virtual time to full two-way
reachability.
"""

from __future__ import annotations

import inspect

from repro.apps.home import add_upnp_island, build_smart_home
from repro.pcms import upnp_pcm as upnp_pcm_module

from benchmarks.conftest import ms, report


def run_join():
    home = build_smart_home()
    home.connect()
    before = home.sim.run_until_complete(home.mm.catalog())
    before_names = {d.service for d in before}

    # Snapshot existing-island state that must remain untouched.
    exports_before = {
        name: list(island.gateway.exported_services)
        for name, island in home.islands.items()
    }

    t0 = home.sim.now
    add_upnp_island(home)
    home.sim.run_until_complete(home.mm.refresh())
    join_time = home.sim.now - t0

    after = home.sim.run_until_complete(home.mm.catalog())
    new_services = {d.service for d in after} - before_names

    # Two-way reachability immediately after the join.
    assert home.invoke_from("upnp", "Laserdisc", "get_state") in ("PLAY", "STOP")
    assert home.invoke_from("jini", "Porchlight_SwitchPower", "SetTarget", [True])

    # Existing islands: exports unchanged.
    for name, exports in exports_before.items():
        assert list(home.islands[name].gateway.exported_services) == exports

    glue_loc = len(inspect.getsource(upnp_pcm_module).splitlines())
    return {
        "services_before": len(before),
        "services_after": len(after),
        "new_services": sorted(new_services),
        "join_time": join_time,
        "glue_loc": glue_loc,
    }


def test_c5_new_middleware_joins(bench_once):
    result = bench_once(run_join)
    rows = [
        ("services before join", result["services_before"]),
        ("services after join", result["services_after"]),
        ("new services", ", ".join(result["new_services"])),
        ("modules written", "1 (repro/pcms/upnp_pcm.py)"),
        ("PCM module size", f"{result['glue_loc']} lines"),
        ("changes to existing islands", "0"),
        ("virtual time to full reachability", ms(result["join_time"])),
    ]
    report("C5: joining a fifth middleware (UPnP)", rows, ("metric", "value"))
    assert result["services_after"] == result["services_before"] + 2
    assert result["new_services"] == ["Porchlight_SwitchPower", "Renderer_AVTransport"]
    assert result["join_time"] < 10.0
