"""Experiment A1 — the Section 2 motivating application: automatic video
recording from an Internet TV-program service.

"the service integration of a VCR control service with a TV program
service on the Internet can provide an automatic video recording service
that records TV programs according to user profiles" — run end to end and
report the timeline.
"""

from __future__ import annotations

from repro.apps.auto_recording import RecordingAgent, TvProgramService, UserProfile
from repro.apps.home import build_smart_home

from benchmarks.conftest import report


def run_scenario():
    home = build_smart_home()
    home.connect()
    guide = TvProgramService(home.mm)
    home.sim.run_until_complete(guide.publish())

    profile = UserProfile(genres=("technology",), keywords=("movie",),
                          mail_to="user@home.sim")
    agent = RecordingAgent(home, profile)
    planned = home.sim.run_until_complete(agent.plan())
    home.run(600.0)  # the whole evening airs

    timeline = [
        (recording.title, recording.channel,
         f"{recording.start:.0f}s-{recording.end:.0f}s", recording.state)
        for recording in agent.schedule
    ]
    inbox = home.mail_server.store.mailbox("user@home.sim")
    return home, agent, planned, timeline, len(inbox)


def test_a1_automatic_recording(bench_once):
    home, agent, planned, timeline, mails = bench_once(run_scenario)
    report("A1: automatic video recording timeline", timeline,
           ("programme", "channel", "slot", "outcome"))
    print(f"  completion mails delivered: {mails}")
    assert [row[0] for row in timeline] == [
        "Ubiquitous Computing Tonight",
        "Home Networking Special",
        "Evening Movie",
    ]
    assert all(row[3] == "done" for row in timeline)
    assert mails == 3
    recordings = home.vcr.list_recordings()
    assert len(recordings) == 3
