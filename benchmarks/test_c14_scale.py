"""Experiment C14 — neighborhood-scale directory lookups and anti-entropy
convergence on the sharded VSR federation.

The federation (docs/FEDERATION.md) makes three performance promises:

- **sharding buys lookup headroom** — one directory replica is a single
  service queue (M/D/1-ish: each dispatched operation occupies it for a
  fixed service time).  At neighborhood scale (10k registered stub
  islands polling on the historical 2 s interval) a single shard runs
  saturated while 16 shards idle along at ~11 % utilization, so the
  16-shard p99 ``find_by_name`` must beat the 1-shard p99 by >= 4x.
- **convergence is bounded** — a replica that missed a burst of writes
  catches up in one anti-entropy round: a digest on the drift-free
  schedule plus however many delta pages the burst fills, never a
  function of how long the plane has been alive.
- **the trivial plane is free** — 1 shard x 1 replica produces the
  legacy wire byte-for-byte (same frames, same bytes, same order), so
  nobody pays for federation they didn't configure.

All latencies and convergence times are virtual (simulated) seconds —
deterministic across machines.  Numbers land in ``BENCH_scale.json``
(``$BENCH_OUTPUT_DIR``, default CWD); CI uploads the artifact and gates
it against the committed copy with ``benchmarks/check_scale.py``.
"""

from __future__ import annotations

import json
import os

from repro.core.framework import MetaMiddleware
from repro.core.interface import simple_interface
from repro.core.shard import FederationConfig, ShardLoadModel, VsrFederation
from repro.core.vsr import VsrClient
from repro.net.monitor import TrafficMonitor
from repro.net.network import Network
from repro.net.segment import EthernetSegment
from repro.net.simkernel import Simulator
from repro.net.transport import TransportStack
from repro.soap.wsdl import WsdlDocument

from benchmarks.conftest import report

ISLANDS = (100, 1_000, 10_000)
SHARDS = (1, 4, 16)
#: Virtual seconds one directory replica spends answering one operation —
#: picked so 10k islands on the historical 2 s poll interval offer 1.8
#: erlangs to a single shard (saturated) and ~0.11 to each of 16.
SERVICE_TIME = 0.00036
#: The historical island poll interval (framework default).
POLL_INTERVAL = 2.0
#: Background poll load is folded into the shard queues in pulses: one
#: capacity grab per shard per pulse, not one event per stub island.
PULSE = 0.5
WARMUP = 10.0
#: Measured lookups per cell, spread evenly over the measurement window.
LOOKUPS = 100
MEASURE = 20.0
#: Burst size for the convergence grid is the island count: one
#: registration per stub island, landed on the primaries only.
SYNC_INTERVAL = 2.0
MIN_SPEEDUP_AT_10K = 4.0


def quantile(sorted_values: list[float], q: float) -> float:
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


def stub_doc(index: int) -> WsdlDocument:
    name = f"Svc_stub{index}"
    return WsdlDocument(
        service=name,
        location=f"soap://stubnet/{index}:8080/{name}",
        context={"island": f"stub{index}", "middleware": "stub", "kind": "stub"},
    )


def build_plane(shards: int, replicas: int) -> tuple[Simulator, Network, VsrFederation]:
    sim = Simulator()
    net = Network(sim)
    backbone = net.create_segment(EthernetSegment, "backbone")
    federation = VsrFederation(
        net,
        backbone,
        FederationConfig(
            shards=shards,
            replicas=replicas,
            ring_seed="bench-ring",
            sync_interval=SYNC_INTERVAL,
        ),
        load_model_factory=lambda s: ShardLoadModel(s, SERVICE_TIME),
    )
    return sim, net, federation


def run_lookup_cell(islands: int, shards: int) -> dict:
    """p50/p99 virtual-time ``find_by_name`` latency for one grid cell:
    ``islands`` stub registrations on ``shards`` shards, with the stubs'
    steady poll load folded into every shard's service queue."""
    sim, net, federation = build_plane(shards, replicas=1)
    for index in range(islands):
        federation.view.publish(stub_doc(index))

    # Background load: islands/POLL_INTERVAL directory ops per second,
    # spread over the shards, folded in as one capacity grab per pulse.
    pulse_cost = (islands / shards) * (PULSE / POLL_INTERVAL) * SERVICE_TIME

    def pulse() -> None:
        for group in federation.replicas:
            group[0].load.inject(pulse_cost)
        sim.schedule(PULSE, pulse)

    sim.schedule(PULSE, pulse)

    node = net.create_node("bench-client")
    net.attach(node, net.segment("backbone"))
    stack = TransportStack(node, net)
    client = VsrClient(
        stack,
        federation.primary_endpoint.address,
        federation.primary_endpoint.port,
        federation=federation.routing(),
    )

    latencies: list[float] = []
    spacing = MEASURE / LOOKUPS

    def issue(sample: int) -> None:
        # Cache-busting: every sample resolves a distinct live name.
        issued_at = sim.now
        future = client.find_by_name(f"Svc_stub{sample % islands}")
        future.add_done_callback(
            lambda f: latencies.append(sim.now - issued_at)
            if f.exception() is None
            else latencies.append(float("inf"))
        )

    for sample in range(LOOKUPS):
        sim.at(WARMUP + sample * spacing, issue, sample)

    deadline = WARMUP + MEASURE + 600.0
    while len(latencies) < LOOKUPS and sim.now < deadline:
        sim.run(until=sim.now + 5.0)
    assert len(latencies) == LOOKUPS, (
        f"{islands} islands x {shards} shards: only {len(latencies)} of "
        f"{LOOKUPS} lookups completed by t={sim.now:g}"
    )
    assert all(value != float("inf") for value in latencies), "lookup failed"

    ordered = sorted(latencies)
    utilization = (islands / shards) * SERVICE_TIME / POLL_INTERVAL
    return {
        "islands": islands,
        "shards": shards,
        "offered_load": round(utilization, 4),
        "p50_s": quantile(ordered, 0.50),
        "p99_s": quantile(ordered, 0.99),
    }


def run_convergence_cell(islands: int, shards: int) -> dict:
    """Virtual time for a 2-replica plane to converge after ``islands``
    registrations land on the primaries only."""
    sim, _net, federation = build_plane(shards, replicas=2)
    for index in range(islands):
        federation.view.publish(stub_doc(index))
    federation.start_sync()
    horizon = 120.0
    while not federation.converged() and sim.now < horizon:
        sim.run(until=sim.now + 0.25)
    assert federation.converged(), (
        f"{islands} islands x {shards} shards never converged by t={sim.now:g}"
    )
    converged_at = sim.now
    stats = federation.stats()
    pulled = sum(
        replica.get("deltas_pulled", 0)
        for shard in stats["per_shard"]
        for replica in shard["replicas"]
    )
    federation.close()
    return {
        "islands": islands,
        "shards": shards,
        "converged_s": converged_at,
        "deltas_pulled": pulled,
    }


LAMP_IFACE = simple_interface("Lamp", {"set_level": ("int", "->int")})
THERMO_IFACE = simple_interface("Thermo", {"read": ("->double",)})


def run_wire_pin() -> dict:
    """The trivial 1x1 plane against the legacy directory: same two-island
    scenario, frame-for-frame identical backbone traffic."""

    def run_world(federation_config: FederationConfig | None) -> list:
        sim = Simulator()
        net = Network(sim)
        backbone = net.create_segment(EthernetSegment, "backbone")
        monitor = TrafficMonitor(trace_enabled=True).watch(backbone)
        mm = MetaMiddleware(net, backbone, federation=federation_config)
        mm.add_island("a", None)
        mm.add_island("b", None)
        sim.run_until_complete(mm.connect())
        sim.run_until_complete(
            mm.islands["b"].gateway.vsr.publish(
                THERMO_IFACE.to_wsdl("soap://backbone/2:8080/soap/Thermo", {"island": "b"})
            )
        )
        sim.run_until_complete(mm.islands["a"].gateway.vsr.find({}))
        mm.shutdown()
        sim.run(until=sim.now + 60.0)
        return monitor.trace

    legacy = run_world(None)
    trivial = run_world(FederationConfig(shards=1, replicas=1))
    return {
        "frames_legacy": len(legacy),
        "frames_trivial": len(trivial),
        "identical": legacy == trivial,
    }


def run_experiment() -> dict:
    lookup_grid = [
        run_lookup_cell(islands, shards) for islands in ISLANDS for shards in SHARDS
    ]
    convergence_grid = [
        run_convergence_cell(islands, shards)
        for islands in ISLANDS
        for shards in SHARDS
    ]
    by_cell = {(cell["islands"], cell["shards"]): cell for cell in lookup_grid}
    speedup = by_cell[(10_000, 1)]["p99_s"] / by_cell[(10_000, 16)]["p99_s"]
    return {
        "service_time_s": SERVICE_TIME,
        "poll_interval_s": POLL_INTERVAL,
        "lookup": lookup_grid,
        "convergence": convergence_grid,
        "speedup_at_10k": speedup,
        "wire_pin": run_wire_pin(),
    }


def emit_json(results: dict) -> str:
    out_dir = os.environ.get("BENCH_OUTPUT_DIR", ".")
    path = os.path.join(out_dir, "BENCH_scale.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
    return path


def test_c14_scale(bench_once):
    results = bench_once(run_experiment)
    report(
        "C14: find_by_name latency vs islands x shards (virtual time)",
        [
            (
                f"{cell['islands']}",
                f"{cell['shards']}",
                f"{cell['offered_load']:.3f}",
                f"{cell['p50_s'] * 1000:.2f}ms",
                f"{cell['p99_s'] * 1000:.2f}ms",
            )
            for cell in results["lookup"]
        ],
        ("islands", "shards", "offered load", "p50", "p99"),
    )
    report(
        "C14: anti-entropy convergence after a primary-only burst",
        [
            (
                f"{cell['islands']}",
                f"{cell['shards']}",
                f"{cell['converged_s']:.2f}s",
                f"{cell['deltas_pulled']}",
            )
            for cell in results["convergence"]
        ],
        ("islands", "shards", "converged", "deltas pulled"),
    )
    pin = results["wire_pin"]
    report(
        "C14: trivial-plane wire pin",
        [("backbone frames", f"{pin['frames_legacy']}", f"{pin['frames_trivial']}",
          "identical" if pin["identical"] else "DIVERGED")],
        ("metric", "legacy", "1x1 federation", "verdict"),
    )
    print(f"  -> speedup@10k islands (1 shard p99 / 16 shard p99): "
          f"{results['speedup_at_10k']:.1f}x")
    print(f"  -> {emit_json(results)}")

    assert results["speedup_at_10k"] >= MIN_SPEEDUP_AT_10K
    assert pin["identical"], "1x1 federation diverged from the legacy wire"
    # Convergence is one digest round plus the pulled pages — bounded by
    # burst size, not uptime; every cell must land well inside the sync
    # deadline even at 10k registrations on one shard.
    for cell in results["convergence"]:
        assert cell["converged_s"] < 30.0, cell
    # The saturated single shard must actually look saturated — otherwise
    # the speedup headline is measuring nothing.
    saturated = next(
        cell for cell in results["lookup"]
        if cell["islands"] == 10_000 and cell["shards"] == 1
    )
    assert saturated["offered_load"] > 1.0


def test_c14_lookup_grid_is_deterministic():
    """The measured latencies are virtual time over a deterministic
    simulation: the same cell reproduces to the last digit."""
    first = run_lookup_cell(1_000, 4)
    second = run_lookup_cell(1_000, 4)
    assert first == second
