"""Experiment F5 — Figure 5: the Universal Remote Controller.

An X10 handset controls its own island's lamp, the Jini Laserdisc and the
HAVi DV camera.  Per-target command latency is reported from the handset
press to the observable device state change.
"""

from __future__ import annotations

from repro.apps.home import build_smart_home
from repro.apps.universal_remote import UniversalRemote
from repro.x10.codes import X10Address, X10Function

from benchmarks.conftest import ms, report


def press_and_time(home, address, function, observed) -> float:
    """Press and poll virtual time until ``observed()`` is true."""
    t0 = home.sim.now
    home.handset.press(X10Address.parse(address), function)
    deadline = t0 + 30.0
    while not observed() and home.sim.now < deadline:
        home.sim.run_for(0.05)
    assert observed(), f"button {address} never took effect"
    return home.sim.now - t0


def run_remote():
    home = build_smart_home()
    home.connect()
    remote = UniversalRemote(home)
    remote.bind_default_layout()

    rows = []
    latency = press_and_time(
        home, "A1", X10Function.ON, lambda: home.lamps["hall"].on
    )
    rows.append(("A1 ON", "X10 lamp (native)", "x10", ms(latency)))
    latency = press_and_time(
        home, "A4", X10Function.ON, lambda: home.laserdisc.playing
    )
    rows.append(("A4 ON", "Jini Laserdisc", "jini", ms(latency)))
    latency = press_and_time(
        home, "A5", X10Function.ON, lambda: home.camera.capturing
    )
    rows.append(("A5 ON", "HAVi DV camera", "havi", ms(latency)))
    latency = press_and_time(
        home, "A6", X10Function.ON, lambda: home.tv_display.powered
    )
    rows.append(("A6 ON", "HAVi TV display", "havi", ms(latency)))
    return home, remote, rows


def test_f5_universal_remote(bench_once):
    home, remote, rows = bench_once(run_remote)
    report("F5: Universal Remote Controller (Figure 5)", rows,
           ("button", "target", "island", "press-to-effect latency"))
    counts = remote.invocation_counts()
    assert counts["Laserdisc.play"] == 1
    assert counts["DV_Camera_camera.start_capture"] == 1
    # Every press pays the same ~1s powerline+poll cost; the bridged hop
    # adds only milliseconds on top of the native X10 latency.
    latencies = [row[3] for row in rows]
    assert all(lat.endswith("ms") for lat in latencies)
