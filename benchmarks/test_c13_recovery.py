"""Experiment C13 — WAL journaling cost and cold-restart replay time.

The persistence layer (docs/PERSISTENCE.md) makes two performance
promises:

- **steady state is cheap** — journaling a busy publish-heavy federation
  costs under 3 % in wire bytes and in virtual-time op latency.  Both
  are measured by running the same band scenario twice, with and
  without journals, and comparing: appends are node-local and schedule
  no simulator events, so the measured overhead is exactly zero — the
  wire-invisibility test in ``tests/testkit/test_persistence_band.py``
  pins the byte-for-byte version of the same claim.  Host CPU spent
  inside journal appends is reported alongside as an informational
  share of run wall-clock (it is not gated: wall-clock on a shared
  runner is noise, wire bytes and virtual time are deterministic).
- **replay is bounded** — recovery folds the WAL in one pass, linear in
  its length, and checkpoint compaction caps that length at
  ``checkpoint_every`` however long the gateway lives.

Numbers land in ``BENCH_recovery.json`` (``$BENCH_OUTPUT_DIR``, default
CWD); CI uploads the artifact and gates it with
``benchmarks/check_recovery.py``.
"""

from __future__ import annotations

import json
import os
import time

from repro.store.journal import GatewayJournal
from repro.store.wal import MemWalStore
from repro.testkit.persistence_profile import install_persistence
from repro.testkit.runner import QUIESCE_MARGIN, generate
from repro.testkit.topology import build_world
from repro.testkit.workload import WorkloadRunner

from benchmarks.conftest import report

#: Persistence-band seed (publish-heavy, journals everywhere) — but NOT
#: one of the corpus pins, so retuning this experiment never collides
#: with the pinned band.
SEED = 505
STEPS = 200
MAX_STEADY_OVERHEAD = 0.03
#: The band's compaction interval (persistence_profile.CHECKPOINT_EVERY).
CHECKPOINT_EVERY = 64
#: Journal append counts for the replay-vs-length curve.
REPLAY_POINTS = (100, 1000, 5000)


def run_arm(persist: bool) -> dict:
    """One faultless run of the band scenario; with ``persist`` the
    journals are attached and every ``_log`` call is timed in place."""
    spec, ops, _faults = generate(SEED, STEPS)
    world = build_world(spec)
    journal_seconds = [0.0]
    journals = []
    if persist:
        install_persistence(world)
        journals = list(world.journals.values()) + [world.directory_journal]
        for journal in journals:
            original = journal._log

            def timed_log(record, _orig=original):
                t0 = time.perf_counter()
                _orig(record)
                journal_seconds[0] += time.perf_counter() - t0

            journal._log = timed_log  # type: ignore[method-assign]

    runner = WorkloadRunner(world)
    t0 = time.perf_counter()
    world.sim.run_until_complete(world.mm.connect())
    start = world.sim.now
    runner.schedule(ops, start)
    end = start + max(op.time for op in ops) + 1.0
    world.sim.run(until=end)
    world.mm.shutdown()
    world.sim.run(until=end + QUIESCE_MARGIN)
    wall = time.perf_counter() - t0

    latencies = [
        entry["completed_at"] - (start + entry["time"])
        for entry in runner.entries
        if entry["completed_at"] is not None
    ]
    return {
        "wire_frames": sum(s.frames for s in world.monitor.stats.values()),
        "wire_bytes": sum(s.bytes for s in world.monitor.stats.values()),
        "mean_latency_s": sum(latencies) / len(latencies),
        "completed_ops": len(latencies),
        "wall_s": wall,
        "journal_s": journal_seconds[0],
        "records_appended": sum(j.store.records_appended for j in journals),
        "checkpoints": sum(j.checkpoints for j in journals),
    }


def run_steady_state() -> dict:
    baseline = run_arm(persist=False)
    journaled = run_arm(persist=True)
    return {
        "baseline": baseline,
        "journaled": journaled,
        # Wire bytes and virtual-time latency are deterministic: the
        # gated overheads.  Journal appends are node-local, so both are
        # exactly 0.0 unless someone makes persistence touch the wire.
        "bytes_overhead": journaled["wire_bytes"] / baseline["wire_bytes"] - 1.0,
        "latency_overhead": journaled["mean_latency_s"] / baseline["mean_latency_s"]
        - 1.0,
        # Informational only (host wall-clock is noisy): the share of
        # the journaled run spent inside journal appends.
        "cpu_share": journaled["journal_s"] / journaled["wall_s"],
    }


def build_log(appends: int, checkpoint_every: int = 10**9) -> GatewayJournal:
    """A realistic record mix: queue-heavy with flush/ack cycles, like a
    publisher feeding a slow poller."""
    journal = GatewayJournal(
        MemWalStore(), "bench", checkpoint_every=checkpoint_every
    )
    for index in range(appends):
        journal.log_queue(
            "sub", {"topic": "bench/topic", "seq": index, "payload": "x" * 32}
        )
        if index % 4 == 0:
            journal.log_flush("sub", index // 4 + 1)
        elif index % 4 == 2:
            journal.log_ack("sub", index // 4 + 1)
    return journal


def run_replay_curve() -> dict:
    curve = []
    for appends in REPLAY_POINTS:
        journal = build_log(appends)
        on_medium = journal.store.record_count()
        t0 = time.perf_counter()
        journal.replay()
        curve.append(
            {
                "appends": appends,
                "records_on_medium": on_medium,
                "replay_s": time.perf_counter() - t0,
            }
        )
    # Same biggest append stream, but compacted: replay work is bounded
    # by the checkpoint interval, not by gateway lifetime.
    journal = build_log(REPLAY_POINTS[-1], checkpoint_every=CHECKPOINT_EVERY)
    on_medium = journal.store.record_count()
    t0 = time.perf_counter()
    journal.replay()
    checkpointed = {
        "appends": REPLAY_POINTS[-1],
        "checkpoint_every": CHECKPOINT_EVERY,
        "records_on_medium": on_medium,
        "replay_s": time.perf_counter() - t0,
    }
    return {"curve": curve, "checkpointed": checkpointed}


def run_experiment() -> dict:
    return {"steady_state": run_steady_state(), "replay": run_replay_curve()}


def emit_json(results: dict) -> str:
    out_dir = os.environ.get("BENCH_OUTPUT_DIR", ".")
    path = os.path.join(out_dir, "BENCH_recovery.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
    return path


def test_c13_recovery(bench_once):
    results = bench_once(run_experiment)
    steady = results["steady_state"]
    replay = results["replay"]
    base, jour = steady["baseline"], steady["journaled"]
    report(
        "C13: steady-state journaling overhead (publish-heavy band seed)",
        [
            ("wire bytes", f"{base['wire_bytes']}", f"{jour['wire_bytes']}",
             f"{steady['bytes_overhead'] * 100:+.2f}%"),
            ("wire frames", f"{base['wire_frames']}", f"{jour['wire_frames']}",
             ""),
            ("mean op latency", f"{base['mean_latency_s']:.4f}s",
             f"{jour['mean_latency_s']:.4f}s",
             f"{steady['latency_overhead'] * 100:+.2f}%"),
            ("host CPU in appends", "-",
             f"{jour['journal_s'] * 1000:.2f}ms",
             f"{steady['cpu_share'] * 100:.2f}% of run"),
            ("records appended", "-", f"{jour['records_appended']}", ""),
            ("checkpoints", "-", f"{jour['checkpoints']}", ""),
        ],
        ("metric", "baseline", "journaled", "overhead"),
    )
    report(
        "C13: replay time vs WAL length",
        [
            (
                f"{point['appends']}",
                f"{point['records_on_medium']}",
                f"{point['replay_s'] * 1000:.2f}ms",
            )
            for point in replay["curve"]
        ]
        + [
            (
                f"{replay['checkpointed']['appends']} (ckpt@{CHECKPOINT_EVERY})",
                f"{replay['checkpointed']['records_on_medium']}",
                f"{replay['checkpointed']['replay_s'] * 1000:.2f}ms",
            )
        ],
        ("appends", "records on medium", "replay"),
    )
    print(f"  -> {emit_json(results)}")

    assert jour["records_appended"] > 0, "band seed journaled nothing"
    assert steady["bytes_overhead"] < MAX_STEADY_OVERHEAD
    assert steady["latency_overhead"] < MAX_STEADY_OVERHEAD
    # Compaction caps the medium — and with it, replay work.
    assert replay["checkpointed"]["records_on_medium"] <= CHECKPOINT_EVERY
    assert replay["checkpointed"]["replay_s"] < replay["curve"][-1]["replay_s"]


def test_c13_journaled_state_is_deterministic():
    """Two identical runs journal identical record streams — the WAL is
    part of the deterministic surface, so replay curves are comparable
    across machines."""
    spec, ops, _faults = generate(SEED, STEPS)

    def snapshot() -> dict:
        world = build_world(spec)
        install_persistence(world)
        runner = WorkloadRunner(world)
        world.sim.run_until_complete(world.mm.connect())
        start = world.sim.now
        runner.schedule(ops, start)
        end = start + max(op.time for op in ops) + 1.0
        world.sim.run(until=end)
        world.mm.shutdown()
        world.sim.run(until=end + QUIESCE_MARGIN)
        return {
            name: journal.snapshot_json()
            for name, journal in sorted(world.journals.items())
        }

    assert snapshot() == snapshot()
