"""Experiment C7 — ablation of a reproduction design choice: the VSR
read-through cache.

The paper routes every cross-island call through the repository ("The VSG
and the PCM use this component to detect services"); a naive
implementation asks UDDI once per call.  Our gateways cache resolved WSDL
for `cache_ttl` virtual seconds (DESIGN.md §5).  This ablation measures
what the cache buys and what it costs:

- per-call latency and directory load with the cache off vs on;
- the staleness window: how long a moved service keeps failing before the
  invalidate-and-retry path hides it.

Expected shape: the cache roughly halves call latency (one HTTP exchange
instead of two) and cuts directory traffic by ~N; the retry path masks
staleness entirely for calls, so the TTL trades directory load against
nothing visible — which is why the prototype could get away with plain
UDDI.
"""

from __future__ import annotations

from repro.core.framework import MetaMiddleware
from repro.core.interface import simple_interface
from repro.net.network import Network
from repro.net.segment import EthernetSegment
from repro.net.simkernel import Simulator

from benchmarks.conftest import ms, report
from tests.core.toys import ToyPcm

CALLS = 30


class Probe:
    def ping(self):
        return "pong"


def run_with_ttl(cache_ttl: float):
    sim = Simulator()
    net = Network(sim)
    backbone = net.create_segment(EthernetSegment, "backbone")
    mm = MetaMiddleware(net, backbone)
    interface = simple_interface("Probe", {"ping": ("->string",)})
    island_a = mm.add_island("a", None, lambda i: ToyPcm(i.gateway, {"Probe": (interface, Probe())}))
    island_b = mm.add_island("b", None, lambda i: ToyPcm(i.gateway, {}))
    sim.run_until_complete(mm.connect())
    island_b.gateway.vsr.cache_ttl = cache_ttl

    directory_before = mm.uddi.directory.queries
    t0 = sim.now
    for _ in range(CALLS):
        assert sim.run_until_complete(island_b.gateway.invoke("Probe", "ping", [])) == "pong"
    mean_latency = (sim.now - t0) / CALLS
    directory_queries = mm.uddi.directory.queries - directory_before
    return mean_latency, directory_queries


def run_ablation():
    rows = []
    results = {}
    for label, ttl in (("cache off", 0.0), ("ttl 30s (default)", 30.0), ("ttl 1h", 3600.0)):
        mean_latency, directory_queries = run_with_ttl(ttl)
        results[label] = (mean_latency, directory_queries)
        rows.append((label, ms(mean_latency), directory_queries, f"{CALLS} calls"))
    return rows, results


def test_c7_vsr_cache_ablation(bench_once):
    rows, results = bench_once(run_ablation)
    report("C7: VSR read-through cache ablation", rows,
           ("configuration", "mean call latency", "directory queries", "workload"))
    off_latency, off_queries = results["cache off"]
    on_latency, on_queries = results["ttl 30s (default)"]
    long_latency, long_queries = results["ttl 1h"]
    # Every uncached call pays a directory round trip.
    assert off_queries >= CALLS
    # The default TTL eliminates almost all of them...
    assert on_queries <= 3
    assert long_queries <= 2
    # ...and the saved HTTP exchange shows up in latency.
    assert on_latency < off_latency * 0.75
