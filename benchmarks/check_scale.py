#!/usr/bin/env python3
"""Gate scale-benchmark regressions against the committed baseline.

CI runs the C14 benchmark (which emits ``BENCH_scale.json``) and then
this script::

    python benchmarks/check_scale.py <current.json> [baseline.json]

The baseline defaults to the ``BENCH_scale.json`` committed at the repo
root.  The build fails when:

- any tracked p99 ``find_by_name`` latency at 10k islands (1, 4 or 16
  shards) climbs more than ``TOLERANCE`` above the baseline,
- any tracked convergence time at 10k islands climbs likewise,
- the 1-shard-vs-16-shard p99 speedup headline at 10k islands drops
  below ``MIN_SPEEDUP`` or more than ``TOLERANCE`` below the baseline,
- the trivial 1x1 plane stopped being byte-identical to the legacy wire.

The simulation is deterministic, so honest runs reproduce the baseline
exactly; the tolerance only absorbs intentional re-baselining noise (a
changed wire format legitimately shifts round trips a little).  When a
latency *improves* past the tolerance the script says so — refresh the
committed ``BENCH_scale.json`` in the same PR so the gate keeps teeth.
"""

from __future__ import annotations

import json
import os
import sys

TOLERANCE = 0.10
MIN_SPEEDUP = 4.0
GATED_ISLANDS = 10_000


def _tracked(results: dict) -> dict[str, float]:
    """name -> (value, lower_is_better) flattened from one results dict."""
    metrics: dict[str, float] = {}
    for cell in results["lookup"]:
        if cell["islands"] == GATED_ISLANDS:
            metrics[f"p99 find_by_name @10k, {cell['shards']} shard(s)"] = cell[
                "p99_s"
            ]
    for cell in results["convergence"]:
        if cell["islands"] == GATED_ISLANDS:
            metrics[f"convergence @10k, {cell['shards']} shard(s)"] = cell[
                "converged_s"
            ]
    return metrics


def main(argv: list[str]) -> int:
    if not 2 <= len(argv) <= 3:
        print(__doc__)
        return 2
    current_path = argv[1]
    baseline_path = (
        argv[2]
        if len(argv) == 3
        else os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "BENCH_scale.json",
        )
    )
    with open(current_path, encoding="utf-8") as handle:
        current = json.load(handle)
    with open(baseline_path, encoding="utf-8") as handle:
        baseline = json.load(handle)

    failures, improvements = [], []

    if not current.get("wire_pin", {}).get("identical", False):
        failures.append(
            "wire pin: the 1x1 federation no longer matches the legacy "
            "wire frame-for-frame"
        )

    speedup = current.get("speedup_at_10k", 0.0)
    base_speedup = baseline.get("speedup_at_10k", 0.0)
    print(f"speedup @10k islands: {base_speedup:.1f}x -> {speedup:.1f}x")
    if speedup < MIN_SPEEDUP:
        failures.append(
            f"speedup @10k islands: {speedup:.1f}x < required {MIN_SPEEDUP:.0f}x"
        )
    elif base_speedup and speedup < base_speedup * (1.0 - TOLERANCE):
        failures.append(
            f"speedup @10k islands regressed: {base_speedup:.1f}x -> {speedup:.1f}x"
        )

    now_metrics = _tracked(current)
    for name, base in _tracked(baseline).items():
        now = now_metrics.get(name)
        if now is None:
            failures.append(f"{name}: missing from {current_path}")
            continue
        ratio = now / base if base else 1.0
        line = f"{name}: {base:.4f}s -> {now:.4f}s ({ratio:.2%} of baseline)"
        print(line)
        if ratio > 1.0 + TOLERANCE:  # latency: higher is a regression
            failures.append(line)
        elif ratio < 1.0 - TOLERANCE:
            improvements.append(line)

    if improvements:
        print(
            f"\nimproved >{TOLERANCE:.0%} past baseline — refresh the "
            "committed BENCH_scale.json to keep the gate tight:"
        )
        for line in improvements:
            print(f"  {line}")
    if failures:
        print(f"\nFAIL: scale benchmark regressed >{TOLERANCE:.0%}:")
        for line in failures:
            print(f"  {line}")
        return 1
    print("\nOK: no tracked metric regressed beyond tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
