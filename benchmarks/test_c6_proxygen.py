"""Experiment C6 — claim: proxies are generated automatically from service
interfaces (Section 4.1, Javassist in the prototype).

Measures: (a) wall-clock proxy class synthesis throughput across many
distinct interfaces; (b) correctness — a generated proxy is functionally
identical to a hand-written one on the same wire; (c) the per-call
overhead the generated type checking adds.
"""

from __future__ import annotations

from repro.core.interface import Operation, Parameter, ServiceInterface, ValueType
from repro.core.proxygen import ProxyFactory

from benchmarks.conftest import report


def interface_number(index: int) -> ServiceInterface:
    operations = tuple(
        Operation(
            f"op{op}",
            (Parameter("a", ValueType.INT), Parameter("b", ValueType.STRING)),
            ValueType.INT,
        )
        for op in range(5)
    )
    return ServiceInterface(f"Service{index}", operations)


def test_c6_generation_throughput(benchmark):
    counter = {"n": 0}

    def generate_one():
        factory = ProxyFactory()
        counter["n"] += 1
        cls = factory.proxy_class(interface_number(counter["n"]))
        return cls

    cls = benchmark(generate_one)
    assert cls.__name__.startswith("Service")


def test_c6_generated_vs_handwritten(bench_once):
    """Identical behaviour, small constant call overhead."""

    class Handwritten:
        def __init__(self, invoker):
            self._invoker = invoker

        def op0(self, a, b):
            return self._invoker("op0", [a, b])

    def run_comparison():
        log = []

        def invoker(operation, args):
            log.append((operation, args))
            return 42

        factory = ProxyFactory()
        generated = factory.create(interface_number(0), invoker)
        manual = Handwritten(invoker)

        assert generated.op0(1, "x") == manual.op0(1, "x") == 42
        assert log[0] == log[1] == ("op0", [1, "x"])

        import timeit

        generated_time = timeit.timeit(lambda: generated.op0(1, "x"), number=20000)
        manual_time = timeit.timeit(lambda: manual.op0(1, "x"), number=20000)
        return generated_time, manual_time

    generated_time, manual_time = bench_once(run_comparison)
    rows = [
        ("hand-written proxy", f"{manual_time / 20000 * 1e6:.2f}us/call"),
        ("generated proxy (with type checks)", f"{generated_time / 20000 * 1e6:.2f}us/call"),
        ("overhead factor", f"{generated_time / manual_time:.2f}x"),
    ]
    report("C6: generated vs hand-written proxy call cost", rows, ("proxy", "cost"))
    # The generated proxy validates every argument, so some overhead is
    # expected — but it must stay a small constant factor.
    assert generated_time < 40 * manual_time


def test_c6_every_catalog_interface_is_generatable(bench_once):
    """All 12+ real service interfaces of the prototype generate cleanly."""
    from repro.apps.home import build_smart_home
    from repro.core.interface import ServiceInterface as SI

    def run():
        home = build_smart_home()
        home.connect()
        catalog = home.sim.run_until_complete(home.mm.catalog())
        factory = ProxyFactory()
        generated = []
        for document in catalog:
            interface = SI.from_wsdl(document)
            proxy = factory.create(interface, lambda op, args: (op, args))
            generated.append((document.service, len(interface.operations)))
        return generated, factory

    generated, factory = bench_once(run)
    report("C6: proxy classes generated from the live catalog",
           [(name, ops) for name, ops in generated], ("service", "operations"))
    assert len(generated) == 13
    assert factory.classes_generated == 13


def test_c6_amortized_repeat_generation(bench_once):
    """Repeated generation for already-seen interface shapes must cost
    ~nothing: the process-wide fingerprint cache turns it into a lookup."""
    import timeit

    from repro.core.proxygen import clear_proxy_class_cache, generate_proxy_class

    def run():
        clear_proxy_class_cache()
        interfaces = [interface_number(index) for index in range(50)]
        cold = timeit.timeit(
            lambda: [generate_proxy_class(i) for i in interfaces], number=1
        )
        warm = timeit.timeit(
            lambda: [generate_proxy_class(i) for i in interfaces], number=1
        )
        return cold, warm

    cold, warm = bench_once(run)
    report(
        "C6: cold vs amortized proxy generation (50 interfaces)",
        [
            ("cold (synthesis)", f"{cold * 1e3:.3f}ms"),
            ("repeat (cache hit)", f"{warm * 1e3:.3f}ms"),
            ("amortization", f"{cold / warm:.1f}x"),
        ],
        ("path", "cost"),
    )
    # A cache hit skips all method synthesis; it must be decisively
    # cheaper than cold generation.
    assert warm * 2 < cold
