#!/usr/bin/env python3
"""Gate the telemetry plane's wire cost from ``BENCH_telemetry.json``.

CI runs the C12 benchmark (which emits ``BENCH_telemetry.json``) and then
this script::

    python benchmarks/check_telemetry.py <current.json>

Two hard promises are enforced, straight from ISSUE 8:

- **disabled is free** — agents constructed with ``enabled=False`` leave
  the backbone byte-identical to a run with no telemetry plane at all;
- **enabled is cheap** — the full report stream costs less than
  ``MAX_BYTES_OVERHEAD`` extra backbone bytes against the busy-wire
  baseline, with every island actually reporting (a silent plane would
  pass a pure overhead bound).

The simulation is deterministic, so these are exact checks, not
statistical ones: any drift is a real wire-behaviour change.
"""

from __future__ import annotations

import json
import sys

MAX_BYTES_OVERHEAD = 0.02
MIN_ISLANDS = 2


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(__doc__)
        return 2
    with open(argv[1], encoding="utf-8") as handle:
        results = json.load(handle)
    paths, overheads = results["paths"], results["overheads"]
    failures = []

    for key in ("bytes", "frames"):
        base, disabled = paths["baseline"][key], paths["disabled"][key]
        print(f"disabled {key}: {disabled} (baseline {base})")
        if disabled != base:
            failures.append(
                f"disabled agents touched the wire: {key} {base} -> {disabled}"
            )

    bytes_overhead = overheads["bytes_overhead"]
    print(f"enabled bytes overhead: {bytes_overhead * 100:.2f}% "
          f"(bound {MAX_BYTES_OVERHEAD * 100:.0f}%)")
    if not 0.0 < bytes_overhead < MAX_BYTES_OVERHEAD:
        failures.append(
            f"enabled bytes overhead {bytes_overhead * 100:.2f}% outside "
            f"(0%, {MAX_BYTES_OVERHEAD * 100:.0f}%)"
        )

    islands = paths["enabled"].get("islands_reporting", 0)
    reports = paths["enabled"].get("reports_merged", 0)
    print(f"islands reporting: {islands}, reports merged: {reports}")
    if islands < MIN_ISLANDS or reports <= 0:
        failures.append(
            f"report stream missing: {islands} islands, {reports} reports"
        )

    if failures:
        print("\nFAIL: telemetry-plane wire promises broken:")
        for line in failures:
            print(f"  {line}")
        return 1
    print("\nOK: disabled is wire-invisible, enabled within the byte bound")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
