"""Experiment F1 — Figure 1: connecting middleware.

Reproduces the figure's claim as a full-mesh reachability matrix: a client
on every middleware island invokes a service on every island (including
its own) through the framework, and we record the virtual round-trip
latency of each pair.  Expected shape: all 16 pairs succeed; latencies are
milliseconds except where the X10 powerline is the last hop (hundreds of
milliseconds).
"""

from __future__ import annotations

import itertools

from repro.apps.home import build_smart_home

from benchmarks.conftest import ms, report

#: A cheap, side-effect-tolerant probe per target island.
PROBES = {
    "jini": ("Refrigerator", "get_temperature", []),
    "havi": ("Digital_TV_tuner", "get_channel", []),
    "x10": ("X10_A3_fan", "turn_on", []),
    "mail": ("InternetMail", "check_inbox", ["probe@home.sim"]),
}


def run_matrix():
    home = build_smart_home()
    home.connect()
    rows = []
    matrix = {}
    for source, target in itertools.product(PROBES, repeat=2):
        service, operation, args = PROBES[target]
        t0 = home.sim.now
        home.invoke_from(source, service, operation, list(args))
        latency = home.sim.now - t0
        matrix[(source, target)] = latency
        rows.append((source, target, service, "ok", ms(latency)))
    return rows, matrix


def test_f1_full_mesh_reachability(bench_once):
    rows, matrix = bench_once(run_matrix)
    report(
        "F1: cross-middleware reachability (Figure 1)",
        rows,
        ("client island", "service island", "service", "result", "virtual RTT"),
    )
    # Shape assertions: everything reachable, X10-terminated calls dominated
    # by the powerline, IP-only pairs in the low milliseconds.
    assert len(rows) == 16
    for (source, target), latency in matrix.items():
        if target == "x10":
            assert latency > 0.5, (source, target, latency)
        else:
            assert latency < 0.2, (source, target, latency)
