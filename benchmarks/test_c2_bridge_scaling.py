"""Experiment C2 — claim: the framework needs N PCMs where pairwise
bridging needs N·(N−1)/2 bridges (Sections 3 and 5).

"it is not enough to develop a single bridge that connects two specific
middleware one to one" — we quantify the comparison by actually building
frameworks of N toy middleware islands (N = 2..8), counting deployed
conversion components, and verifying full reachability; the pairwise
column is the combinatorial cost the Philips/Sony/Sun approach implies.
"""

from __future__ import annotations

import itertools

from repro.core.framework import MetaMiddleware
from repro.core.interface import simple_interface
from repro.net.network import Network
from repro.net.segment import EthernetSegment
from repro.net.simkernel import Simulator

from benchmarks.conftest import report
from tests.core.toys import ToyPcm


class Probe:
    def ping(self):
        return "pong"


def build_framework(n_islands: int):
    sim = Simulator()
    net = Network(sim)
    backbone = net.create_segment(EthernetSegment, "backbone")
    mm = MetaMiddleware(net, backbone)
    interface = simple_interface("Probe", {"ping": ("->string",)})
    islands = []
    for index in range(n_islands):
        island = mm.add_island(
            f"mw{index}", None,
            lambda i, idx=index: ToyPcm(
                i.gateway, {f"Probe{idx}": (interface, Probe())}
            ),
        )
        islands.append(island)
    sim.run_until_complete(mm.connect())
    return sim, mm, islands


def run_scaling():
    rows = []
    for n in range(2, 9):
        sim, mm, islands = build_framework(n)
        # Verify full reachability (every ordered pair).
        pairs = 0
        for a, b in itertools.permutations(range(n), 2):
            value = sim.run_until_complete(
                islands[a].gateway.invoke(f"Probe{b}", "ping", [])
            )
            assert value == "pong"
            pairs += 1
        framework_components = n  # one PCM per middleware
        pairwise_bridges = n * (n - 1) // 2
        rows.append((n, framework_components, pairwise_bridges, pairs,
                     f"{pairwise_bridges / framework_components:.1f}x"))
    return rows


def test_c2_bridge_scaling(bench_once):
    rows = bench_once(run_scaling)
    report("C2: conversion components needed, framework vs pairwise bridges",
           rows,
           ("middleware count", "framework PCMs", "pairwise bridges",
            "reachable pairs", "pairwise costs"))
    # Shape: linear vs quadratic.  At N=2 a single pairwise bridge beats
    # two PCMs (the Philips/Sony/Sun HAVi-Jini bridge was rational!); the
    # framework breaks even at N=3 and wins 3.5x by N=8.
    assert rows[0][1] == 2 and rows[0][2] == 1   # N=2: pairwise wins
    assert rows[1][1] == 3 and rows[1][2] == 3   # N=3: break-even
    assert rows[-1][1] == 8 and rows[-1][2] == 28  # N=8: 3.5x apart
    for n, pcm_count, bridges, pairs, _ratio in rows:
        assert pairs == n * (n - 1)
