"""Experiment harness: one module per reproduced figure/claim (see DESIGN.md)."""
