"""Experiment F2 — Figure 2: the Server Proxy / Client Proxy path.

Compares one logical call made three ways:

1. native — a Jini client calls the Jini Laserdisc directly over RMI;
2. bridged — the same operation through SP → SOAP VSG → CP from the HAVi
   island;
3. bridged+generated — via the generated typed facade (proxygen), showing
   the auto-generated proxies add no extra network cost.

Expected shape: the bridged call costs a constant factor more (extra TCP
handshakes + XML) but stays in the same order of magnitude; conversion is
where the bytes multiply.
"""

from __future__ import annotations

from repro.apps.home import build_smart_home
from repro.jini.service import JiniClient, JiniHost
from repro.net.monitor import TrafficMonitor

from benchmarks.conftest import ms, report


def run_paths():
    home = build_smart_home()
    home.connect()
    sim = home.sim
    results = {}

    # Path 1: native Jini RMI.
    host = JiniHost(home.network, "bench-client", home.network.segment("jini-eth"))
    client = JiniClient(host)
    lookup_ref = sim.run_until_complete(client.discover_lookup())
    proxy = sim.run_until_complete(client.lookup_one(lookup_ref, "home.av.Laserdisc"))
    monitor = TrafficMonitor().watch(home.network.segment("jini-eth"))
    t0 = sim.now
    sim.run_until_complete(proxy.get_chapter())
    results["native RMI"] = (sim.now - t0, monitor.total_bytes)

    # Path 2: bridged through the VSG from the HAVi island.
    monitor2 = TrafficMonitor().watch(
        home.network.segment("jini-eth"),
        home.network.segment("backbone"),
        home.network.segment("havi-1394"),
    )
    t0 = sim.now
    home.invoke_from("havi", "Laserdisc", "get_chapter")
    results["bridged (SP->VSG->CP)"] = (sim.now - t0, monitor2.total_bytes)

    # Path 3: bridged via the generated typed facade.
    facade = home.islands["havi"].pcm.remote_proxy(
        sim.run_until_complete(
            home.islands["havi"].gateway.vsr.find_by_name("Laserdisc")
        )
    )
    monitor3 = TrafficMonitor().watch(
        home.network.segment("jini-eth"), home.network.segment("backbone")
    )
    t0 = sim.now
    sim.run_until_complete(facade.get_chapter())
    results["bridged (generated proxy)"] = (sim.now - t0, monitor3.total_bytes)

    return results


def test_f2_proxy_path_overheads(bench_once):
    results = bench_once(run_paths)
    rows = [
        (path, ms(latency), bytes_)
        for path, (latency, bytes_) in results.items()
    ]
    report("F2: one logical call, three paths (Figure 2)", rows,
           ("path", "virtual latency", "bytes on wire"))
    native_latency, native_bytes = results["native RMI"]
    bridged_latency, bridged_bytes = results["bridged (SP->VSG->CP)"]
    generated_latency, _ = results["bridged (generated proxy)"]
    # Bridging costs more, but bounded: a constant factor, not an order
    # of magnitude in latency.
    assert bridged_latency > native_latency
    assert bridged_latency < 100 * native_latency
    # XML + double hop multiplies the bytes.
    assert bridged_bytes > 2 * native_bytes
    # The generated facade rides the same wire path.
    assert abs(generated_latency - bridged_latency) < bridged_latency
