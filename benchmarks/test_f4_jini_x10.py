"""Experiment F4 — Figure 4: conversion between Jini and X10.

Reproduces the paper's worked transaction wire-by-wire: a Jini client
calls ``turn_on`` on the bridged hall lamp; the Server Proxy converts the
RMI call to SOAP, the VSG carries it over the backbone, the X10 PCM's
Client Proxy converts it into CM11A serial bytes and finally powerline
frames.  The traffic trace shows every leg; the latency budget shows the
powerline dwarfing everything else.
"""

from __future__ import annotations

from repro.apps.home import build_smart_home
from repro.jini.service import JiniClient, JiniHost
from repro.net.monitor import TrafficMonitor

from benchmarks.conftest import ms, report


def run_figure4():
    home = build_smart_home()
    home.connect()
    sim = home.sim

    segments = ["jini-eth", "backbone", "serial0", "powerline"]
    monitor = TrafficMonitor(trace_enabled=True).watch(
        *(home.network.segment(name) for name in segments)
    )

    # A *plain Jini client* (Figure 4's left edge): discovers the lookup
    # service, finds the bridged X10 lamp, calls it.
    host = JiniHost(home.network, "f4-client", home.network.segment("jini-eth"))
    client = JiniClient(host)
    lookup_ref = sim.run_until_complete(client.discover_lookup())
    proxy = sim.run_until_complete(client.lookup_one(lookup_ref, "vsg.X10_A1_hall_lamp"))
    monitor.reset()
    t0 = sim.now
    sim.run_until_complete(proxy.turn_on())
    total = sim.now - t0
    assert home.lamps["hall"].on

    legs = []
    for name in segments:
        stats = monitor.per_segment.get(name, {})
        frames = sum(s.frames for s in stats.values())
        size = sum(s.bytes for s in stats.values())
        protocols = "+".join(sorted(stats))
        first = min(
            (e.time for e in monitor.trace if e.segment == name), default=None
        )
        legs.append((name, protocols, frames, size,
                     ms(first - t0) if first is not None else "-"))
    return total, legs, monitor


def test_f4_jini_to_x10_conversion(bench_once):
    total, legs, monitor = bench_once(run_figure4)
    report("F4: Jini -> X10 conversion trace (Figure 4)", legs,
           ("segment", "protocols", "frames", "bytes", "first frame at"))
    print(f"  total virtual round trip: {ms(total)}")
    by_segment = {leg[0]: leg for leg in legs}
    # Every leg of Figure 4 carried traffic.
    for segment in ("jini-eth", "backbone", "serial0", "powerline"):
        assert by_segment[segment][2] > 0, segment
    # The powerline's two X10 frames dominate the latency budget.
    assert total > 0.6
    # RMI + SOAP legs carry far more bytes than the 2-byte X10 frames.
    assert by_segment["backbone"][3] > 10 * by_segment["powerline"][3]
