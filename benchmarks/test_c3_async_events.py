"""Experiment C3 — the paper's negative result: "HTTP is inherently a
client/server protocol, which does not map well to asynchronous
notification scenarios" (Section 4.2).

The event-based multimedia workload (X10 motion events consumed on the
HAVi island) runs over the SOAP/HTTP VSG at several polling intervals and
over the SIP VSG (native push).  Reported per configuration:

- mean notification latency (virtual);
- idle overhead: backbone traffic per minute with *zero* events flowing.

Expected shape: SOAP latency tracks ~interval/2 and can never beat the
poll granularity; its idle overhead *rises* as you chase lower latency
with faster polling.  SIP push latency is flat at network RTT with zero
idle overhead — the trade HTTP cannot offer at any setting.

The sweep also measures the push interchange (streamed event channels
over persistent connections): SOAP keeps its request/response substrate
but escapes the poll-granularity floor, landing at network-RTT latency
with near-zero idle traffic (periodic keepalive waits only).  Numbers
land in ``BENCH_events.json`` (``$BENCH_OUTPUT_DIR``, default CWD) so CI
can track the latency/overhead envelope per commit.
"""

from __future__ import annotations

import json
import os

from repro.apps.home import build_smart_home
from repro.apps.multimedia import MultimediaOrchestrator
from repro.core.gateway_sip import SipGatewayProtocol
from repro.net.monitor import TrafficMonitor
from repro.soap.http import PUSH_INTERCHANGE

from benchmarks.conftest import ms, report

POLL_INTERVALS = (0.5, 1.0, 2.0, 5.0, 10.0)
EVENTS = 4
GAP = 30.0  # seconds between motion triggers


def measure(protocol_factory=None, poll_interval=2.0, interchange=None):
    home = build_smart_home(
        poll_interval=poll_interval,
        protocol_factory=protocol_factory,
        interchange=interchange,
    )
    home.connect()
    orchestrator = MultimediaOrchestrator(home)
    home.sim.run_until_complete(orchestrator.arm())

    # Idle overhead: no events for one minute, count backbone bytes.
    idle_monitor = TrafficMonitor().watch(home.network.segment("backbone"))
    home.run(60.0)
    idle_bytes = idle_monitor.total_bytes

    for _ in range(EVENTS):
        home.motion_sensor.trigger()
        home.run(GAP)
    latencies = orchestrator.notification_latencies
    assert len(latencies) == EVENTS
    mean_latency = sum(latencies) / len(latencies)
    return mean_latency, max(latencies), idle_bytes


def run_sweep():
    rows = []
    results = {}
    raw = {}

    def record(label, key, mean_latency, worst, idle):
        results[key] = (mean_latency, idle)
        raw[label] = {
            "mean_latency_s": mean_latency,
            "worst_latency_s": worst,
            "idle_bytes_per_min": idle,
        }
        rows.append((label, ms(mean_latency), ms(worst), idle))

    for interval in POLL_INTERVALS:
        record(f"SOAP poll {interval}s", ("soap", interval),
               *measure(poll_interval=interval))
    record("SOAP push channel", ("push", None),
           *measure(interchange=PUSH_INTERCHANGE))
    record("SIP push", ("sip", None),
           *measure(protocol_factory=lambda stack: SipGatewayProtocol(stack)))
    return rows, results, raw


def emit_json(raw: dict) -> str:
    out_dir = os.environ.get("BENCH_OUTPUT_DIR", ".")
    path = os.path.join(out_dir, "BENCH_events.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(raw, handle, indent=2, sort_keys=True)
    return path


def test_c3_async_notification(bench_once):
    rows, results, raw = bench_once(run_sweep)
    report("C3: event notification latency and idle overhead",
           rows, ("gateway", "mean latency", "worst latency", "idle B/min"))
    print(f"  -> {emit_json(raw)}")
    sip_latency, sip_idle = results[("sip", None)]
    # SOAP latency scales with the interval and is bounded below by it.
    for interval in POLL_INTERVALS:
        mean_latency, _ = results[("soap", interval)]
        assert mean_latency < interval * 1.2
        assert mean_latency > interval * 0.05
    slow, _ = results[("soap", 10.0)]
    fast, _ = results[("soap", 0.5)]
    assert slow > 4 * fast
    # Chasing latency with polling inflates idle traffic.
    _, idle_fast = results[("soap", 0.5)]
    _, idle_slow = results[("soap", 10.0)]
    assert idle_fast > 5 * idle_slow
    # SIP push: latency at network RTT, no idle polling traffic at all.
    assert sip_latency < 0.01
    assert sip_idle == 0
    assert all(sip_latency < results[("soap", i)][0] for i in POLL_INTERVALS)
    # SOAP push channels escape the poll floor: latency at network RTT —
    # an order of magnitude under the 2 s default poll — and the quiet
    # minute carries only keepalive waits, cheaper than even 10 s polls.
    push_latency, push_idle = results[("push", None)]
    assert push_latency < 0.05
    assert results[("soap", 2.0)][0] > 10 * push_latency
    assert all(push_idle < results[("soap", i)][1] for i in POLL_INTERVALS)
