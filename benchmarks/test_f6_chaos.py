"""Experiment F6 — chaos: resilience of the bridge under injected faults.

A steady cross-island workload (one Jini→HAVi call per virtual second for
100 s) runs while a standard :class:`FaultPlan` crashes the HAVi gateway,
takes the UDDI directory down past the cache TTL, drops 5% of backbone
frames, wedges the HAVi gateway, and spikes backbone latency.  We measure,
per 10 s phase, the success rate and latency of the workload, and assert
the resilience layer's contract:

- no call ever hangs — failures are bounded by deadline × attempts;
- the caller's circuit breaker opens while the HAVi island is dark and
  closes again after restart via a half-open probe;
- directory reads keep resolving from the VsrClient cache (degraded mode);
- two runs with the same seeds are bit-for-bit identical.
"""

from __future__ import annotations

import statistics

from repro.apps.home import build_smart_home
from repro.core.resilience import CallPolicy
from repro.faults import (
    FaultInjector,
    FaultPlan,
    GatewayPause,
    LatencySpike,
    LinkLoss,
    NodeCrash,
)

from benchmarks.conftest import ms, report

POLICY = CallPolicy(
    deadline=2.0,
    max_retries=1,
    breaker_threshold=3,
    breaker_reset_timeout=8.0,
    directory_deadline=2.0,
    seed=11,
)

CALLS = 100  # one per virtual second
#: Worst case for one failed invoke: 2 attempt-sets (original + stale
#: refresh) x 2 attempts x 2s deadline, plus backoff slack.
FAILURE_LATENCY_BOUND = 2 * 2 * POLICY.deadline + 2.0


def standard_plan(start: float) -> FaultPlan:
    return (
        FaultPlan(seed=11)
        .at(start + 20.0, NodeCrash("gw-havi", restart_after=20.0))
        .at(start + 30.0, NodeCrash("uddi-directory", restart_after=30.0))
        .at(start + 55.0, LinkLoss("backbone", rate=0.05, duration=10.0))
        .at(start + 70.0, GatewayPause("havi", duration=6.0))
        .at(start + 85.0, LatencySpike("backbone", extra_delay=0.05, duration=5.0))
    )


def run_chaos():
    home = build_smart_home(policy=POLICY)
    home.connect()
    sim = home.sim
    start = sim.now
    injector = FaultInjector(home.network, standard_plan(start), mm=home.mm).arm()

    jini = home.island("jini").gateway
    outcomes = []  # (offset, latency, result-type)

    def fire(offset: float) -> None:
        t0 = sim.now

        def record(future) -> None:
            exc = future.exception()
            outcomes.append(
                (offset, sim.now - t0, "ok" if exc is None else type(exc).__name__)
            )

        jini.invoke("Digital_TV_tuner", "get_channel", []).add_done_callback(record)

    for k in range(1, CALLS + 1):
        sim.at(start + k, fire, float(k))
    sim.run(until=start + 130.0)
    return outcomes, injector.report(), jini.resilience_stats()


def phase_rows(outcomes):
    rows = []
    for lo in range(0, CALLS, 10):
        bucket = [o for o in outcomes if lo < o[0] <= lo + 10]
        ok = [o for o in bucket if o[2] == "ok"]
        failed = [o for o in bucket if o[2] != "ok"]
        kinds = ",".join(sorted({o[2] for o in failed})) or "-"
        latency = ms(statistics.median(o[1] for o in ok)) if ok else "-"
        rows.append((f"t={lo + 1}..{lo + 10}", len(bucket), len(ok), latency, kinds))
    return rows


def test_f6_chaos_resilience(bench_once):
    outcomes, fault_report, stats = bench_once(run_chaos)

    report(
        "F6: Jini→HAVi workload under the standard fault plan",
        phase_rows(outcomes),
        ("phase", "calls", "ok", "median ok latency", "failure kinds"),
    )
    print()
    print(fault_report.render())
    breaker = stats["breakers"]["havi"]
    print(
        f"  resilience: attempts={stats['attempts']} timeouts={stats['timeouts']} "
        f"retries={stats['retries']} stale_refreshes={stats['stale_refreshes']} "
        f"breaker(havi): opens={breaker['opens']} fast_failures={breaker['fast_failures']} "
        f"degraded_reads={stats['vsr_degraded_reads']}"
    )

    assert len(outcomes) == CALLS
    by_offset = {o[0]: o for o in outcomes}

    # Healthy warm-up phase: every call succeeds, quickly.
    for k in range(1, 20):
        assert by_offset[k][2] == "ok", by_offset[k]
        assert by_offset[k][1] < 0.5

    # No call ever hangs: even failures resolve within the policy bound.
    worst = max(o[1] for o in outcomes)
    assert worst < FAILURE_LATENCY_BOUND, worst

    # The dark HAVi island trips the caller's breaker at least once (the
    # crash window, and usually again during the pause), and fast failures
    # prove calls were rejected without touching the network.
    assert breaker["opens"] >= 1
    assert breaker["fast_failures"] >= 1
    assert stats["timeouts"] >= 1

    # The directory outage outlives the cache TTL, so at least one lookup
    # was served stale (degraded mode is visible in the gateway stats).
    assert stats["vsr_degraded_reads"] >= 1

    # Tail recovery: once the last fault clears, service is back to normal.
    for k in range(95, CALLS + 1):
        assert by_offset[k][2] == "ok", by_offset[k]

    # Overall availability stays useful despite ~36 s of injected trouble.
    success_rate = sum(1 for o in outcomes if o[2] == "ok") / CALLS
    print(f"  availability: {success_rate:.0%}")
    assert success_rate > 0.6


def test_f6_chaos_is_deterministic():
    outcomes1, report1, stats1 = run_chaos()
    outcomes2, report2, stats2 = run_chaos()
    assert outcomes1 == outcomes2
    assert report1.as_dict() == report2.as_dict()
    assert stats1 == stats2
