"""Experiment C1 — claim: SOAP is "simple ... and light-weight for
network" (Section 4.1).

Encodes the *same logical call* — ``zoom(5)`` with a small struct result —
in each substrate's native wire format and in SOAP, then measures size.
The honest result (which the paper glosses): SOAP is light-weight only
relative to heavyweight middleware stacks; as *bytes on the wire* its XML
is several times larger than any of the binary encodings.  The framework
pays that cost for universality.
"""

from __future__ import annotations

from repro.havi import codec as havi_codec
from repro.jini.marshalling import marshal
from repro.soap import envelope
from repro.x10.codes import X10Address, X10Function
from repro.x10.powerline import X10Signal

from benchmarks.conftest import report


def run_encodings():
    operation = "zoom"
    args = [5]
    result_value = {"zoom": 5, "capturing": True}

    soap_request = envelope.build_request(operation, args)
    soap_response = envelope.build_response(operation, result_value)

    rmi_request = marshal(
        {"kind": "call", "call_id": 1, "object_id": 3, "method": operation, "args": args}
    )
    rmi_response = marshal({"kind": "result", "call_id": 1, "value": result_value})

    havi_request = havi_codec.encode({"op": operation, "args": args})
    havi_response = havi_codec.encode(result_value)

    x10_command = (
        X10Signal.for_address(X10Address("A", 1)).encode()
        + X10Signal.for_function("A", X10Function.ON).encode()
    )

    return {
        "SOAP (VSG)": (len(soap_request), len(soap_response)),
        "Jini RMI": (len(rmi_request), len(rmi_response)),
        "HAVi message": (len(havi_request), len(havi_response)),
        "X10 frames": (len(x10_command), 0),
    }


def test_c1_payload_sizes(bench_once):
    sizes = bench_once(run_encodings)
    soap_total = sum(sizes["SOAP (VSG)"])
    rows = [
        (fmt, request, response, request + response,
         f"{soap_total / max(1, request + response):.1f}x")
        for fmt, (request, response) in sizes.items()
    ]
    report("C1: one logical call in each wire format", rows,
           ("format", "request B", "response B", "total B", "SOAP is"))
    # Shape: SOAP several times larger than the binary formats; X10 is
    # two orders of magnitude smaller than everything.
    assert soap_total > 3 * sum(sizes["Jini RMI"])
    assert soap_total > 3 * sum(sizes["HAVi message"])
    assert soap_total > 100 * sum(sizes["X10 frames"])


def test_c1_encode_decode_cost(benchmark):
    """Wall-clock encode+decode throughput of the SOAP envelope codec (the
    'easy for implementation' half of the claim — it is also the slowest)."""
    operation, args = "zoom", [5, "camera", {"level": 2.5}]

    def roundtrip():
        return envelope.parse_envelope(envelope.build_request(operation, args))

    message = benchmark(roundtrip)
    assert message.operation == operation
