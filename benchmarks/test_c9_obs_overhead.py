"""Experiment C9 — observability overhead on the C8 bridged-call path.

``repro.obs`` promises to be free when disabled and cheap when enabled.
This experiment re-runs the C8 bridged Telemetry scenario three ways:

- **disabled** (the default ``NOOP_OBS``) — pinned *exactly* to the legacy
  wire numbers C8 established before observability existed.  Latency,
  bytes and frames are virtual-time quantities, so any drift here means
  instrumentation leaked onto the disabled path or the wire.
- **enabled, legacy wire** — full tracing + metrics on.  The only wire
  change allowed is the ``X-Trace`` header on traced requests, so the
  byte/latency overhead must stay within a few percent and the frame
  count must not change at all.
- **enabled, fast wire** — same bound on the C8 fast path.

Numbers land in ``BENCH_obs.json`` (``$BENCH_OUTPUT_DIR``, default CWD)
so CI tracks the overhead trajectory alongside ``BENCH_interchange.json``.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core.framework import MetaMiddleware
from repro.core.interface import simple_interface
from repro.net.monitor import TrafficMonitor
from repro.net.network import Network
from repro.net.segment import EthernetSegment
from repro.net.simkernel import Simulator
from repro.obs import Observability
from repro.soap.http import FAST_INTERCHANGE, InterchangeConfig

from benchmarks.conftest import ms, report

TELEMETRY_IFACE = simple_interface("Telemetry", {"snapshot": ("string", "->string")})
REPORT = (
    "temp=21.50C;humidity=40.2%;pressure=1013.2hPa;battery=97%;status=OK;"
) * 10

WARMUP_CALLS = 2
MEASURED_CALLS = 20

#: The C8 legacy numbers from before this subsystem existed.  Virtual
#: quantities are exactly reproducible, so the disabled path is pinned to
#: them byte-for-byte: observability off must cost *nothing* on the wire.
LEGACY_BASELINE = {
    "latency_per_call_s": 0.0017139999999999892,
    "bytes_per_call": 2130.0,
    "frames_per_call": 9.0,
}

#: Enabled overhead bound on the C8 path: the X-Trace header on traced
#: requests is the only extra wire traffic, a few dozen bytes per call.
MAX_ENABLED_OVERHEAD = 0.05


def build_home(interchange: InterchangeConfig | None, observed: bool):
    sim = Simulator()
    net = Network(sim)
    backbone = net.create_segment(EthernetSegment, "backbone")
    obs = Observability(sim) if observed else None
    mm = MetaMiddleware(net, backbone, interchange=interchange, obs=obs)
    island_a = mm.add_island("a", None)
    island_b = mm.add_island("b", None)

    def handler(operation, args):
        return REPORT

    sim.run_until_complete(
        island_a.gateway.export_service("Telemetry", TELEMETRY_IFACE, handler)
    )
    sim.run_until_complete(mm.connect())
    monitor = TrafficMonitor().watch(backbone)
    return sim, mm, island_b, monitor, obs


def measure_bridged(interchange: InterchangeConfig | None, observed: bool):
    """C8's measurement, plus span/metric counts when observability is on."""
    sim, mm, island_b, monitor, obs = build_home(interchange, observed)
    invoke = lambda: sim.run_until_complete(
        island_b.gateway.invoke("Telemetry", "snapshot", ["ch0"])
    )
    for _ in range(WARMUP_CALLS):
        assert invoke() == REPORT
    monitor.reset()
    spans_before = len(obs.tracer.spans) if obs else 0
    t0 = sim.now
    for _ in range(MEASURED_CALLS):
        assert invoke() == REPORT
    result = {
        "latency_per_call_s": (sim.now - t0) / MEASURED_CALLS,
        "bytes_per_call": monitor.total_bytes / MEASURED_CALLS,
        "frames_per_call": monitor.total_frames / MEASURED_CALLS,
    }
    if obs is not None:
        result["spans_per_call"] = (
            len(obs.tracer.spans) - spans_before
        ) / MEASURED_CALLS
        result["metric_keys"] = len(obs.metrics.snapshot())
    return result


def emit_json(results: dict) -> str:
    out_dir = os.environ.get("BENCH_OUTPUT_DIR", ".")
    path = os.path.join(out_dir, "BENCH_obs.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
    return path


def overhead(enabled: dict, disabled: dict, key: str) -> float:
    return enabled[key] / disabled[key] - 1.0


def run_comparison():
    disabled = measure_bridged(None, observed=False)
    enabled = measure_bridged(None, observed=True)
    fast_disabled = measure_bridged(FAST_INTERCHANGE, observed=False)
    fast_enabled = measure_bridged(FAST_INTERCHANGE, observed=True)
    return {
        "legacy wire, obs off": disabled,
        "legacy wire, obs on": enabled,
        "fast wire, obs off": fast_disabled,
        "fast wire, obs on": fast_enabled,
    }


def test_c9_observability_overhead(bench_once):
    results = bench_once(run_comparison)
    rows = [
        (
            path,
            ms(data["latency_per_call_s"]),
            f"{data['bytes_per_call']:.0f}",
            f"{data['frames_per_call']:.1f}",
            f"{data.get('spans_per_call', 0):.1f}",
        )
        for path, data in results.items()
    ]
    report(
        "C9: bridged Telemetry call, observability off vs on",
        rows,
        ("config", "virtual latency/call", "bytes/call", "frames/call", "spans/call"),
    )

    disabled = results["legacy wire, obs off"]
    enabled = results["legacy wire, obs on"]
    overheads = {
        "latency_overhead": overhead(enabled, disabled, "latency_per_call_s"),
        "bytes_overhead": overhead(enabled, disabled, "bytes_per_call"),
    }
    report(
        "C9: enabled overhead (legacy wire)",
        [(k, f"{v * 100:.2f}%") for k, v in overheads.items()],
        ("metric", "overhead"),
    )
    emit_json({"paths": results, "overheads": overheads})

    # Disabled == pre-observability wire, exactly.
    assert disabled["bytes_per_call"] == LEGACY_BASELINE["bytes_per_call"]
    assert disabled["frames_per_call"] == LEGACY_BASELINE["frames_per_call"]
    assert disabled["latency_per_call_s"] == pytest.approx(
        LEGACY_BASELINE["latency_per_call_s"], rel=1e-9
    )

    # Enabled: same frame count (no extra round trips), small byte/latency
    # cost from the X-Trace header, and the trace actually recorded.
    assert enabled["frames_per_call"] == disabled["frames_per_call"]
    assert 0.0 <= overheads["bytes_overhead"] <= MAX_ENABLED_OVERHEAD
    assert 0.0 <= overheads["latency_overhead"] <= MAX_ENABLED_OVERHEAD
    assert enabled["spans_per_call"] >= 4

    fast_disabled = results["fast wire, obs off"]
    fast_enabled = results["fast wire, obs on"]
    assert fast_enabled["frames_per_call"] == fast_disabled["frames_per_call"]
    assert overhead(fast_enabled, fast_disabled, "bytes_per_call") <= MAX_ENABLED_OVERHEAD


def test_c9_disabled_obs_is_wire_invisible():
    """Passing no obs and passing nothing are indistinguishable (the
    default NOOP_OBS), and two disabled runs are bit-identical."""
    assert measure_bridged(None, observed=False) == measure_bridged(
        None, observed=False
    )


def test_c9_enabled_runs_deterministic():
    """Tracing itself is deterministic: identical enabled runs produce
    identical measurements (and therefore identical span exports)."""
    assert measure_bridged(None, observed=True) == measure_bridged(
        None, observed=True
    )
