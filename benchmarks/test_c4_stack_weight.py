"""Experiment C4 — claim: "current HTTP must run over TCP, and a TCP stack
is large and complex.  This can be an issue in small devices" (Section 4.2).

Quantifies the stack weight per logical command:

- frames/bytes on the wire for a native X10 command (what the appliance
  itself must implement: a 2-byte powerline receiver) vs the same command
  arriving through the SOAP VSG (TCP handshakes, HTTP headers, XML);
- connection state held during one bridged call — state a "small device"
  would have to RAM-host if it spoke the VSG protocol natively;
- the datagram alternative: the SIP binding's frame count for the same
  call.
"""

from __future__ import annotations

from repro.apps.home import build_smart_home
from repro.core.gateway_sip import SipGatewayProtocol
from repro.net.monitor import TrafficMonitor

from benchmarks.conftest import report


def measure_home(protocol_factory=None):
    home = build_smart_home(protocol_factory=protocol_factory)
    home.connect()
    monitor = TrafficMonitor().watch(home.network.segment("backbone"))
    peak_connections = {"n": 0}

    gateway_stack = home.islands["x10"].gateway.stack
    original_step = home.sim.step

    # Sample open connection counts as the simulation runs.
    def sampling_step():
        advanced = original_step()
        peak_connections["n"] = max(peak_connections["n"], gateway_stack.open_connections)
        return advanced

    home.sim.step = sampling_step
    home.invoke_from("jini", "X10_A3_fan", "turn_on")
    home.sim.step = original_step
    stats = monitor.stats
    frames = sum(s.frames for s in stats.values())
    size = sum(s.bytes for s in stats.values())
    return frames, size, peak_connections["n"]


def run_weights():
    # Native X10: the appliance's entire protocol stack.
    native_frames, native_bytes = 2, 10  # addr + function frames incl. overhead

    soap_frames, soap_bytes, soap_conns = measure_home()
    sip_frames, sip_bytes, sip_conns = measure_home(
        protocol_factory=lambda stack: SipGatewayProtocol(stack)
    )
    rows = [
        ("X10 native (device side)", native_frames, native_bytes, 0),
        ("SOAP/HTTP/TCP VSG", soap_frames, soap_bytes, soap_conns),
        ("SIP/UDP VSG", sip_frames, sip_bytes, sip_conns),
    ]
    return rows


def test_c4_stack_weight(bench_once):
    rows = bench_once(run_weights)
    report("C4: one 'turn_on' command, stack weight by transport",
           rows, ("stack", "backbone frames", "backbone bytes", "peak TCP conns"))
    by_stack = {row[0]: row for row in rows}
    soap = by_stack["SOAP/HTTP/TCP VSG"]
    sip = by_stack["SIP/UDP VSG"]
    native = by_stack["X10 native (device side)"]
    # The paper's worry, quantified: the SOAP VSG moves two orders of
    # magnitude more bytes than the device's native protocol needs...
    assert soap[2] > 100 * native[2]
    # ...and requires live TCP connection state, which SIP/UDP avoids.
    assert soap[3] >= 1
    assert sip[3] == 0
    # SIP saves the handshake frames too.
    assert sip[1] < soap[1]
