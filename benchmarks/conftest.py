"""Shared helpers for the experiment harness.

Every benchmark regenerates one figure or measurable claim from the paper
(see DESIGN.md's experiment index).  Each prints the rows/series it
reproduces — virtual-time latencies and wire-byte counts from the
simulation — and uses pytest-benchmark to time the scenario itself.
"""

from __future__ import annotations

import pytest


def report(title: str, rows: list[tuple], headers: tuple[str, ...]) -> None:
    """Print one experiment table (captured into the benchmark log)."""
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    print("  " + " | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    print("  " + "-+-".join("-" * w for w in widths))
    for row in rows:
        print("  " + " | ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))


def ms(seconds: float) -> str:
    return f"{seconds * 1000:.2f}ms"


@pytest.fixture
def bench_once(benchmark):
    """Run a scenario a handful of times under pytest-benchmark (the
    interesting output is the virtual-time data the scenario prints)."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=3, iterations=1)

    return run
