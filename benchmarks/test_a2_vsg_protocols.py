"""Experiment A2 — ablation of the framework's key design choice: the
pluggable VSG protocol (Section 3.1: "How the protocol should we chose is
demands on the purpose of service integration").

The identical smart home runs once per gateway binding; the same workload
(an RPC burst plus an event burst) is measured on each.  Expected shape:
SOAP and SIP are comparable on request/response (SIP slightly faster —
no TCP handshake); on events SIP wins by orders of magnitude, matching
the paper's Section 5 discussion and explaining why the prototype's
multimedia system failed on HTTP.
"""

from __future__ import annotations

from repro.apps.home import build_smart_home
from repro.core.gateway_sip import SipGatewayProtocol

from benchmarks.conftest import ms, report

RPC_CALLS = 20
EVENT_COUNT = 5


def run_workload(protocol_factory=None, poll_interval=2.0):
    home = build_smart_home(
        protocol_factory=protocol_factory, poll_interval=poll_interval
    )
    home.connect()
    sim = home.sim

    # RPC burst: HAVi island reads the fridge temperature repeatedly.
    t0 = sim.now
    for _ in range(RPC_CALLS):
        home.invoke_from("havi", "Refrigerator", "get_temperature")
    rpc_mean = (sim.now - t0) / RPC_CALLS

    # Event burst: motion events consumed on the HAVi island.
    latencies = []
    received = []
    sim.run_until_complete(
        home.islands["havi"].gateway.subscribe(
            "x10.ON", lambda t, p, src: received.append(sim.now)
        )
    )
    for _ in range(EVENT_COUNT):
        before = len(received)
        publish_at = sim.now
        home.motion_sensor.trigger()
        home.run(40.0)
        assert len(received) == before + 1
        # Event publication happens when the CM11A upload lands (~1s after
        # the trigger); measure from the gateway's own delivery log.
    latencies = [
        record["latency"]
        for record in home.islands["havi"].gateway.events.delivery_log
        if record["topic"] == "x10.ON"
    ]
    event_mean = sum(latencies) / len(latencies)
    return rpc_mean, event_mean


def run_ablation():
    soap_rpc, soap_event = run_workload()
    sip_rpc, sip_event = run_workload(
        protocol_factory=lambda stack: SipGatewayProtocol(stack)
    )
    rows = [
        ("SOAP/HTTP (prototype)", ms(soap_rpc), ms(soap_event)),
        ("SIP/UDP (alternative)", ms(sip_rpc), ms(sip_event)),
        ("SIP advantage", f"{soap_rpc / sip_rpc:.1f}x", f"{soap_event / sip_event:.0f}x"),
    ]
    return rows, (soap_rpc, soap_event, sip_rpc, sip_event)


def test_a2_vsg_protocol_ablation(bench_once):
    rows, (soap_rpc, soap_event, sip_rpc, sip_event) = bench_once(run_ablation)
    report("A2: identical workload per VSG protocol binding", rows,
           ("gateway binding", "mean RPC latency", "mean event latency"))
    # RPC: same order of magnitude, SIP a bit ahead (no handshakes).
    assert sip_rpc < soap_rpc
    assert soap_rpc < 10 * sip_rpc
    # Events: orders of magnitude apart — the paper's core finding.
    assert soap_event > 50 * sip_event
