"""Experiment C11 — reactor-core transport throughput at saturation.

C8 measured per-call cost on an idle wire; this experiment measures
*sustained* throughput under concurrency, which is what the reactor
rewrite buys.  The serving device answers each call after a fixed 5 ms of
in-island work (a realistic device actuation/readout latency), so a
strictly serial connection is latency-bound: no matter how fast the wire,
one pooled connection completes at most ~1/(5 ms + RTT) calls per second.
The reactor substrate pipelines up to ``pipeline_depth`` exchanges over
the same connection (responses flushed in request order by the server's
slot machinery) and coalesces same-instant frames into vectored
transmissions, so the 5 ms service latencies overlap and throughput is
bound by the wire again.

Pinned claims:

1. **calls** — at 64 concurrent closed-loop callers, the reactor config
   sustains at least 3x the bridged calls/sec of the pre-reactor fast
   path (keep-alive, depth 1);
2. **events** — streamed push events through the reactor substrate are
   no slower than the PR-5 push path (no regression while the transport
   underneath was rewritten).

Results go to ``BENCH_throughput.json`` (directory from
``$BENCH_OUTPUT_DIR``, default CWD); CI uploads it as an artifact and
``benchmarks/check_throughput.py`` gates merges against the committed
``benchmarks/throughput_baseline.json``.
"""

from __future__ import annotations

import json
import os

from repro.core.framework import MetaMiddleware
from repro.core.interface import simple_interface
from repro.net.monitor import TrafficMonitor
from repro.net.network import Network
from repro.net.segment import EthernetSegment
from repro.net.simkernel import SimFuture, Simulator
from repro.soap.http import (
    FAST_INTERCHANGE,
    PUSH_INTERCHANGE,
    REACTOR_INTERCHANGE,
    InterchangeConfig,
)

from benchmarks.conftest import report

TELEMETRY_IFACE = simple_interface("Telemetry", {"snapshot": ("string", "->string")})

REPORT = (
    "temp=21.50C;humidity=40.2%;pressure=1013.2hPa;battery=97%;status=OK;"
) * 10

#: In-island device latency per served call: the handler resolves its
#: future this long after dispatch.  This is what serial connections
#: cannot hide and pipelined ones overlap.
SERVICE_DELAY = 0.005
#: Virtual seconds of sustained closed-loop load per measurement.
MEASURE_WINDOW = 5.0
#: Closed-loop caller counts (the "connection count" axis: the depth-1
#: baseline serialises them all on one pooled connection).
CONCURRENCY = (1, 4, 16, 64)

#: Publish cadence for the event-side measurement: one publish per
#: millisecond saturates the channel without coalescing artifacts.
EVENT_INTERVAL = 0.001


def build_home(interchange: InterchangeConfig | None):
    """Two SOAP islands on a backbone; island a exports Telemetry whose
    handler answers after SERVICE_DELAY of virtual device work."""
    sim = Simulator()
    net = Network(sim)
    backbone = net.create_segment(EthernetSegment, "backbone")
    mm = MetaMiddleware(net, backbone, interchange=interchange)
    island_a = mm.add_island("a", None)
    island_b = mm.add_island("b", None)

    def handler(operation, args):
        future: SimFuture = SimFuture()
        sim.schedule(SERVICE_DELAY, future.set_result, REPORT)
        return future

    sim.run_until_complete(
        island_a.gateway.export_service("Telemetry", TELEMETRY_IFACE, handler)
    )
    sim.run_until_complete(mm.connect())
    monitor = TrafficMonitor().watch(backbone)
    return sim, mm, island_a, island_b, monitor


def measure_calls(interchange: InterchangeConfig | None, concurrency: int) -> dict:
    """Sustained bridged calls/sec: ``concurrency`` closed-loop callers,
    each re-invoking the moment its previous call completes."""
    sim, mm, _island_a, island_b, monitor = build_home(interchange)
    invoke = lambda: island_b.gateway.invoke("Telemetry", "snapshot", ["ch0"])
    # Warm-up: VSR cache, capability negotiation, keep-alive proof (the
    # first exchange on a fresh connection is always one-in-flight).
    for _ in range(2):
        assert sim.run_until_complete(invoke()) == REPORT
    monitor.reset()
    t0 = sim.now
    deadline = t0 + MEASURE_WINDOW
    stats = {"completed": 0, "failed": 0}

    def loop(done: SimFuture) -> None:
        if done.exception() is not None:
            stats["failed"] += 1
            return
        if sim.now < deadline:
            stats["completed"] += 1
            invoke().add_done_callback(loop)

    for _ in range(concurrency):
        invoke().add_done_callback(loop)
    sim.run(until=deadline)
    elapsed = sim.now - t0
    calls_per_sec = stats["completed"] / elapsed
    result = {
        "calls_per_sec": round(calls_per_sec, 2),
        "completed": stats["completed"],
        "failed": stats["failed"],
        "bytes_per_call": round(monitor.total_bytes / max(1, stats["completed"]), 1),
    }
    # Drain in-flight work so teardown is clean (and nothing wedges).
    mm.shutdown()
    sim.run()
    return result


def measure_events(interchange: InterchangeConfig) -> dict:
    """Sustained streamed events/sec: island b subscribes, island a
    publishes one event per EVENT_INTERVAL for the whole window."""
    sim, mm, island_a, island_b, _monitor = build_home(interchange)
    received = {"count": 0}

    def on_event(topic: str, payload, source: str) -> None:
        received["count"] += 1

    sim.run_until_complete(island_b.gateway.subscribe_many(["telemetry"], on_event))
    sim.run_for(1.0)  # let the push channel establish and settle
    publishes = int(MEASURE_WINDOW / EVENT_INTERVAL)
    t0 = sim.now
    for index in range(publishes):
        sim.at(
            t0 + index * EVENT_INTERVAL,
            island_a.gateway.publish_event,
            "telemetry",
            index,
        )
    sim.run(until=t0 + MEASURE_WINDOW + 1.0)  # +1s: let the tail deliver
    events_per_sec = received["count"] / MEASURE_WINDOW
    mm.shutdown()
    sim.run()
    return {
        "events_per_sec": round(events_per_sec, 2),
        "published": publishes,
        "received": received["count"],
    }


def emit_json(results: dict) -> str:
    out_dir = os.environ.get("BENCH_OUTPUT_DIR", ".")
    path = os.path.join(out_dir, "BENCH_throughput.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
    return path


def run_throughput() -> dict:
    calls = {}
    for concurrency in CONCURRENCY:
        calls[str(concurrency)] = {
            "fast": measure_calls(FAST_INTERCHANGE, concurrency),
            "reactor": measure_calls(REACTOR_INTERCHANGE, concurrency),
        }
    events = {
        "push": measure_events(PUSH_INTERCHANGE),
        "reactor": measure_events(REACTOR_INTERCHANGE),
    }
    return {"calls": calls, "events": events}


def test_c11_reactor_throughput(bench_once):
    results = bench_once(run_throughput)
    rows = []
    for concurrency, data in results["calls"].items():
        fast, reactor = data["fast"], data["reactor"]
        speedup = reactor["calls_per_sec"] / fast["calls_per_sec"]
        rows.append(
            (
                concurrency,
                f"{fast['calls_per_sec']:.0f}",
                f"{reactor['calls_per_sec']:.0f}",
                f"{speedup:.2f}x",
            )
        )
    report(
        "C11: sustained bridged calls/sec vs concurrent callers",
        rows,
        ("concurrency", "fast (depth 1)", "reactor", "speedup"),
    )
    report(
        "C11: streamed events/sec at saturation",
        [
            (path, f"{data['events_per_sec']:.0f}", data["received"])
            for path, data in results["events"].items()
        ],
        ("path", "events/sec", "received"),
    )
    at64 = results["calls"]["64"]
    speedup_64 = at64["reactor"]["calls_per_sec"] / at64["fast"]["calls_per_sec"]
    event_ratio = (
        results["events"]["reactor"]["events_per_sec"]
        / results["events"]["push"]["events_per_sec"]
    )
    emit_json(
        {
            "calls": results["calls"],
            "events": results["events"],
            "speedup_at_64": round(speedup_64, 2),
            "event_ratio_vs_push": round(event_ratio, 3),
        }
    )
    # Acceptance bars: >=3x sustained calls/sec at 64 concurrent
    # exchanges, and the event path does not regress.
    assert speedup_64 >= 3.0
    assert event_ratio >= 0.9
    # Nothing silently failed its way to a fast number.
    for data in results["calls"].values():
        assert data["fast"]["failed"] == 0
        assert data["reactor"]["failed"] == 0


def test_c11_throughput_deterministic():
    """Identical reactor runs sustain identical throughput (the reactor's
    cycles and vectored flushes are fully deterministic)."""
    first = measure_calls(REACTOR_INTERCHANGE, 16)
    second = measure_calls(REACTOR_INTERCHANGE, 16)
    assert first == second
