"""Experiment C10 — automation rule engine: reaction latency and throughput.

The rules subsystem promises that a declarative trigger→condition→action
rule reacts as fast as the event interchange can carry the trigger.  Two
measurements back that up:

- **trigger→action latency** — a rule on island B listens for ``motion``
  events published on island A and invokes an actuator service back on A.
  Measured from the event's publish instant to the last action settling
  (``Firing.latency``), on the legacy polling wire vs the push wire: the
  push path must react in milliseconds where polling pays the poll
  interval.
- **rules/sec at saturation** — many rules all triggered by one local
  topic, hammered with events; reports wall-clock firings/sec of the
  engine machinery itself (no wire in the loop).

Numbers land in ``BENCH_rules.json`` (``$BENCH_OUTPUT_DIR``, default CWD)
as a CI artifact alongside the other BENCH_*.json files.
"""

from __future__ import annotations

import json
import os
import time

from repro.core.framework import MetaMiddleware
from repro.core.interface import simple_interface
from repro.net.network import Network
from repro.net.segment import EthernetSegment
from repro.net.simkernel import Simulator
from repro.rules import RuleEngine, dsl
from repro.soap.http import PUSH_INTERCHANGE

from benchmarks.conftest import ms, report

ACTUATOR_IFACE = simple_interface("Actuator", {"pulse": ("->string",)})

POLL_INTERVAL = 2.0
WARMUP_EVENTS = 2
MEASURED_EVENTS = 10
#: Per-event settling window: generous enough for a full poll cycle plus
#: the action's bridged round trip.
EVENT_SPACING = 8.0

SATURATION_RULES = 50
SATURATION_EVENTS = 40


def build_pair(push: bool):
    """Publisher island ``a`` (hosting the actuator) + engine island ``b``."""
    sim = Simulator()
    net = Network(sim)
    backbone = net.create_segment(EthernetSegment, "backbone")
    interchange = PUSH_INTERCHANGE if push else None
    mm = MetaMiddleware(net, backbone, interchange=interchange)
    island_a = mm.add_island("a", None, poll_interval=POLL_INTERVAL)
    island_b = mm.add_island("b", None, poll_interval=POLL_INTERVAL)
    pulses: list[float] = []

    def handler(operation, args):
        pulses.append(sim.now)
        return "pulsed"

    sim.run_until_complete(
        island_a.gateway.export_service("Actuator", ACTUATOR_IFACE, handler)
    )
    sim.run_until_complete(mm.connect())
    engine = RuleEngine(island_b.gateway)
    engine.add_rule(
        dsl.rule("motion-pulse")
        .when(dsl.on_event("motion"))
        .then(dsl.invoke("Actuator", "pulse"))
        .build()
    )
    sim.run_until_complete(engine.start())
    return sim, island_a.gateway, engine, pulses


def measure_reaction(push: bool) -> dict:
    sim, gw_a, engine, pulses = build_pair(push)
    total = WARMUP_EVENTS + MEASURED_EVENTS
    for index in range(total):
        gw_a.publish_event("motion", {"n": index})
        sim.run_for(EVENT_SPACING)
    firings = engine.firings
    assert len(firings) == total, f"{len(firings)} firings for {total} events"
    assert len(pulses) == total
    latencies = [f.latency for f in firings[WARMUP_EVENTS:]]
    assert all(latency is not None for latency in latencies)
    return {
        "latency_mean_s": sum(latencies) / len(latencies),
        "latency_max_s": max(latencies),
        "events": MEASURED_EVENTS,
    }


def measure_saturation() -> dict:
    """Wall-clock engine throughput: local events, no wire in the loop."""
    sim = Simulator()
    net = Network(sim)
    backbone = net.create_segment(EthernetSegment, "backbone")
    mm = MetaMiddleware(net, backbone)
    island = mm.add_island("solo", None)

    def handler(operation, args):
        return "ok"

    sim.run_until_complete(
        island.gateway.export_service("Actuator", ACTUATOR_IFACE, handler)
    )
    sim.run_until_complete(mm.connect())
    engine = RuleEngine(island.gateway)
    for index in range(SATURATION_RULES):
        engine.add_rule(
            dsl.rule(f"sat-{index}")
            .when(dsl.on_event("tick"))
            .then(dsl.invoke("Actuator", "pulse"))
            .build()
        )
    sim.run_until_complete(engine.start())
    t0 = time.perf_counter()
    for index in range(SATURATION_EVENTS):
        island.gateway.publish_event("tick", {"n": index})
        sim.run_for(1.0)
    elapsed = time.perf_counter() - t0
    expected = SATURATION_RULES * SATURATION_EVENTS
    assert engine.fired_count == expected
    return {
        "rules": SATURATION_RULES,
        "events": SATURATION_EVENTS,
        "firings": expected,
        "wall_seconds": elapsed,
        "firings_per_wall_second": expected / elapsed,
    }


def emit_json(results: dict) -> str:
    out_dir = os.environ.get("BENCH_OUTPUT_DIR", ".")
    path = os.path.join(out_dir, "BENCH_rules.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
    return path


def run_comparison():
    return {
        "poll": measure_reaction(push=False),
        "push": measure_reaction(push=True),
        "saturation": measure_saturation(),
    }


def test_c10_rule_reaction_latency(bench_once):
    results = bench_once(run_comparison)
    poll, push = results["poll"], results["push"]
    report(
        "C10: trigger->action latency (cross-island motion rule)",
        [
            ("poll (2s interval)", ms(poll["latency_mean_s"]), ms(poll["latency_max_s"])),
            ("push channel", ms(push["latency_mean_s"]), ms(push["latency_max_s"])),
            (
                "speedup",
                f"{poll['latency_mean_s'] / push['latency_mean_s']:.1f}x",
                "",
            ),
        ],
        ("wire", "mean latency", "max latency"),
    )
    saturation = results["saturation"]
    report(
        "C10: engine saturation (local events, no wire)",
        [
            (
                f"{saturation['rules']} rules x {saturation['events']} events",
                f"{saturation['firings']}",
                f"{saturation['firings_per_wall_second']:,.0f}/s",
            )
        ],
        ("load", "firings", "wall-clock throughput"),
    )
    emit_json(results)

    # Legacy fetching reacts in tens of ms (held long-poll waits), push
    # in wire time.  Virtual latencies are deterministic, so the bounds
    # are tight: push must beat the legacy path by an order of magnitude.
    assert push["latency_mean_s"] * 10 < poll["latency_mean_s"]
    assert poll["latency_mean_s"] < POLL_INTERVAL + 1.0
    assert push["latency_max_s"] < 0.5


def test_c10_reaction_measurement_deterministic():
    """Virtual-time latencies are exactly reproducible run to run."""
    assert measure_reaction(push=True) == measure_reaction(push=True)
