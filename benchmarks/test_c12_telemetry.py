"""Experiment C12 — telemetry-plane overhead on a busy federation wire.

The ISSUE-8 telemetry plane promises the C9 bargain one level up: free
when disabled, cheap when enabled.  This experiment runs the C9 bridged
Telemetry scenario over the push interchange at a sustained 4 calls/s
for 200 virtual seconds, three ways:

- **baseline** — no telemetry plane at all (observability itself on, as
  in every post-C9 deployment).
- **agents disabled** — ``TelemetryAgent`` objects constructed and
  started on every island with ``enabled=False``.  The wire must be
  *byte-identical* to the baseline: a disabled agent costs nothing.
- **agents enabled** — every island streams delta reports on the
  default 5 s cadence to a ``TelemetryCollector`` mounted on the far
  island.  The report stream must cost **<2 %** extra backbone bytes
  against the baseline's call traffic.

Telemetry cost is per-interval, not per-call, so the bound is stated
against a busy wire (the plane's design point: a federation actually
doing work).  Idle-wire relative overhead is necessarily higher — the
absolute report cost per interval is what ``report_bytes_avg`` tracks.

Numbers land in ``BENCH_telemetry.json`` (``$BENCH_OUTPUT_DIR``, default
CWD); CI commits the artifact and gates it with
``benchmarks/check_telemetry.py``.
"""

from __future__ import annotations

import json
import os
import random

from repro.core.framework import MetaMiddleware
from repro.core.interface import simple_interface
from repro.net.monitor import TrafficMonitor
from repro.net.network import Network
from repro.net.segment import EthernetSegment
from repro.net.simkernel import Simulator
from repro.obs import Observability
from repro.obs.telemetry import TelemetryAgent, TelemetryCollector
from repro.soap.http import PUSH_INTERCHANGE

from benchmarks.conftest import report

TELEMETRY_IFACE = simple_interface("Telemetry", {"snapshot": ("string", "->string")})
#: Deterministic, poorly-compressible 4 KiB payload: the terse+compressed
#: push wire would otherwise shrink repetitive call bodies to almost
#: nothing and overstate the relative cost of everything else.
_rng = random.Random("c12")
PAYLOAD = "".join(
    _rng.choice("abcdefghijklmnopqrstuvwxyz0123456789;=") for _ in range(4096)
)

CALLS = 800
CALL_SPACING = 0.25  # 4 calls/s sustained
REPORT_INTERVAL = 5.0  # the testkit band's default cadence
MAX_BYTES_OVERHEAD = 0.02


def measure(mode: str) -> dict:
    """One full scenario run; ``mode`` is baseline/disabled/enabled."""
    sim = Simulator()
    net = Network(sim)
    backbone = net.create_segment(EthernetSegment, "backbone")
    obs = Observability(sim)
    mm = MetaMiddleware(net, backbone, interchange=PUSH_INTERCHANGE, obs=obs)
    island_a = mm.add_island("a", None)
    island_b = mm.add_island("b", None)
    sim.run_until_complete(
        island_a.gateway.export_service(
            "Telemetry", TELEMETRY_IFACE, lambda operation, args: PAYLOAD
        )
    )
    sim.run_until_complete(mm.connect())

    agents: list[TelemetryAgent] = []
    collector = None
    if mode != "baseline":
        enabled = mode == "enabled"
        for island in (island_a, island_b):
            agents.append(
                TelemetryAgent(
                    island.gateway, interval=REPORT_INTERVAL, enabled=enabled
                )
            )
        if enabled:
            # Mounted before measurement: the subscription announcement is
            # setup traffic, the steady-state report stream is the cost.
            collector = TelemetryCollector(island_b.gateway)
            sim.run_until_complete(collector.mount())

    monitor = TrafficMonitor().watch(backbone)
    completed = [0]

    def call() -> None:
        future = island_b.gateway.invoke("Telemetry", "snapshot", ["ch0"])

        def check(done) -> None:
            assert done.result() == PAYLOAD
            completed[0] += 1

        future.add_done_callback(check)

    for agent in agents:
        agent.start()
    start = sim.now
    for index in range(CALLS):
        sim.at(start + index * CALL_SPACING, call)
    sim.run(until=start + CALLS * CALL_SPACING + REPORT_INTERVAL)
    for agent in agents:
        agent.stop()
    assert completed[0] == CALLS

    result = {
        "bytes": monitor.total_bytes,
        "frames": monitor.total_frames,
        "bytes_per_call": monitor.total_bytes / CALLS,
    }
    if collector is not None:
        result["reports_merged"] = sum(
            collector.island_max_seq(name) for name in collector.islands()
        )
        result["islands_reporting"] = len(collector.islands())
    return result


def run_comparison() -> dict:
    results = {mode: measure(mode) for mode in ("baseline", "disabled", "enabled")}
    extra_bytes = results["enabled"]["bytes"] - results["baseline"]["bytes"]
    overheads = {
        "bytes_overhead": results["enabled"]["bytes"] / results["baseline"]["bytes"]
        - 1.0,
        "frames_overhead": results["enabled"]["frames"]
        / results["baseline"]["frames"]
        - 1.0,
        # Absolute steady-state cost of one delta report on the wire —
        # the number that survives workload-level changes to this file.
        "report_bytes_avg": extra_bytes / results["enabled"]["reports_merged"],
    }
    return {"paths": results, "overheads": overheads}


def emit_json(results: dict) -> str:
    out_dir = os.environ.get("BENCH_OUTPUT_DIR", ".")
    path = os.path.join(out_dir, "BENCH_telemetry.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
    return path


def test_c12_telemetry_overhead(bench_once):
    results = bench_once(run_comparison)
    paths, overheads = results["paths"], results["overheads"]
    report(
        "C12: telemetry plane on the busy push wire (800 calls / 200 s)",
        [
            (
                mode,
                f"{data['bytes']}",
                f"{data['frames']}",
                f"{data.get('reports_merged', 0)}",
            )
            for mode, data in paths.items()
        ],
        ("config", "backbone bytes", "frames", "reports merged"),
    )
    report(
        "C12: enabled overhead vs baseline",
        [
            ("bytes", f"{overheads['bytes_overhead'] * 100:.2f}%"),
            ("frames", f"{overheads['frames_overhead'] * 100:.2f}%"),
            ("per report", f"{overheads['report_bytes_avg']:.0f} B"),
        ],
        ("metric", "value"),
    )
    print(f"  -> {emit_json(results)}")

    # Disabled agents are wire-invisible: byte-identical to no plane.
    assert paths["disabled"]["bytes"] == paths["baseline"]["bytes"]
    assert paths["disabled"]["frames"] == paths["baseline"]["frames"]

    # Enabled: both islands reported all interval ticks, under the bound.
    assert paths["enabled"]["islands_reporting"] == 2
    expected_ticks = int(CALLS * CALL_SPACING / REPORT_INTERVAL)
    assert paths["enabled"]["reports_merged"] >= 2 * expected_ticks
    assert 0.0 < overheads["bytes_overhead"] < MAX_BYTES_OVERHEAD


def test_c12_runs_deterministic():
    """Two identical enabled runs agree byte-for-byte on the wire — the
    report stream rides the same deterministic substrate as the calls."""
    assert measure("enabled") == measure("enabled")
