#!/usr/bin/env python3
"""Gate sustained-throughput regressions against the committed baseline.

CI runs the C11 benchmark (which emits ``BENCH_throughput.json``) and then
this script::

    python benchmarks/check_throughput.py <current.json> [baseline.json]

The baseline defaults to ``benchmarks/throughput_baseline.json`` next to
this file.  The build fails when any tracked sustained metric drops more
than ``TOLERANCE`` below the baseline:

- reactor bridged calls/sec at every measured concurrency,
- reactor streamed events/sec,
- the headline speedup at 64 concurrent exchanges.

The simulation is deterministic, so honest runs reproduce the baseline
exactly; the tolerance only absorbs intentional re-baselining noise (a
changed wire format legitimately shifts bytes/call and the sustained
rates a little).  When the numbers *improve* past the tolerance the
script says so — refresh the baseline in the same PR so the gate keeps
teeth.
"""

from __future__ import annotations

import json
import os
import sys

TOLERANCE = 0.10


def _tracked(results: dict) -> dict[str, float]:
    metrics = {}
    for concurrency, data in sorted(results["calls"].items(), key=lambda kv: int(kv[0])):
        metrics[f"calls/sec reactor @{concurrency}"] = data["reactor"]["calls_per_sec"]
    metrics["events/sec reactor"] = results["events"]["reactor"]["events_per_sec"]
    metrics["speedup @64"] = results["speedup_at_64"]
    return metrics


def main(argv: list[str]) -> int:
    if not 2 <= len(argv) <= 3:
        print(__doc__)
        return 2
    current_path = argv[1]
    baseline_path = (
        argv[2]
        if len(argv) == 3
        else os.path.join(os.path.dirname(os.path.abspath(__file__)), "throughput_baseline.json")
    )
    with open(current_path, encoding="utf-8") as handle:
        current = _tracked(json.load(handle))
    with open(baseline_path, encoding="utf-8") as handle:
        baseline = _tracked(json.load(handle))

    regressions, improvements = [], []
    for name, base in baseline.items():
        now = current.get(name)
        if now is None:
            regressions.append(f"{name}: missing from {current_path}")
            continue
        ratio = now / base
        line = f"{name}: {base:.2f} -> {now:.2f} ({ratio:.2%} of baseline)"
        print(line)
        if ratio < 1.0 - TOLERANCE:
            regressions.append(line)
        elif ratio > 1.0 + TOLERANCE:
            improvements.append(line)

    if improvements:
        print(f"\nimproved >{TOLERANCE:.0%} past baseline — refresh "
              f"{os.path.basename(baseline_path)} to keep the gate tight:")
        for line in improvements:
            print(f"  {line}")
    if regressions:
        print(f"\nFAIL: sustained throughput regressed >{TOLERANCE:.0%}:")
        for line in regressions:
            print(f"  {line}")
        return 1
    print("\nOK: no tracked metric regressed beyond tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
