"""Experiment C8 — the interchange fast path vs the F2 bridged baseline.

F2 established that a bridged call costs ~13x the latency and ~14x the
bytes of native RMI, almost all of it TCP handshakes (HTTP/1.0 connection
per exchange) plus XML verbosity.  This experiment measures the opt-in
remedies from ``repro.soap.http.InterchangeConfig``:

- keep-alive connection pooling (no handshake per call),
- negotiated terse envelopes (a fraction of the XML bytes),
- negotiated gzip for fat payloads,
- VSR lookup coalescing (already-cached here; the pool is the star).

Two claims are pinned:

1. **speedup** — with the full fast config, a bridged call's virtual
   latency AND bytes-on-wire both drop by at least 2x versus the legacy
   wire behaviour;
2. **byte-identity** — with the fast path disabled (the default), the
   wire behaviour is frame-for-frame identical to an explicit legacy
   config, so every F2/C-series baseline still measures the 2002 format.

The per-path numbers are also written to ``BENCH_interchange.json``
(directory from ``$BENCH_OUTPUT_DIR``, default CWD) so CI can track the
perf trajectory across PRs.
"""

from __future__ import annotations

import json
import os

from repro.core.framework import MetaMiddleware
from repro.core.interface import simple_interface
from repro.net.monitor import TrafficMonitor
from repro.net.network import Network
from repro.net.segment import EthernetSegment
from repro.net.simkernel import Simulator
from repro.soap.http import FAST_INTERCHANGE, LEGACY_INTERCHANGE, InterchangeConfig

from benchmarks.conftest import ms, report

TELEMETRY_IFACE = simple_interface("Telemetry", {"snapshot": ("string", "->string")})

#: A realistic sensor report: structured, repetitive, ~0.6 kB — the kind
#: of payload the 2002 home-network papers ship around.
REPORT = (
    "temp=21.50C;humidity=40.2%;pressure=1013.2hPa;battery=97%;status=OK;"
) * 10

WARMUP_CALLS = 2
MEASURED_CALLS = 20


def build_home(interchange: InterchangeConfig | None, trace: bool = False):
    """Two SOAP islands on a backbone; island a exports Telemetry."""
    sim = Simulator()
    net = Network(sim)
    backbone = net.create_segment(EthernetSegment, "backbone")
    mm = MetaMiddleware(net, backbone, interchange=interchange)
    island_a = mm.add_island("a", None)
    island_b = mm.add_island("b", None)

    def handler(operation, args):
        return REPORT

    sim.run_until_complete(
        island_a.gateway.export_service("Telemetry", TELEMETRY_IFACE, handler)
    )
    sim.run_until_complete(mm.connect())
    monitor = TrafficMonitor(trace_enabled=trace).watch(backbone)
    return sim, mm, island_b, monitor


def measure_bridged(interchange: InterchangeConfig | None):
    """Per-call virtual latency and bytes for bridged Telemetry calls."""
    sim, mm, island_b, monitor = build_home(interchange)
    invoke = lambda: sim.run_until_complete(
        island_b.gateway.invoke("Telemetry", "snapshot", ["ch0"])
    )
    # Warm-up: resolves + caches the VSR entry and (fast path) runs the
    # capability negotiation, so the measurement sees steady state.
    for _ in range(WARMUP_CALLS):
        assert invoke() == REPORT
    monitor.reset()
    t0 = sim.now
    for _ in range(MEASURED_CALLS):
        assert invoke() == REPORT
    return {
        "latency_per_call_s": (sim.now - t0) / MEASURED_CALLS,
        "bytes_per_call": monitor.total_bytes / MEASURED_CALLS,
        "frames_per_call": monitor.total_frames / MEASURED_CALLS,
    }


def trace_bridged(interchange: InterchangeConfig | None):
    """Full frame trace of the same scenario (byte-identity evidence)."""
    sim, mm, island_b, monitor = build_home(interchange, trace=True)
    for _ in range(WARMUP_CALLS + 3):
        sim.run_until_complete(island_b.gateway.invoke("Telemetry", "snapshot", ["x"]))
    return monitor.trace


def emit_json(results: dict) -> str:
    out_dir = os.environ.get("BENCH_OUTPUT_DIR", ".")
    path = os.path.join(out_dir, "BENCH_interchange.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
    return path


def run_comparison():
    legacy = measure_bridged(None)
    fast = measure_bridged(FAST_INTERCHANGE)
    keepalive_only = measure_bridged(InterchangeConfig(keep_alive=True))
    return {"legacy": legacy, "keep-alive only": keepalive_only, "fast (full)": fast}


def test_c8_fast_path_speedup(bench_once):
    results = bench_once(run_comparison)
    rows = [
        (
            path,
            ms(data["latency_per_call_s"]),
            f"{data['bytes_per_call']:.0f}",
            f"{data['frames_per_call']:.1f}",
        )
        for path, data in results.items()
    ]
    report(
        "C8: bridged Telemetry call, legacy vs fast interchange",
        rows,
        ("config", "virtual latency/call", "bytes/call", "frames/call"),
    )
    legacy, fast = results["legacy"], results["fast (full)"]
    speedup = {
        "latency_reduction": legacy["latency_per_call_s"] / fast["latency_per_call_s"],
        "bytes_reduction": legacy["bytes_per_call"] / fast["bytes_per_call"],
    }
    report(
        "C8: fast-path reductions",
        [(k, f"{v:.2f}x") for k, v in speedup.items()],
        ("metric", "reduction"),
    )
    emit_json({"paths": results, "reductions": speedup})
    # The acceptance bar: both dimensions drop by at least 2x.
    assert speedup["latency_reduction"] >= 2.0
    assert speedup["bytes_reduction"] >= 2.0


def test_c8_fast_path_deterministic():
    """Identical fast-path runs put identical traffic on the wire."""
    first = measure_bridged(FAST_INTERCHANGE)
    second = measure_bridged(FAST_INTERCHANGE)
    assert first == second


def test_c8_legacy_wire_behaviour_byte_identical():
    """Default config == explicit legacy config, frame for frame: same
    timestamps, endpoints and sizes.  The F2/C-series baselines measure
    exactly the wire the seed produced."""
    default_trace = trace_bridged(None)
    legacy_trace = trace_bridged(LEGACY_INTERCHANGE)
    assert default_trace == legacy_trace
    assert len(default_trace) > 0
