#!/usr/bin/env python3
"""Gate the persistence layer's cost promises from ``BENCH_recovery.json``.

CI runs the C13 benchmark (which emits ``BENCH_recovery.json``) and then
this script::

    python benchmarks/check_recovery.py <current.json>

Three hard promises are enforced, straight from ISSUE 9:

- **steady state is cheap** — journaling a busy publish-heavy federation
  adds under ``MAX_STEADY_OVERHEAD`` in wire bytes and in virtual-time
  op latency (both deterministic; appends are node-local, so the
  measured overhead is exactly zero today), with the journals actually
  writing (a silent layer would pass a pure overhead bound);
- **replay is linear** — recovery folds the WAL in one pass: replay
  time grows with record count, never jumps superlinearly;
- **checkpointing bounds replay** — after compaction the medium holds at
  most ``checkpoint_every`` records and replays faster than the longest
  uncompacted log.

The wire/latency checks are exact; the replay timings are host
wall-clock, so those bounds are deliberately loose (ordering and a wide
ratio), not absolute times.
"""

from __future__ import annotations

import json
import sys

MAX_STEADY_OVERHEAD = 0.03
#: Replay of N records may be at most this many times slower, per record,
#: than the smallest measured log — a loose superlinearity tripwire that
#: survives noisy shared runners.
MAX_PER_RECORD_RATIO = 10.0


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(__doc__)
        return 2
    with open(argv[1], encoding="utf-8") as handle:
        results = json.load(handle)
    steady = results["steady_state"]
    replay = results["replay"]
    failures = []

    records = steady["journaled"]["records_appended"]
    print(f"records appended: {records} "
          f"(checkpoints: {steady['journaled']['checkpoints']})")
    if records <= 0:
        failures.append("journals wrote nothing: the band scenario is inert")

    for key in ("bytes_overhead", "latency_overhead"):
        value = steady[key]
        print(f"{key}: {value * 100:+.2f}% "
              f"(bound {MAX_STEADY_OVERHEAD * 100:.0f}%)")
        if not value < MAX_STEADY_OVERHEAD:
            failures.append(
                f"{key} {value * 100:+.2f}% breaches the "
                f"{MAX_STEADY_OVERHEAD * 100:.0f}% bound"
            )

    curve = replay["curve"]
    per_record = [p["replay_s"] / p["records_on_medium"] for p in curve]
    for point, cost in zip(curve, per_record):
        print(f"replay {point['records_on_medium']} records: "
              f"{point['replay_s'] * 1000:.2f}ms "
              f"({cost * 1e6:.2f}us/record)")
    if len(curve) < 2:
        failures.append("replay curve has fewer than two points")
    elif max(per_record) > min(per_record) * MAX_PER_RECORD_RATIO:
        failures.append(
            f"replay looks superlinear: per-record cost spans "
            f"{min(per_record) * 1e6:.2f}-{max(per_record) * 1e6:.2f}us"
        )

    ckpt = replay["checkpointed"]
    print(f"checkpointed ({ckpt['appends']} appends @ "
          f"{ckpt['checkpoint_every']}): {ckpt['records_on_medium']} records "
          f"on medium, replay {ckpt['replay_s'] * 1000:.2f}ms")
    if ckpt["records_on_medium"] > ckpt["checkpoint_every"]:
        failures.append(
            f"compaction failed to bound the medium: "
            f"{ckpt['records_on_medium']} > {ckpt['checkpoint_every']} records"
        )
    if ckpt["replay_s"] >= curve[-1]["replay_s"]:
        failures.append(
            "checkpointed replay is no faster than the longest uncompacted log"
        )

    if failures:
        print("\nFAIL: persistence cost promises broken:")
        for line in failures:
            print(f"  {line}")
        return 1
    print("\nOK: wire/latency overhead within bound, replay linear, "
          "checkpointing bounds the medium")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
