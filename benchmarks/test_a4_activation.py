"""Experiment A4 — the second future-work item, measured: dynamic service
activation (Sections 4.2 and 6).

The prototype could not activate dormant services on demand; the
extension (`repro.core.activation`) can.  Measured: cold-call latency
(activation + bridging) vs warm-call latency, and the idle-deactivation
cycle — the behaviour a CORBA servant activator or a power-saving
appliance gives a home network.
"""

from __future__ import annotations

from repro.core.activation import ActivatableService
from repro.core.framework import MetaMiddleware
from repro.core.interface import simple_interface
from repro.net.network import Network
from repro.net.segment import EthernetSegment
from repro.net.simkernel import Simulator

from benchmarks.conftest import ms, report
from tests.core.toys import ToyPcm

ACTIVATION_DELAY = 2.0
IDLE_TIMEOUT = 30.0


class SleepyCamera:
    def __init__(self):
        self.frames = 0

    def capture(self):
        self.frames += 1
        return self.frames


def run_lifecycle():
    sim = Simulator()
    net = Network(sim)
    backbone = net.create_segment(EthernetSegment, "backbone")
    mm = MetaMiddleware(net, backbone)
    provider = mm.add_island("provider", None, lambda i: ToyPcm(i.gateway, {}))
    consumer = mm.add_island("consumer", None, lambda i: ToyPcm(i.gateway, {}))
    sim.run_until_complete(mm.connect())

    interface = simple_interface("SleepyCamera", {"capture": ("->int",)})
    service = ActivatableService(
        sim, SleepyCamera, activation_delay=ACTIVATION_DELAY, idle_timeout=IDLE_TIMEOUT
    )
    sim.run_until_complete(
        provider.gateway.export_service("SleepyCamera", interface, service)
    )
    sim.run_until_complete(mm.refresh())

    def timed_call():
        t0 = sim.now
        sim.run_until_complete(consumer.gateway.invoke("SleepyCamera", "capture", []))
        return sim.now - t0

    cold = timed_call()
    warm = timed_call()
    sim.run_for(IDLE_TIMEOUT + 1.0)  # idle: the instance is discarded
    reactivated = timed_call()
    warm_again = timed_call()

    return {
        "cold": cold,
        "warm": warm,
        "reactivated": reactivated,
        "warm_again": warm_again,
        "activations": service.activations,
        "deactivations": service.deactivations,
    }


def test_a4_dynamic_activation(bench_once):
    result = bench_once(run_lifecycle)
    rows = [
        ("cold call (dormant -> active)", ms(result["cold"])),
        ("warm call", ms(result["warm"])),
        ("call after idle deactivation", ms(result["reactivated"])),
        ("warm call again", ms(result["warm_again"])),
        ("activations / deactivations",
         f"{result['activations']} / {result['deactivations']}"),
    ]
    report("A4: dynamic service activation across islands", rows, ("call", "latency"))
    # Cold calls pay the activation delay; warm calls are pure bridging.
    assert result["cold"] >= ACTIVATION_DELAY
    assert result["warm"] < 0.5
    assert result["reactivated"] >= ACTIVATION_DELAY
    assert result["activations"] == 2
    assert result["deactivations"] == 1
