"""Experiment F3 — Figure 3: the prototype integration system.

Assembles exactly the prototype of the paper's Figure 3 — Jini, HAVi, X10
and Internet Mail islands, each with one PCM, a SOAP VSG per island and
the WSDL/UDDI repository — and inventories what the VSR ends up holding,
plus a cross-middleware smoke matrix including a plain SOAP web service
client (the TV program guide needs no PCM at all).
"""

from __future__ import annotations

from repro.apps.auto_recording import GUIDE_SERVICE, TvProgramService
from repro.apps.home import build_smart_home

from benchmarks.conftest import report


def run_prototype():
    home = build_smart_home()
    home.connect()
    guide = TvProgramService(home.mm)
    home.sim.run_until_complete(guide.publish())

    catalog = home.sim.run_until_complete(home.mm.catalog())
    inventory = [
        (d.service, d.context.get("island", "?"), d.context.get("middleware", "?"),
         len(d.operations))
        for d in catalog
    ]

    # Smoke matrix: every island calls one probe per other island plus the
    # PCM-less SOAP service.
    smoke = []
    probes = [
        ("Laserdisc", "get_state", []),
        ("Digital_TV_display", "get_status", []),
        ("InternetMail", "check_inbox", ["smoke@home.sim"]),
        (GUIDE_SERVICE, "list_programs", []),
    ]
    for island in home.islands:
        for service, operation, args in probes:
            home.invoke_from(island, service, operation, list(args))
            smoke.append((island, service, "ok"))
    return home, inventory, smoke


def test_f3_prototype_assembly(bench_once):
    home, inventory, smoke = bench_once(run_prototype)
    report("F3: VSR inventory (Figure 3 prototype)", inventory,
           ("service", "island", "middleware", "operations"))
    report("F3: smoke matrix", smoke, ("client island", "service", "result"))
    assert len(inventory) == 14  # 13 home services + the program guide
    islands = {row[1] for row in inventory}
    assert islands == {"jini", "havi", "x10", "mail", "internet"}
    # One PCM per middleware; the Internet SOAP service needed none.
    assert all(result == "ok" for _, _, result in smoke)
    # Gateways registered: one per island.
    gateways = home.sim.run_until_complete(
        home.islands["jini"].gateway.vsr.list_gateways()
    )
    assert set(gateways) == {"jini", "havi", "x10", "mail"}
