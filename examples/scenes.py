#!/usr/bin/env python3
"""Context-aware scenes — service integration through the VSR's contexts.

The paper's Section 3.3 gives the Virtual Service Repository "service
contexts" and says the VSG and PCM use it "to detect services or aware
contexts".  This example builds the new service the paper's Section 2
promises — one command made from many cooperating services — using room
context: a single ``room_off("living")`` reaches a HAVi TV, a Jini
Laserdisc and an X10 fan, each through its own middleware.

Run:  python examples/scenes.py
"""

from repro.apps import SceneController, build_smart_home


def show_state(home, label: str) -> None:
    print(f"\n{label}")
    print(f"  TV (HAVi, living):        powered={home.tv_display.powered}")
    print(f"  Laserdisc (Jini, living): {home.laserdisc.get_state()}")
    print(f"  fan (X10, living):        on={home.fan.on}")
    print(f"  hall lamp (X10, hall):    on={home.lamps['hall'].on}")


def main() -> None:
    home = build_smart_home()
    home.connect()

    print("what the VSR knows about the living room:")
    for document in home.find_services(room="living"):
        print(f"  {document.service:<20} via {document.context['middleware']}")

    print("\nmovie night: switch the living room on...")
    home.invoke_from("jini", "Digital_TV_display", "power_on")
    home.invoke_from("jini", "Laserdisc", "play")
    home.invoke_from("jini", "X10_A3_fan", "turn_on")
    home.invoke_from("jini", "X10_A1_hall_lamp", "turn_on")
    show_state(home, "after movie night setup:")

    scenes = SceneController(home)
    commanded = scenes.room_off("living")
    show_state(home, f"after room_off('living') — {commanded} devices, "
                     "three middleware, one command:")
    for service, operation, island in scenes.actions_log:
        print(f"    sent {service}.{operation}() to island {island}")

    print("\nleaving home: all_off() sweeps the rest...")
    scenes.all_off()
    show_state(home, "after all_off():")

    # Scenes are declarative rules underneath (see examples/automation.py
    # for the full trigger->condition->action engine).
    print("\nrules the controller materialized:")
    for materialized in scenes.engine.rules:
        print(f"  {materialized.name}")


if __name__ == "__main__":
    main()
