#!/usr/bin/env python3
"""Quickstart: build the paper's smart home and call across middleware.

The home of the paper's Section 1 example: a HAVi IEEE1394 network with a
digital TV and DV camera, a Jini Ethernet with a refrigerator, air
conditioner, VCR and Laserdisc, an X10 powerline with lamps and sensors,
and an Internet mail server — all bridged by one meta-middleware so any
client can reach any service "without being conscious of heterogeneous
forms of network and middleware".

Run:  python examples/quickstart.py
"""

from repro.apps import build_smart_home


def main() -> None:
    home = build_smart_home()
    catalog = home.connect()

    print("service catalog (the Virtual Service Repository):")
    for document in catalog:
        operations = ", ".join(op.name for op in document.operations[:3])
        more = "..." if len(document.operations) > 3 else ""
        print(
            f"  {document.service:<20} island={document.context['island']:<5} "
            f"middleware={document.context['middleware']:<5} [{operations}{more}]"
        )

    print("\ncontrolling everything from the Jini island's gateway (the 'PC'):")
    print("  TV power on        ->", home.invoke_from("jini", "Digital_TV_display", "power_on"))
    print("  fridge temperature ->", home.invoke_from("jini", "Refrigerator", "get_temperature"))
    print("  aircon target 22C  ->", home.invoke_from("jini", "AirConditioner", "set_target", [22.0]))
    print("  hall lamp on (X10) ->", home.invoke_from("jini", "X10_A1_hall_lamp", "turn_on"))

    print("\n...and the same appliances from the digital TV (HAVi island):")
    print("  laserdisc play     ->", home.invoke_from("havi", "Laserdisc", "play"))
    print("  mail the user      ->", home.invoke_from(
        "havi", "InternetMail", "send",
        ["user@home.sim", "hello from the TV", "sent across three middleware"]))

    print("\nobservable device state (the real simulated appliances):")
    print(f"  TV powered: {home.tv_display.powered}")
    print(f"  hall lamp: on={home.lamps['hall'].on} level={home.lamps['hall'].level}%")
    print(f"  laserdisc: {home.laserdisc.get_state()}")
    print(f"  mailbox:   {len(home.mail_server.store.mailbox('user@home.sim'))} message(s)")
    print(f"\nvirtual time elapsed: {home.sim.now:.3f}s")


if __name__ == "__main__":
    main()
