#!/usr/bin/env python3
"""Event-based multimedia — the paper's Section 4.2 experiment, with both
its working half and its famous failures.

Works: an X10 motion sensor's event crosses the framework and triggers
control-plane AV routing — the TV powers on, switches input, and the DV
camera's stream is connected to it *within the HAVi bus*.

Fails (exactly as the paper reports):
  1. the isochronous stream cannot cross a gateway (multimedia data
     conversion), raising StreamNotBridgeableError;
  2. over the SOAP/HTTP VSG, event notification latency is bounded below
     by the polling interval ("HTTP ... does not map well to asynchronous
     notification scenarios") — the SIP binding removes the bound.

Run:  python examples/surveillance.py
"""

from repro.apps import MultimediaOrchestrator, build_smart_home
from repro.core.gateway_sip import SipGatewayProtocol
from repro.errors import StreamNotBridgeableError
from repro.havi.bus1394 import Bus1394, HaviNode
from repro.havi.dcm import Dcm
from repro.havi.fcm_types import DisplayFcm
from repro.net.segment import IEEE1394Segment


def run_once(label: str, protocol_factory=None, poll_interval: float = 2.0) -> float:
    home = build_smart_home(protocol_factory=protocol_factory, poll_interval=poll_interval)
    home.connect()
    orchestrator = MultimediaOrchestrator(home)
    home.sim.run_until_complete(orchestrator.arm())

    print(f"\n--- {label} ---")
    print("motion in the hall...")
    home.motion_sensor.trigger()
    home.run(15.0)
    print(f"  actions: {orchestrator.actions}")
    print(f"  TV: powered={home.tv_display.powered} input={home.tv_display.input}")
    home.run(15.0)
    print(f"  DV bytes shown on the TV so far: {home.tv_display.bytes_displayed:,}")
    latency = orchestrator.notification_latencies[0]
    print(f"  motion-event notification latency: {latency * 1000:.2f}ms")

    if protocol_factory is None:
        # Negative result 1: try to stream to a display on another island.
        foreign_segment = home.network.create_segment(IEEE1394Segment, "pc-1394")
        foreign_bus = Bus1394(home.network, foreign_segment)
        pc_node = HaviNode(home.network, "pc-display", foreign_bus)
        pc_display = DisplayFcm(Dcm(pc_node, "PC Display", "display"))
        print("  attempting to route the camera stream to the PC's display "
              "(different island)...")
        try:
            orchestrator.route_camera_to_foreign_sink(pc_display)
        except StreamNotBridgeableError as exc:
            print(f"  -> {type(exc).__name__}: {exc}")
    return latency


def main() -> None:
    soap_latency = run_once("SOAP/HTTP VSG (the prototype, polling every 2s)")
    sip_latency = run_once(
        "SIP VSG (the alternative the paper discusses, native push)",
        protocol_factory=lambda stack: SipGatewayProtocol(stack),
    )
    print("\n--- verdict (the paper's Section 4.2/5 argument, quantified) ---")
    print(f"  SOAP/HTTP notification latency: {soap_latency * 1000:8.2f}ms "
          "(bounded by the polling interval)")
    print(f"  SIP push notification latency:  {sip_latency * 1000:8.2f}ms "
          "(network round trip)")
    print(f"  SIP is {soap_latency / sip_latency:.0f}x faster at asynchronous "
          "notification — but streams still cannot cross the VSG; for that "
          "the paper defers to a second, stream-oriented meta-middleware.")

    demo_stream_meta_middleware()


def demo_stream_meta_middleware() -> None:
    """Epilogue: the paper's future work, implemented (repro.core.streams).

    The stream meta-middleware coexists with the VSG framework and relays
    media across islands, transcoding down to whatever the backbone can
    carry — the "conversion of multimedia streams" of Section 6.
    """
    from repro.core.streams import StreamMetaMiddleware, StreamSink

    print("\n--- epilogue: the future-work stream meta-middleware ---")
    home = build_smart_home(with_x10=False, with_mail=False)
    home.connect()
    meta = StreamMetaMiddleware(home.mm)
    meta.attach("havi")
    meta.attach("jini")
    sink = StreamSink.counter()
    meta.register_sink("jini", "pc-display", sink)
    stream = home.sim.run_until_complete(meta.relay("havi", "jini", "pc-display", fmt="DV"))
    home.run(10.0)
    achieved = sink.bytes_received * 8 / 10.0
    print(f"  requested DV (28.8 Mb/s) across islands; delivered "
          f"{stream.delivered_format} at {achieved / 1e6:.1f} Mb/s "
          f"(transcoded={stream.transcoded}) — the camera now reaches the "
          "PC's display, which the SOAP VSG alone never could.")


if __name__ == "__main__":
    main()
