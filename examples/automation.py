#!/usr/bin/env python3
"""Declarative home automation — trigger→condition→action rules.

The paper connects middleware so that "new services" can span islands;
``repro.rules`` makes those services declarative.  This demo arms the six
canned scenarios (``repro.apps.automation``) over the bridged home and
runs one compressed day: motion on the X10 powerline routes the DV camera
to the HAVi TV, arriving mail flashes a lamp and posts the subject on
screen, dusk and 03:00 schedules sweep the house — every action riding
the ordinary neutral call path with per-rule dedup and cooldowns.

Run:  python examples/automation.py
"""

from repro.apps import HomeAutomation, build_smart_home
from repro.rules import dsl

DAY = 600.0  # one simulated day compressed into 10 virtual minutes


def clock_at(now: float, day: float) -> str:
    return f"{now / day * 24:05.2f}h"


def main() -> None:
    home = build_smart_home()
    home.connect()
    auto = HomeAutomation(home, day=DAY)
    home.sim.run_until_complete(auto.start())

    print("the armed rule set (canonical JSON round-trips):")
    for rule in auto.engine.rules:
        print(f"  {rule.name:<22} {rule.description}")
    assert dsl.loads(dsl.dumps(list(auto.engine.rules))) == list(auto.engine.rules)

    print("\n07:12 — someone walks through the hall (X10 motion)...")
    home.sim.run_for(DAY * 0.3)
    home.motion_sensor.trigger()
    home.sim.run_for(10.0)

    print("09:00 — mail arrives over the internet island...")
    home.invoke_from(
        "jini", "InternetMail", "send",
        ["resident@home.sim", "package delivered", "at the door"],
    )
    home.sim.run_for(DAY / 288.0 + 10.0)

    print("...then the schedules take the house through dusk and night.")
    home.sim.run_for(DAY)
    auto.stop()

    print(f"\nwhat fired (virtual clock, {DAY:g}s day):")
    for firing in auto.engine.firings:
        latency = f"{firing.latency * 1000:.1f}ms" if firing.latency else "-"
        print(
            f"  {clock_at(firing.fired_at, DAY)}  {firing.rule:<22} "
            f"via {firing.trigger_kind:<8} latency={latency}"
        )
    stats = auto.engine.stats()
    print(
        f"\nengine: {stats['fired']} fired, {stats['suppressed']} suppressed "
        f"(dedup/cooldown), {stats['actions_failed']} failed actions"
    )
    print(f"TV showing: {home.tv_display.messages}")
    print(f"lamps: hall={home.lamps['hall'].on} porch={home.lamps['porch'].on}")
    print(f"camera recording: {home.camera_vcr.state}")


if __name__ == "__main__":
    main()
