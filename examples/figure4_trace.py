#!/usr/bin/env python3
"""Figure 4 as a live wire trace: conversion between Jini and X10.

The paper's Figure 4 is a sequence diagram of one transaction — a Jini
client's call crossing the Server Proxy, the SOAP VSG, the Client Proxy
and finally the X10 powerline.  This script performs that exact
transaction with an unmodified Jini client and prints every frame the
networks carried, time-ordered, so you can read the figure off the wire.

Run:  python examples/figure4_trace.py
"""

from repro.apps import build_smart_home
from repro.jini.service import JiniClient, JiniHost
from repro.net.monitor import TrafficMonitor

SEGMENT_LABELS = {
    "jini-eth": "Jini island   (RMI)",
    "backbone": "backbone      (SOAP/HTTP)",
    "serial0": "PC<->CM11A    (serial)",
    "powerline": "powerline     (X10)",
}


def main() -> None:
    home = build_smart_home()
    home.connect()
    sim = home.sim

    # A plain Jini client, exactly as in the figure's left edge.
    host = JiniHost(home.network, "figure4-client", home.network.segment("jini-eth"))
    client = JiniClient(host)
    lookup_ref = sim.run_until_complete(client.discover_lookup())
    proxy = sim.run_until_complete(client.lookup_one(lookup_ref, "vsg.X10_A1_hall_lamp"))

    monitor = TrafficMonitor(trace_enabled=True).watch(
        *(home.network.segment(name) for name in SEGMENT_LABELS)
    )
    print("Jini client calls turn_on() on the bridged X10 hall lamp...\n")
    t0 = sim.now
    sim.run_until_complete(proxy.turn_on())
    total = sim.now - t0

    print(f"{'time':>10}  {'segment':<28} {'proto':<7} {'size':>5}  note")
    print("-" * 72)
    for entry in sorted(monitor.trace, key=lambda e: e.time):
        label = SEGMENT_LABELS.get(entry.segment, entry.segment)
        note = entry.note or ""
        print(f"{(entry.time - t0) * 1000:>8.2f}ms  {label:<28} {entry.protocol:<7} "
              f"{entry.size:>4}B  {note}")

    print("-" * 72)
    per_segment = {
        name: sum(s.bytes for s in stats.values())
        for name, stats in monitor.per_segment.items()
    }
    for name in SEGMENT_LABELS:
        print(f"  {SEGMENT_LABELS[name]:<30} {per_segment.get(name, 0):>6} bytes total")
    print(f"\nlamp is on: {home.lamps['hall'].on}; round trip {total * 1000:.1f}ms "
          "(the two 5-byte powerline frames took almost all of it)")


if __name__ == "__main__":
    main()
