#!/usr/bin/env python3
"""Automatic video recording — the paper's Section 2 motivating scenario.

"the service integration of a VCR control service with a TV program
service on the Internet can provide an automatic video recording service
that records TV programs according to user profiles on the Internet."

The TV program guide is a plain SOAP web service on the backbone — it
needs *no PCM* because SOAP is already the VSG's protocol; it simply
publishes its WSDL into the repository.  The recording agent matches the
guide against a user profile, drives the Jini VCR at air time, and mails
the user through the mail island when each recording completes.

Run:  python examples/auto_recording.py
"""

from repro.apps import RecordingAgent, TvProgramService, build_smart_home
from repro.apps.auto_recording import UserProfile


def main() -> None:
    home = build_smart_home()
    home.connect()

    guide = TvProgramService(home.mm)
    home.sim.run_until_complete(guide.publish())
    print("tonight's programme guide (an Internet SOAP service, no PCM):")
    for programme in guide.programs:
        print(f"  {programme['start']:>5.0f}s-{programme['end']:>5.0f}s  "
              f"ch{programme['channel']:<3} {programme['genre']:<11} {programme['title']}")

    profile = UserProfile(genres=("technology",), keywords=("movie",),
                          mail_to="user@home.sim")
    print(f"\nuser profile: genres={profile.genres} keywords={profile.keywords}")

    agent = RecordingAgent(home, profile)
    planned = home.sim.run_until_complete(agent.plan())
    print(f"\nagent planned {len(planned)} recordings:")
    for recording in planned:
        print(f"  {recording.title} (ch{recording.channel}, "
              f"{recording.start:.0f}s-{recording.end:.0f}s)")

    print("\nfast-forwarding through the evening...")
    checkpoints = [100, 200, 350, 450, 600]
    last = 0.0
    for checkpoint in checkpoints:
        home.run(checkpoint - last)
        last = checkpoint
        print(f"  [{home.sim.now:5.0f}s] VCR: {home.vcr.get_state():<6} "
              f"ch{home.vcr.channel:<3} recording="
              f"{home.vcr.recording or '-'}")

    print("\noutcome:")
    for recording in agent.schedule:
        print(f"  {recording.title}: {recording.state}")
    print(f"\ntape contents: {[r['title'] for r in home.vcr.list_recordings()]}")
    inbox = home.mail_server.store.mailbox("user@home.sim")
    print(f"completion mails: {[m.subject for m in inbox.messages]}")


if __name__ == "__main__":
    main()
