#!/usr/bin/env python3
"""The Universal Remote Controller — the paper's Figure 5, live.

"It is an X10 remote controller that allows us to control not only X10
devices but also Jini and HAVi services that are connected via our
middleware.  The person in the picture is controlling a Jini Laserdisc
with an X10 remote controller, and he can also control a HAVi DV camera."

Every button press below travels the real simulated path: powerline
frames -> CM11A serial poll -> X10 PCM -> SOAP over the backbone ->
target island's PCM -> native RMI / HAVi message.

Run:  python examples/universal_remote.py
"""

from repro.apps import UniversalRemote, build_smart_home
from repro.x10.codes import X10Function


def main() -> None:
    home = build_smart_home()
    home.connect()
    remote = UniversalRemote(home)
    bound = remote.bind_default_layout()
    print(f"handset configured with {bound} bindings:")
    for (address, function), binding in sorted(
        remote.pcm.bindings.items(), key=lambda item: (str(item[0][0]), item[0][1])
    ):
        print(f"  {address} {function.name:<3} -> {binding.service}.{binding.operation}")

    def press(button: str, function=X10Function.ON, label: str = "") -> None:
        t0 = home.sim.now
        remote.press(button, function)
        print(f"\n[{t0:7.2f}s] press {button} {function.name}  ({label})")

    press("A1", label="plain X10: hall lamp")
    print(f"  hall lamp: on={home.lamps['hall'].on}")

    press("A4", label="Jini island: Laserdisc")
    print(f"  laserdisc: {home.laserdisc.get_state()} "
          f"(command log: {home.laserdisc.command_log})")

    press("A5", label="HAVi island: DV camera")
    print(f"  camera capturing: {home.camera.capturing}")

    press("A6", label="HAVi island: TV display")
    print(f"  TV powered: {home.tv_display.powered}")

    press("A4", X10Function.OFF, label="stop the Laserdisc")
    print(f"  laserdisc: {home.laserdisc.get_state()}")

    print("\ninvocation counts per bridged target:")
    for target, count in remote.invocation_counts().items():
        if count:
            print(f"  {target}: {count}")
    print(f"\nCM11A event uploads to the PC: {home.cm11a.uploads}, "
          f"powerline signals heard: {home.cm11a.transceiver.signals_received}, "
          f"virtual time: {home.sim.now:.2f}s")


if __name__ == "__main__":
    main()
