#!/usr/bin/env python3
"""One bridged call, made visible end to end.

A Jini client flips an X10 hall lamp through the framework — client stub →
VSG → SOAP interchange → peer VSG → native powerline — and ``repro.obs``
records the whole journey as a single trace: the context crosses the
interchange in the ``X-Trace`` HTTP header, so the serving island's spans
parent into the calling island's trace instead of starting a new one.

The example prints the rendered span tree (every hop, its island, its
virtual-time cost), a few of the metrics the same call incremented, and
the first lines of the JSONL export.  Identical runs print identical
bytes — ids are counters and times come from the virtual clock.

Run:  python examples/traced_call.py
"""

from repro.apps import build_smart_home
from repro.jini.service import JiniClient, JiniHost
from repro.net.simkernel import Simulator
from repro.obs import Observability, render_trace_tree


def main() -> None:
    sim = Simulator()
    obs = Observability(sim)
    home = build_smart_home(sim, with_havi=False, with_mail=False, obs=obs)
    home.connect()
    home.run(5.0)  # let discovery/heartbeats settle (none of it is traced)

    # A plain Jini client on the Jini segment; the X10 lamp appears in the
    # lookup service like any native Jini service (the Server Proxy).
    host = JiniHost(home.network, "f4-client", home.network.segment("jini-eth"))
    client = JiniClient(host)
    lookup_ref = sim.run_until_complete(client.discover_lookup())
    proxy = sim.run_until_complete(
        client.lookup_one(lookup_ref, "vsg.X10_A1_hall_lamp")
    )

    marker = len(obs.tracer.spans)
    assert sim.run_until_complete(proxy.turn_on()) is True
    spans = obs.tracer.spans[marker:]
    trace_id = spans[0].trace_id

    print("one bridged Jini -> X10 call, one trace:")
    print()
    print(render_trace_tree(spans))

    islands = sorted({span.island for span in spans if span.island})
    print()
    print(f"{len(spans)} spans, islands: {', '.join(islands)}")

    print()
    print("metrics the call moved:")
    snapshot = obs.metrics.snapshot()
    for key in (
        "vsg.jini.calls_out",
        "vsg.x10.calls_in",
        "vsg.jini.call_latency.count",
        "vsr.jini.remote_lookups",
    ):
        print(f"  {key} = {snapshot[key]}")

    print()
    print("JSONL export (first 3 of the span records):")
    for line in obs.tracer.export_jsonl(trace_id).splitlines()[:3]:
        print(f"  {line}")


if __name__ == "__main__":
    main()
