#!/usr/bin/env python3
"""Automatic video recording under injected chaos.

The Section 2 auto-recording scenario again — but this time the Ethernet
backbone partitions mid-evening, isolating the Jini island (agent + VCR)
from the directory, the guide and the mail island while a recording is in
flight.  The resilience layer keeps every cross-island call bounded:

- the completion mail attempted *during* the partition fails fast with a
  deadline (after a degraded-mode directory read from the VsrClient cache)
  instead of hanging the agent;
- recording itself never stops — the VCR is island-local, so the partition
  cannot touch it;
- once the partition heals, the circuit breaker's half-open probe restores
  mail service and the remaining recordings mail normally.

Everything is seeded: run it twice, get the same FaultReport byte-for-byte.

Run:  python examples/chaos_demo.py
"""

from repro.apps import RecordingAgent, TvProgramService, build_smart_home
from repro.apps.auto_recording import UserProfile
from repro.core.resilience import CallPolicy
from repro.faults import FaultInjector, FaultPlan, Partition

POLICY = CallPolicy(
    deadline=3.0,
    max_retries=1,
    breaker_threshold=2,
    breaker_reset_timeout=20.0,
    directory_deadline=2.0,
    seed=5,
)

#: Isolate the Jini gateway from everything on the backbone for 70 s,
#: starting while the first planned recording is on tape.
PLAN = FaultPlan(seed=5).at(
    250.0, Partition.of("backbone", {"gw-jini"}, duration=70.0)
)


def main() -> None:
    home = build_smart_home(policy=POLICY)
    home.connect()

    guide = TvProgramService(home.mm)
    home.sim.run_until_complete(guide.publish())

    profile = UserProfile(genres=("technology",), keywords=("movie",),
                          mail_to="user@home.sim")
    agent = RecordingAgent(home, profile)

    # Prime the jini gateway's VSR cache with the mail island's location so
    # the partition demonstrates a degraded-mode (stale cache) lookup.
    home.invoke_from("jini", "InternetMail", "send",
                     ["user@home.sim", "Chaos evening", "brace yourself"])

    planned = home.sim.run_until_complete(agent.plan())
    print(f"agent planned {len(planned)} recordings:")
    for recording in planned:
        print(f"  {recording.title} (ch{recording.channel}, "
              f"{recording.start:.0f}s-{recording.end:.0f}s)")

    injector = FaultInjector(home.network, PLAN, mm=home.mm).arm()
    for entry in PLAN.entries:
        print(f"armed: t={entry.time:g}s {entry.action.describe()}")

    print("\nfast-forwarding through the chaotic evening...")
    for checkpoint in (200, 260, 320, 390, 530):
        home.run(checkpoint - home.sim.now)
        jini_stats = home.island("jini").gateway.resilience_stats()
        breaker = jini_stats["breakers"].get("mail", {"state": "closed"})
        print(f"  [{home.sim.now:5.0f}s] VCR={home.vcr.get_state():<6} "
              f"mails={agent.mails_sent} mail-breaker={breaker['state']:<9} "
              f"degraded_reads={jini_stats['vsr_degraded_reads']}")

    print("\noutcome:")
    for recording in agent.schedule:
        note = f" ({recording.error})" if recording.error else ""
        print(f"  {recording.title}: {recording.state}{note}")
    print(f"tape contents: {[r['title'] for r in home.vcr.list_recordings()]}")
    inbox = home.mail_server.store.mailbox("user@home.sim")
    print(f"mails delivered: {[m.subject for m in inbox.messages]}")

    print()
    print(injector.report().render())

    print("\njini gateway resilience counters:")
    stats = home.island("jini").gateway.resilience_stats()
    for key in ("attempts", "successes", "failures", "retries", "timeouts",
                "stale_refreshes", "vsr_degraded_reads", "vsr_lookup_failures"):
        print(f"  {key:>20}: {stats[key]}")
    for island, snapshot in stats["breakers"].items():
        print(f"  breaker[{island}]: {snapshot}")


if __name__ == "__main__":
    main()
