#!/usr/bin/env python3
"""Joining a fifth middleware at runtime — the paper's headline claim.

"new middleware can participate in our framework smoothly, by developing
new PCM which converts the middleware protocol to VSG protocol."
(Section 6; Section 5 names UPnP as the candidate.)

This script takes the running four-island home, adds a UPnP island (two
devices: a binary light and a media renderer), and shows that one
``refresh()`` gives full two-way integration — old islands drive the UPnP
devices, and a *native, unmodified* UPnP control point drives the Jini
Laserdisc through the bridge device the PCM materialises.

Run:  python examples/join_upnp.py
"""

from repro.apps import build_smart_home
from repro.apps.home import add_upnp_island
from repro.net.transport import TransportStack
from repro.upnp.control import UpnpControlPoint


def main() -> None:
    home = build_smart_home()
    before = home.connect()
    print(f"four-island home connected: {len(before)} services")

    print("\njoining the UPnP island (one new PCM, zero changes elsewhere)...")
    t0 = home.sim.now
    add_upnp_island(home)
    after = home.sim.run_until_complete(home.mm.refresh())
    print(f"  integrated in {(home.sim.now - t0) * 1000:.1f}ms of virtual time; "
          f"catalog now {len(after)} services")
    for document in after:
        if document.context["island"] == "upnp":
            print(f"  new: {document.service} "
                  f"[{', '.join(op.name for op in document.operations)}]")

    print("\nold islands reach the new devices:")
    print("  jini -> SetTarget(True):",
          home.invoke_from("jini", "Porchlight_SwitchPower", "SetTarget", [True]))
    print("  havi -> SetVolume(80): ",
          home.invoke_from("havi", "Renderer_AVTransport", "SetVolume", [80]))
    print("  light state:", home.upnp_state["light"],
          " renderer state:", home.upnp_state["renderer"])

    print("\nand a *native* UPnP control point reaches every old island "
          "through the PCM's bridge device:")
    node = home.network.create_node("tablet")
    home.network.attach(node, home.network.segment("upnp-eth"))
    control_point = UpnpControlPoint(TransportStack(node, home.network))
    control_point.search("upnp-eth")
    home.run(2.0)
    description, base = home.sim.run_until_complete(
        control_point.fetch_description(control_point.discovered["uuid:VSG_Bridge"])
    )
    print(f"  bridge device advertises {len(description.services)} foreign services")
    laserdisc = description.service("urn:repro:serviceId:Laserdisc")
    print("  tablet -> Laserdisc.play():",
          home.sim.run_until_complete(control_point.invoke(base, laserdisc, "play", [])))
    print("  laserdisc (Jini island) state:", home.laserdisc.get_state())


if __name__ == "__main__":
    main()
