"""SSDP discovery (Simple Service Discovery Protocol subset).

Textual HTTP-over-UDP messages on port 1900: devices multicast
``NOTIFY * HTTP/1.1`` alive/byebye announcements carrying their
description LOCATION; control points multicast ``M-SEARCH`` and devices
answer with unicast ``HTTP/1.1 200 OK`` responses.
"""

from __future__ import annotations

from typing import Callable

from repro.net.addressing import NodeAddress
from repro.net.segment import Segment
from repro.net.simkernel import Event
from repro.net.transport import TransportStack

SSDP_PORT = 1900
DEFAULT_ANNOUNCE_INTERVAL = 30.0
_CRLF = "\r\n"


def _render(start: str, headers: dict[str, str]) -> bytes:
    lines = [start] + [f"{key}: {value}" for key, value in headers.items()]
    return (_CRLF.join(lines) + _CRLF + _CRLF).encode("latin-1")


def _parse(data: bytes) -> tuple[str, dict[str, str]] | None:
    try:
        text = data.decode("latin-1")
    except UnicodeDecodeError:
        return None
    lines = text.split(_CRLF)
    if not lines or not lines[0]:
        return None
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if sep:
            headers[name.strip().upper()] = value.strip()
    return lines[0], headers


class SsdpAnnouncer:
    """Device side: alive/byebye announcements + M-SEARCH responses."""

    def __init__(
        self,
        stack: TransportStack,
        segment: Segment | str,
        location: str,
        usn: str,
        notification_type: str = "upnp:rootdevice",
        interval: float = DEFAULT_ANNOUNCE_INTERVAL,
    ) -> None:
        self.stack = stack
        self.segment = segment
        self.location = location
        self.usn = usn
        self.notification_type = notification_type
        self.interval = interval
        self._socket = stack.udp_socket(SSDP_PORT)
        self._socket.on_datagram(self._on_datagram)
        self._timer: Event | None = None
        self._running = False
        self.announcements_sent = 0

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._announce()

    def stop(self, send_byebye: bool = True) -> None:
        if not self._running:
            return
        self._running = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if send_byebye:
            self._socket.broadcast(
                self.segment,
                SSDP_PORT,
                _render(
                    "NOTIFY * HTTP/1.1",
                    {"NT": self.notification_type, "NTS": "ssdp:byebye", "USN": self.usn},
                ),
            )

    def close(self) -> None:
        self.stop(send_byebye=False)
        self._socket.close()

    def _announce(self) -> None:
        if not self._running:
            return
        self.announcements_sent += 1
        self._socket.broadcast(
            self.segment,
            SSDP_PORT,
            _render(
                "NOTIFY * HTTP/1.1",
                {
                    "NT": self.notification_type,
                    "NTS": "ssdp:alive",
                    "USN": self.usn,
                    "LOCATION": self.location,
                    "CACHE-CONTROL": f"max-age={int(self.interval * 2)}",
                },
            ),
        )
        self._timer = self.stack.sim.schedule(self.interval, self._announce)

    def _on_datagram(self, src: NodeAddress, src_port: int, data: bytes) -> None:
        parsed = _parse(data)
        if parsed is None:
            return
        start, headers = parsed
        if not start.startswith("M-SEARCH"):
            return
        target = headers.get("ST", "ssdp:all")
        if target not in ("ssdp:all", self.notification_type):
            return
        self._socket.sendto(
            src,
            src_port,
            _render(
                "HTTP/1.1 200 OK",
                {"ST": self.notification_type, "USN": self.usn, "LOCATION": self.location},
            ),
        )


class SsdpListener:
    """Control-point side: hears announcements, issues searches."""

    def __init__(
        self,
        stack: TransportStack,
        on_alive: Callable[[str, str], None] | None = None,
        on_byebye: Callable[[str], None] | None = None,
    ) -> None:
        """``on_alive(usn, location)``; ``on_byebye(usn)``."""
        self.stack = stack
        self.known: dict[str, str] = {}  # usn -> location
        self._on_alive = on_alive
        self._on_byebye = on_byebye
        self._socket = stack.udp_socket(SSDP_PORT)
        self._socket.on_datagram(self._on_datagram)

    def search(self, segment: Segment | str, target: str = "ssdp:all") -> None:
        self._socket.broadcast(
            segment,
            SSDP_PORT,
            _render("M-SEARCH * HTTP/1.1", {"MAN": '"ssdp:discover"', "ST": target, "MX": "1"}),
        )

    def close(self) -> None:
        self._socket.close()

    def _on_datagram(self, src: NodeAddress, src_port: int, data: bytes) -> None:
        parsed = _parse(data)
        if parsed is None:
            return
        start, headers = parsed
        usn = headers.get("USN", "")
        if not usn:
            return
        if start.startswith("NOTIFY") and headers.get("NTS") == "ssdp:byebye":
            self.known.pop(usn, None)
            if self._on_byebye is not None:
                self._on_byebye(usn)
            return
        location = headers.get("LOCATION", "")
        if not location:
            return
        is_new = usn not in self.known
        self.known[usn] = location
        if is_new and self._on_alive is not None:
            self._on_alive(usn, location)
