"""UPnP device/service description documents.

One XML document per device, served at its SSDP LOCATION: friendly name,
UDN, and a service list whose actions are described inline (a flattened
SCPD — enough for a PCM to generate typed interfaces).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field

from repro.errors import UpnpError
from repro.soap.xmlutil import XmlWriter, local_name, parse_document

ARG_TYPES = ("i4", "r8", "string", "boolean", "anyType")

#: UPnP argument type -> neutral XSD name (used by the PCM).
UPNP_TO_XSD = {
    "i4": "int",
    "r8": "double",
    "string": "string",
    "boolean": "boolean",
    "anyType": "anyType",
}
XSD_TO_UPNP = {xsd: upnp for upnp, xsd in UPNP_TO_XSD.items()}


@dataclass(frozen=True)
class ActionArgument:
    """One typed input argument of a UPnP action."""

    name: str
    type: str  # an entry of ARG_TYPES

    def __post_init__(self) -> None:
        if self.type not in ARG_TYPES:
            raise UpnpError(f"unknown UPnP argument type {self.type!r}")


@dataclass(frozen=True)
class Action:
    """One UPnP action (flattened SCPD entry)."""

    name: str
    inputs: tuple[ActionArgument, ...] = ()
    output: str = ""  # '' = no return; else an ARG_TYPES entry

    def __post_init__(self) -> None:
        if self.output and self.output not in ARG_TYPES:
            raise UpnpError(f"unknown UPnP return type {self.output!r}")


@dataclass
class ServiceDescription:
    """One service of a device: ids, endpoint paths, action table."""

    service_id: str  # e.g. 'urn:upnp-org:serviceId:SwitchPower'
    service_type: str  # e.g. 'urn:schemas-upnp-org:service:SwitchPower:1'
    control_path: str
    event_path: str
    actions: tuple[Action, ...] = ()

    def action(self, name: str) -> Action:
        for action in self.actions:
            if action.name == name:
                return action
        raise UpnpError(f"service {self.service_id!r} has no action {name!r}")


@dataclass
class DeviceDescription:
    """A root device's description document."""

    friendly_name: str
    device_type: str
    udn: str  # 'uuid:...'
    services: list[ServiceDescription] = field(default_factory=list)

    def service(self, service_id: str) -> ServiceDescription:
        for service in self.services:
            if service.service_id == service_id:
                return service
        raise UpnpError(f"device {self.udn!r} has no service {service_id!r}")

    # -- XML ------------------------------------------------------------

    def to_xml(self) -> bytes:
        writer = XmlWriter()
        writer.open("root", {"xmlns": "urn:schemas-upnp-org:device-1-0"})
        writer.open("device")
        writer.leaf("deviceType", text=self.device_type)
        writer.leaf("friendlyName", text=self.friendly_name)
        writer.leaf("UDN", text=self.udn)
        writer.open("serviceList")
        for service in self.services:
            writer.open("service")
            writer.leaf("serviceId", text=service.service_id)
            writer.leaf("serviceType", text=service.service_type)
            writer.leaf("controlURL", text=service.control_path)
            writer.leaf("eventSubURL", text=service.event_path)
            writer.open("actionList")
            for action in service.actions:
                writer.open("action", {"name": action.name, "output": action.output})
                for argument in action.inputs:
                    writer.leaf("argument", {"name": argument.name, "type": argument.type})
                writer.close()
            writer.close()
            writer.close()
        writer.close()
        writer.close()
        writer.close()
        return writer.tobytes()

    @staticmethod
    def from_xml(data: bytes) -> "DeviceDescription":
        root = parse_document(data)
        device_el = _child(root, "device")
        services: list[ServiceDescription] = []
        service_list = _child(device_el, "serviceList", required=False)
        if service_list is not None:
            for service_el in service_list:
                actions = []
                action_list = _child(service_el, "actionList", required=False)
                if action_list is not None:
                    for action_el in action_list:
                        arguments = tuple(
                            ActionArgument(arg.get("name") or "", arg.get("type") or "string")
                            for arg in action_el
                        )
                        actions.append(
                            Action(
                                name=action_el.get("name") or "",
                                inputs=arguments,
                                output=action_el.get("output") or "",
                            )
                        )
                services.append(
                    ServiceDescription(
                        service_id=_text(service_el, "serviceId"),
                        service_type=_text(service_el, "serviceType"),
                        control_path=_text(service_el, "controlURL"),
                        event_path=_text(service_el, "eventSubURL"),
                        actions=tuple(actions),
                    )
                )
        return DeviceDescription(
            friendly_name=_text(device_el, "friendlyName"),
            device_type=_text(device_el, "deviceType"),
            udn=_text(device_el, "UDN"),
            services=services,
        )


def _child(element: ET.Element, name: str, required: bool = True) -> ET.Element | None:
    for child in element:
        if local_name(child) == name:
            return child
    if required:
        raise UpnpError(f"description lacks <{name}>")
    return None


def _text(element: ET.Element, name: str) -> str:
    child = _child(element, name)
    return (child.text or "").strip()
