"""UPnP control point: discovery, description fetch, control, eventing."""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import HttpError, SoapError, SoapFault, UpnpError
from repro.net.segment import Segment
from repro.net.simkernel import SimFuture
from repro.net.transport import TransportStack
from repro.soap import envelope
from repro.soap.http import HttpClient, HttpRequest, HttpResponse, HttpServer
from repro.upnp.description import DeviceDescription, ServiceDescription
from repro.upnp.ssdp import SsdpListener
from repro.upnp.urls import make_url, parse_url

DEFAULT_CALLBACK_PORT = 7878

#: Event callback: (udn, variable, value).
EventCallback = Callable[[str, str, Any], None]


class UpnpControlPoint:
    """Discovers and drives UPnP devices from one node."""

    def __init__(self, stack: TransportStack, callback_port: int = DEFAULT_CALLBACK_PORT) -> None:
        self.stack = stack
        self.sim = stack.sim
        self.http = HttpClient(stack)
        self.listener = SsdpListener(stack, on_alive=self._on_alive, on_byebye=self._on_byebye)
        self.callback_port = callback_port
        self._callback_server = HttpServer(stack, callback_port)
        self._callback_server.register_prefix("/gena/", self._on_gena_notify)
        self._event_callbacks: dict[str, list[EventCallback]] = {}  # path -> callbacks
        self._callback_counter = 0
        self.discovered: dict[str, str] = {}  # usn -> location
        self._alive_watchers: list[Callable[[str, str], None]] = []
        self._byebye_watchers: list[Callable[[str], None]] = []

    # -- discovery ------------------------------------------------------------

    def search(self, segment: Segment | str) -> None:
        self.listener.search(segment)

    def on_device_alive(self, watcher: Callable[[str, str], None]) -> None:
        self._alive_watchers.append(watcher)
        for usn, location in self.discovered.items():
            watcher(usn, location)

    def on_device_byebye(self, watcher: Callable[[str], None]) -> None:
        self._byebye_watchers.append(watcher)

    def _on_alive(self, usn: str, location: str) -> None:
        self.discovered[usn] = location
        for watcher in list(self._alive_watchers):
            watcher(usn, location)

    def _on_byebye(self, usn: str) -> None:
        self.discovered.pop(usn, None)
        for watcher in list(self._byebye_watchers):
            watcher(usn)

    # -- description ------------------------------------------------------------

    def fetch_description(self, location: str) -> SimFuture:
        """Resolve to (DeviceDescription, base (address, port))."""
        address, port, path = parse_url(location)
        result: SimFuture = SimFuture()

        def on_response(future: SimFuture) -> None:
            exc = future.exception()
            if exc is not None:
                result.set_exception(exc)
                return
            response: HttpResponse = future.result()
            if not response.ok:
                result.set_exception(HttpError(response.status, response.reason))
                return
            try:
                description = DeviceDescription.from_xml(response.body)
            except UpnpError as parse_exc:
                result.set_exception(parse_exc)
                return
            result.set_result((description, (address, port)))

        self.http.get(address, port, path).add_done_callback(on_response)
        return result

    # -- control ------------------------------------------------------------

    def invoke(
        self,
        base: tuple,
        service: ServiceDescription,
        action: str,
        args: list[Any],
    ) -> SimFuture:
        """Invoke ``action`` at the device's control URL; resolves to the
        return value or fails with :class:`SoapFault`."""
        address, port = base
        body = envelope.build_request(action, args)
        result: SimFuture = SimFuture()

        def on_response(future: SimFuture) -> None:
            exc = future.exception()
            if exc is not None:
                result.set_exception(exc)
                return
            response: HttpResponse = future.result()
            try:
                message = envelope.parse_envelope(response.body)
            except SoapError as parse_exc:
                result.set_exception(parse_exc)
                return
            if message.kind == "fault":
                result.set_exception(
                    SoapFault(message.faultcode, message.faultstring, message.detail)
                )
            else:
                result.set_result(message.value)

        self.http.post(
            address, port, service.control_path, body,
            headers={"Content-Type": "text/xml", "SOAPAction": f'"{action}"'},
        ).add_done_callback(on_response)
        return result

    # -- eventing ------------------------------------------------------------

    def subscribe(
        self,
        base: tuple,
        service: ServiceDescription,
        udn: str,
        callback: EventCallback,
    ) -> SimFuture:
        """GENA-subscribe to a service; resolves to the subscription id."""
        address, port = base
        self._callback_counter += 1
        path = f"/gena/{self._callback_counter}"
        self._event_callbacks.setdefault(path, []).append(
            lambda _udn, variable, value: callback(udn, variable, value)
        )
        # The callback must be reachable *from the device's segment*: on a
        # multi-homed control point (a gateway) pick that interface.
        local = self.stack.local_address(self.stack.network.segment(address.segment))
        callback_url = make_url(local, self.callback_port, path)
        result: SimFuture = SimFuture()

        def on_response(future: SimFuture) -> None:
            exc = future.exception()
            if exc is not None:
                result.set_exception(exc)
                return
            response: HttpResponse = future.result()
            if not response.ok:
                result.set_exception(HttpError(response.status, response.reason))
            else:
                result.set_result(response.header("SID"))

        self.http.request(
            address, port, "SUBSCRIBE", service.event_path,
            headers={"Callback": f"<{callback_url}>", "NT": "upnp:event"},
        ).add_done_callback(on_response)
        return result

    def _on_gena_notify(self, request: HttpRequest) -> HttpResponse:
        if request.method != "NOTIFY":
            return HttpResponse(405)
        try:
            message = envelope.parse_envelope(request.body)
        except SoapError:
            return HttpResponse(400)
        if message.kind != "request" or not message.args:
            return HttpResponse(400)
        properties = message.args[0]
        if isinstance(properties, dict):
            for variable, value in properties.items():
                for callback in self._event_callbacks.get(request.path, []):
                    callback("", variable, value)
        return HttpResponse(200)

    def close(self) -> None:
        self.listener.close()
        self._callback_server.close()
