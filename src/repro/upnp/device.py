"""UPnP devices: description hosting, control endpoints, GENA eventing."""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import UpnpError
from repro.net.network import Network
from repro.net.segment import Segment
from repro.net.simkernel import SimFuture
from repro.net.transport import TransportStack
from repro.soap import envelope
from repro.soap.http import HttpClient, HttpRequest, HttpResponse, HttpServer
from repro.upnp.description import (
    Action,
    ActionArgument,
    DeviceDescription,
    ServiceDescription,
)
from repro.upnp.ssdp import SsdpAnnouncer
from repro.upnp.urls import make_url, parse_url

DESCRIPTION_PATH = "/description.xml"
DEFAULT_DEVICE_PORT = 80

#: An action implementation: ``callable(*args) -> value``.
ActionImpl = Callable[..., Any]

#: Action table entry: (implementation, input (name, type) pairs, output type).
ActionSpec = tuple[ActionImpl, tuple[tuple[str, str], ...], str]


class UpnpDevice:
    """One UPnP device on an IP segment."""

    def __init__(
        self,
        network: Network,
        name: str,
        segment: Segment | str,
        friendly_name: str,
        device_type: str,
        port: int = DEFAULT_DEVICE_PORT,
    ) -> None:
        if isinstance(segment, str):
            segment = network.segment(segment)
        self.network = network
        self.segment = segment
        self.node = network.create_node(name)
        network.attach(self.node, segment)
        self.stack = TransportStack(self.node, network)
        self.sim = network.sim
        self.port = port
        self.http = HttpServer(self.stack, port)
        self.http_client = HttpClient(self.stack)
        self.udn = f"uuid:{name}"
        self.description = DeviceDescription(
            friendly_name=friendly_name, device_type=device_type, udn=self.udn
        )
        self._implementations: dict[str, dict[str, ActionSpec]] = {}
        self._subscriptions: dict[str, list[str]] = {}  # short id -> callback URLs
        self._sid_counter = 0
        self.http.register(DESCRIPTION_PATH, self._serve_description)
        self.location = make_url(
            self.stack.local_address(segment), port, DESCRIPTION_PATH
        )
        self.announcer = SsdpAnnouncer(
            self.stack, segment, location=self.location, usn=self.udn
        )
        self.announcer.start()
        self.actions_served = 0
        self.notifications_sent = 0

    # -- services ------------------------------------------------------------

    def add_service(self, short_id: str, actions: dict[str, ActionSpec]) -> ServiceDescription:
        """Add one service; ``actions`` maps action name to
        (implementation, ((arg_name, upnp_type), ...), output_type_or_'')."""
        if short_id in self._implementations:
            raise UpnpError(f"service {short_id!r} already added")
        control_path = f"/control/{short_id}"
        event_path = f"/event/{short_id}"
        described = tuple(
            Action(
                name=action_name,
                inputs=tuple(ActionArgument(n, t) for n, t in arg_spec),
                output=output,
            )
            for action_name, (impl, arg_spec, output) in actions.items()
        )
        service = ServiceDescription(
            service_id=f"urn:repro:serviceId:{short_id}",
            service_type=f"urn:schemas-repro:service:{short_id}:1",
            control_path=control_path,
            event_path=event_path,
            actions=described,
        )
        self.description.services.append(service)
        self._implementations[short_id] = actions
        self._subscriptions[short_id] = []
        self.http.register(control_path, lambda request, sid=short_id: self._control(sid, request))
        self.http.register(event_path, lambda request, sid=short_id: self._gena(sid, request))
        return service

    # -- HTTP handlers ------------------------------------------------------------

    def _serve_description(self, request: HttpRequest) -> HttpResponse:
        return HttpResponse(
            200, headers={"Content-Type": "text/xml"}, body=self.description.to_xml()
        )

    def _control(self, short_id: str, request: HttpRequest) -> HttpResponse:
        if request.method != "POST":
            return HttpResponse(405)
        try:
            message = envelope.parse_envelope(request.body)
        except Exception as exc:
            return HttpResponse(400, body=envelope.build_fault("SOAP-ENV:Client", str(exc)))
        table = self._implementations[short_id]
        spec = table.get(message.operation)
        if spec is None:
            return HttpResponse(
                404,
                body=envelope.build_fault(
                    "SOAP-ENV:Client", f"no action {message.operation!r}"
                ),
            )
        impl, _args, _output = spec
        try:
            value = impl(*message.args)
        except Exception as exc:
            return HttpResponse(
                500, body=envelope.build_fault("SOAP-ENV:Server", str(exc))
            )
        if isinstance(value, SimFuture):
            # Bridged actions (the VSG bridge device) resolve asynchronously.
            pending: SimFuture = SimFuture()

            def on_done(future: SimFuture) -> None:
                exc = future.exception()
                if exc is not None:
                    pending.set_result(
                        HttpResponse(500, body=envelope.build_fault("SOAP-ENV:Server", str(exc)))
                    )
                    return
                self.actions_served += 1
                pending.set_result(self._ok(message.operation, future.result()))

            value.add_done_callback(on_done)
            return pending
        self.actions_served += 1
        return self._ok(message.operation, value)

    @staticmethod
    def _ok(operation: str, value: Any) -> HttpResponse:
        return HttpResponse(
            200,
            headers={"Content-Type": "text/xml"},
            body=envelope.build_response(operation, value),
        )

    def _gena(self, short_id: str, request: HttpRequest) -> HttpResponse:
        if request.method != "SUBSCRIBE":
            return HttpResponse(405)
        callback = request.header("Callback").strip("<>")
        if not callback:
            return HttpResponse(400, body=b"SUBSCRIBE without Callback")
        self._sid_counter += 1
        self._subscriptions[short_id].append(callback)
        return HttpResponse(
            200, headers={"SID": f"uuid:sub-{self._sid_counter}", "Timeout": "Second-1800"}
        )

    # -- eventing ------------------------------------------------------------

    def notify(self, short_id: str, variable: str, value: Any) -> int:
        """GENA NOTIFY all subscribers of ``short_id``; returns how many."""
        callbacks = self._subscriptions.get(short_id, [])
        body = envelope.build_request("propertyset", [{variable: value}])
        for callback in callbacks:
            address, port, path = parse_url(callback)
            self.notifications_sent += 1
            future = self.http_client.request(
                address, port, "NOTIFY", path, body=body,
                headers={"NT": "upnp:event", "Content-Type": "text/xml"},
            )
            future.add_done_callback(lambda f: f.exception())  # fire and forget
        return len(callbacks)

    def close(self) -> None:
        self.announcer.stop()
        self.announcer.close()
        self.http.close()
