"""`http://<node-address>:<port>/<path>` URL helpers for UPnP."""

from __future__ import annotations

import re

from repro.errors import UpnpError
from repro.net.addressing import NodeAddress


def make_url(address: NodeAddress, port: int, path: str) -> str:
    """Render ``http://segment/host:port/path``."""
    if not path.startswith("/"):
        path = "/" + path
    return f"http://{address}:{port}{path}"


_URL_RE = re.compile(r"^http://(?P<segment>[^/:]+)/(?P<host>\d+):(?P<port>\d+)(?P<path>/.*)?$")


def parse_url(url: str) -> tuple[NodeAddress, int, str]:
    """→ (address, port, path).

    Node addresses contain a slash (``segment/host``), so the authority is
    matched structurally rather than split at the first ``/``.
    """
    match = _URL_RE.match(url)
    if match is None:
        raise UpnpError(f"malformed URL {url!r}")
    address = NodeAddress(match.group("segment"), int(match.group("host")))
    return address, int(match.group("port")), match.group("path") or "/"
