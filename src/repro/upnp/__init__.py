"""Minimal UPnP substrate.

The paper's related work (Section 5): "We can connect the UPnP service to
other middleware by developing a PCM for UPnP."  This package provides the
UPnP subset a PCM needs — and :mod:`repro.pcms.upnp_pcm` is that PCM,
demonstrating the headline claim that a new middleware joins the framework
with one module and zero changes elsewhere (experiment C5):

- :mod:`repro.upnp.ssdp` — SSDP discovery: periodic ``NOTIFY ssdp:alive``
  announcements and ``M-SEARCH`` with unicast responses, over UDP 1900.
- :mod:`repro.upnp.description` — device/service description documents
  (friendly name, UDN, action tables), served over HTTP.
- :mod:`repro.upnp.device` — :class:`UpnpDevice`: hosts descriptions,
  SOAP-style control endpoints and GENA-style event subscriptions.
- :mod:`repro.upnp.control` — :class:`UpnpControlPoint`: discovery, device
  description fetch, action invocation, event subscription with HTTP
  callbacks (UPnP *can* push over IP — unlike the inter-island SOAP VSG).
"""

from repro.upnp.control import UpnpControlPoint
from repro.upnp.description import DeviceDescription, ServiceDescription
from repro.upnp.device import UpnpDevice
from repro.upnp.ssdp import SsdpAnnouncer, SsdpListener

__all__ = [
    "DeviceDescription",
    "ServiceDescription",
    "SsdpAnnouncer",
    "SsdpListener",
    "UpnpControlPoint",
    "UpnpDevice",
]
