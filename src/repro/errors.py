"""Shared exception hierarchy for the whole reproduction.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers can catch at whatever granularity they need.  Faults that cross a
Virtual Service Gateway are encoded on the wire (e.g. as SOAP Faults) and
re-raised on the calling side as :class:`RemoteServiceError` with the original
fault information preserved.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


# ---------------------------------------------------------------------------
# Simulation / network substrate
# ---------------------------------------------------------------------------


class SimulationError(ReproError):
    """Misuse of the discrete-event simulation kernel."""


class NetworkError(ReproError):
    """Base class for simulated-network errors."""


class AddressError(NetworkError):
    """Unknown or malformed node/hardware address."""


class TransportError(NetworkError):
    """Transport-layer failure (connection refused, reset, port in use)."""


class ConnectionClosedError(TransportError):
    """Operation attempted on a closed stream connection."""


class TimeoutError(NetworkError):  # noqa: A001 - deliberate shadow, namespaced
    """A simulated operation did not complete within its virtual deadline."""


class FaultInjectionError(ReproError):
    """A fault plan referenced an unknown target or was malformed."""


# ---------------------------------------------------------------------------
# Protocol substrates
# ---------------------------------------------------------------------------


class ProtocolError(ReproError):
    """Malformed or unexpected protocol data."""


class SoapError(ProtocolError):
    """SOAP envelope construction or parsing failure."""


class SoapFault(SoapError):
    """A SOAP Fault returned by a remote endpoint.

    Attributes mirror the SOAP 1.1 fault structure.
    """

    def __init__(self, faultcode: str, faultstring: str, detail: str = ""):
        super().__init__(f"{faultcode}: {faultstring}")
        self.faultcode = faultcode
        self.faultstring = faultstring
        self.detail = detail


class HttpError(ProtocolError):
    """HTTP request/response violation or non-2xx status."""

    def __init__(self, status: int, reason: str, body: bytes = b""):
        super().__init__(f"HTTP {status} {reason}")
        self.status = status
        self.reason = reason
        self.body = body


class MarshallingError(ProtocolError):
    """Value could not be encoded/decoded by a middleware codec."""


class JiniError(ProtocolError):
    """Jini substrate failure (discovery, lookup, lease, RMI)."""


class LeaseDeniedError(JiniError):
    """The lookup service refused to grant or renew a lease."""


class LeaseExpiredError(JiniError):
    """An operation referenced a lease that has already expired."""


class ServiceNotFoundError(ReproError):
    """No service matched the lookup template / repository query."""


class HaviError(ProtocolError):
    """HAVi substrate failure (bus, messaging, registry, DCM/FCM)."""


class BusResetInProgressError(HaviError):
    """IEEE1394 operation attempted while the bus is resetting."""


class X10Error(ProtocolError):
    """X10 substrate failure (CM11A framing, powerline, codes)."""


class ChecksumError(X10Error):
    """CM11A checksum exchange failed."""


class MailError(ProtocolError):
    """SMTP/mailbox failure."""


class UpnpError(ProtocolError):
    """UPnP substrate failure (SSDP, description, control, eventing)."""


class SipError(ProtocolError):
    """SIP substrate failure (transaction timeout, malformed message)."""


# ---------------------------------------------------------------------------
# Meta-middleware core
# ---------------------------------------------------------------------------


class FrameworkError(ReproError):
    """Base class for meta-middleware framework errors."""


class InterfaceError(FrameworkError):
    """Invalid service interface definition or value/type mismatch."""


class GatewayError(FrameworkError):
    """Virtual Service Gateway failure (unreachable peer, bad route)."""


class RepositoryError(FrameworkError):
    """Virtual Service Repository failure (conflict, stale entry)."""


class DeadlineExceededError(GatewayError):
    """A remote invocation exceeded its :class:`CallPolicy` deadline."""


class CircuitOpenError(GatewayError):
    """Fast failure: the target island's circuit breaker is open."""

    def __init__(self, island: str, retry_at: float):
        super().__init__(
            f"circuit breaker open for island {island!r} (half-open probe at "
            f"t={retry_at:.3f})"
        )
        self.island = island
        self.retry_at = retry_at


class DirectoryUnavailableError(RepositoryError):
    """The VSR directory is unreachable and no cached entry can stand in."""


class ConversionError(FrameworkError):
    """A Protocol Conversion Manager could not convert a call or value."""


class RemoteServiceError(FrameworkError):
    """A bridged call failed on the remote island.

    Carries the neutral fault information that crossed the gateway.
    """

    def __init__(self, code: str, message: str, island: str = ""):
        origin = f" (island {island})" if island else ""
        super().__init__(f"remote fault {code}: {message}{origin}")
        self.code = code
        self.fault_message = message
        self.island = island


class StreamNotBridgeableError(FrameworkError):
    """Multimedia stream setup attempted across a gateway that cannot carry
    isochronous data (the paper's Section 4.2 negative result)."""
