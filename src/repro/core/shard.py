"""Sharded, replicated VSR federation.

One :class:`repro.core.vsr.VsrDirectory` per home federation is the
scalability wall on the road to "millions of homes": every lookup,
registration and poll-loop heartbeat funnels through one node.  This
module splits the logically-global directory into N shards placed by a
deterministic consistent-hash ring, replicates each shard R ways, and
converges the replicas with a pull-based anti-entropy protocol — the
regional-catalogue shape of federated grid registries (see
docs/FEDERATION.md for the protocol write-up and convergence bounds).

Layers:

- :class:`HashRing` — seeded consistent hashing with virtual nodes;
  placement is a pure function of ``(seed, shards, virtual_nodes)`` so
  every client, the facade and the testkit oracle agree without talking.
- :class:`ReplicaDirectory` — a :class:`VsrDirectory` that also keeps a
  per-origin operation ledger with Lamport-stamped last-writer-wins
  registers, the substrate anti-entropy syncs over.
- :class:`FederatedUddiService` — the per-replica SOAP facade: the plain
  UDDI surface plus ``find_many`` (batched lookups), ``sync_digest`` and
  ``sync_pull`` (anti-entropy), and an optional service-time queue so
  benchmarks can model a saturated directory.
- :class:`ReplicaSyncAgent` — drift-free digest/delta pulls between a
  replica and its shard siblings.
- :class:`VsrFederation` — builds the whole plane on backbone nodes and
  presents ``mm.uddi.directory``-shaped access through
  :class:`FederationView`.

A trivial federation (1 shard, 1 replica) builds a single node named
``uddi-directory`` whose facade answers byte-identically to the legacy
directory — the wire pin the scale benchmark asserts.
"""

from __future__ import annotations

import bisect
import hashlib
import json
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import DirectoryUnavailableError
from repro.net.addressing import NodeAddress
from repro.net.network import Network
from repro.net.segment import Segment
from repro.net.simkernel import SimFuture, Simulator
from repro.net.transport import TransportStack
from repro.obs import NOOP_OBS
from repro.core.resilience import with_deadline
from repro.core.vsr import (
    UDDI_SERVICE_NAME,
    UddiSoapService,
    VsrDirectory,
    gateway_ring_key,
)
from repro.soap.client import SoapClient
from repro.soap.server import SoapServer
from repro.soap.wsdl import WsdlDocument

__all__ = [
    "FederationConfig",
    "FederationRouting",
    "FederatedUddiService",
    "FederationView",
    "HashRing",
    "ReplicaDirectory",
    "ReplicaEndpoint",
    "ReplicaSyncAgent",
    "ShardLoadModel",
    "VsrFederation",
    "gateway_ring_key",
]


# ---------------------------------------------------------------------------
# Consistent-hash ring
# ---------------------------------------------------------------------------


def _ring_hash(data: str) -> int:
    """First 8 bytes of SHA-1, big-endian — stable across runs, platforms
    and Python versions (``hash()`` is salted; never use it for placement)."""
    return int.from_bytes(hashlib.sha1(data.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """Seeded consistent hashing: ``virtual_nodes`` points per shard on a
    64-bit ring; a key belongs to the first point at or after its hash.

    Placement is deterministic given ``(seed, shards, virtual_nodes)``,
    so ring-aware clients need no coordination, and growing the shard
    count moves only the keys that land on the new shard's points
    (:meth:`moved_keys` quantifies the rebalance)."""

    def __init__(self, shards: int, virtual_nodes: int = 64, seed: str = "vsr-ring") -> None:
        if shards < 1:
            raise ValueError("a ring needs at least one shard")
        if virtual_nodes < 1:
            raise ValueError("a ring needs at least one virtual node per shard")
        self.shards = shards
        self.virtual_nodes = virtual_nodes
        self.seed = seed
        points: list[tuple[int, int]] = []
        for shard in range(shards):
            for vnode in range(virtual_nodes):
                points.append((_ring_hash(f"{seed}|{shard}|{vnode}"), shard))
        points.sort()
        self._points = points
        self._hashes = [point for point, _shard in points]

    def owner(self, key: str) -> int:
        """The shard that owns ``key``."""
        if self.shards == 1:
            return 0
        index = bisect.bisect_right(self._hashes, _ring_hash(key))
        if index == len(self._hashes):
            index = 0  # wrap: past the last point belongs to the first
        return self._points[index][1]

    def dump(self) -> dict:
        """JSON-ready ring description (CI uploads these next to failing
        scale-band repros so placement can be inspected offline)."""
        return {
            "seed": self.seed,
            "shards": self.shards,
            "virtual_nodes": self.virtual_nodes,
            "points": [[point, shard] for point, shard in self._points],
        }

    @staticmethod
    def moved_keys(old: "HashRing", new: "HashRing", keys: list[str]) -> list[str]:
        """The subset of ``keys`` whose owner changes between two rings —
        the data that must migrate on a shard join/leave."""
        return [key for key in keys if old.owner(key) != new.owner(key)]


# ---------------------------------------------------------------------------
# Configuration and routing
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FederationConfig:
    """Knobs for one federation plane (all virtual-time seconds)."""

    shards: int = 1
    replicas: int = 1
    virtual_nodes: int = 64
    ring_seed: str = "vsr-ring"
    #: Anti-entropy digest cadence per replica (drift-free schedule).
    sync_interval: float = 2.0
    #: Max ops per ``sync_pull`` page (bounds one transfer's wire bytes).
    sync_page: int = 1000
    #: Deadline on each sync round trip, so a crashed peer cannot wedge
    #: the agent's in-flight guard.
    sync_deadline: float = 30.0
    #: Per-shard deadline on scatter-gather reads (0 = client's own).
    find_deadline: float = 0.0
    #: Ride same-shard same-instant lookups on one ``find_many``.
    batch_lookups: bool = True
    #: Per-replica circuit breaker in the ring-aware client.
    breaker_threshold: int = 3
    breaker_reset_timeout: float = 10.0

    @property
    def trivial(self) -> bool:
        """One shard, one replica: the legacy single-directory shape."""
        return self.shards == 1 and self.replicas == 1


@dataclass(frozen=True)
class ReplicaEndpoint:
    """Where one replica answers UDDI calls."""

    name: str
    address: NodeAddress
    port: int


class FederationRouting:
    """What a ring-aware :class:`repro.core.vsr.VsrClient` needs: the ring
    plus every shard's replica endpoints (primary first)."""

    def __init__(
        self,
        ring: HashRing,
        endpoints: list[list[ReplicaEndpoint]],
        config: FederationConfig,
    ) -> None:
        self.ring = ring
        self.endpoints: tuple[tuple[ReplicaEndpoint, ...], ...] = tuple(
            tuple(group) for group in endpoints
        )
        self.config = config

    @property
    def shard_count(self) -> int:
        return len(self.endpoints)

    @property
    def trivial(self) -> bool:
        return self.shard_count == 1 and len(self.endpoints[0]) == 1

    def owner(self, key: str) -> int:
        return self.ring.owner(key)

    def replicas(self, shard: int) -> tuple[ReplicaEndpoint, ...]:
        return self.endpoints[shard]


# ---------------------------------------------------------------------------
# Replicated directory
# ---------------------------------------------------------------------------


class ReplicaDirectory(VsrDirectory):
    """A directory shard replica: the plain :class:`VsrDirectory` tables
    plus the replication substrate — a per-origin append-only operation
    ledger and Lamport-stamped last-writer-wins registers per key.

    Every local mutation appends an op under this replica's ``origin``;
    anti-entropy ships contiguous per-origin suffixes between replicas
    (:meth:`version_vector` / :meth:`deltas_since` / :meth:`apply_delta`).
    Merge is LWW on ``(lamport, origin)`` — total, deterministic, and
    order-independent, so two replicas that hold the same op sets hold
    the same tables regardless of delivery order.  Withdraw/unregister
    are recorded as tombstone ops: an explicit removal beats an older
    publish however late it arrives."""

    def __init__(self, shard_id: int, replica_id: str) -> None:
        super().__init__()
        self.shard_id = shard_id
        self.replica_id = replica_id
        #: Current origin for locally-born ops.  Reincarnated on cold
        #: recovery (``replica_id+N``) so peers that already pulled the
        #: pre-crash stream still pull the rebuilt one.
        self.origin = replica_id
        self.lamport = 0
        self._log: dict[str, list[dict]] = {}
        self._stamps: dict[tuple[str, str], tuple[int, str]] = {}

    # -- local mutations (record, then apply) --------------------------------

    def _record(self, kind: str, key: str, payload: str | None) -> None:
        self.lamport += 1
        ledger = self._log.setdefault(self.origin, [])
        ledger.append(
            {
                "kind": kind,
                "key": key,
                "payload": payload,
                "lamport": self.lamport,
                "origin": self.origin,
                "seq": len(ledger) + 1,
            }
        )
        group = "gw" if kind in ("register", "unregister") else "doc"
        self._stamps[(group, key)] = (self.lamport, self.origin)

    def publish(self, document: WsdlDocument) -> None:
        self._record("publish", document.service, document.to_xml().decode("utf-8"))
        super().publish(document)

    def withdraw(self, service: str) -> bool:
        self._record("withdraw", service, None)
        return super().withdraw(service)

    def register_gateway(self, island: str, location: str) -> None:
        self._record("register", island, location)
        super().register_gateway(island, location)

    def unregister_gateway(self, island: str) -> bool:
        self._record("unregister", island, None)
        return super().unregister_gateway(island)

    # -- anti-entropy --------------------------------------------------------

    def version_vector(self) -> dict[str, int]:
        """``origin -> ops held`` (ledgers are per-origin contiguous, so a
        count pins down exactly which ops this replica has)."""
        return {origin: len(ops) for origin, ops in self._log.items()}

    def deltas_since(self, vv: dict[str, int], limit: int = 1000) -> list[dict]:
        """Up to ``limit`` ops the caller is missing, per-origin contiguous
        (so :meth:`apply_delta` never sees a gap within one page)."""
        out: list[dict] = []
        for origin in sorted(self._log):
            ops = self._log[origin]
            known = int(vv.get(origin, 0))
            if known >= len(ops):
                continue
            for op in ops[known:]:
                out.append(op)
                if len(out) >= limit:
                    return out
        return out

    def apply_delta(self, ops: list[dict]) -> int:
        """Fold pulled ops into the ledger and tables; returns how many
        were new.  Duplicates are skipped; an out-of-order op (gap) is
        dropped — the next pull's version vector re-requests it."""
        applied = 0
        for op in ops:
            origin = str(op["origin"])
            seq = int(op["seq"])
            ledger = self._log.setdefault(origin, [])
            if seq <= len(ledger):
                continue  # already have it
            if seq != len(ledger) + 1:
                continue  # gap — wait for the re-pull
            ledger.append(dict(op))
            self._apply_remote(op)
            applied += 1
        return applied

    def _apply_remote(self, op: dict) -> None:
        kind = str(op["kind"])
        key = str(op["key"])
        group = "gw" if kind in ("register", "unregister") else "doc"
        stamp = (int(op["lamport"]), str(op["origin"]))
        self.lamport = max(self.lamport, stamp[0])
        current = self._stamps.get((group, key))
        if current is not None and current >= stamp:
            return  # we hold a newer verdict for this key
        self._stamps[(group, key)] = stamp
        # Tables are written directly — no ``_notify``: change listeners
        # hang off the primary that took the original write, and a replica
        # must not replay notifications the federation already delivered.
        if kind == "publish":
            payload = str(op["payload"])
            self._store_document(WsdlDocument.from_xml(payload.encode("utf-8")))
            self.publishes += 1
            if self.journal is not None:
                self.journal.log_publish(key, payload)
        elif kind == "withdraw":
            if self._delete_document(key) is not None and self.journal is not None:
                self.journal.log_withdraw(key)
        elif kind == "register":
            location = str(op["payload"])
            self._gateways[key] = location
            if self.journal is not None:
                self.journal.log_register(key, location)
        elif kind == "unregister":
            if self._gateways.pop(key, None) is not None and self.journal is not None:
                self.journal.log_unregister(key)

    # -- inspection ----------------------------------------------------------

    def canonical_state_json(self) -> str:
        """Deterministic serialization of the replicated tables — two
        converged replicas produce identical strings (the convergence
        oracle's yardstick)."""
        return json.dumps(
            {
                "documents": {
                    name: document.to_xml().decode("utf-8")
                    for name, document in sorted(self._documents.items())
                },
                "gateways": dict(sorted(self._gateways.items())),
            },
            sort_keys=True,
        )

    def keys_owned(self) -> int:
        return len(self._documents) + len(self._gateways)

    # -- durable state -------------------------------------------------------

    def cold_crash(self) -> None:
        super().cold_crash()
        if self.journal is None:
            return
        self._log.clear()
        self._stamps.clear()
        self.lamport = 0

    def cold_recover(self) -> None:
        super().cold_recover()
        if self.journal is None:
            return
        # Reincarnate: the WAL rebuilt the tables but the ledger died with
        # the process.  Re-record the restored state under a fresh origin
        # so peers (whose version vectors already cover the old stream)
        # can pull it; their newer ops still win LWW over these low
        # Lamport stamps, which is exactly right.
        self.origin = f"{self.replica_id}+{self.recoveries}"
        for name in sorted(self._documents):
            self._record("publish", name, self._documents[name].to_xml().decode("utf-8"))
        for island in sorted(self._gateways):
            self._record("register", island, self._gateways[island])


# ---------------------------------------------------------------------------
# Per-replica SOAP facade
# ---------------------------------------------------------------------------


class ShardLoadModel:
    """An M/D/1-style service queue for one replica: each dispatched
    operation occupies the directory for ``service_time`` virtual seconds,
    FIFO behind whatever is already queued.  :meth:`inject` adds
    background work (e.g. the heartbeat load of thousands of stub
    islands) without any wire traffic — how the scale benchmark models a
    saturated single directory against a lightly-loaded 16-shard plane."""

    def __init__(self, sim: Simulator, service_time: float) -> None:
        self.sim = sim
        self.service_time = service_time
        self.busy_until = 0.0
        self.operations = 0

    def enqueue(self, cost: float | None = None) -> float:
        """Queue one operation; returns the delay until it completes."""
        cost = self.service_time if cost is None else cost
        now = self.sim.now
        start = now if now > self.busy_until else self.busy_until
        self.busy_until = start + cost
        self.operations += 1
        return self.busy_until - now

    def inject(self, cost: float | None = None) -> None:
        """Background load: consumes service capacity, answers nobody."""
        self.enqueue(cost)


class FederatedUddiService(UddiSoapService):
    """The UDDI surface of one replica: everything the legacy service
    answers (byte-identically), plus the federation operations —
    ``find_many`` for the client's same-shard lookup batches,
    ``sync_digest``/``sync_pull`` for anti-entropy.  With a
    :class:`ShardLoadModel` attached, every dispatch waits its turn in
    the replica's service queue."""

    def __init__(
        self,
        soap_server: SoapServer,
        directory: ReplicaDirectory,
        sim: Simulator,
        load: ShardLoadModel | None = None,
    ) -> None:
        super().__init__(soap_server, directory)
        self.sim = sim
        self.load = load

    def _dispatch(self, operation: str, args: list[Any]) -> Any:
        if self.load is None:
            return self._dispatch_inner(operation, args)
        delay = self.load.enqueue()
        if delay <= 0:
            return self._dispatch_inner(operation, args)
        result: SimFuture = SimFuture()

        def run() -> None:
            try:
                inner = self._dispatch_inner(operation, args)
            except Exception as exc:
                result.set_exception(exc)
                return
            if isinstance(inner, SimFuture):
                inner.add_done_callback(
                    lambda f: result.set_exception(f.exception())
                    if f.exception() is not None
                    else result.set_result(f.result())
                )
            else:
                result.set_result(inner)

        self.sim.schedule(delay, run)
        return result

    def _dispatch_inner(self, operation: str, args: list[Any]) -> Any:
        if operation == "find_many":
            # Batched find_by_name: names the shard doesn't hold are
            # simply absent from the reply (the client raises per-name).
            self.directory.queries += 1
            reply: dict[str, str] = {}
            for name in list(args[0]):
                document = self.directory._documents.get(str(name))
                if document is not None:
                    reply[str(name)] = document.to_xml().decode("utf-8")
            return reply
        if operation == "sync_digest":
            return {
                "replica": self.directory.replica_id,
                "vv": json.dumps(self.directory.version_vector()),
            }
        if operation == "sync_pull":
            vv = json.loads(str(args[0]))
            limit = int(args[1]) if len(args) > 1 else 1000
            return json.dumps(self.directory.deltas_since(vv, limit=limit))
        return super()._dispatch(operation, args)


# ---------------------------------------------------------------------------
# Anti-entropy agent
# ---------------------------------------------------------------------------


class ReplicaSyncAgent:
    """Pull-based anti-entropy for one replica.

    On a drift-free schedule (round *n* fires at ``epoch + n·interval``
    regardless of how long round *n-1* took) the agent asks one shard
    sibling — round-robin — for its version-vector digest.  Equal vectors
    mean converged (``last_converged_at`` advances); otherwise the agent
    pulls delta pages until it has caught up.  Every replica runs one
    agent, so ops flow both ways within a round trip of each other; a
    deadline on each call keeps a crashed peer from wedging the in-flight
    guard."""

    def __init__(
        self,
        sim: Simulator,
        stack: TransportStack,
        directory: ReplicaDirectory,
        peers: list[ReplicaEndpoint],
        config: FederationConfig,
        obs: Any = None,
        label: str = "",
    ) -> None:
        self.sim = sim
        self.directory = directory
        self.peers = tuple(peers)
        self.config = config
        self.soap = SoapClient(stack, None)
        if obs is not None:
            self.soap.observe(obs, f"{label}.sync" if label else "sync")
        self.digest_rounds = 0
        self.digest_mismatches = 0
        self.deltas_pulled = 0
        self.sync_failures = 0
        self.rounds_skipped = 0
        #: Virtual time of the last round that found (or produced) equal
        #: vectors with a peer; None until the first such round.
        self.last_converged_at: float | None = None
        self.started_at = 0.0
        self._round = 0
        self._running = False
        self._in_flight = False
        self._event: Any = None

    def start(self) -> None:
        if self._running or not self.peers:
            return
        self._running = True
        self.started_at = self.sim.now
        self._round = 0
        self._schedule_next()

    def stop(self) -> None:
        self._running = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def convergence_lag(self) -> float:
        """Seconds since this replica last observed convergence (0 before
        the agent starts)."""
        if not self._running and self.last_converged_at is None:
            return 0.0
        anchor = self.last_converged_at if self.last_converged_at is not None else self.started_at
        return max(0.0, self.sim.now - anchor)

    def stats(self) -> dict:
        return {
            "digest_rounds": self.digest_rounds,
            "digest_mismatches": self.digest_mismatches,
            "deltas_pulled": self.deltas_pulled,
            "sync_failures": self.sync_failures,
            "rounds_skipped": self.rounds_skipped,
            "last_converged_at": self.last_converged_at,
            "convergence_lag": self.convergence_lag(),
        }

    # -- internals -----------------------------------------------------------

    def _schedule_next(self) -> None:
        if not self._running:
            return
        self._round += 1
        target = self.started_at + self._round * self.config.sync_interval
        self._event = self.sim.at(target, self._tick)

    def _tick(self) -> None:
        self._event = None
        if not self._running:
            return
        self._schedule_next()
        if self._in_flight:
            self.rounds_skipped += 1  # previous round still syncing
            return
        self._in_flight = True
        peer = self.peers[(self._round - 1) % len(self.peers)]
        self.digest_rounds += 1
        self._call(peer, "sync_digest", []).add_done_callback(
            lambda future: self._on_digest(peer, future)
        )

    def _call(self, peer: ReplicaEndpoint, operation: str, args: list[Any]) -> SimFuture:
        raw = self.soap.call(
            peer.address, UDDI_SERVICE_NAME, operation, args, port=peer.port
        )
        deadline = self.config.sync_deadline
        if not deadline:
            return raw
        return with_deadline(
            self.sim,
            raw,
            deadline,
            lambda: DirectoryUnavailableError(
                f"sync peer {peer.name} did not answer {operation!r} "
                f"within {deadline}s"
            ),
        )

    def _fail(self) -> None:
        self.sync_failures += 1
        self._in_flight = False

    def _on_digest(self, peer: ReplicaEndpoint, future: SimFuture) -> None:
        if future.exception() is not None:
            self._fail()
            return
        try:
            peer_vv = json.loads(str(dict(future.result())["vv"]))
        except (KeyError, TypeError, ValueError):
            self._fail()
            return
        mine = self.directory.version_vector()
        behind = any(
            int(count) > mine.get(origin, 0) for origin, count in peer_vv.items()
        )
        if not behind:
            self.last_converged_at = self.sim.now
            self._in_flight = False
            return
        self.digest_mismatches += 1
        self._pull(peer)

    def _pull(self, peer: ReplicaEndpoint) -> None:
        vv = self.directory.version_vector()

        def on_page(future: SimFuture) -> None:
            if future.exception() is not None:
                self._fail()
                return
            try:
                ops = json.loads(str(future.result()))
            except (TypeError, ValueError):
                self._fail()
                return
            if not ops:
                # Nothing left to pull: caught up with this peer.
                self.last_converged_at = self.sim.now
                self._in_flight = False
                return
            applied = self.directory.apply_delta(ops)
            self.deltas_pulled += applied
            if applied == 0:
                # A full page of ops we already hold (a concurrent pull
                # raced us): stop rather than spin on the same page.
                self._in_flight = False
                return
            self._pull(peer)  # next page against the advanced vector

        self._call(
            peer, "sync_pull", [json.dumps(vv), self.config.sync_page]
        ).add_done_callback(on_page)


# ---------------------------------------------------------------------------
# The assembled plane
# ---------------------------------------------------------------------------


class ShardReplica:
    """One physical directory node and everything mounted on it."""

    def __init__(
        self,
        node: Any,
        stack: TransportStack,
        server: SoapServer,
        directory: ReplicaDirectory,
        service: FederatedUddiService,
        endpoint: ReplicaEndpoint,
        load: ShardLoadModel | None = None,
    ) -> None:
        self.node = node
        self.stack = stack
        self.server = server
        self.directory = directory
        self.service = service
        self.endpoint = endpoint
        self.load = load
        self.agent: ReplicaSyncAgent | None = None


class FederationView:
    """Direct (in-process, non-wire) access to the federation, shaped like
    a :class:`VsrDirectory` — what tests, oracles and the fault injector
    expect to find at ``mm.uddi.directory``.  Keyed operations go to the
    ring owner's primary; sweeps merge across shard primaries."""

    #: The facade holds no WAL of its own (individual replicas may).
    journal: Any = None

    def __init__(self, federation: "VsrFederation") -> None:
        self._federation = federation

    def _primary(self, key: str) -> ReplicaDirectory:
        shard = self._federation.ring.owner(key)
        return self._federation.replicas[shard][0].directory

    def _primaries(self) -> list[ReplicaDirectory]:
        return [group[0].directory for group in self._federation.replicas]

    # -- VsrDirectory surface -------------------------------------------------

    def publish(self, document: WsdlDocument) -> None:
        self._primary(document.service).publish(document)

    def withdraw(self, service: str) -> bool:
        return self._primary(service).withdraw(service)

    def find_by_name(self, service: str) -> WsdlDocument:
        return self._primary(service).find_by_name(service)

    def find(self, context_filter: dict[str, str] | None = None) -> list[WsdlDocument]:
        merged: dict[str, WsdlDocument] = {}
        for directory in self._primaries():
            for document in directory.find(context_filter):
                merged[document.service] = document
        return sorted(merged.values(), key=lambda document: document.service)

    def register_gateway(self, island: str, location: str) -> None:
        self._primary(gateway_ring_key(island)).register_gateway(island, location)

    def unregister_gateway(self, island: str) -> bool:
        return self._primary(gateway_ring_key(island)).unregister_gateway(island)

    def gateways(self) -> dict[str, str]:
        merged: dict[str, str] = {}
        for directory in self._primaries():
            merged.update(directory.gateways())
        return merged

    def service_names(self) -> list[str]:
        names: set[str] = set()
        for directory in self._primaries():
            names.update(directory.service_names())
        return sorted(names)

    @property
    def service_count(self) -> int:
        return sum(directory.service_count for directory in self._primaries())

    @property
    def publishes(self) -> int:
        return sum(directory.publishes for directory in self._primaries())

    @property
    def queries(self) -> int:
        return sum(directory.queries for directory in self._primaries())

    def on_change(self, listener: Callable[[str, WsdlDocument | None], None]) -> None:
        for directory in self._primaries():
            directory.on_change(listener)


class _FederationUddi:
    """Stands in for :class:`UddiSoapService` on ``MetaMiddleware.uddi``."""

    def __init__(self, view: FederationView) -> None:
        self.directory = view


class VsrFederation:
    """Builds and owns the whole directory plane: N×R replica nodes on the
    backbone, their SOAP servers and facades, and (R>1) the anti-entropy
    agents.  The trivial 1×1 plane builds a single node named
    ``uddi-directory`` — the legacy shape, byte-identical on the wire."""

    def __init__(
        self,
        network: Network,
        backbone: Segment,
        config: FederationConfig,
        port: int = 8080,
        obs: Any = None,
        load_model_factory: Callable[[Simulator], ShardLoadModel] | None = None,
    ) -> None:
        self.network = network
        self.sim: Simulator = network.sim
        self.backbone = backbone
        self.config = config
        self.port = port
        self.obs = obs if obs is not None else NOOP_OBS
        self.ring = HashRing(config.shards, config.virtual_nodes, config.ring_seed)
        self.replicas: list[list[ShardReplica]] = []
        for shard in range(config.shards):
            group: list[ShardReplica] = []
            for index in range(config.replicas):
                name = (
                    "uddi-directory" if config.trivial else f"vsr-s{shard}r{index}"
                )
                node = network.create_node(name)
                network.attach(node, backbone)
                stack = TransportStack(node, network)
                server = SoapServer(stack, port).observe(self.obs, name)
                directory = ReplicaDirectory(shard, name)
                load = load_model_factory(self.sim) if load_model_factory else None
                service = FederatedUddiService(server, directory, self.sim, load=load)
                endpoint = ReplicaEndpoint(name, stack.local_address(backbone), port)
                group.append(
                    ShardReplica(node, stack, server, directory, service, endpoint, load)
                )
            self.replicas.append(group)
        self.agents: list[ReplicaSyncAgent] = []
        if config.replicas > 1:
            for group in self.replicas:
                for index, replica in enumerate(group):
                    peers = [
                        sibling.endpoint
                        for position, sibling in enumerate(group)
                        if position != index
                    ]
                    agent = ReplicaSyncAgent(
                        self.sim,
                        replica.stack,
                        replica.directory,
                        peers,
                        config,
                        obs=self.obs,
                        label=replica.endpoint.name,
                    )
                    replica.agent = agent
                    self.agents.append(agent)
        self.view = FederationView(self)
        self.uddi = _FederationUddi(self.view)
        self._gauges: dict[str, Any] = {}
        self._started = False

    # -- wiring ---------------------------------------------------------------

    def routing(self) -> FederationRouting:
        """The per-client routing handle (ring + endpoints, primary first)."""
        return FederationRouting(
            self.ring,
            [[replica.endpoint for replica in group] for group in self.replicas],
            self.config,
        )

    @property
    def primary_endpoint(self) -> ReplicaEndpoint:
        return self.replicas[0][0].endpoint

    def start_sync(self) -> None:
        """Start every anti-entropy agent (idempotent)."""
        if self._started:
            return
        self._started = True
        for agent in self.agents:
            agent.start()

    def stop(self) -> None:
        self._started = False
        for agent in self.agents:
            agent.stop()

    def close(self) -> None:
        self.stop()
        for group in self.replicas:
            for replica in group:
                replica.server.close()

    # -- inspection -----------------------------------------------------------

    def shard_converged(self, shard: int) -> bool:
        """True when every *live* replica of ``shard`` holds the same
        version vector (dead nodes don't block the verdict — they catch
        up when they return)."""
        vectors = [
            replica.directory.version_vector()
            for replica in self.replicas[shard]
            if replica.node.alive
        ]
        return all(vector == vectors[0] for vector in vectors[1:])

    def converged(self) -> bool:
        return all(self.shard_converged(shard) for shard in range(self.config.shards))

    def ring_dump(self) -> dict:
        dump = self.ring.dump()
        dump["endpoints"] = [
            [replica.endpoint.name for replica in group] for group in self.replicas
        ]
        return dump

    def stats(self) -> dict:
        per_shard = []
        for shard, group in enumerate(self.replicas):
            entries = []
            for replica in group:
                entry: dict[str, Any] = {
                    "name": replica.endpoint.name,
                    "alive": replica.node.alive,
                    "keys_owned": replica.directory.keys_owned(),
                    "services": replica.directory.service_count,
                    "gateways": len(replica.directory.gateways()),
                    "lamport": replica.directory.lamport,
                }
                if replica.agent is not None:
                    entry.update(replica.agent.stats())
                entries.append(entry)
            per_shard.append(
                {
                    "shard": shard,
                    "converged": self.shard_converged(shard),
                    "replicas": entries,
                }
            )
        return {
            "shards": self.config.shards,
            "replicas": self.config.replicas,
            "ring_points": len(self.ring._points),
            "converged": self.converged(),
            "per_shard": per_shard,
        }

    # -- telemetry gauges (PR 8 plane) ----------------------------------------

    def observe(self, obs: Any) -> "VsrFederation":
        """Register shard/replica gauges on ``obs.metrics`` under
        ``vsr.fed.*``; call :meth:`refresh_gauges` to (re)populate."""
        metrics = obs.metrics
        self._gauges = {
            "ring_points": metrics.gauge("vsr.fed.ring_points"),
            "shards": metrics.gauge("vsr.fed.shards"),
        }
        for group in self.replicas:
            for replica in group:
                name = replica.endpoint.name
                self._gauges[f"{name}.keys_owned"] = metrics.gauge(
                    f"vsr.fed.{name}.keys_owned"
                )
                if replica.agent is not None:
                    for field in ("digest_rounds", "deltas_pulled", "convergence_lag"):
                        self._gauges[f"{name}.{field}"] = metrics.gauge(
                            f"vsr.fed.{name}.{field}"
                        )
        self.refresh_gauges()
        return self

    def refresh_gauges(self) -> None:
        if not self._gauges:
            return
        self._gauges["ring_points"].set(len(self.ring._points))
        self._gauges["shards"].set(self.config.shards)
        for group in self.replicas:
            for replica in group:
                name = replica.endpoint.name
                self._gauges[f"{name}.keys_owned"].set(replica.directory.keys_owned())
                agent = replica.agent
                if agent is not None:
                    stats = agent.stats()
                    for field in ("digest_rounds", "deltas_pulled", "convergence_lag"):
                        self._gauges[f"{name}.{field}"].set(stats[field])
