"""Resilience layer for cross-island calls.

The paper demonstrates transparent reachability on a healthy network; this
module keeps the bridge honest under partial failure (the concern SINk and
the service-composition surveys raise for heterogeneous-middleware
gateways).  Three cooperating pieces, all policy-driven and deterministic:

- :class:`CallPolicy` — per-island knobs: a virtual-time *deadline* per
  remote attempt, bounded *retries* with exponential backoff (jitter drawn
  from a seeded RNG so chaotic runs replay bit-for-bit), and circuit-breaker
  parameters.
- :class:`CircuitBreaker` — one per remote island, the classic three-state
  machine: CLOSED counts consecutive connectivity failures; at the threshold
  it OPENs and calls fail fast; after ``breaker_reset_timeout`` it goes
  HALF_OPEN and admits a bounded number of probes that decide between
  re-closing and re-opening.
- :class:`ResilientExecutor` — runs one attempt factory under the policy:
  deadline race, retry loop, breaker accounting, and counters the
  benchmarks read.

A *connectivity* failure (timeout, transport error, unreachable gateway)
trips the breaker; a well-formed remote fault (:class:`RemoteServiceError`)
proves the island is alive and *resets* it — an application error is not an
outage.

:class:`HeartbeatMonitor` is the proactive side: it pings every registered
gateway's control endpoint on a fixed period and keeps a health table the
gateway exposes in its stats.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    RemoteServiceError,
    ServiceNotFoundError,
)
from repro.net.simkernel import Event, SimFuture, Simulator
from repro.obs import NOOP_OBS, NULL_SPAN


@dataclass(frozen=True)
class CallPolicy:
    """Per-island resilience knobs for remote invocations.

    The defaults are deliberately conservative: a 30 s virtual deadline
    (matching the transport's connect timeout), no retries, and a breaker
    that only opens after five straight connectivity failures — healthy
    topologies behave exactly as before this layer existed.
    """

    #: Virtual seconds one remote attempt may take; 0 disables the deadline.
    deadline: float = 30.0
    #: Extra attempts after the first failed one (0 = single attempt).
    max_retries: int = 0
    #: First backoff delay in virtual seconds.
    backoff_base: float = 0.2
    #: Multiplier applied to the delay per further retry.
    backoff_multiplier: float = 2.0
    #: Jitter as a fraction of the delay, drawn from the policy's seeded RNG.
    backoff_jitter: float = 0.1
    #: Consecutive connectivity failures that open the breaker; 0 disables it.
    breaker_threshold: int = 5
    #: Virtual seconds an OPEN breaker waits before going HALF_OPEN.
    breaker_reset_timeout: float = 10.0
    #: Probe attempts admitted while HALF_OPEN before re-deciding.
    breaker_half_open_probes: int = 1
    #: Gateway heartbeat period; 0 disables heartbeating.
    heartbeat_interval: float = 0.0
    #: Deadline for one heartbeat ping.
    heartbeat_deadline: float = 5.0
    #: Missed heartbeats before an island is marked dead.
    heartbeat_failure_threshold: int = 2
    #: Deadline for VSR directory lookups; 0 falls back to transport timeouts.
    directory_deadline: float = 0.0
    #: Seed for the backoff-jitter RNG (determinism across runs).
    seed: int = 0


def is_connectivity_failure(exc: BaseException) -> bool:
    """True when a failed attempt says nothing about the *service* but a lot
    about the *path*: the breaker and retry loop act only on these."""
    if isinstance(exc, (RemoteServiceError, ServiceNotFoundError, CircuitOpenError)):
        return False
    return True


def with_deadline(
    sim: Simulator,
    future: SimFuture,
    deadline: float,
    make_exc: Callable[[], BaseException],
) -> SimFuture:
    """Race ``future`` against a virtual-time deadline.

    Resolves like ``future`` if it settles in time, otherwise fails with
    ``make_exc()``; a late resolution of the original future is ignored.
    Returns ``future`` untouched when ``deadline`` is 0 (disabled).
    """
    if not deadline:
        return future
    result: SimFuture = SimFuture()
    timer = sim.schedule(deadline, lambda: result.set_exception(make_exc())
                         if not result.done() else None)

    def on_done(done: SimFuture) -> None:
        if result.done():
            return
        timer.cancel()
        exc = done.exception()
        if exc is not None:
            result.set_exception(exc)
        else:
            result.set_result(done.result())

    future.add_done_callback(on_done)
    return result


class CircuitBreaker:
    """Per-remote-island breaker with half-open probing."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(self, sim: Simulator, policy: CallPolicy, island: str) -> None:
        self.sim = sim
        self.policy = policy
        self.island = island
        self.state = CircuitBreaker.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self.opens = 0
        self.fast_failures = 0
        self.probes = 0
        #: Invoked with the island name each time the breaker opens —
        #: lets interested layers (pooled connections) react to outages.
        self.on_open: Callable[[str], None] | None = None
        #: Invoked as ``on_transition(island, old_state, new_state)`` on
        #: every state change — the observability layer counts these.
        self.on_transition: Callable[[str, str, str], None] | None = None

    def _set_state(self, new_state: str) -> None:
        old_state, self.state = self.state, new_state
        if old_state != new_state and self.on_transition is not None:
            self.on_transition(self.island, old_state, new_state)

    # -- admission ----------------------------------------------------------

    def admit(self) -> None:
        """Raise :class:`CircuitOpenError` unless a call may proceed.

        An OPEN breaker whose reset timeout elapsed transitions to
        HALF_OPEN here, admitting up to ``breaker_half_open_probes``
        concurrent probes.
        """
        if self.policy.breaker_threshold <= 0 or self.state == CircuitBreaker.CLOSED:
            return
        retry_at = self._opened_at + self.policy.breaker_reset_timeout
        if self.state == CircuitBreaker.OPEN:
            if self.sim.now < retry_at:
                self.fast_failures += 1
                raise CircuitOpenError(self.island, retry_at)
            self._set_state(CircuitBreaker.HALF_OPEN)
            self._probes_in_flight = 0
        if self._probes_in_flight >= self.policy.breaker_half_open_probes:
            self.fast_failures += 1
            raise CircuitOpenError(self.island, retry_at)
        self._probes_in_flight += 1
        self.probes += 1

    # -- outcome accounting --------------------------------------------------

    def record_success(self) -> None:
        self._consecutive_failures = 0
        if self.state != CircuitBreaker.CLOSED:
            self._set_state(CircuitBreaker.CLOSED)
            self._probes_in_flight = 0

    def record_failure(self) -> None:
        if self.policy.breaker_threshold <= 0:
            return
        if self.state == CircuitBreaker.HALF_OPEN:
            # A failed probe re-opens immediately and restarts the clock.
            self._open()
            return
        self._consecutive_failures += 1
        if (
            self.state == CircuitBreaker.CLOSED
            and self._consecutive_failures >= self.policy.breaker_threshold
        ):
            self._open()

    def _open(self) -> None:
        self._set_state(CircuitBreaker.OPEN)
        self._opened_at = self.sim.now
        self._consecutive_failures = 0
        self._probes_in_flight = 0
        self.opens += 1
        if self.on_open is not None:
            self.on_open(self.island)

    def snapshot(self) -> dict[str, Any]:
        return {
            "state": self.state,
            "opens": self.opens,
            "fast_failures": self.fast_failures,
            "probes": self.probes,
        }


class ResilientExecutor:
    """Runs remote attempts under a :class:`CallPolicy` for one gateway."""

    def __init__(
        self,
        sim: Simulator,
        policy: CallPolicy,
        obs: Any = None,
        label: str = "",
    ) -> None:
        self.sim = sim
        self.policy = policy
        self.obs = obs if obs is not None else NOOP_OBS
        #: Metric namespace, normally the owning gateway's island name.
        self.label = label
        self._rng = random.Random(policy.seed)
        self._breakers: dict[str, CircuitBreaker] = {}
        self._open_listeners: list[Callable[[str], None]] = []
        self._transition_listeners: list[Callable[[str, str, str], None]] = []
        self.attempts = 0
        self.timeouts = 0
        self.retries = 0
        self.failures = 0
        self.successes = 0
        metrics = self.obs.metrics
        self._m_attempts = metrics.counter(f"resilience.{label}.attempts")
        self._m_timeouts = metrics.counter(f"resilience.{label}.timeouts")
        self._m_retries = metrics.counter(f"resilience.{label}.retries")
        self._m_failures = metrics.counter(f"resilience.{label}.failures")
        self._m_successes = metrics.counter(f"resilience.{label}.successes")

    def add_open_listener(self, listener: Callable[[str], None]) -> None:
        """``listener(island)`` fires whenever any island's breaker opens.
        The gateway uses this to evict pooled interchange connections to
        an island that just proved unreachable."""
        self._open_listeners.append(listener)
        for breaker in self._breakers.values():
            breaker.on_open = self._notify_open

    def add_transition_listener(
        self, listener: Callable[[str, str, str], None]
    ) -> None:
        """``listener(island, old_state, new_state)`` fires on every breaker
        state change (open, half-open probe admission, re-close)."""
        self._transition_listeners.append(listener)

    def _notify_open(self, island: str) -> None:
        for listener in list(self._open_listeners):
            listener(island)

    def _notify_transition(self, island: str, old: str, new: str) -> None:
        # Transitions are rare (an outage, not a call), so the counter
        # lookup can be lazy instead of cached per island.
        self.obs.metrics.counter(
            f"resilience.{self.label}.breaker.{island}.to_{new.replace('-', '_')}"
        ).inc()
        for listener in list(self._transition_listeners):
            listener(island, old, new)

    def breaker_state(self, island: str) -> str | None:
        """Current breaker state for ``island`` without creating a breaker
        (None until a call to that island ever ran) — read by the
        telemetry collector's health scoring."""
        breaker = self._breakers.get(island)
        return breaker.state if breaker is not None else None

    def breaker_for(self, island: str) -> CircuitBreaker:
        breaker = self._breakers.get(island)
        if breaker is None:
            breaker = CircuitBreaker(self.sim, self.policy, island)
            if self._open_listeners:
                breaker.on_open = self._notify_open
            breaker.on_transition = self._notify_transition
            self._breakers[island] = breaker
        return breaker

    def backoff_delay(self, retry_index: int) -> float:
        """Deterministic exponential backoff with seeded jitter."""
        delay = self.policy.backoff_base * (
            self.policy.backoff_multiplier ** retry_index
        )
        if self.policy.backoff_jitter:
            delay += delay * self.policy.backoff_jitter * self._rng.random()
        return delay

    def execute(
        self,
        island: str,
        attempt_factory: Callable[[], SimFuture],
        span: Any = NULL_SPAN,
    ) -> SimFuture:
        """Run ``attempt_factory`` under deadline/retry/breaker policy.

        ``attempt_factory`` is invoked once per attempt and must return a
        fresh :class:`SimFuture`.  The returned future resolves with the
        first successful attempt's value, or with the last failure once the
        policy is exhausted (fast :class:`CircuitOpenError` when the
        island's breaker is open).

        ``span``, when recording, receives annotations for retries,
        timeouts and breaker fast-failures — the per-call trace of what the
        policy did.
        """
        result: SimFuture = SimFuture()
        breaker = self.breaker_for(island)
        state = {"retry": 0}

        def run_attempt() -> None:
            try:
                breaker.admit()
            except CircuitOpenError as exc:
                if span.recording:
                    span.annotate(f"breaker open for {island}; failing fast")
                result.set_exception(exc)
                return
            self.attempts += 1
            self._m_attempts.inc()
            try:
                attempt = attempt_factory()
            except Exception as exc:
                after_failure(exc)
                return
            guarded = with_deadline(
                self.sim,
                attempt,
                self.policy.deadline,
                lambda: DeadlineExceededError(
                    f"remote call to island {island!r} exceeded "
                    f"{self.policy.deadline}s deadline"
                ),
            )

            def on_done(done: SimFuture) -> None:
                exc = done.exception()
                if exc is None:
                    self.successes += 1
                    self._m_successes.inc()
                    breaker.record_success()
                    result.set_result(done.result())
                    return
                if isinstance(exc, DeadlineExceededError):
                    self.timeouts += 1
                    self._m_timeouts.inc()
                    if span.recording:
                        span.annotate(
                            f"attempt {state['retry'] + 1} to {island} timed out"
                        )
                after_failure(exc)

            guarded.add_done_callback(on_done)

        def after_failure(exc: BaseException) -> None:
            if is_connectivity_failure(exc):
                breaker.record_failure()
            elif isinstance(exc, RemoteServiceError):
                # The island answered: connectivity is fine.
                breaker.record_success()
            if (
                not is_connectivity_failure(exc)
                or state["retry"] >= self.policy.max_retries
            ):
                self.failures += 1
                self._m_failures.inc()
                result.set_exception(exc)
                return
            delay = self.backoff_delay(state["retry"])
            state["retry"] += 1
            self.retries += 1
            self._m_retries.inc()
            if span.recording:
                span.annotate(
                    f"retry {state['retry']}/{self.policy.max_retries} to "
                    f"{island} after {delay:.3f}s backoff"
                )
            self.sim.schedule(delay, run_attempt)

        run_attempt()
        return result

    def stats(self) -> dict[str, Any]:
        return {
            "attempts": self.attempts,
            "successes": self.successes,
            "failures": self.failures,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "breakers": {
                island: breaker.snapshot()
                for island, breaker in sorted(self._breakers.items())
            },
        }


@dataclass
class GatewayHealth:
    """Liveness record for one remote gateway, kept by the heartbeat."""

    island: str
    alive: bool = True
    last_seen: float = 0.0
    consecutive_failures: int = 0
    pings: int = 0
    failures: int = 0

    def snapshot(self) -> dict[str, Any]:
        return {
            "alive": self.alive,
            "last_seen": self.last_seen,
            "pings": self.pings,
            "failures": self.failures,
        }


class HeartbeatMonitor:
    """Periodic liveness probing of every other registered gateway.

    Each tick lists the VSR's gateway registry (served from the client's
    cache when the directory itself is down) and pings each foreign control
    endpoint through the gateway's own interchange protocol.  An island is
    marked dead after ``heartbeat_failure_threshold`` straight misses and
    resurrected by the first successful ping.
    """

    def __init__(self, vsg: Any) -> None:
        self.vsg = vsg
        self.sim: Simulator = vsg.sim
        self.policy: CallPolicy = vsg.policy
        self.health: dict[str, GatewayHealth] = {}
        self.ticks = 0
        self._timer: Event | None = None
        self._running = False
        self._listeners: list[Callable[[str, bool, GatewayHealth], None]] = []

    def add_listener(
        self, listener: Callable[[str, bool, GatewayHealth], None]
    ) -> None:
        """``listener(island, alive, record)`` on every liveness *flip*
        (alive→dead after the failure threshold, dead→alive on the first
        successful ping) — not on every ping.  The telemetry collector and
        flight recorder subscribe here."""
        self._listeners.append(listener)

    def _notify(self, island: str, alive: bool, record: GatewayHealth) -> None:
        for listener in list(self._listeners):
            listener(island, alive, record)

    def start(self) -> None:
        if self._running or self.policy.heartbeat_interval <= 0:
            return
        self._running = True
        self._timer = self.sim.schedule(self.policy.heartbeat_interval, self._tick)

    def stop(self) -> None:
        self._running = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _tick(self) -> None:
        if not self._running:
            return
        self.ticks += 1

        def on_gateways(future: SimFuture) -> None:
            if future.exception() is None:
                gateways: dict[str, str] = future.result()
                for island, location in sorted(gateways.items()):
                    if island != self.vsg.island:
                        self._ping(island, location)
            self._reschedule()

        self.vsg.vsr.list_gateways().add_done_callback(on_gateways)

    def _reschedule(self) -> None:
        if self._running:
            self._timer = self.sim.schedule(self.policy.heartbeat_interval, self._tick)

    def _ping(self, island: str, location: str) -> None:
        record = self.health.setdefault(island, GatewayHealth(island=island))
        record.pings += 1
        try:
            raw = self.vsg.protocol.ping_remote(location)
        except Exception:
            raw = SimFuture.failed(
                DeadlineExceededError(f"heartbeat to {island!r} unsendable")
            )
        guarded = with_deadline(
            self.sim,
            raw,
            self.policy.heartbeat_deadline,
            lambda: DeadlineExceededError(
                f"heartbeat to island {island!r} exceeded "
                f"{self.policy.heartbeat_deadline}s"
            ),
        )

        def on_done(done: SimFuture) -> None:
            if done.exception() is None:
                was_alive = record.alive
                record.alive = True
                record.last_seen = self.sim.now
                record.consecutive_failures = 0
                if not was_alive:
                    self._notify(island, True, record)
            else:
                record.failures += 1
                record.consecutive_failures += 1
                if (
                    record.consecutive_failures
                    >= self.policy.heartbeat_failure_threshold
                    and record.alive
                ):
                    record.alive = False
                    self._notify(island, False, record)
                # A failed probe also condemns any pooled keep-alive
                # connection to that endpoint (getattr: vsg is duck-typed
                # and bare test doubles may lack the protocol hook).
                invalidate = getattr(self.vsg.protocol, "invalidate_location", None)
                if invalidate is not None:
                    invalidate(location)

        guarded.add_done_callback(on_done)

    def snapshot(self) -> dict[str, dict[str, Any]]:
        return {
            island: record.snapshot()
            for island, record in sorted(self.health.items())
        }
