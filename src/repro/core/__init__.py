"""The meta-middleware framework — the paper's contribution (Section 3).

Three components per middleware island, exactly as in Figure 1:

- :class:`~repro.core.vsg.VirtualServiceGateway` (VSG) connects the island
  to every other island over a pluggable interchange protocol
  (:mod:`repro.core.gateway_soap` is the prototype's SOAP binding;
  :mod:`repro.core.gateway_sip` the SIP alternative the paper discusses).
- :class:`~repro.core.pcm.ProtocolConversionManager` (PCM) converts between
  the local middleware and the VSG: its *Client Proxy* side exports local
  services as neutral (VSG) services, its *Server Proxy* side materialises
  remote services as native local ones (Figure 2).
- :class:`~repro.core.vsr.VsrDirectory` (VSR) records service locations,
  interfaces and contexts — WSDL documents in a UDDI-like directory, as in
  the prototype (Section 4.1).

:class:`~repro.core.framework.MetaMiddleware` assembles the pieces.
"""

from repro.core.activation import ActivatableService
from repro.core.calls import ServiceCall, ServiceFault, ServiceResult
from repro.core.framework import Island, MetaMiddleware
from repro.core.gateway_soap import SoapGatewayProtocol
from repro.core.streams import StreamMetaMiddleware, StreamSink
from repro.core.interface import (
    Operation,
    Parameter,
    ServiceInterface,
    ValueType,
)
from repro.core.pcm import ProtocolConversionManager
from repro.core.proxygen import ProxyFactory, generate_proxy_class
from repro.core.resilience import (
    CallPolicy,
    CircuitBreaker,
    HeartbeatMonitor,
    ResilientExecutor,
)
from repro.core.vsg import GatewayProtocol, VirtualServiceGateway
from repro.core.vsr import UddiSoapService, VsrClient, VsrDirectory

__all__ = [
    "ActivatableService",
    "CallPolicy",
    "CircuitBreaker",
    "GatewayProtocol",
    "HeartbeatMonitor",
    "ResilientExecutor",
    "Island",
    "MetaMiddleware",
    "Operation",
    "Parameter",
    "ProtocolConversionManager",
    "ProxyFactory",
    "ServiceCall",
    "ServiceFault",
    "ServiceInterface",
    "ServiceResult",
    "SoapGatewayProtocol",
    "StreamMetaMiddleware",
    "StreamSink",
    "UddiSoapService",
    "ValueType",
    "VirtualServiceGateway",
    "VsrClient",
    "VsrDirectory",
    "generate_proxy_class",
]
