"""SIP binding of the VSG interchange protocol.

The paper (Section 5) weighs SIP against HTTP for exactly this job: "SIP
supports asynchronous calls and call forwarding which is not supported by
HTTP ... SIP may be more suitable than other protocols such as HTTP for
service integration.  But the problem is few popularization of SIP."

This binding keeps the *payload* identical to the SOAP binding (SOAP
envelopes inside SIP MESSAGE bodies) so experiments C3/A2 isolate the
transport difference: datagram transactions instead of TCP+HTTP, and true
push eventing (NOTIFY) instead of polling.
"""

from __future__ import annotations

from typing import Any

from repro.errors import GatewayError, SipError, SoapError
from repro.net.simkernel import SimFuture
from repro.net.transport import TransportStack
from repro.soap import envelope
from repro.sip.messages import make_uri, parse_uri
from repro.sip.transaction import DEFAULT_SIP_PORT
from repro.sip.ua import SipUserAgent
from repro.core.calls import ServiceCall, ServiceFault
from repro.core.vsg import GatewayProtocol, VirtualServiceGateway

CONTROL_USER = "_gateway"


class SipGatewayProtocol(GatewayProtocol):
    """SIP/UDP gateway binding with native event push."""

    name = "sip"
    supports_push = True

    def __init__(self, stack: TransportStack, port: int = DEFAULT_SIP_PORT) -> None:
        self.stack = stack
        self.port = port
        self.ua: SipUserAgent | None = None
        self.vsg: VirtualServiceGateway | None = None

    # -- lifecycle ------------------------------------------------------------

    def start(self, vsg: VirtualServiceGateway) -> None:
        self.vsg = vsg
        self.ua = SipUserAgent(self.stack, self.port)
        self.ua.on_message(self._on_message)
        self.ua.on_event("vsg", self._on_pushed_event)

    def stop(self) -> None:
        if self.ua is not None:
            self.ua.close()
            self.ua = None

    # -- locations ------------------------------------------------------------

    def location(self, service: str) -> str:
        return make_uri(service, self.stack.local_address(), self.port)

    def control_location(self) -> str:
        return make_uri(CONTROL_USER, self.stack.local_address(), self.port)

    # -- calls ------------------------------------------------------------

    def call_remote(self, location: str, call: ServiceCall) -> SimFuture:
        if self.ua is None:
            raise GatewayError("SIP gateway protocol not started")
        body = envelope.build_request(call.operation, call.args)
        raw = self.ua.send_message(location, body, headers={"X-Service": call.service})
        result: SimFuture = SimFuture()

        def translate(future: SimFuture) -> None:
            exc = future.exception()
            if exc is not None:
                result.set_exception(exc)
                return
            response = future.result()
            if response.status == 408:
                result.set_exception(GatewayError(f"SIP timeout calling {location}"))
                return
            try:
                message = envelope.parse_envelope(response.body)
            except SoapError as parse_exc:
                result.set_exception(parse_exc)
                return
            if message.kind == "fault":
                fault = ServiceFault(message.faultcode, message.faultstring)
                result.set_exception(fault.to_exception())
            else:
                result.set_result(message.value)

        raw.add_done_callback(translate)
        return result

    def _on_message(self, user: str, request) -> SimFuture:
        """Inbound MESSAGE: a neutral call for a locally exported service
        (the URI user part names the service)."""
        pending: SimFuture = SimFuture()
        try:
            parsed = envelope.parse_envelope(request.body)
        except SoapError as exc:
            pending.set_result((400, envelope.build_fault("SOAP-ENV:Client", str(exc))))
            return pending
        if user == CONTROL_USER:
            pending.set_result(self._control(parsed))
            return pending
        call = ServiceCall(service=user, operation=parsed.operation, args=parsed.args)

        def on_done(future: SimFuture) -> None:
            exc = future.exception()
            if exc is not None:
                body = envelope.build_fault("SOAP-ENV:Server", str(exc))
                pending.set_result((500, body))
            else:
                pending.set_result(
                    (200, envelope.build_response(parsed.operation, future.result()))
                )

        self.vsg.dispatch_local(call).add_done_callback(on_done)
        return pending

    def _control(self, parsed) -> tuple[int, bytes]:
        """Gateway-level control operations carried as MESSAGEs."""
        if parsed.operation == "subscribe" and len(parsed.args) >= 3:
            island, topic, contact = (str(a) for a in parsed.args[:3])
            self.vsg.events.handle_subscribe(island, topic, contact)
            return (200, envelope.build_response("subscribe", True))
        if parsed.operation == "ping":
            return (200, envelope.build_response("ping", self.vsg.island))
        return (
            404,
            envelope.build_fault(
                "SOAP-ENV:Client", f"unknown control operation {parsed.operation!r}"
            ),
        )

    # -- events: native push ------------------------------------------------------

    def subscribe_remote(self, control_location: str, island: str, topic: str) -> SimFuture:
        """SUBSCRIBE at the remote gateway; the topic and our identity ride
        in one MESSAGE to the control user (subscription bookkeeping), and
        NOTIFYs come back to our UA."""
        if self.ua is None:
            raise GatewayError("SIP gateway protocol not started")
        body = envelope.build_request(
            "subscribe", [island, topic, self.control_location()]
        )
        raw = self.ua.send_message(control_location, body)
        result: SimFuture = SimFuture()

        def check(future: SimFuture) -> None:
            exc = future.exception()
            if exc is not None:
                result.set_exception(exc)
            elif not future.result().ok:
                result.set_exception(
                    GatewayError(f"subscribe rejected: {future.result().status}")
                )
            else:
                result.set_result(True)

        raw.add_done_callback(check)
        return result

    def ping_remote(self, control_location: str) -> SimFuture:
        if self.ua is None:
            raise GatewayError("SIP gateway protocol not started")
        raw = self.ua.send_message(control_location, envelope.build_request("ping", []))
        result: SimFuture = SimFuture()

        def check(future: SimFuture) -> None:
            exc = future.exception()
            if exc is not None:
                result.set_exception(exc)
            elif not future.result().ok:
                result.set_exception(
                    GatewayError(f"ping rejected: {future.result().status}")
                )
            else:
                result.set_result(envelope.parse_envelope(future.result().body).value)

        raw.add_done_callback(check)
        return result

    def push_event(self, control_location: str, event: dict[str, Any]) -> None:
        if self.ua is None:
            raise GatewayError("SIP gateway protocol not started")
        _, address, port = parse_uri(control_location)
        body = envelope.build_request("_event", [event])
        self.ua._send_notify(address, port, "vsg", body)

    def poll_events(self, control_location: str, island: str) -> SimFuture:
        raise GatewayError("the SIP binding pushes events; polling is never used")

    def _on_pushed_event(self, event_name: str, body: bytes, src) -> None:
        if self.vsg is None:
            return
        try:
            parsed = envelope.parse_envelope(body)
        except SoapError:
            return
        if parsed.kind == "request" and parsed.operation == "_event" and parsed.args:
            event = parsed.args[0]
            if isinstance(event, dict):
                self.vsg.events.handle_push(event)
