"""Value validation and coercion against the neutral type system.

PCMs run every inbound and outbound value through these checks, so a type
error surfaces as a clear :class:`repro.errors.ConversionError` at the
conversion boundary instead of a mysterious failure deep inside a
middleware codec.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ConversionError
from repro.core.interface import Operation, ValueType

#: Python types acceptable for each neutral type (before coercion).
_ACCEPTABLE: dict[ValueType, tuple[type, ...]] = {
    ValueType.INT: (int,),
    ValueType.FLOAT: (float, int),
    ValueType.STRING: (str,),
    ValueType.BOOL: (bool,),
    ValueType.BYTES: (bytes, bytearray),
    ValueType.ANY: (type(None), bool, int, float, str, bytes, bytearray, list, tuple, dict),
}


def check_value(value: Any, value_type: ValueType, where: str = "value") -> Any:
    """Validate and coerce ``value`` to ``value_type``.

    Coercions performed: int→float for FLOAT, bytearray→bytes, tuple→list.
    bool is *not* accepted for INT (it is technically an int subclass but
    almost always a caller bug).
    """
    if value_type == ValueType.VOID:
        if value is not None:
            raise ConversionError(f"{where}: void operation returned {type(value).__name__}")
        return None
    if value_type == ValueType.ANY:
        return _check_any(value, where)
    acceptable = _ACCEPTABLE[value_type]
    if isinstance(value, bool) and value_type in (ValueType.INT, ValueType.FLOAT):
        raise ConversionError(f"{where}: expected {value_type.name}, got bool")
    if not isinstance(value, acceptable):
        raise ConversionError(
            f"{where}: expected {value_type.name}, got {type(value).__name__}"
        )
    if value_type == ValueType.FLOAT:
        return float(value)
    if value_type == ValueType.BYTES:
        return bytes(value)
    return value


def _check_any(value: Any, where: str) -> Any:
    """Deep-validate an ANY value: everything nested must be marshallable."""
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return value
    if isinstance(value, bytearray):
        return bytes(value)
    if isinstance(value, (list, tuple)):
        return [_check_any(item, where) for item in value]
    if isinstance(value, dict):
        checked: dict[str, Any] = {}
        for key, member in value.items():
            if not isinstance(key, str):
                raise ConversionError(f"{where}: struct keys must be str, got {key!r}")
            checked[key] = _check_any(member, where)
        return checked
    raise ConversionError(f"{where}: {type(value).__name__} is not marshallable")


def check_args(operation: Operation, args: list[Any]) -> list[Any]:
    """Validate a positional argument list against an operation signature."""
    if len(args) != len(operation.params):
        raise ConversionError(
            f"{operation.name} expects {len(operation.params)} arguments, got {len(args)}"
        )
    return [
        check_value(value, param.type, where=f"{operation.name}.{param.name}")
        for value, param in zip(args, operation.params)
    ]


def check_result(operation: Operation, value: Any) -> Any:
    """Validate a return value against an operation signature."""
    return check_value(value, operation.returns, where=f"{operation.name} result")
