"""Dynamic service activation — the paper's other future-work item.

Section 4.2 reports the prototype could not do "dynamic service
activation" over SOAP/HTTP; Section 6 assigns it to the next
meta-middleware ("novel CORBA-based middleware which applies dynamic
service activation").  This module supplies that capability in a way that
composes with the existing framework: an :class:`ActivatableService` is a
drop-in VSG handler (same ``(operation, args)`` signature) wrapping a
*dormant* implementation that is instantiated on first use — the way a
CORBA POA servant activator, or a sleeping appliance woken by its PCM,
would behave.

Semantics:

- first call: pays ``activation_delay`` virtual seconds (device boot /
  servant instantiation), then runs; calls arriving *during* activation
  queue and run in order when it completes;
- subsequent calls: direct dispatch;
- optional ``idle_timeout``: with no calls for that long, the instance is
  discarded (``shutdown()`` is called if the implementation has one) and
  the service returns to dormancy.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.net.simkernel import Event, SimFuture, Simulator

DORMANT = "dormant"
ACTIVATING = "activating"
ACTIVE = "active"

#: A factory producing the live implementation object.
Factory = Callable[[], Any]


class ActivatableService:
    """A lazily activated service handler.

    Usable anywhere a VSG ``LocalHandler`` is: pass the instance itself as
    the handler to :meth:`VirtualServiceGateway.export_service` (or inside
    a PCM's discovery tuple).
    """

    def __init__(
        self,
        sim: Simulator,
        factory: Factory,
        activation_delay: float = 0.5,
        idle_timeout: float | None = None,
    ) -> None:
        self.sim = sim
        self.factory = factory
        self.activation_delay = activation_delay
        self.idle_timeout = idle_timeout
        self.state = DORMANT
        self._instance: Any = None
        self._waiting: list[tuple[str, list[Any], SimFuture]] = []
        self._idle_event: Event | None = None
        self.activations = 0
        self.deactivations = 0
        self.calls_served = 0

    # -- handler protocol ------------------------------------------------------

    def __call__(self, operation: str, args: list[Any]) -> SimFuture:
        if self.state == ACTIVE:
            return self._dispatch(operation, args)
        future: SimFuture = SimFuture()
        self._waiting.append((operation, list(args), future))
        if self.state == DORMANT:
            self.state = ACTIVATING
            self.sim.schedule(self.activation_delay, self._finish_activation)
        return future

    # -- lifecycle ------------------------------------------------------------

    def _finish_activation(self) -> None:
        self._instance = self.factory()
        self.state = ACTIVE
        self.activations += 1
        waiting, self._waiting = self._waiting, []
        for operation, args, future in waiting:
            inner = self._dispatch(operation, args)
            inner.add_done_callback(
                lambda done, f=future: f.set_exception(done.exception())
                if done.exception() is not None
                else f.set_result(done.result())
            )

    def _dispatch(self, operation: str, args: list[Any]) -> SimFuture:
        self.calls_served += 1
        self._touch()
        try:
            value = getattr(self._instance, operation)(*args)
        except Exception as exc:
            return SimFuture.failed(exc)
        if isinstance(value, SimFuture):
            return value
        return SimFuture.completed(value)

    def _touch(self) -> None:
        if self.idle_timeout is None:
            return
        if self._idle_event is not None:
            self._idle_event.cancel()
        self._idle_event = self.sim.schedule(self.idle_timeout, self._deactivate)

    def _deactivate(self) -> None:
        if self.state != ACTIVE:
            return
        shutdown = getattr(self._instance, "shutdown", None)
        if callable(shutdown):
            shutdown()
        self._instance = None
        self.state = DORMANT
        self.deactivations += 1

    # -- inspection ------------------------------------------------------------

    @property
    def instance(self) -> Any:
        """The live implementation, or None while dormant."""
        return self._instance
