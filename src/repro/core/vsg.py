"""The Virtual Service Gateway (paper Section 3.1).

One VSG per middleware island.  It owns the island's *exported* services
(registered by the PCM's Client Proxy side), routes outbound neutral calls
to the gateway holding the target service (located through the VSR), and
bridges events between islands.

The interchange protocol is a strategy (:class:`GatewayProtocol`): "How the
protocol should we chose is demands on the purpose of service integration"
— the prototype used SOAP; SIP is implemented as the alternative the paper
discusses.  Crucially for experiment C3, a protocol declares whether it can
*push* events: SOAP/HTTP cannot (subscribers must poll), SIP can.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import (
    CircuitOpenError,
    ConversionError,
    DeadlineExceededError,
    GatewayError,
    ServiceNotFoundError,
)
from repro.net.node import Node
from repro.net.simkernel import Event, SimFuture
from repro.net.transport import TransportStack
from repro.soap.wsdl import WsdlDocument
from repro.core import values
from repro.core.calls import ServiceCall
from repro.core.interface import ServiceInterface
from repro.core.resilience import (
    CallPolicy,
    HeartbeatMonitor,
    ResilientExecutor,
    is_connectivity_failure,
    with_deadline,
)
from repro.core.vsr import VsrClient
from repro.obs import NOOP_OBS, NULL_SPAN

#: A local service handler: ``handler(operation, args) -> value | SimFuture``.
LocalHandler = Callable[[str, list[Any]], Any]
#: An event callback: ``callback(topic, payload, source_island)``.
EventCallback = Callable[[str, Any, str], None]

DEFAULT_POLL_INTERVAL = 2.0


class GatewayProtocol:
    """Strategy interface for the VSG interchange protocol."""

    name = "abstract"
    #: True when the protocol can deliver events unsolicited (push).
    supports_push = False

    def start(self, vsg: "VirtualServiceGateway") -> None:
        raise NotImplementedError

    def stop(self) -> None:
        raise NotImplementedError

    def location(self, service: str) -> str:
        """Endpoint locator to publish in the service's WSDL."""
        raise NotImplementedError

    def control_location(self) -> str:
        """Locator of this gateway's control endpoint (events etc.)."""
        raise NotImplementedError

    def call_remote(self, location: str, call: ServiceCall) -> SimFuture:
        """Send a neutral call to a remote gateway; resolves to the value."""
        raise NotImplementedError

    def subscribe_remote(self, control_location: str, island: str, topic: str) -> SimFuture:
        """Tell a remote gateway that ``island`` wants ``topic`` events."""
        raise NotImplementedError

    def subscribe_remote_many(
        self, control_location: str, island: str, topics: list[str]
    ) -> SimFuture:
        """Announce several topic subscriptions to one remote gateway.

        Default: one :meth:`subscribe_remote` round trip per topic (the
        legacy wire behaviour); resolves to the number of topics accepted.
        Protocols may override with a genuinely batched control operation.
        """
        result: SimFuture = SimFuture()
        pending = {"count": len(topics), "ok": 0}
        if not topics:
            return SimFuture.completed(0)

        def one_done(done: SimFuture) -> None:
            if done.exception() is None:
                pending["ok"] += 1
            pending["count"] -= 1
            if pending["count"] == 0 and not result.done():
                result.set_result(pending["ok"])

        for topic in topics:
            try:
                future = self.subscribe_remote(control_location, island, topic)
            except Exception as exc:
                future = SimFuture.failed(exc)
            future.add_done_callback(one_done)
        return result

    def invalidate_location(self, location: str) -> None:
        """Drop any cached transport state for ``location`` (pooled
        keep-alive connections etc.).  Called by the resilience layer when
        a breaker opens or a call fails on connectivity, so a partitioned
        or crashed peer is never reached through a stale connection.
        Default: nothing cached, nothing to do."""

    def push_event(self, control_location: str, event: dict[str, Any]) -> None:
        """Push one event to a subscriber gateway (push protocols only)."""
        raise NotImplementedError

    def poll_events(self, control_location: str, island: str) -> SimFuture:
        """Fetch queued events for ``island`` (pull protocols only)."""
        raise NotImplementedError

    def ping_remote(self, control_location: str) -> SimFuture:
        """Liveness probe of a remote gateway's control endpoint; resolves
        to the remote island name (used by the heartbeat monitor)."""
        raise NotImplementedError


class EventRouter:
    """Cross-island event bridging living inside each VSG.

    Publisher side: remembers which islands subscribed to which topics.
    For push protocols events go out immediately; for pull protocols they
    queue until the subscriber's next poll — the mechanism behind the
    paper's "HTTP ... does not map well to asynchronous notification".
    """

    #: Poll-batch histogram bounds: events drained per fetch round trip.
    POLL_BATCH_BUCKETS = (0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0)

    def __init__(self, vsg: "VirtualServiceGateway") -> None:
        self.vsg = vsg
        self._local_subs: dict[str, list[EventCallback]] = {}
        self._remote_subs: dict[str, set[str]] = {}  # island -> topics
        self._remote_locations: dict[str, str] = {}  # island -> control location
        self._queues: dict[str, list[dict[str, Any]]] = {}
        self._poll_timers: dict[str, Event] = {}
        self._polling_stopped = False
        self._sequence = 0
        self.events_published = 0
        self.events_delivered = 0
        self.polls_performed = 0
        metrics = vsg.obs.metrics
        self._m_published = metrics.counter(f"events.{vsg.island}.published")
        self._m_delivered = metrics.counter(f"events.{vsg.island}.delivered")
        self._m_polls = metrics.counter(f"events.{vsg.island}.polls")
        self._m_poll_batch = metrics.histogram(
            f"events.{vsg.island}.poll_batch", buckets=self.POLL_BATCH_BUCKETS
        )
        #: Per-delivery records (topic, source island, published_at,
        #: delivered_at, latency) — read by the C3 latency experiment.
        self.delivery_log: list[dict[str, Any]] = []
        self.delivery_log_limit = 10000

    # -- publishing ------------------------------------------------------------

    def publish(self, topic: str, payload: Any) -> None:
        self._sequence += 1
        self.events_published += 1
        self._m_published.inc()
        event = {
            "topic": topic,
            "payload": payload,
            "island": self.vsg.island,
            "sequence": self._sequence,
            "published_at": self.vsg.sim.now,
        }
        self._deliver_local(event)
        for island, topics in self._remote_subs.items():
            if topic not in topics:
                continue
            if self.vsg.protocol.supports_push:
                location = self._remote_locations.get(island)
                if location:
                    try:
                        self.vsg.protocol.push_event(location, event)
                    except Exception:
                        pass  # unreachable or foreign-protocol subscriber
            else:
                self._queues.setdefault(island, []).append(event)

    def _deliver_local(self, event: dict[str, Any]) -> None:
        callbacks = self._local_subs.get(event["topic"], [])
        if callbacks and len(self.delivery_log) < self.delivery_log_limit:
            published_at = float(event.get("published_at", self.vsg.sim.now))
            self.delivery_log.append(
                {
                    "topic": event["topic"],
                    "island": event["island"],
                    "published_at": published_at,
                    "delivered_at": self.vsg.sim.now,
                    "latency": self.vsg.sim.now - published_at,
                }
            )
        for callback in callbacks:
            self.events_delivered += 1
            self._m_delivered.inc()
            callback(event["topic"], event["payload"], event["island"])

    # -- inbound control (called by the protocol's server side) --------------------

    def handle_subscribe(self, island: str, topic: str, control_location: str) -> bool:
        self._remote_subs.setdefault(island, set()).add(topic)
        if control_location:
            self._remote_locations[island] = control_location
        return True

    def handle_fetch(self, island: str) -> list[dict[str, Any]]:
        queued = self._queues.get(island, [])
        self._queues[island] = []
        return queued

    def handle_push(self, event: dict[str, Any]) -> bool:
        self._deliver_local(event)
        return True

    # -- subscribing ------------------------------------------------------------

    def subscribe(self, topic: str, callback: EventCallback) -> SimFuture:
        """Subscribe to ``topic`` everywhere.

        Registers the callback locally, then announces the subscription to
        every other gateway listed in the VSR.  For pull protocols a poll
        loop per remote gateway starts (interval ``vsg.poll_interval``).
        Resolves to the number of remote gateways subscribed at.
        """
        self._local_subs.setdefault(topic, []).append(callback)
        result: SimFuture = SimFuture()

        def on_gateways(future: SimFuture) -> None:
            exc = future.exception()
            if exc is not None:
                result.set_exception(exc)
                return
            gateways: dict[str, str] = future.result()
            remote = {
                island: location
                for island, location in gateways.items()
                if island != self.vsg.island
            }
            if not remote:
                result.set_result(0)
                return
            pending = len(remote)
            count = {"ok": 0}

            def one_done(done: SimFuture) -> None:
                nonlocal pending
                if done.exception() is None:
                    count["ok"] += 1
                pending -= 1
                if pending == 0 and not result.done():
                    result.set_result(count["ok"])

            for island, location in remote.items():
                try:
                    subscribe_future = self.vsg.protocol.subscribe_remote(
                        location, self.vsg.island, topic
                    )
                except Exception as exc:
                    # A gateway speaking another protocol (its location is
                    # unparseable to ours) cannot forward us events; count
                    # it as a failed subscription, not a crash.
                    subscribe_future = SimFuture.failed(exc)
                self._bounded(subscribe_future, f"subscribe announce to {island}")\
                    .add_done_callback(one_done)
                if not self.vsg.protocol.supports_push:
                    self._ensure_poll_loop(location)

        self.vsg.vsr.list_gateways().add_done_callback(on_gateways)
        return result

    def subscribe_many(self, topics: list[str], callback: EventCallback) -> SimFuture:
        """Subscribe to several topics everywhere with one announcement
        round trip per remote gateway (where the protocol supports
        batching) instead of one per topic per gateway.

        Resolves to the number of remote gateways that accepted at least
        one topic.  The per-island poll loop is shared with single-topic
        subscriptions — one ``fetch_events`` round trip drains every topic
        queued for this island regardless of how it subscribed.
        """
        for topic in topics:
            self._local_subs.setdefault(topic, []).append(callback)
        result: SimFuture = SimFuture()
        if not topics:
            result.set_result(0)
            return result

        def on_gateways(future: SimFuture) -> None:
            exc = future.exception()
            if exc is not None:
                result.set_exception(exc)
                return
            gateways: dict[str, str] = future.result()
            remote = {
                island: location
                for island, location in gateways.items()
                if island != self.vsg.island
            }
            if not remote:
                result.set_result(0)
                return
            pending = len(remote)
            count = {"ok": 0}

            def one_done(done: SimFuture) -> None:
                nonlocal pending
                if done.exception() is None and done.result():
                    count["ok"] += 1
                pending -= 1
                if pending == 0 and not result.done():
                    result.set_result(count["ok"])

            for island, location in remote.items():
                try:
                    batch_future = self.vsg.protocol.subscribe_remote_many(
                        location, self.vsg.island, list(topics)
                    )
                except Exception as exc:
                    batch_future = SimFuture.failed(exc)
                self._bounded(batch_future, f"subscribe batch to {island}")\
                    .add_done_callback(one_done)
                if not self.vsg.protocol.supports_push:
                    self._ensure_poll_loop(location)

        self.vsg.vsr.list_gateways().add_done_callback(on_gateways)
        return result

    def _bounded(self, future: SimFuture, what: str) -> SimFuture:
        """Race a control-plane round trip against the island's call
        deadline.  Without this a single lost reply frame parks the
        subscription future forever (there is no transport retransmission),
        and a lost poll reply would stall that poll loop for good.
        """
        deadline = self.vsg.policy.deadline
        return with_deadline(
            self.vsg.sim,
            future,
            deadline,
            lambda: DeadlineExceededError(f"{what} exceeded {deadline:g}s"),
        )

    def _ensure_poll_loop(self, control_location: str) -> None:
        if self._polling_stopped or control_location in self._poll_timers:
            return
        self._poll_timers[control_location] = self.vsg.sim.schedule(
            self.vsg.poll_interval, self._poll, control_location
        )

    def _poll(self, control_location: str) -> None:
        if self._polling_stopped:
            return
        self.polls_performed += 1
        self._m_polls.inc()
        try:
            poll_future = self.vsg.protocol.poll_events(
                control_location, self.vsg.island
            )
        except Exception:
            # Foreign-protocol gateway: stop polling it for good.
            self._poll_timers.pop(control_location, None)
            return

        def on_events(future: SimFuture) -> None:
            if self._polling_stopped:
                # The gateway shut down while this poll was in flight; a
                # reschedule here would resurrect the loop forever.
                return
            if future.exception() is None:
                batch = future.result()
                self._m_poll_batch.observe(float(len(batch)))
                for event in batch:
                    self._deliver_local(event)
            # Reschedule regardless: a transient failure must not end polling.
            self._poll_timers[control_location] = self.vsg.sim.schedule(
                self.vsg.poll_interval, self._poll, control_location
            )

        self._bounded(poll_future, f"poll of {control_location}")\
            .add_done_callback(on_events)

    def stop_polling(self) -> None:
        self._polling_stopped = True
        for timer in self._poll_timers.values():
            timer.cancel()
        self._poll_timers.clear()


class VirtualServiceGateway:
    """One island's gateway."""

    def __init__(
        self,
        island: str,
        node: Node,
        stack: TransportStack,
        protocol: GatewayProtocol,
        vsr: VsrClient,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
        policy: CallPolicy | None = None,
        obs: Any = None,
    ) -> None:
        self.island = island
        self.node = node
        self.stack = stack
        self.sim = stack.sim
        self.protocol = protocol
        self.vsr = vsr
        self.poll_interval = poll_interval
        self.policy = policy or CallPolicy()
        self.obs = obs if obs is not None else NOOP_OBS
        metrics = self.obs.metrics
        self._m_calls_out = metrics.counter(f"vsg.{island}.calls_out")
        self._m_calls_in = metrics.counter(f"vsg.{island}.calls_in")
        self._m_calls_local = metrics.counter(f"vsg.{island}.calls_local")
        self._m_stale = metrics.counter(f"vsg.{island}.stale_refreshes")
        self._m_latency = metrics.histogram(f"vsg.{island}.call_latency")
        self.resilience = ResilientExecutor(
            self.sim, self.policy, obs=self.obs, label=island
        )
        self.heartbeat = HeartbeatMonitor(self)
        self._local: dict[str, tuple[ServiceInterface, LocalHandler]] = {}
        self.events = EventRouter(self)
        #: island -> last known interchange location, for pooled-connection
        #: eviction when that island's circuit breaker opens.
        self._island_locations: dict[str, str] = {}
        self.resilience.add_open_listener(self._on_breaker_open)
        self._next_call_id = 1
        self.calls_out = 0
        self.calls_in = 0
        self.calls_local = 0
        self.stale_refreshes = 0
        self._paused = False
        self._pause_queue: list[tuple[ServiceCall, SimFuture]] = []
        protocol.start(self)
        self.heartbeat.start()

    # -- exporting (Client Proxy side of the PCM) ----------------------------------

    def export_service(
        self,
        name: str,
        interface: ServiceInterface,
        handler: LocalHandler,
        context: dict[str, str] | None = None,
    ) -> SimFuture:
        """Register a local service and publish its WSDL to the VSR."""
        if name in self._local:
            raise GatewayError(f"island {self.island!r} already exports {name!r}")
        if interface.name != name:
            # The export name is authoritative: republish the interface
            # under it so the VSR entry and the dispatch table agree.
            interface = ServiceInterface(name, interface.operations)
        self._local[name] = (interface, handler)
        full_context = {"island": self.island, "protocol": self.protocol.name}
        full_context.update(context or {})
        document = interface.to_wsdl(self.protocol.location(name), full_context)
        return self.vsr.publish(document)

    def withdraw_service(self, name: str) -> SimFuture:
        self._local.pop(name, None)
        return self.vsr.withdraw(name)

    @property
    def exported_services(self) -> list[str]:
        return sorted(self._local)

    # -- inbound (the protocol's server side calls this) -----------------------------

    def dispatch_local(self, call: ServiceCall) -> SimFuture:
        """Execute a neutral call against a locally exported service."""
        self.calls_in += 1
        self._m_calls_in.inc()
        tracer = self.obs.tracer
        span = NULL_SPAN
        if tracer.enabled:
            # Join the caller's trace: explicit context on the call (set by
            # invoke() or re-attached from X-Trace), else the ambient span
            # (the SOAP server span).  Never start a fresh root here —
            # untraced polls and heartbeats must stay untraced.
            parent = call.trace or tracer.current()
            if parent is not None:
                span = tracer.start_span(
                    f"vsg.dispatch {call.service}.{call.operation}",
                    island=self.island,
                    kind="server",
                    parent=parent,
                )
        if self._paused:
            # A paused gateway is alive but unresponsive: the call parks
            # until resume() and the *caller's* deadline decides its fate.
            span.annotate("gateway paused; call parked")
            parked: SimFuture = SimFuture()
            self._pause_queue.append((call, parked))
            if span.recording:
                parked.add_done_callback(lambda f: span.finish(f.exception()))
            return parked
        result = self._dispatch_now(call, span)
        if span.recording:
            result.add_done_callback(lambda f: span.finish(f.exception()))
        return result

    def _dispatch_now(self, call: ServiceCall, span: Any = NULL_SPAN) -> SimFuture:
        entry = self._local.get(call.service)
        if entry is None:
            return SimFuture.failed(
                ServiceNotFoundError(
                    f"island {self.island!r} exports no service {call.service!r}"
                )
            )
        interface, handler = entry
        try:
            operation = interface.operation(call.operation)
            checked_args = values.check_args(operation, call.args)
            # The dispatch span is ambient while the native handler runs,
            # so PCM-level spans (e.g. the X10 power-line write) nest here.
            with self.obs.tracer.activate(span):
                outcome = handler(call.operation, checked_args)
        except Exception as exc:
            return SimFuture.failed(exc)
        if isinstance(outcome, SimFuture):
            result: SimFuture = SimFuture()

            def on_done(future: SimFuture) -> None:
                exc = future.exception()
                if exc is not None:
                    result.set_exception(exc)
                    return
                try:
                    result.set_result(values.check_result(operation, future.result()))
                except ConversionError as check_exc:
                    result.set_exception(check_exc)

            outcome.add_done_callback(on_done)
            return result
        try:
            return SimFuture.completed(values.check_result(operation, outcome))
        except ConversionError as exc:
            return SimFuture.failed(exc)

    # -- outbound ------------------------------------------------------------

    def invoke(self, service: str, operation: str, args: list[Any]) -> SimFuture:
        """Call ``service.operation(*args)`` wherever it lives.

        Local services short-circuit (still through the neutral validation
        path).  Remote services are resolved through the VSR; a stale cache
        entry gets one retry after invalidation.
        """
        tracer = self.obs.tracer
        span = (
            tracer.start_span(
                f"vsg.invoke {service}.{operation}", island=self.island, kind="client"
            )
            if tracer.enabled
            else NULL_SPAN
        )
        call = ServiceCall(
            service=service,
            operation=operation,
            args=args,
            source_island=self.island,
            call_id=self._next_call_id,
            trace=span.context if span.recording else None,
        )
        self._next_call_id += 1
        started = self.sim.now
        if service in self._local:
            self.calls_local += 1
            self._m_calls_local.inc()
            span.set_attribute("target", "local")
            with tracer.activate(span):
                result = self.dispatch_local(call)
        else:
            with tracer.activate(span):
                result = self._invoke_remote(call, retried=False, span=span)

        def on_done(future: SimFuture) -> None:
            self._m_latency.observe(self.sim.now - started)
            span.finish(future.exception())

        result.add_done_callback(on_done)
        return result

    def _invoke_remote(
        self, call: ServiceCall, retried: bool, span: Any = NULL_SPAN
    ) -> SimFuture:
        self.calls_out += 1
        self._m_calls_out.inc()
        result: SimFuture = SimFuture()
        tracer = self.obs.tracer
        lookup = (
            tracer.start_span(
                f"vsr.lookup {call.service}", island=self.island, parent=call.trace
            )
            if tracer.enabled and call.trace is not None
            else NULL_SPAN
        )

        def on_resolved(future: SimFuture) -> None:
            exc = future.exception()
            if exc is not None:
                lookup.finish(exc)
                result.set_exception(exc)
                return
            document: WsdlDocument = future.result()
            target = document.context.get("island") or document.location
            lookup.set_attribute("target", target)
            lookup.finish()
            self._island_locations[target] = document.location
            remote = self.resilience.execute(
                target,
                lambda: self.protocol.call_remote(document.location, call),
                span=span,
            )

            def on_called(done: SimFuture) -> None:
                call_exc = done.exception()
                if call_exc is None:
                    result.set_result(done.result())
                    return
                if is_connectivity_failure(call_exc):
                    # The path (not the service) failed: any pooled
                    # keep-alive connection to that endpoint is suspect and
                    # must not serve the retry.
                    self.protocol.invalidate_location(document.location)
                if not retried and not isinstance(
                    call_exc, (ServiceNotFoundError, CircuitOpenError)
                ):
                    # The cached location may be stale: refresh and retry once.
                    self.stale_refreshes += 1
                    self._m_stale.inc()
                    span.annotate(f"stale location; refreshing {call.service}")
                    self.vsr.invalidate(call.service)
                    retry = self._invoke_remote(call, retried=True, span=span)
                    retry.add_done_callback(
                        lambda f: result.set_exception(f.exception())
                        if f.exception() is not None
                        else result.set_result(f.result())
                    )
                    return
                result.set_exception(call_exc)

            remote.add_done_callback(on_called)

        self.vsr.find_by_name(call.service).add_done_callback(on_resolved)
        return result

    # -- events ------------------------------------------------------------

    def publish_event(self, topic: str, payload: Any) -> None:
        self.events.publish(topic, payload)

    def subscribe(self, topic: str, callback: EventCallback) -> SimFuture:
        return self.events.subscribe(topic, callback)

    def subscribe_many(self, topics: list[str], callback: EventCallback) -> SimFuture:
        """Batched :meth:`subscribe`: one announcement round trip per
        remote gateway for the whole topic list."""
        return self.events.subscribe_many(topics, callback)

    # -- resilience ------------------------------------------------------------

    def _on_breaker_open(self, island: str) -> None:
        """A circuit breaker opening means the island is unreachable: evict
        any pooled interchange connection so the half-open probe (and
        everything after) starts from a fresh handshake."""
        location = self._island_locations.get(island)
        if location:
            self.protocol.invalidate_location(location)

    @property
    def paused(self) -> bool:
        return self._paused

    def pause(self) -> None:
        """Stop answering inbound calls (they park) without dropping frames:
        the fault injector's model of a wedged-but-connected gateway."""
        self._paused = True

    def resume(self) -> None:
        """Process every call parked while paused, in arrival order."""
        self._paused = False
        parked, self._pause_queue = self._pause_queue, []
        for call, future in parked:
            self._dispatch_now(call).add_done_callback(
                lambda done, f=future: f.set_exception(done.exception())
                if done.exception() is not None
                else f.set_result(done.result())
            )

    def resilience_stats(self) -> dict[str, Any]:
        """Counters the chaos benchmarks read: executor totals, per-island
        breaker state, directory degradation, heartbeat health."""
        stats = self.resilience.stats()
        stats.update(
            {
                "island": self.island,
                "calls_out": self.calls_out,
                "calls_in": self.calls_in,
                "stale_refreshes": self.stale_refreshes,
                "vsr_degraded_reads": self.vsr.degraded_reads,
                "vsr_lookup_failures": self.vsr.lookup_failures,
                "health": self.heartbeat.snapshot(),
            }
        )
        return stats

    # -- lifecycle ------------------------------------------------------------

    def register_with_directory(self) -> SimFuture:
        return self.vsr.register_gateway(self.island, self.protocol.control_location())

    def shutdown(self) -> None:
        self.heartbeat.stop()
        self.events.stop_polling()
        self.protocol.stop()
