"""The Virtual Service Gateway (paper Section 3.1).

One VSG per middleware island.  It owns the island's *exported* services
(registered by the PCM's Client Proxy side), routes outbound neutral calls
to the gateway holding the target service (located through the VSR), and
bridges events between islands.

The interchange protocol is a strategy (:class:`GatewayProtocol`): "How the
protocol should we chose is demands on the purpose of service integration"
— the prototype used SOAP; SIP is implemented as the alternative the paper
discusses.  Crucially for experiment C3, a protocol declares whether it can
*push* events: SOAP/HTTP cannot (subscribers must poll), SIP can.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import (
    CircuitOpenError,
    ConversionError,
    DeadlineExceededError,
    GatewayError,
    ServiceNotFoundError,
    TransportError,
)
from repro.net.node import Node
from repro.net.simkernel import Event, SimFuture
from repro.net.transport import TransportStack
from repro.soap.wsdl import WsdlDocument
from repro.core import values
from repro.core.calls import ServiceCall
from repro.core.interface import ServiceInterface
from repro.core.resilience import (
    CallPolicy,
    HeartbeatMonitor,
    ResilientExecutor,
    is_connectivity_failure,
    with_deadline,
)
from repro.core.vsr import VsrClient
from repro.obs import NOOP_OBS, NULL_SPAN

#: A local service handler: ``handler(operation, args) -> value | SimFuture``.
LocalHandler = Callable[[str, list[Any]], Any]
#: An event callback: ``callback(topic, payload, source_island)``.
EventCallback = Callable[[str, Any, str], None]

DEFAULT_POLL_INTERVAL = 2.0


def topic_matches(pattern: str, topic: str) -> bool:
    """True when ``topic`` is selected by ``pattern``.

    A pattern is either an exact topic name or a prefix wildcard: a
    trailing ``*`` matches any topic starting with the prefix before it
    (``x10.*`` matches ``x10.ON`` and ``x10.OFF``; ``*`` alone matches
    everything).  A ``*`` anywhere else has no special meaning — the
    pattern then only matches itself, so exact-topic subscriptions keep
    their historical equality semantics bit for bit.
    """
    if pattern == topic:
        return True
    if pattern.endswith("*"):
        return topic.startswith(pattern[:-1])
    return False


class FullEventCallback:
    """Wrap an event callback that wants the *whole* event record.

    The plain :data:`EventCallback` contract hands subscribers
    ``(topic, payload, source_island)`` — enough for display, too little
    for exactly-once processing: the at-least-once delivery modes (poll
    fallback folding, channel redelivery) can hand the same event to a
    subscriber twice, and only the record's ``(island, sequence)`` pair
    identifies it.  Subscribing with ``FullEventCallback(fn)`` delivers
    ``fn(event_dict)`` with every field the publisher stamped —
    ``topic``, ``payload``, ``island``, ``sequence``, ``published_at`` —
    so consumers like ``repro.rules`` can deduplicate redeliveries.
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[dict[str, Any]], None]) -> None:
        self.fn = fn

    def __call__(self, event: dict[str, Any]) -> None:
        self.fn(event)


class GatewayProtocol:
    """Strategy interface for the VSG interchange protocol."""

    name = "abstract"
    #: True when the protocol can deliver events unsolicited (push).
    supports_push = False

    def start(self, vsg: "VirtualServiceGateway") -> None:
        raise NotImplementedError

    def stop(self) -> None:
        raise NotImplementedError

    def location(self, service: str) -> str:
        """Endpoint locator to publish in the service's WSDL."""
        raise NotImplementedError

    def control_location(self) -> str:
        """Locator of this gateway's control endpoint (events etc.)."""
        raise NotImplementedError

    def call_remote(self, location: str, call: ServiceCall) -> SimFuture:
        """Send a neutral call to a remote gateway; resolves to the value."""
        raise NotImplementedError

    def subscribe_remote(self, control_location: str, island: str, topic: str) -> SimFuture:
        """Tell a remote gateway that ``island`` wants ``topic`` events."""
        raise NotImplementedError

    def subscribe_remote_many(
        self, control_location: str, island: str, topics: list[str]
    ) -> SimFuture:
        """Announce several topic subscriptions to one remote gateway.

        Default: one :meth:`subscribe_remote` round trip per topic (the
        legacy wire behaviour); resolves to the number of topics accepted.
        Protocols may override with a genuinely batched control operation.
        """
        result: SimFuture = SimFuture()
        pending = {"count": len(topics), "ok": 0}
        if not topics:
            return SimFuture.completed(0)

        def one_done(done: SimFuture) -> None:
            if done.exception() is None:
                pending["ok"] += 1
            pending["count"] -= 1
            if pending["count"] == 0 and not result.done():
                result.set_result(pending["ok"])

        for topic in topics:
            try:
                future = self.subscribe_remote(control_location, island, topic)
            except Exception as exc:
                future = SimFuture.failed(exc)
            future.add_done_callback(one_done)
        return result

    def invalidate_location(self, location: str) -> None:
        """Drop any cached transport state for ``location`` (pooled
        keep-alive connections etc.).  Called by the resilience layer when
        a breaker opens or a call fails on connectivity, so a partitioned
        or crashed peer is never reached through a stale connection.
        Default: nothing cached, nothing to do."""

    def push_event(self, control_location: str, event: dict[str, Any]) -> None:
        """Push one event to a subscriber gateway (push protocols only)."""
        raise NotImplementedError

    def poll_events(self, control_location: str, island: str) -> SimFuture:
        """Fetch queued events for ``island`` (pull protocols only)."""
        raise NotImplementedError

    def open_event_channel(
        self,
        control_location: str,
        island: str,
        on_batch: Callable[[int, list[dict[str, Any]]], None],
        on_dead: Callable[[BaseException], None],
        initial_ack: int = 0,
    ) -> Any:
        """Open a streamed push event channel to the publisher gateway at
        ``control_location`` — the third delivery mode, for pull protocols
        whose interchange negotiated the ``events-push`` capability.
        Returns a channel object exposing ``start``/``stop``/``kill`` or
        ``None`` when either side lacks the capability, in which case the
        caller keeps polling.  Default: no channel support."""
        return None

    def ping_remote(self, control_location: str) -> SimFuture:
        """Liveness probe of a remote gateway's control endpoint; resolves
        to the remote island name (used by the heartbeat monitor)."""
        raise NotImplementedError


class EventRouter:
    """Cross-island event bridging living inside each VSG.

    Publisher side: remembers which islands subscribed to which topics.
    For push protocols events go out immediately; for pull protocols they
    queue until the subscriber's next poll — the mechanism behind the
    paper's "HTTP ... does not map well to asynchronous notification".

    A third delivery mode sits between the two: when a pull protocol's
    interchange negotiates the ``events-push`` capability, the subscriber
    opens one streamed channel per remote gateway (a held exchange the
    publisher answers the moment :meth:`publish` fires, coalescing bursts
    within the interchange's ``event_flush_window``) and the poll loop
    stops.  On channel death the router falls back to polling instantly
    and re-establishes the channel with the resilience layer's backoff,
    so events keep flowing through crashes, partitions and breaker trips.
    """

    #: Poll-batch histogram bounds: events drained per fetch round trip.
    POLL_BATCH_BUCKETS = (0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0)

    #: Consecutive poll failures before the router asks the VSR whether
    #: the gateway is still registered (and prunes the loop if not).
    POLL_PRUNE_FAILURES = 2

    #: Ceiling on the channel re-establishment backoff, virtual seconds.
    CHANNEL_RETRY_CAP = 30.0

    def __init__(self, vsg: "VirtualServiceGateway") -> None:
        self.vsg = vsg
        self._local_subs: dict[str, list[EventCallback]] = {}
        #: Prefix-wildcard subscriptions (topic ends in ``*``), kept out of
        #: the exact-match table so the historical fast path is untouched.
        self._pattern_subs: dict[str, list[EventCallback]] = {}
        self._remote_subs: dict[str, set[str]] = {}  # island -> topic patterns
        self._remote_locations: dict[str, str] = {}  # island -> control location
        self._queues: dict[str, list[dict[str, Any]]] = {}
        self._poll_timers: dict[str, Event] = {}
        self._polling_stopped = False
        #: Bumped on every cold crash.  In-flight poll/registry callbacks
        #: capture the generation at issue time and bail when it moved, so
        #: a pre-crash poll can never resurrect a loop the recovery path
        #: already re-armed (the stale-interlock bug).
        self._delivery_generation = 0
        self._sequence = 0
        self.events_published = 0
        self.events_delivered = 0
        self.polls_performed = 0
        # -- publisher-side channel state (one slot per subscriber island)
        self._waiters: dict[str, SimFuture] = {}  # island -> parked wait
        self._hold_timers: dict[str, Event] = {}
        self._flush_timers: dict[str, Event] = {}
        self._batch_seq: dict[str, int] = {}  # island -> last batch id issued
        #: island -> (batch id, events) retained until the subscriber acks;
        #: redelivered on reconnect, folded into the next fetch on fallback.
        self._unacked: dict[str, tuple[int, list[dict[str, Any]]]] = {}
        self.events_pushed = 0
        self.waits_handled = 0
        # -- subscriber-side channel state (keyed by control location)
        self._channels: dict[str, Any] = {}
        self._remote_islands: dict[str, str] = {}  # control location -> island
        self._channel_acks: dict[str, int] = {}
        self._channel_attempts: dict[str, int] = {}
        self._reconnect_timers: dict[str, Event] = {}
        self._poll_failures: dict[str, int] = {}
        #: Every channel client ever opened — kept past channel death so
        #: post-shutdown pool-leak audits can inspect each one's HTTP pool.
        self.channel_clients: list[Any] = []
        self.channels_opened = 0
        self.channel_deaths = 0
        metrics = vsg.obs.metrics
        self._m_published = metrics.counter(f"events.{vsg.island}.published")
        self._m_delivered = metrics.counter(f"events.{vsg.island}.delivered")
        self._m_polls = metrics.counter(f"events.{vsg.island}.polls")
        self._m_poll_batch = metrics.histogram(
            f"events.{vsg.island}.poll_batch", buckets=self.POLL_BATCH_BUCKETS
        )
        self._m_pushed = metrics.counter(f"events.{vsg.island}.pushed")
        self._m_flush_batch = metrics.histogram(
            f"events.{vsg.island}.flush_batch", buckets=self.POLL_BATCH_BUCKETS
        )
        self._m_waits = metrics.counter(f"events.{vsg.island}.waits")
        self._m_channels_opened = metrics.counter(
            f"events.{vsg.island}.channels_opened"
        )
        self._m_channel_deaths = metrics.counter(
            f"events.{vsg.island}.channel_deaths"
        )
        self._m_log_dropped = metrics.counter(
            f"events.{vsg.island}.delivery_log_dropped"
        )
        # -- durability probes (populated only when a journal is attached;
        # -- the no-lost-acked-event oracle reads them after a run)
        #: (subscriber island, sequence) -> event, recorded the instant an
        #: event is queued for a remote subscriber: the at-least-once
        #: promise the oracle holds this publisher to.
        self.retention_obligations: dict[tuple[str, int], dict[str, Any]] = {}
        #: Obligations handed over in a fetch reply.  The poll reply wire
        #: is the one declared at-most-once window (no fetch-level ack),
        #: so handing the batch to the transport discharges the promise.
        self.fetch_discharged: set[tuple[str, int]] = set()
        #: (source island, sequence) of every event delivered locally.
        self.delivered_keys: set[tuple[str, int]] = set()
        #: Per-delivery records (topic, source island, published_at,
        #: delivered_at, latency) — read by the C3 latency experiment.
        self.delivery_log: list[dict[str, Any]] = []
        self.delivery_log_limit = 10000
        #: Deliveries that found the log full.  Mirrors the TrafficMonitor
        #: ``trace_dropped`` contract: the counter keeps climbing after the
        #: cap so truncation is visible instead of silent.
        self.delivery_log_dropped = 0

    # -- publishing ------------------------------------------------------------

    def publish(self, topic: str, payload: Any) -> None:
        self._sequence += 1
        self.events_published += 1
        self._m_published.inc()
        event = {
            "topic": topic,
            "payload": payload,
            "island": self.vsg.island,
            "sequence": self._sequence,
            "published_at": self.vsg.sim.now,
        }
        journal = self.vsg.journal
        if journal is not None:
            journal.log_sequence(self._sequence)
        self._deliver_local(event)
        for island, topics in self._remote_subs.items():
            # Exact membership first (the historical path), then the
            # wildcard scan — islands with only exact subscriptions never
            # pay for pattern matching.
            if topic not in topics and not any(
                "*" in sub and topic_matches(sub, topic) for sub in topics
            ):
                continue
            if self.vsg.protocol.supports_push:
                location = self._remote_locations.get(island)
                if location:
                    try:
                        self.vsg.protocol.push_event(location, event)
                    except Exception:
                        pass  # unreachable or foreign-protocol subscriber
            else:
                self._queues.setdefault(island, []).append(event)
                if journal is not None:
                    journal.log_queue(island, event)
                    self.retention_obligations[(island, event["sequence"])] = event
                if island in self._waiters:
                    # A push channel is parked on this island: flush the
                    # queue down it after the coalescing window.
                    self._schedule_flush(island)

    def _deliver_local(self, event: dict[str, Any]) -> None:
        if self.vsg.journal is not None and "sequence" in event:
            self.delivered_keys.add((event["island"], event["sequence"]))
        callbacks = self._local_subs.get(event["topic"], [])
        if self._pattern_subs:
            for pattern, pattern_callbacks in self._pattern_subs.items():
                if topic_matches(pattern, event["topic"]):
                    callbacks = callbacks + pattern_callbacks
        if callbacks:
            if len(self.delivery_log) < self.delivery_log_limit:
                published_at = float(event.get("published_at", self.vsg.sim.now))
                self.delivery_log.append(
                    {
                        "topic": event["topic"],
                        "island": event["island"],
                        "published_at": published_at,
                        "delivered_at": self.vsg.sim.now,
                        "latency": self.vsg.sim.now - published_at,
                    }
                )
            else:
                self.delivery_log_dropped += 1
                self._m_log_dropped.inc()
        for callback in callbacks:
            self.events_delivered += 1
            self._m_delivered.inc()
            if isinstance(callback, FullEventCallback):
                callback(event)
            else:
                callback(event["topic"], event["payload"], event["island"])

    # -- inbound control (called by the protocol's server side) --------------------

    def handle_subscribe(self, island: str, topic: str, control_location: str) -> bool:
        subs = self._remote_subs.setdefault(island, set())
        journal = self.vsg.journal
        if journal is not None and topic not in subs:
            journal.log_remote_sub(island, topic, control_location)
        subs.add(topic)
        if control_location:
            self._remote_locations[island] = control_location
        return True

    def handle_fetch(self, island: str) -> list[dict[str, Any]]:
        queued = self._queues.get(island, [])
        self._queues[island] = []
        # A batch flushed down a now-dead channel but never acked belongs
        # to the fallback poll: at-least-once, never lost.
        retained = self._unacked.pop(island, None)
        if retained is not None:
            queued = retained[1] + queued
        journal = self.vsg.journal
        if journal is not None and queued:
            journal.log_drain(island)
            for event in queued:
                self.fetch_discharged.add((island, event["sequence"]))
        return queued

    def handle_push(self, event: dict[str, Any]) -> bool:
        self._deliver_local(event)
        return True

    def handle_wait(self, island: str, ack: int, hold: float) -> SimFuture:
        """Publisher side of the push channel: park a held exchange for
        ``island`` and resolve it with ``(batch_id, events)`` on the next
        flush — or with an empty keepalive when ``hold`` expires.

        ``ack`` releases the retained unacked batch once the subscriber
        has delivered it; a lower ack means the previous frame was lost
        (channel death mid-response), so the retained batch is redelivered
        immediately.  The caller clamps ``hold`` to its own maximum.
        """
        self.waits_handled += 1
        self._m_waits.inc()
        last_batch = self._batch_seq.get(island, 0)
        if self._polling_stopped:
            # Shutting down: answer empty instead of parking forever.
            return SimFuture.completed((last_batch, []))
        retained = self._unacked.get(island)
        if retained is not None and ack >= retained[0]:
            self._unacked.pop(island, None)
            if self.vsg.journal is not None:
                self.vsg.journal.log_ack(island, ack)
            retained = None
        # Supersede any stale parked waiter (the subscriber re-armed after
        # its watchdog reaped an exchange we still believed live).
        self._resolve_waiter(island, last_batch, [])
        if retained is not None:
            return SimFuture.completed(retained)
        waiter: SimFuture = SimFuture()
        self._waiters[island] = waiter
        if hold > 0:
            self._hold_timers[island] = self.vsg.sim.schedule(
                hold, self._hold_expired, island
            )
        if self._queues.get(island):
            self._schedule_flush(island)
        return waiter

    # -- publisher-side channel internals -------------------------------------

    def _flush_window(self) -> float:
        config = getattr(self.vsg.protocol, "interchange", None)
        return config.event_flush_window if config is not None else 0.0

    def _schedule_flush(self, island: str) -> None:
        if island in self._flush_timers or island not in self._waiters:
            return
        self._flush_timers[island] = self.vsg.sim.schedule(
            self._flush_window(), self._flush, island
        )

    def _flush(self, island: str) -> None:
        self._flush_timers.pop(island, None)
        if island not in self._waiters:
            return  # hold expiry raced the flush; events stay queued
        events = self._queues.get(island, [])
        if not events:
            return
        self._queues[island] = []
        batch = self._batch_seq.get(island, 0) + 1
        self._batch_seq[island] = batch
        self._unacked[island] = (batch, list(events))
        if self.vsg.journal is not None:
            # The journal's queue for this island holds exactly `events`
            # (evq appends, drain/flush clears), so the record only needs
            # the batch id — replay folds the queue into the unacked slot.
            self.vsg.journal.log_flush(island, batch)
        self.events_pushed += len(events)
        self._m_pushed.inc(len(events))
        self._m_flush_batch.observe(float(len(events)))
        self._resolve_waiter(island, batch, events)

    def _hold_expired(self, island: str) -> None:
        self._hold_timers.pop(island, None)
        self._resolve_waiter(island, self._batch_seq.get(island, 0), [])

    def _resolve_waiter(
        self, island: str, batch: int, events: list[dict[str, Any]]
    ) -> bool:
        waiter = self._waiters.pop(island, None)
        timer = self._hold_timers.pop(island, None)
        if timer is not None:
            timer.cancel()
        if waiter is None or waiter.done():
            return False
        waiter.set_result((batch, events))
        return True

    # -- subscribing ------------------------------------------------------------

    def _register_local(self, topic: str, callback: EventCallback) -> None:
        table = self._pattern_subs if topic.endswith("*") else self._local_subs
        table.setdefault(topic, []).append(callback)

    def subscribe(self, topic: str, callback: EventCallback) -> SimFuture:
        """Subscribe to ``topic`` everywhere.

        Registers the callback locally, then announces the subscription to
        every other gateway listed in the VSR.  For pull protocols a poll
        loop per remote gateway starts (interval ``vsg.poll_interval``).
        Resolves to the number of remote gateways subscribed at.

        ``topic`` may be a prefix pattern (trailing ``*``, see
        :func:`topic_matches`): one announcement then covers every
        matching topic at each publisher — the pattern string itself
        travels on the wire, so exact subscriptions are byte-identical
        to the pre-pattern protocol.
        """
        self._register_local(topic, callback)
        if self.vsg.journal is not None:
            self.vsg.journal.log_local_topic(topic)
        result: SimFuture = SimFuture()
        generation = self._delivery_generation

        def on_gateways(future: SimFuture) -> None:
            if generation != self._delivery_generation or self.vsg.down:
                # The process crashed (cold) while the registry lookup was
                # in flight: the pre-crash subscription attempt must not
                # touch the journal or start poll loops for a dead epoch.
                result.set_exception(
                    GatewayError(
                        f"island {self.vsg.island!r} gateway restarted "
                        "during subscribe"
                    )
                )
                return
            exc = future.exception()
            if exc is not None:
                result.set_exception(exc)
                return
            gateways: dict[str, str] = future.result()
            remote = {
                island: location
                for island, location in gateways.items()
                if island != self.vsg.island
            }
            if not remote:
                result.set_result(0)
                return
            pending = len(remote)
            count = {"ok": 0}

            def one_done(done: SimFuture) -> None:
                nonlocal pending
                if done.exception() is None:
                    count["ok"] += 1
                pending -= 1
                if pending == 0 and not result.done():
                    result.set_result(count["ok"])

            for island, location in remote.items():
                try:
                    subscribe_future = self.vsg.protocol.subscribe_remote(
                        location, self.vsg.island, topic
                    )
                except Exception as exc:
                    # A gateway speaking another protocol (its location is
                    # unparseable to ours) cannot forward us events; count
                    # it as a failed subscription, not a crash.
                    subscribe_future = SimFuture.failed(exc)
                bounded = self._bounded(
                    subscribe_future, f"subscribe announce to {island}"
                )
                bounded.add_done_callback(one_done)
                if not self.vsg.protocol.supports_push:
                    self._track_remote_gateway(location, island)
                    self._ensure_poll_loop(location)
                    bounded.add_done_callback(
                        lambda done, loc=location: self._after_announce(loc, done)
                    )

        self.vsg.vsr.list_gateways().add_done_callback(on_gateways)
        return result

    def subscribe_many(self, topics: list[str], callback: EventCallback) -> SimFuture:
        """Subscribe to several topics everywhere with one announcement
        round trip per remote gateway (where the protocol supports
        batching) instead of one per topic per gateway.

        Resolves to the number of remote gateways that accepted at least
        one topic.  The per-island poll loop is shared with single-topic
        subscriptions — one ``fetch_events`` round trip drains every topic
        queued for this island regardless of how it subscribed.
        """
        for topic in topics:
            self._register_local(topic, callback)
            if self.vsg.journal is not None:
                self.vsg.journal.log_local_topic(topic)
        result: SimFuture = SimFuture()
        if not topics:
            result.set_result(0)
            return result
        generation = self._delivery_generation

        def on_gateways(future: SimFuture) -> None:
            if generation != self._delivery_generation or self.vsg.down:
                result.set_exception(
                    GatewayError(
                        f"island {self.vsg.island!r} gateway restarted "
                        "during subscribe"
                    )
                )
                return
            exc = future.exception()
            if exc is not None:
                result.set_exception(exc)
                return
            gateways: dict[str, str] = future.result()
            remote = {
                island: location
                for island, location in gateways.items()
                if island != self.vsg.island
            }
            if not remote:
                result.set_result(0)
                return
            pending = len(remote)
            count = {"ok": 0}

            def one_done(done: SimFuture) -> None:
                nonlocal pending
                if done.exception() is None and done.result():
                    count["ok"] += 1
                pending -= 1
                if pending == 0 and not result.done():
                    result.set_result(count["ok"])

            for island, location in remote.items():
                try:
                    batch_future = self.vsg.protocol.subscribe_remote_many(
                        location, self.vsg.island, list(topics)
                    )
                except Exception as exc:
                    batch_future = SimFuture.failed(exc)
                bounded = self._bounded(batch_future, f"subscribe batch to {island}")
                bounded.add_done_callback(one_done)
                if not self.vsg.protocol.supports_push:
                    self._track_remote_gateway(location, island)
                    self._ensure_poll_loop(location)
                    bounded.add_done_callback(
                        lambda done, loc=location: self._after_announce(loc, done)
                    )

        self.vsg.vsr.list_gateways().add_done_callback(on_gateways)
        return result

    def _bounded(self, future: SimFuture, what: str) -> SimFuture:
        """Race a control-plane round trip against the island's call
        deadline.  Without this a single lost reply frame parks the
        subscription future forever (there is no transport retransmission),
        and a lost poll reply would stall that poll loop for good.
        """
        deadline = self.vsg.policy.deadline
        return with_deadline(
            self.vsg.sim,
            future,
            deadline,
            lambda: DeadlineExceededError(f"{what} exceeded {deadline:g}s"),
        )

    def _track_remote_gateway(self, control_location: str, island: str) -> None:
        if (
            self.vsg.journal is not None
            and self._remote_islands.get(control_location) != island
        ):
            self.vsg.journal.log_remote_gateway(control_location, island)
        self._remote_islands[control_location] = island

    def _ensure_poll_loop(self, control_location: str) -> None:
        if (
            self._polling_stopped
            or control_location in self._poll_timers
            or control_location in self._channels
        ):
            return
        self._poll_timers[control_location] = self.vsg.sim.schedule(
            self.vsg.poll_interval, self._poll, control_location
        )

    def _poll(self, control_location: str) -> None:
        if self._polling_stopped:
            return
        self.polls_performed += 1
        self._m_polls.inc()
        generation = self._delivery_generation
        try:
            poll_future = self.vsg.protocol.poll_events(
                control_location, self.vsg.island
            )
        except Exception as exc:
            if is_connectivity_failure(exc):
                # The send itself failed — our own interfaces are down
                # (crashed mid-poll) or the path is gone.  That is an
                # ordinary poll failure, not a foreign-protocol peer:
                # count it and keep the loop alive through the usual
                # failure path instead of killing it for good.
                failures = self._poll_failures.get(control_location, 0) + 1
                self._poll_failures[control_location] = failures
                if failures >= self.POLL_PRUNE_FAILURES:
                    self._check_still_registered(control_location)
                else:
                    self._reschedule_poll(control_location)
                return
            # Foreign-protocol gateway: stop polling it for good.
            self._poll_timers.pop(control_location, None)
            return

        def on_events(future: SimFuture) -> None:
            if self._polling_stopped or generation != self._delivery_generation:
                # The gateway shut down (or cold-crashed) while this poll
                # was in flight; a reschedule here would resurrect a loop
                # the recovery path owns now.
                return
            batch = future.result() if future.exception() is None else None
            if isinstance(batch, list) and all(
                isinstance(event, dict) for event in batch
            ):
                self._poll_failures.pop(control_location, None)
                self._m_poll_batch.observe(float(len(batch)))
                for event in batch:
                    self._deliver_local(event)
            else:
                # Either the poll failed, or the "batch" is not a list of
                # events — a mispaired pipelined reply after frame loss.
                # Both count as a poll failure.
                failures = self._poll_failures.get(control_location, 0) + 1
                self._poll_failures[control_location] = failures
                if failures >= self.POLL_PRUNE_FAILURES:
                    # The gateway may have left the VSR: polling a dead
                    # island burns a round trip per interval forever.
                    # The registry check reschedules (or prunes) the loop.
                    self._check_still_registered(control_location)
                    return
            self._reschedule_poll(control_location)

        self._bounded(poll_future, f"poll of {control_location}")\
            .add_done_callback(on_events)

    def _reschedule_poll(self, control_location: str) -> None:
        if self._polling_stopped or control_location in self._channels:
            # A channel opened while this poll was in flight; it owns
            # delivery now.
            self._poll_timers.pop(control_location, None)
            return
        self._poll_timers[control_location] = self.vsg.sim.schedule(
            self.vsg.poll_interval, self._poll, control_location
        )

    def _check_still_registered(self, control_location: str) -> None:
        island = self._remote_islands.get(control_location)
        if island is None:
            # Unknown provenance: keep the legacy keep-trying behaviour.
            self._reschedule_poll(control_location)
            return
        generation = self._delivery_generation

        def on_registry(future: SimFuture) -> None:
            if self._polling_stopped or generation != self._delivery_generation:
                return
            if future.exception() is None and island not in future.result():
                self._forget_remote(control_location)
                return
            # A degraded (cached) read still listing the island keeps the
            # loop alive: a directory outage must not end event delivery.
            self._poll_failures.pop(control_location, None)
            self._reschedule_poll(control_location)

        self._bounded(
            self.vsg.vsr.list_gateways(), f"registry check for {control_location}"
        ).add_done_callback(on_registry)

    def _forget_remote(self, control_location: str) -> None:
        """Stop tracking a gateway that left the VSR: cancel its poll loop,
        reconnect timer and channel so a dead island costs nothing."""
        timer = self._poll_timers.pop(control_location, None)
        if timer is not None:
            timer.cancel()
        reconnect = self._reconnect_timers.pop(control_location, None)
        if reconnect is not None:
            reconnect.cancel()
        channel = self._channels.pop(control_location, None)
        if channel is not None:
            channel.stop()
        self._poll_failures.pop(control_location, None)
        self._channel_attempts.pop(control_location, None)
        self._channel_acks.pop(control_location, None)
        self._remote_islands.pop(control_location, None)

    # -- subscriber-side channel internals -------------------------------------

    def _after_announce(self, control_location: str, done: SimFuture) -> None:
        """A subscription announce completed: the peer's feature echo has
        been recorded, so the capability check in ``open_event_channel``
        is now meaningful."""
        if done.exception() is None:
            self._maybe_open_channel(control_location)

    def _maybe_open_channel(self, control_location: str) -> None:
        if (
            self._polling_stopped
            or control_location in self._channels
            or control_location in self._reconnect_timers
        ):
            return
        island = self._remote_islands.get(control_location)
        if island is None:
            return
        channel = self.vsg.protocol.open_event_channel(
            control_location,
            self.vsg.island,
            on_batch=lambda batch, events, loc=control_location: (
                self._on_channel_batch(loc, batch, events)
            ),
            on_dead=lambda exc, loc=control_location: (
                self._on_channel_dead(loc, exc)
            ),
            initial_ack=self._channel_acks.get(control_location, 0),
        )
        if channel is None:
            return  # capability not negotiated; the poll loop stays
        self._channels[control_location] = channel
        self.channel_clients.append(channel)
        self.channels_opened += 1
        self._m_channels_opened.inc()
        timer = self._poll_timers.pop(control_location, None)
        if timer is not None:
            timer.cancel()
        tracer = self.vsg.obs.tracer
        if tracer.enabled:
            span = tracer.start_span(
                f"events.channel_open {island}", island=self.vsg.island, kind="client"
            )
            span.set_attribute("location", control_location)
            span.finish()
        channel.start()

    def _on_channel_batch(
        self, control_location: str, batch: int, events: list[dict[str, Any]]
    ) -> None:
        self._channel_attempts[control_location] = 0
        self._channel_acks[control_location] = max(
            self._channel_acks.get(control_location, 0), batch
        )
        for event in events:
            self._deliver_local(event)
        if self.vsg.journal is not None and events:
            # Journaled *after* the delivery loop: a crash mid-batch
            # replays to the previous ack, so the publisher redelivers
            # the whole batch (at-least-once, never silently dropped).
            self.vsg.journal.log_channel_ack(
                control_location, self._channel_acks[control_location]
            )

    def _on_channel_dead(self, control_location: str, exc: BaseException) -> None:
        self._channels.pop(control_location, None)
        if self._polling_stopped:
            return
        self.channel_deaths += 1
        self._m_channel_deaths.inc()
        attempt = self._channel_attempts.get(control_location, 0)
        self._channel_attempts[control_location] = attempt + 1
        tracer = self.vsg.obs.tracer
        if tracer.enabled:
            span = tracer.start_span(
                "events.channel_death", island=self.vsg.island, kind="client"
            )
            span.set_attribute("location", control_location)
            span.finish(exc)
        # Fall back to the poll loop immediately — events keep flowing while
        # the channel re-establishes behind the resilience backoff.
        self._ensure_poll_loop(control_location)
        delay = min(
            self.CHANNEL_RETRY_CAP,
            self.vsg.resilience.backoff_delay(min(attempt, 7)),
        )
        self._reconnect_timers[control_location] = self.vsg.sim.schedule(
            delay, self._retry_channel, control_location
        )

    def _retry_channel(self, control_location: str) -> None:
        self._reconnect_timers.pop(control_location, None)
        if self._polling_stopped:
            return
        self._maybe_open_channel(control_location)

    def on_island_unreachable(self, island: str) -> None:
        """Breaker opened for ``island``: its push channel (if any) rides a
        connection that just proved bad — kill it now so fallback polling
        and re-establishment start immediately instead of waiting out the
        channel watchdog."""
        for location, remote in list(self._remote_islands.items()):
            if remote != island:
                continue
            channel = self._channels.get(location)
            if channel is not None:
                channel.kill(
                    TransportError(f"island {island} unreachable (breaker open)")
                )

    def stop_polling(self) -> None:
        self._polling_stopped = True
        for timer in self._poll_timers.values():
            timer.cancel()
        self._poll_timers.clear()
        for timer in self._reconnect_timers.values():
            timer.cancel()
        self._reconnect_timers.clear()
        for timer in self._flush_timers.values():
            timer.cancel()
        self._flush_timers.clear()
        # Parked waits answer empty so held exchanges complete before the
        # server goes down; _resolve_waiter cancels each hold timer.
        for island in list(self._waiters):
            self._resolve_waiter(island, self._batch_seq.get(island, 0), [])
        for channel in list(self._channels.values()):
            channel.stop()
        self._channels.clear()

    # -- cold crash / recovery --------------------------------------------------

    def on_crash(self) -> None:
        """Cold crash: every in-memory delivery structure dies with the
        process.  Timers are cancelled (a dead process runs nothing),
        parked waits are dropped un-resolved (the subscriber's channel
        watchdog notices the silence and falls back to polling, exactly
        as with a real crash), and the generation counter moves so any
        in-flight poll or registry callback from before the crash is
        inert when it lands."""
        self._delivery_generation += 1
        for timers in (
            self._poll_timers,
            self._reconnect_timers,
            self._flush_timers,
            self._hold_timers,
        ):
            for timer in timers.values():
                timer.cancel()
            timers.clear()
        self._waiters.clear()
        for channel in list(self._channels.values()):
            try:
                channel.stop()
            except Exception:
                pass  # teardown over a dead interface sends nothing
        self._channels.clear()
        self._remote_subs.clear()
        self._remote_locations.clear()
        self._queues.clear()
        self._unacked.clear()
        self._batch_seq.clear()
        self._remote_islands.clear()
        self._channel_acks.clear()
        self._channel_attempts.clear()
        self._poll_failures.clear()
        self._sequence = 0
        # _local_subs/_pattern_subs are code (the app's callback objects),
        # not journaled state, and survive in-process; the durability
        # probe sets are oracle bookkeeping that lives outside the crash.

    def restore(self, state: dict[str, Any]) -> None:
        """Reinstall the replayed WAL state (the publisher/subscriber
        tables) without touching the wire."""
        self._sequence = int(state["sequence"])
        self._remote_subs = {
            island: set(topics) for island, topics in state["remote_subs"].items()
        }
        self._remote_locations = dict(state["remote_locations"])
        self._queues = {
            island: list(events) for island, events in state["queues"].items()
        }
        self._unacked = {
            island: (int(value[0]), list(value[1]))
            for island, value in state["unacked"].items()
        }
        self._batch_seq = {
            island: int(batch) for island, batch in state["batch_seq"].items()
        }
        self._channel_acks = {
            location: int(batch)
            for location, batch in state["channel_acks"].items()
        }

    def resume_delivery(self, state: dict[str, Any]) -> None:
        """Subscriber-side rejoin: re-announce every journaled topic to
        every journaled remote gateway, restart poll loops, and let the
        announce completions reopen push channels (with the restored ack
        high-water, so redelivery starts exactly where delivery stopped)."""
        topics = sorted(state["local_topics"])
        for location, island in state["remote_gateways"].items():
            self._remote_islands[location] = island
            if self.vsg.protocol.supports_push:
                continue
            self._ensure_poll_loop(location)
            if not topics:
                continue
            try:
                announce = self.vsg.protocol.subscribe_remote_many(
                    location, self.vsg.island, list(topics)
                )
            except Exception:
                continue  # foreign-protocol gateway; the poll loop prunes it
            bounded = self._bounded(announce, f"re-announce to {island}")
            bounded.add_done_callback(
                lambda done, loc=location: self._after_announce(loc, done)
            )


class VirtualServiceGateway:
    """One island's gateway."""

    def __init__(
        self,
        island: str,
        node: Node,
        stack: TransportStack,
        protocol: GatewayProtocol,
        vsr: VsrClient,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
        policy: CallPolicy | None = None,
        obs: Any = None,
    ) -> None:
        self.island = island
        self.node = node
        self.stack = stack
        self.sim = stack.sim
        self.protocol = protocol
        self.vsr = vsr
        self.poll_interval = poll_interval
        self.policy = policy or CallPolicy()
        self.obs = obs if obs is not None else NOOP_OBS
        metrics = self.obs.metrics
        self._m_calls_out = metrics.counter(f"vsg.{island}.calls_out")
        self._m_calls_in = metrics.counter(f"vsg.{island}.calls_in")
        self._m_calls_local = metrics.counter(f"vsg.{island}.calls_local")
        self._m_stale = metrics.counter(f"vsg.{island}.stale_refreshes")
        self._m_latency = metrics.histogram(f"vsg.{island}.call_latency")
        self.resilience = ResilientExecutor(
            self.sim, self.policy, obs=self.obs, label=island
        )
        self.heartbeat = HeartbeatMonitor(self)
        self._local: dict[str, tuple[ServiceInterface, LocalHandler]] = {}
        #: Durable WAL journal (``repro.store.GatewayJournal``) — ``None``
        #: by default, in which case every journaling call site below is
        #: skipped and behaviour (and the wire) is byte-identical to a
        #: gateway without persistence.
        self.journal: Any = None
        #: ``listener()`` on cold crash / ``listener(state)`` after WAL
        #: replay — rule engines hang their dedup durability off these.
        self.crash_listeners: list[Callable[[], None]] = []
        self.recovery_listeners: list[Callable[[dict[str, Any]], None]] = []
        self.cold_crashes = 0
        self.recoveries = 0
        self.events = EventRouter(self)
        #: island -> last known interchange location, for pooled-connection
        #: eviction when that island's circuit breaker opens.
        self._island_locations: dict[str, str] = {}
        self.resilience.add_open_listener(self._on_breaker_open)
        self._next_call_id = 1
        self.calls_out = 0
        self.calls_in = 0
        self.calls_local = 0
        self.stale_refreshes = 0
        self._paused = False
        self._pause_queue: list[tuple[ServiceCall, SimFuture]] = []
        protocol.start(self)
        self.heartbeat.start()

    # -- exporting (Client Proxy side of the PCM) ----------------------------------

    def export_service(
        self,
        name: str,
        interface: ServiceInterface,
        handler: LocalHandler,
        context: dict[str, str] | None = None,
    ) -> SimFuture:
        """Register a local service and publish its WSDL to the VSR."""
        if self.down:
            raise GatewayError(f"island {self.island!r} gateway is down")
        if name in self._local:
            raise GatewayError(f"island {self.island!r} already exports {name!r}")
        if interface.name != name:
            # The export name is authoritative: republish the interface
            # under it so the VSR entry and the dispatch table agree.
            interface = ServiceInterface(name, interface.operations)
        self._local[name] = (interface, handler)
        full_context = {"island": self.island, "protocol": self.protocol.name}
        full_context.update(context or {})
        document = interface.to_wsdl(self.protocol.location(name), full_context)
        if self.journal is not None:
            self.journal.log_export(name, document.to_xml().decode("utf-8"))
        return self.vsr.publish(document)

    def withdraw_service(self, name: str) -> SimFuture:
        if self.down:
            raise GatewayError(f"island {self.island!r} gateway is down")
        self._local.pop(name, None)
        if self.journal is not None:
            self.journal.log_withdraw(name)
        return self.vsr.withdraw(name)

    @property
    def exported_services(self) -> list[str]:
        return sorted(self._local)

    # -- inbound (the protocol's server side calls this) -----------------------------

    def dispatch_local(self, call: ServiceCall) -> SimFuture:
        """Execute a neutral call against a locally exported service."""
        self.calls_in += 1
        self._m_calls_in.inc()
        tracer = self.obs.tracer
        span = NULL_SPAN
        if tracer.enabled:
            # Join the caller's trace: explicit context on the call (set by
            # invoke() or re-attached from X-Trace), else the ambient span
            # (the SOAP server span).  Never start a fresh root here —
            # untraced polls and heartbeats must stay untraced.
            parent = call.trace or tracer.current()
            if parent is not None:
                span = tracer.start_span(
                    f"vsg.dispatch {call.service}.{call.operation}",
                    island=self.island,
                    kind="server",
                    parent=parent,
                )
        if self._paused:
            # A paused gateway is alive but unresponsive: the call parks
            # until resume() and the *caller's* deadline decides its fate.
            span.annotate("gateway paused; call parked")
            parked: SimFuture = SimFuture()
            self._pause_queue.append((call, parked))
            if span.recording:
                parked.add_done_callback(lambda f: span.finish(f.exception()))
            return parked
        result = self._dispatch_now(call, span)
        if span.recording:
            result.add_done_callback(lambda f: span.finish(f.exception()))
        return result

    def _dispatch_now(self, call: ServiceCall, span: Any = NULL_SPAN) -> SimFuture:
        entry = self._local.get(call.service)
        if entry is None:
            return SimFuture.failed(
                ServiceNotFoundError(
                    f"island {self.island!r} exports no service {call.service!r}"
                )
            )
        interface, handler = entry
        try:
            operation = interface.operation(call.operation)
            checked_args = values.check_args(operation, call.args)
            # The dispatch span is ambient while the native handler runs,
            # so PCM-level spans (e.g. the X10 power-line write) nest here.
            with self.obs.tracer.activate(span):
                outcome = handler(call.operation, checked_args)
        except Exception as exc:
            return SimFuture.failed(exc)
        if isinstance(outcome, SimFuture):
            result: SimFuture = SimFuture()

            def on_done(future: SimFuture) -> None:
                exc = future.exception()
                if exc is not None:
                    result.set_exception(exc)
                    return
                try:
                    result.set_result(values.check_result(operation, future.result()))
                except ConversionError as check_exc:
                    result.set_exception(check_exc)

            outcome.add_done_callback(on_done)
            return result
        try:
            return SimFuture.completed(values.check_result(operation, outcome))
        except ConversionError as exc:
            return SimFuture.failed(exc)

    # -- outbound ------------------------------------------------------------

    def invoke(self, service: str, operation: str, args: list[Any]) -> SimFuture:
        """Call ``service.operation(*args)`` wherever it lives.

        Local services short-circuit (still through the neutral validation
        path).  Remote services are resolved through the VSR; a stale cache
        entry gets one retry after invalidation.
        """
        if self.down:
            # Even local calls fail while the process is cold-down: there
            # is no gateway to short-circuit through.
            return SimFuture.failed(
                GatewayError(f"island {self.island!r} gateway is down")
            )
        tracer = self.obs.tracer
        span = (
            tracer.start_span(
                f"vsg.invoke {service}.{operation}", island=self.island, kind="client"
            )
            if tracer.enabled
            else NULL_SPAN
        )
        call = ServiceCall(
            service=service,
            operation=operation,
            args=args,
            source_island=self.island,
            call_id=self._next_call_id,
            trace=span.context if span.recording else None,
        )
        self._next_call_id += 1
        started = self.sim.now
        if service in self._local:
            self.calls_local += 1
            self._m_calls_local.inc()
            span.set_attribute("target", "local")
            with tracer.activate(span):
                result = self.dispatch_local(call)
        else:
            with tracer.activate(span):
                result = self._invoke_remote(call, retried=False, span=span)

        def on_done(future: SimFuture) -> None:
            self._m_latency.observe(self.sim.now - started)
            span.finish(future.exception())

        result.add_done_callback(on_done)
        return result

    def _invoke_remote(
        self, call: ServiceCall, retried: bool, span: Any = NULL_SPAN
    ) -> SimFuture:
        self.calls_out += 1
        self._m_calls_out.inc()
        result: SimFuture = SimFuture()
        tracer = self.obs.tracer
        lookup = (
            tracer.start_span(
                f"vsr.lookup {call.service}", island=self.island, parent=call.trace
            )
            if tracer.enabled and call.trace is not None
            else NULL_SPAN
        )

        def on_resolved(future: SimFuture) -> None:
            exc = future.exception()
            if exc is not None:
                lookup.finish(exc)
                result.set_exception(exc)
                return
            document: WsdlDocument = future.result()
            target = document.context.get("island") or document.location
            lookup.set_attribute("target", target)
            lookup.finish()
            self._island_locations[target] = document.location
            remote = self.resilience.execute(
                target,
                lambda: self.protocol.call_remote(document.location, call),
                span=span,
            )

            def on_called(done: SimFuture) -> None:
                call_exc = done.exception()
                if call_exc is None:
                    result.set_result(done.result())
                    return
                if is_connectivity_failure(call_exc):
                    # The path (not the service) failed: any pooled
                    # keep-alive connection to that endpoint is suspect and
                    # must not serve the retry.
                    self.protocol.invalidate_location(document.location)
                if not retried and not isinstance(
                    call_exc, (ServiceNotFoundError, CircuitOpenError)
                ):
                    # The cached location may be stale: refresh and retry once.
                    self.stale_refreshes += 1
                    self._m_stale.inc()
                    span.annotate(f"stale location; refreshing {call.service}")
                    self.vsr.invalidate(call.service)
                    retry = self._invoke_remote(call, retried=True, span=span)
                    retry.add_done_callback(
                        lambda f: result.set_exception(f.exception())
                        if f.exception() is not None
                        else result.set_result(f.result())
                    )
                    return
                result.set_exception(call_exc)

            remote.add_done_callback(on_called)

        self.vsr.find_by_name(call.service).add_done_callback(on_resolved)
        return result

    # -- events ------------------------------------------------------------

    def publish_event(self, topic: str, payload: Any) -> None:
        if self.down:
            return  # fire-and-forget into a dead process goes nowhere
        self.events.publish(topic, payload)

    def subscribe(self, topic: str, callback: EventCallback) -> SimFuture:
        if self.down:
            raise GatewayError(f"island {self.island!r} gateway is down")
        return self.events.subscribe(topic, callback)

    def subscribe_many(self, topics: list[str], callback: EventCallback) -> SimFuture:
        """Batched :meth:`subscribe`: one announcement round trip per
        remote gateway for the whole topic list."""
        if self.down:
            raise GatewayError(f"island {self.island!r} gateway is down")
        return self.events.subscribe_many(topics, callback)

    # -- resilience ------------------------------------------------------------

    def _on_breaker_open(self, island: str) -> None:
        """A circuit breaker opening means the island is unreachable: evict
        any pooled interchange connection so the half-open probe (and
        everything after) starts from a fresh handshake."""
        location = self._island_locations.get(island)
        if location:
            self.protocol.invalidate_location(location)
        self.events.on_island_unreachable(island)

    @property
    def paused(self) -> bool:
        return self._paused

    def pause(self) -> None:
        """Stop answering inbound calls (they park) without dropping frames:
        the fault injector's model of a wedged-but-connected gateway."""
        self._paused = True

    def resume(self) -> None:
        """Process every call parked while paused, in arrival order."""
        self._paused = False
        parked, self._pause_queue = self._pause_queue, []
        for call, future in parked:
            self._dispatch_now(call).add_done_callback(
                lambda done, f=future: f.set_exception(done.exception())
                if done.exception() is not None
                else f.set_result(done.result())
            )

    def resilience_stats(self) -> dict[str, Any]:
        """Counters the chaos benchmarks read: executor totals, per-island
        breaker state, directory degradation, heartbeat health."""
        stats = self.resilience.stats()
        stats.update(
            {
                "island": self.island,
                "calls_out": self.calls_out,
                "calls_in": self.calls_in,
                "stale_refreshes": self.stale_refreshes,
                "vsr_degraded_reads": self.vsr.degraded_reads,
                "vsr_lookup_failures": self.vsr.lookup_failures,
                "health": self.heartbeat.snapshot(),
            }
        )
        return stats

    # -- lifecycle ------------------------------------------------------------

    def register_with_directory(self) -> SimFuture:
        location = self.protocol.control_location()
        future = self.vsr.register_gateway(self.island, location)
        if self.journal is not None:

            def on_registered(done: SimFuture) -> None:
                # Journal only a *confirmed* registration; renewed_at is
                # the lease stamp a re-registration renews.
                if done.exception() is None and self.journal is not None:
                    self.journal.log_register(self.island, location, self.sim.now)

            future.add_done_callback(on_registered)
        return future

    def unregister_with_directory(self) -> SimFuture:
        """Remove this gateway from the VSR registry, so peers stop
        announcing subscriptions to it and prune their poll loops."""
        future = self.vsr.unregister_gateway(self.island)
        if self.journal is not None:

            def on_unregistered(done: SimFuture) -> None:
                if done.exception() is None and self.journal is not None:
                    self.journal.log_unregister()

            future.add_done_callback(on_unregistered)
        return future

    # -- durable state (cold crash / recovery) ---------------------------------

    def attach_journal(self, journal: Any) -> None:
        """Opt this gateway into durable state.  Everything journaled from
        here on; without a journal the gateway keeps the historical warm
        restart semantics (and a byte-identical wire)."""
        self.journal = journal

    @property
    def down(self) -> bool:
        """True while a cold crash has this gateway's process stopped
        (journal attached and its store closed).  Warm crashes — no
        journal — only drop the interfaces, so ``down`` stays False."""
        return self.journal is not None and self.journal.store.closed

    def add_crash_listener(self, listener: Callable[[], None]) -> None:
        self.crash_listeners.append(listener)

    def add_recovery_listener(
        self, listener: Callable[[dict[str, Any]], None]
    ) -> None:
        self.recovery_listeners.append(listener)

    def on_crash(self) -> None:
        """Cold crash (fault injector, after ``node.crash()``): the store
        closes mid-write exactly where the WAL tail stands, and every piece
        of journaled in-memory state is wiped — what ``recover`` rebuilds
        must come from the WAL alone."""
        if self.journal is None:
            return
        self.cold_crashes += 1
        self.journal.store.close()
        self.events.on_crash()
        # The process's sockets die with it: established connections and
        # pending connects vanish (no frames — the interfaces are down),
        # so peers get RST on their next send instead of feeding replies
        # into a stale FIFO.  Listeners survive as the reborn process's
        # port bindings.
        self.stack.reboot()
        self.vsr.forget_caches()
        for listener in list(self.crash_listeners):
            listener()

    def recover(self) -> dict[str, Any]:
        """Cold-restart rejoin (fault injector, after ``node.restart()``):
        reopen the store, replay the WAL into a state snapshot, reinstall
        it, re-announce to the directory, and resume event delivery —
        push channels reopen through the re-announce path (or the poll
        loops carry on) and retained unacked batches are redelivered.
        Returns the replayed state (tests inspect it)."""
        if self.journal is None:
            return {}
        self.recoveries += 1
        self.journal.store.reopen()
        state = self.journal.replay()
        self.events.restore(state)
        if state["registered"] is not None:
            # Re-registering renews the lease and re-lists us for peers.
            self.register_with_directory()
        for service in sorted(state["documents"]):
            # Republish straight through the client: export_service already
            # journaled the document, so no new WAL records are written.
            self.vsr.publish(
                WsdlDocument.from_xml(state["documents"][service].encode("utf-8"))
            )
        self.events.resume_delivery(state)
        for listener in list(self.recovery_listeners):
            listener(state)
        return state

    def shutdown(self) -> None:
        self.heartbeat.stop()
        self.events.stop_polling()
        self.protocol.stop()
