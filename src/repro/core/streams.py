"""Stream meta-middleware — the paper's future work, implemented.

Section 6: "another Meta middleware should be developed for some critical
applications such as multimedia services ... novel CORBA-based middleware
which applies dynamic service activation, conversion of multimedia
streams ... And the middleware would be able to coexist with our
framework described in this paper."

This module is that second meta-middleware.  It coexists with the
call-oriented VSG framework (it reuses each island's gateway node and
transport stack, but runs its own TCP relay protocol on a separate port)
and does the one thing the VSG cannot: move continuous media between
islands.

What it deliberately does *not* fix: physics.  A DV stream is 28.8 Mb/s;
the backbone is 10 Mb/s Ethernet.  Relaying therefore performs the
"conversion of multimedia streams" the paper anticipates — a source
format is transcoded down to the best format that fits the bottleneck
(DV → MPEG2 → AUDIO), and the delivered quality is part of the result the
A3 ablation reports.  Forcing an unfittable format is allowed and
measurably collapses (unbounded queueing), reproducing *why* conversion
is mandatory.
"""

from __future__ import annotations

import struct
from typing import Any, Callable

from repro.errors import FrameworkError, StreamNotBridgeableError
from repro.net.simkernel import Event, SimFuture
from repro.net.transport import Connection, TransportStack
from repro.havi.streams import FORMAT_BANDWIDTH

STREAM_RELAY_PORT = 9500
_TICK = 0.25
_HEADER = struct.Struct("!I")  # chunk length

#: Formats ordered by descending quality; transcoding walks down this list.
FORMAT_LADDER = ("DV", "MPEG2", "AUDIO")


def fit_format(requested: str, bottleneck_bps: float) -> str:
    """The best format at or below ``requested`` that fits the bottleneck
    (with 20% headroom left for the rest of the home's traffic)."""
    if requested not in FORMAT_BANDWIDTH:
        raise FrameworkError(f"unknown stream format {requested!r}")
    usable = bottleneck_bps * 0.8
    start = FORMAT_LADDER.index(requested)
    for candidate in FORMAT_LADDER[start:]:
        if FORMAT_BANDWIDTH[candidate] <= usable:
            return candidate
    raise StreamNotBridgeableError(
        f"no format at or below {requested!r} fits a "
        f"{bottleneck_bps / 1e6:.0f} Mb/s bottleneck"
    )


class StreamSink:
    """Anything that accepts relayed stream bytes.

    HAVi FCMs already have ``on_stream_data``; :meth:`wrap_fcm` adapts
    them.  Arbitrary callables work too.
    """

    def __init__(self, deliver: Callable[[int], None]) -> None:
        self._deliver = deliver
        self.bytes_received = 0
        self.first_byte_at: float | None = None

    def deliver(self, now: float, nbytes: int) -> None:
        if self.first_byte_at is None:
            self.first_byte_at = now
        self.bytes_received += nbytes
        self._deliver(nbytes)

    @staticmethod
    def wrap_fcm(fcm: Any) -> "StreamSink":
        return StreamSink(lambda nbytes: fcm.on_stream_data(None, nbytes))

    @staticmethod
    def counter() -> "StreamSink":
        return StreamSink(lambda nbytes: None)


class RelayedStream:
    """One live relayed stream (source side owns the pump)."""

    def __init__(
        self,
        meta: "StreamMetaMiddleware",
        stream_id: int,
        source_island: str,
        sink_island: str,
        requested_format: str,
        delivered_format: str,
        connection: Connection,
        opened_at: float,
    ) -> None:
        self.meta = meta
        self.stream_id = stream_id
        self.source_island = source_island
        self.sink_island = sink_island
        self.requested_format = requested_format
        self.delivered_format = delivered_format
        self.connection = connection
        self.opened_at = opened_at
        self.bytes_sent = 0
        self.active = True
        self._pump_event: Event | None = None
        self._start_pump()

    @property
    def transcoded(self) -> bool:
        return self.delivered_format != self.requested_format

    @property
    def bandwidth_bps(self) -> int:
        return FORMAT_BANDWIDTH[self.delivered_format]

    def _start_pump(self) -> None:
        self._pump_event = self.meta.sim.schedule(_TICK, self._pump)

    def _pump(self) -> None:
        if not self.active:
            return
        if self.connection.state != Connection.ESTABLISHED:
            self.close()
            return
        nbytes = int(self.bandwidth_bps / 8 * _TICK)
        chunk = _HEADER.pack(nbytes)
        # Chunk header + synthetic payload; payload bytes are generated,
        # not stored, so we send a small header plus a sized filler.
        self.connection.send(chunk + b"\x00" * nbytes)
        self.bytes_sent += nbytes
        self._pump_event = self.meta.sim.schedule(_TICK, self._pump)

    def close(self) -> None:
        if not self.active:
            return
        self.active = False
        if self._pump_event is not None:
            self._pump_event.cancel()
        self.connection.close()
        self.meta._forget(self)

    def stats(self) -> dict[str, Any]:
        elapsed = max(1e-9, self.meta.sim.now - self.opened_at)
        return {
            "requested_format": self.requested_format,
            "delivered_format": self.delivered_format,
            "transcoded": self.transcoded,
            "bytes_sent": self.bytes_sent,
            "offered_bps": self.bytes_sent * 8 / elapsed,
        }


class StreamMetaMiddleware:
    """The second meta-middleware: stream relays between islands.

    ``attach(island)`` starts a relay receiver on that island's gateway;
    ``relay(...)`` opens a source-paced stream to a sink on another
    island.  Coexistence with the VSG framework is by construction: both
    use the same gateway nodes, different ports and protocols.
    """

    def __init__(self, mm) -> None:
        self.mm = mm
        self.sim = mm.sim
        self._receivers: dict[str, "_Receiver"] = {}
        self._streams: list[RelayedStream] = []
        self._next_stream_id = 1

    # -- wiring ------------------------------------------------------------

    def attach(self, island_name: str) -> None:
        """Enable stream relaying on one island's gateway."""
        if island_name in self._receivers:
            return
        island = self.mm.island(island_name)
        self._receivers[island_name] = _Receiver(self, island_name, island.stack)

    def register_sink(self, island_name: str, name: str, sink: StreamSink) -> None:
        """Expose a named sink on an island (e.g. a display FCM)."""
        receiver = self._receivers.get(island_name)
        if receiver is None:
            raise FrameworkError(f"island {island_name!r} has no stream receiver attached")
        receiver.sinks[name] = sink

    # -- opening streams ------------------------------------------------------

    def relay(
        self,
        source_island: str,
        sink_island: str,
        sink_name: str,
        fmt: str = "DV",
        force_format: bool = False,
    ) -> SimFuture:
        """Open a relayed stream; resolves to a :class:`RelayedStream`.

        Unless ``force_format`` is set, the stream is transcoded down to
        the best format the backbone can carry (the paper's "conversion of
        multimedia streams").
        """
        source = self.mm.island(source_island)
        sink_receiver = self._receivers.get(sink_island)
        if sink_island not in self._receivers:
            return SimFuture.failed(
                FrameworkError(f"island {sink_island!r} has no stream receiver attached")
            )
        if sink_name not in sink_receiver.sinks:
            return SimFuture.failed(
                FrameworkError(f"island {sink_island!r} exposes no sink {sink_name!r}")
            )
        backbone_bps = self.mm.backbone.bandwidth_bps
        delivered = fmt if force_format else fit_format(fmt, backbone_bps)

        result: SimFuture = SimFuture()
        dst_address = sink_receiver.stack.local_address(self.mm.backbone)

        def on_connected(future: SimFuture) -> None:
            exc = future.exception()
            if exc is not None:
                result.set_exception(exc)
                return
            connection: Connection = future.result()
            # First message names the sink.
            header = sink_name.encode("utf-8")
            connection.send(_HEADER.pack(len(header)) + header)
            stream = RelayedStream(
                self,
                self._next_stream_id,
                source_island,
                sink_island,
                fmt,
                delivered,
                connection,
                self.sim.now,
            )
            self._next_stream_id += 1
            self._streams.append(stream)
            result.set_result(stream)

        source.stack.connect(dst_address, STREAM_RELAY_PORT).add_done_callback(on_connected)
        return result

    def _forget(self, stream: RelayedStream) -> None:
        if stream in self._streams:
            self._streams.remove(stream)

    @property
    def active_streams(self) -> int:
        return len(self._streams)


class _Receiver:
    """Sink-side relay endpoint on one island's gateway."""

    def __init__(self, meta: StreamMetaMiddleware, island: str, stack: TransportStack) -> None:
        self.meta = meta
        self.island = island
        self.stack = stack
        self.sinks: dict[str, StreamSink] = {}
        self._listener = stack.listen(STREAM_RELAY_PORT, self._on_connection)

    def _on_connection(self, connection: Connection) -> None:
        state = {"buffer": b"", "sink": None}

        def on_data(_conn: Connection, data: bytes) -> None:
            state["buffer"] += data
            while True:
                buffer = state["buffer"]
                if len(buffer) < _HEADER.size:
                    return
                (length,) = _HEADER.unpack_from(buffer)
                if len(buffer) < _HEADER.size + length:
                    return
                chunk = buffer[_HEADER.size : _HEADER.size + length]
                state["buffer"] = buffer[_HEADER.size + length :]
                if state["sink"] is None:
                    # First frame: the sink name.
                    sink = self.sinks.get(chunk.decode("utf-8", errors="replace"))
                    if sink is None:
                        connection.close()
                        return
                    state["sink"] = sink
                else:
                    state["sink"].deliver(self.meta.sim.now, length)

        connection.set_receiver(on_data)
