"""Runtime proxy generation — the reproduction's Javassist.

The paper (Section 4.1): "Automatically we can generate a proxy object,
such as client proxy and server proxy, for certain service using the
interface of that service", done there with Javassist bytecode rewriting.
In Python the same effect — a *typed class synthesised at runtime from an
interface description, with zero hand-written per-service glue* — comes
from building method functions and assembling them with ``type()``.

Generated proxies validate argument counts and types against the interface
before anything touches the wire, exactly what a generated strongly-typed
Java proxy gives you.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import InterfaceError
from repro.net.simkernel import SimFuture
from repro.obs import NOOP_OBS
from repro.core import values
from repro.core.interface import Operation, ServiceInterface

#: An invoker bridges a generated proxy to its transport:
#: ``invoker(operation_name, args) -> result`` (often a SimFuture).
Invoker = Callable[[str, list[Any]], Any]


def _make_method(operation: Operation) -> Callable[..., Any]:
    """Build one proxy method for ``operation``."""

    def method(self: Any, *args: Any) -> Any:
        checked = values.check_args(operation, list(args))
        tracer = self._obs.tracer
        if not tracer.enabled:
            return self._invoker(operation.name, checked)
        # Proxy dispatch is where a native client enters the bridge, so
        # this span is usually the root of a bridged call's trace.
        span = tracer.start_span(
            f"proxy.{self._interface.name}.{operation.name}",
            island=self._obs_island,
            kind="proxy",
        )
        with tracer.activate(span):
            result = self._invoker(operation.name, checked)
        if isinstance(result, SimFuture):
            result.add_done_callback(lambda f: span.finish(f.exception()))
        else:
            span.finish()
        return result

    method.__name__ = operation.name
    method.__qualname__ = operation.name
    method.__doc__ = _docstring_for(operation)
    return method


def _docstring_for(operation: Operation) -> str:
    params = ", ".join(f"{param.name}: {param.type.name}" for param in operation.params)
    tail = " (oneway)" if operation.oneway else ""
    return f"{operation.name}({params}) -> {operation.returns.name}{tail} [generated]"


class GeneratedProxyBase:
    """Common base for all generated proxy classes."""

    _interface: ServiceInterface

    def __init__(self, invoker: Invoker, *, obs: Any = None, island: str = "") -> None:
        self._invoker = invoker
        self._obs = obs if obs is not None else NOOP_OBS
        self._obs_island = island

    @property
    def interface(self) -> ServiceInterface:
        return self._interface

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} proxy for {self._interface.name}>"


def interface_fingerprint(interface: ServiceInterface) -> tuple:
    """Structural signature of an interface: name plus every operation's
    name, typed parameter list, return type and oneway flag.  Two
    interfaces with the same fingerprint are interchangeable for proxy
    purposes, so they share one synthesized class."""
    return (
        interface.name,
        tuple(
            (
                operation.name,
                tuple((param.name, param.type) for param in operation.params),
                operation.returns,
                operation.oneway,
            )
            for operation in interface.operations
        ),
    )


#: Process-wide class cache keyed by :func:`interface_fingerprint` —
#: repeated generation for the same interface shape (the common case: every
#: island importing the same service) costs a dict lookup, not a ``type()``
#: synthesis.  Amortized generation cost is what experiment C6 measures.
_CLASS_CACHE: dict[tuple, type] = {}


def clear_proxy_class_cache() -> None:
    """Drop the process-wide class cache (cold-start benchmarks)."""
    _CLASS_CACHE.clear()


def _synthesize_proxy_class(interface: ServiceInterface) -> type:
    namespace: dict[str, Any] = {"_interface": interface}
    for operation in interface.operations:
        if operation.name.startswith("_") or operation.name in ("interface",):
            raise InterfaceError(
                f"operation name {operation.name!r} collides with proxy internals"
            )
        namespace[operation.name] = _make_method(operation)
    class_name = f"{interface.name}Proxy"
    return type(class_name, (GeneratedProxyBase,), namespace)


def generate_proxy_class(interface: ServiceInterface) -> type:
    """Synthesise (or reuse) a proxy class for ``interface``.

    The class has one typed method per operation; instances take an
    ``invoker`` callable.  Operation names that would collide with proxy
    plumbing are rejected.  Classes are cached process-wide by interface
    fingerprint, so repeated calls for the same shape return the same
    class object.
    """
    key = interface_fingerprint(interface)
    cached = _CLASS_CACHE.get(key)
    if cached is None:
        cached = _synthesize_proxy_class(interface)
        _CLASS_CACHE[key] = cached
        return cached
    if cached._interface is interface:
        return cached
    # Same shape but a different interface object: a trivial subclass keeps
    # the caller's instance reachable via ``proxy.interface`` without
    # re-synthesizing any methods (the expensive part).
    return type(cached.__name__, (cached,), {"_interface": interface})


class ProxyFactory:
    """Caches generated classes per interface shape.

    The cache key is the full structural signature, so two services sharing
    an interface share one class (as Javassist-generated classes would be
    shared per Java interface).  The per-factory counters track what *this*
    factory asked for; class objects themselves come from the process-wide
    fingerprint cache, so even a fresh factory reuses classes an earlier
    one synthesized.
    """

    def __init__(self, obs: Any = None, island: str = "") -> None:
        self._cache: dict[tuple, type] = {}
        self.classes_generated = 0
        self.cache_hits = 0
        self.obs = obs if obs is not None else NOOP_OBS
        self.island = island

    @staticmethod
    def _signature(interface: ServiceInterface) -> tuple:
        return interface_fingerprint(interface)

    def proxy_class(self, interface: ServiceInterface) -> type:
        key = self._signature(interface)
        cached = self._cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        generated = generate_proxy_class(interface)
        self._cache[key] = generated
        self.classes_generated += 1
        return generated

    def create(self, interface: ServiceInterface, invoker: Invoker) -> Any:
        """Generate (or reuse) the class and instantiate it."""
        return self.proxy_class(interface)(
            invoker, obs=self.obs, island=self.island
        )
