"""Protocol Conversion Manager base class (paper Section 3.2).

A PCM owns both proxy directions for one middleware island:

- **Client Proxy (CP)** — :meth:`export_services`: discover local services,
  describe each as a :class:`~repro.core.interface.ServiceInterface`, and
  register them with the VSG (which publishes WSDL to the VSR).  Remote
  clients then invoke them through the gateway.
- **Server Proxy (SP)** — :meth:`import_service`: given a remote service's
  WSDL, materialise a *native* facade inside the local middleware so
  unmodified local clients can call it ("It is not necessary to change
  legacy clients and services", Section 3).

Both directions use the generated-proxy machinery in
:mod:`repro.core.proxygen`; nothing per-service is hand-written.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ConversionError
from repro.net.simkernel import SimFuture
from repro.soap.wsdl import WsdlDocument
from repro.core.interface import ServiceInterface
from repro.core.proxygen import ProxyFactory
from repro.core.vsg import VirtualServiceGateway


class ProtocolConversionManager:
    """Base class for per-middleware PCMs."""

    #: Human/machine-readable middleware name; lands in WSDL context.
    middleware_name = "abstract"

    def __init__(self, vsg: VirtualServiceGateway) -> None:
        self.vsg = vsg
        self.sim = vsg.sim
        self.proxies = ProxyFactory(obs=vsg.obs, island=vsg.island)
        self.exported: dict[str, ServiceInterface] = {}
        self.imported: dict[str, WsdlDocument] = {}

    # -- Client Proxy direction ---------------------------------------------------

    def export_services(self) -> SimFuture:
        """Discover local services and export each through the VSG.

        Resolves to the list of exported service names.  Subclasses
        implement :meth:`_discover_local_services`.
        """
        result: SimFuture = SimFuture()

        def on_discovered(future: SimFuture) -> None:
            exc = future.exception()
            if exc is not None:
                result.set_exception(exc)
                return
            discovered = [
                entry for entry in future.result() if entry[0] not in self.exported
            ]
            if not discovered:
                result.set_result([])
                return
            pending = len(discovered)
            names: list[str] = []

            def one_exported(name: str, done: SimFuture) -> None:
                nonlocal pending
                if done.exception() is None:
                    names.append(name)
                pending -= 1
                if pending == 0 and not result.done():
                    result.set_result(sorted(names))

            for name, interface, handler, context in discovered:
                self.exported[name] = interface
                full_context = {"middleware": self.middleware_name}
                full_context.update(context)
                export_future = self.vsg.export_service(
                    name, interface, handler, full_context
                )
                export_future.add_done_callback(
                    lambda done, exported_name=name: one_exported(exported_name, done)
                )

        self._discover_local_services().add_done_callback(on_discovered)
        return result

    def _discover_local_services(self) -> SimFuture:
        """Resolve to ``[(name, interface, handler, context), ...]``.

        ``handler(operation, args)`` executes the operation against the
        *local* middleware and returns a value or SimFuture.
        """
        raise NotImplementedError

    # -- Server Proxy direction ---------------------------------------------------

    def import_service(self, document: WsdlDocument) -> SimFuture:
        """Materialise a remote service natively in the local middleware.

        The default implementation records the import and delegates the
        middleware-specific materialisation to :meth:`_materialise`.
        Resolves to True when the facade is in place.
        """
        if document.context.get("island") == self.vsg.island:
            raise ConversionError(
                f"refusing to import {document.service!r} into its own island"
            )
        interface = ServiceInterface.from_wsdl(document)
        self.imported[document.service] = document
        return self._materialise(document, interface)

    def _materialise(self, document: WsdlDocument, interface: ServiceInterface) -> SimFuture:
        raise NotImplementedError

    # -- shared plumbing ------------------------------------------------------------

    def remote_invoker(self, service: str):
        """An invoker closure calling ``service`` through the VSG — the
        transport behind every Server Proxy facade."""

        def invoke(operation: str, args: list[Any]) -> SimFuture:
            return self.vsg.invoke(service, operation, args)

        return invoke

    def remote_proxy(self, document: WsdlDocument) -> Any:
        """A generated typed proxy for a remote service (used by tests and
        by PCMs whose middleware can host Python callables directly)."""
        interface = ServiceInterface.from_wsdl(document)
        return self.proxies.create(interface, self.remote_invoker(document.service))

    def shutdown(self) -> None:
        """Release middleware resources.  Subclasses extend."""
