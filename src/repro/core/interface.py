"""Neutral service interfaces — the framework's type system.

A PCM describes every local service as a :class:`ServiceInterface` so any
other island can call it; the VSR stores the same information as WSDL.
Types map 1:1 onto the XSD names WSDL uses and onto the value shapes every
substrate codec supports, which is what makes conversion lossless.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any

from repro.errors import InterfaceError
from repro.soap.wsdl import WsdlDocument, WsdlOperation, WsdlPart
from repro.soap.xmlutil import is_xml_name


class ValueType(Enum):
    """Neutral value types."""

    INT = "int"
    FLOAT = "double"
    STRING = "string"
    BOOL = "boolean"
    BYTES = "base64"
    ANY = "anyType"  # lists, structs, or anything marshallable
    VOID = "void"

    @property
    def xsd_name(self) -> str:
        return self.value

    @staticmethod
    def from_xsd(name: str) -> "ValueType":
        for member in ValueType:
            if member.value == name:
                return member
        raise InterfaceError(f"unknown XSD type name {name!r}")


@dataclass(frozen=True)
class Parameter:
    """One typed operation parameter."""

    name: str
    type: ValueType

    def __post_init__(self) -> None:
        if not is_xml_name(self.name):
            raise InterfaceError(f"parameter name {self.name!r} is not usable")
        if self.type == ValueType.VOID:
            raise InterfaceError(f"parameter {self.name!r} cannot be void")


@dataclass(frozen=True)
class Operation:
    """One service operation."""

    name: str
    params: tuple[Parameter, ...] = ()
    returns: ValueType = ValueType.VOID
    oneway: bool = False

    def __post_init__(self) -> None:
        if not is_xml_name(self.name):
            raise InterfaceError(f"operation name {self.name!r} is not usable")
        if self.oneway and self.returns != ValueType.VOID:
            raise InterfaceError(f"oneway operation {self.name!r} cannot return a value")
        seen = set()
        for param in self.params:
            if param.name in seen:
                raise InterfaceError(
                    f"operation {self.name!r} has duplicate parameter {param.name!r}"
                )
            seen.add(param.name)


@dataclass(frozen=True)
class ServiceInterface:
    """The complete callable surface of one service."""

    name: str
    operations: tuple[Operation, ...] = ()

    def __post_init__(self) -> None:
        if not is_xml_name(self.name):
            raise InterfaceError(f"service name {self.name!r} is not usable")
        seen = set()
        for operation in self.operations:
            if operation.name in seen:
                raise InterfaceError(
                    f"service {self.name!r} declares operation {operation.name!r} twice"
                )
            seen.add(operation.name)

    def operation(self, name: str) -> Operation:
        for operation in self.operations:
            if operation.name == name:
                return operation
        raise InterfaceError(f"service {self.name!r} has no operation {name!r}")

    def has_operation(self, name: str) -> bool:
        return any(operation.name == name for operation in self.operations)

    # -- WSDL round trip ------------------------------------------------------

    def to_wsdl(self, location: str, context: dict[str, str] | None = None) -> WsdlDocument:
        wsdl_operations = tuple(
            WsdlOperation(
                name=operation.name,
                inputs=tuple(
                    WsdlPart(param.name, param.type.xsd_name) for param in operation.params
                ),
                output=operation.returns.xsd_name,
                oneway=operation.oneway,
            )
            for operation in self.operations
        )
        return WsdlDocument(
            service=self.name,
            location=location,
            operations=wsdl_operations,
            context=dict(context or {}),
        )

    @staticmethod
    def from_wsdl(document: WsdlDocument) -> "ServiceInterface":
        operations = tuple(
            Operation(
                name=wsdl_operation.name,
                params=tuple(
                    Parameter(part.name, ValueType.from_xsd(part.type))
                    for part in wsdl_operation.inputs
                ),
                returns=ValueType.from_xsd(wsdl_operation.output),
                oneway=wsdl_operation.oneway,
            )
            for wsdl_operation in document.operations
        )
        return ServiceInterface(name=document.service, operations=operations)


def simple_interface(name: str, operations: dict[str, tuple[Any, ...]]) -> ServiceInterface:
    """Terse construction helper used heavily in tests and PCMs.

    ``operations`` maps operation name to a tuple of parameter type names,
    optionally ending with ``'->'+return_type``::

        simple_interface("Lamp", {"turn_on": (), "dim": ("int", "->int")})
    """
    built = []
    for op_name, spec in operations.items():
        returns = ValueType.VOID
        params = []
        for index, entry in enumerate(spec):
            if isinstance(entry, str) and entry.startswith("->"):
                returns = ValueType.from_xsd(entry[2:])
            else:
                type_name = entry.value if isinstance(entry, ValueType) else str(entry)
                params.append(Parameter(f"arg{index}", ValueType.from_xsd(type_name)))
        built.append(Operation(op_name, tuple(params), returns))
    return ServiceInterface(name, tuple(built))
