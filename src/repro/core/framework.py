"""MetaMiddleware — assembles gateways, PCMs and the repository.

The paper's Figure 1 topology: one VSG + PCM per middleware island, all
reachable over a backbone where the UDDI directory (the VSR's authoritative
copy) also lives.  ``connect()`` runs the paper's integration sequence:
every island exports its services (Client Proxies), then every island
imports every *foreign* service (Server Proxies) so local clients see them
natively.

Adding a new middleware later — the paper's headline "new middleware can be
participated in our framework effortlessly" — is :meth:`add_island`
followed by :meth:`refresh`, and is what experiment C5 measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import FrameworkError
from repro.net.network import Network
from repro.net.node import Node
from repro.net.segment import Segment
from repro.net.simkernel import SimFuture, Simulator
from repro.net.transport import TransportStack
from repro.obs import NOOP_OBS
from repro.soap.http import InterchangeConfig
from repro.soap.server import SoapServer
from repro.soap.wsdl import WsdlDocument
from repro.core.gateway_soap import DEFAULT_GATEWAY_PORT, SoapGatewayProtocol
from repro.core.pcm import ProtocolConversionManager
from repro.core.resilience import CallPolicy
from repro.core.shard import FederationConfig, VsrFederation
from repro.core.vsg import GatewayProtocol, VirtualServiceGateway
from repro.core.vsr import UddiSoapService, VsrClient

#: Builds a PCM for an island: receives the island record, returns the PCM.
PcmFactory = Callable[["Island"], ProtocolConversionManager]
#: Builds a gateway protocol for an island's stack.
ProtocolFactory = Callable[[TransportStack], GatewayProtocol]


@dataclass
class Island:
    """Everything belonging to one middleware island."""

    name: str
    segment: Segment | None
    node: Node
    stack: TransportStack
    gateway: VirtualServiceGateway
    pcm: ProtocolConversionManager | None = None
    #: Names of services imported into this island so far.
    imported: set[str] = field(default_factory=set)


class MetaMiddleware:
    """The assembled framework for one home."""

    def __init__(
        self,
        network: Network,
        backbone: Segment,
        directory_port: int = DEFAULT_GATEWAY_PORT,
        policy: CallPolicy | None = None,
        interchange: InterchangeConfig | None = None,
        obs: Any = None,
        federation: FederationConfig | None = None,
    ) -> None:
        self.network = network
        self.sim: Simulator = network.sim
        self.backbone = backbone
        self.directory_port = directory_port
        #: Default resilience policy for islands that don't bring their own.
        self.policy = policy or CallPolicy()
        #: Default interchange config (None = legacy wire behaviour) used
        #: by islands that don't bring their own protocol factory.
        self.interchange = interchange
        #: Observability bundle (``repro.obs``) shared by every island and
        #: the directory; the default no-op bundle records nothing.
        self.obs = obs if obs is not None else NOOP_OBS
        self.islands: dict[str, Island] = {}
        if federation is not None:
            # Sharded, replicated directory plane (repro.core.shard): the
            # legacy directory attributes alias shard 0's primary so
            # everything that pokes "the" directory node keeps working.
            self.federation = VsrFederation(
                network, backbone, federation, port=directory_port, obs=self.obs
            )
            primary = self.federation.replicas[0][0]
            self.directory_node = primary.node
            self.directory_stack = primary.stack
            self.directory_soap = primary.server
            self.uddi = self.federation.uddi
            self.directory_address = primary.endpoint.address
        else:
            self.federation = None
            # The UDDI directory node on the backbone.
            self.directory_node = network.create_node("uddi-directory")
            network.attach(self.directory_node, backbone)
            self.directory_stack = TransportStack(self.directory_node, network)
            self.directory_soap = SoapServer(self.directory_stack, directory_port).observe(
                self.obs, "uddi-directory"
            )
            self.uddi = UddiSoapService(self.directory_soap)
            self.directory_address = self.directory_stack.local_address(backbone)

    # -- island management ----------------------------------------------------------

    def add_island(
        self,
        name: str,
        segment: Segment | str | None,
        pcm_factory: PcmFactory | None = None,
        protocol_factory: ProtocolFactory | None = None,
        poll_interval: float = 2.0,
        policy: CallPolicy | None = None,
        interchange: InterchangeConfig | None = None,
    ) -> Island:
        """Create the island's gateway node (multi-homed: island segment +
        backbone), VSG, and — if a factory is given — its PCM.  ``policy``
        overrides the framework-wide :class:`CallPolicy` for this island;
        ``interchange`` likewise overrides the framework-wide fast-path
        config for the island's SOAP protocol and VSR client."""
        if name in self.islands:
            raise FrameworkError(f"island {name!r} already exists")
        if isinstance(segment, str):
            segment = self.network.segment(segment)
        policy = policy or self.policy
        interchange = interchange or self.interchange
        node = self.network.create_node(f"gw-{name}")
        self.network.attach(node, self.backbone)
        if segment is not None and segment is not self.backbone:
            self.network.attach(node, segment)
        stack = TransportStack(node, self.network)
        vsr_client = VsrClient(
            stack,
            self.directory_address,
            self.directory_port,
            lookup_deadline=policy.directory_deadline,
            interchange=interchange,
            obs=self.obs,
            label=name,
            federation=self.federation.routing() if self.federation else None,
        )
        if protocol_factory is None:
            protocol = SoapGatewayProtocol(stack, interchange=interchange)
        else:
            protocol = protocol_factory(stack)
        gateway = VirtualServiceGateway(
            name, node, stack, protocol, vsr_client,
            poll_interval=poll_interval, policy=policy, obs=self.obs,
        )
        island = Island(name=name, segment=segment, node=node, stack=stack, gateway=gateway)
        if pcm_factory is not None:
            island.pcm = pcm_factory(island)
        self.islands[name] = island
        return island

    def island(self, name: str) -> Island:
        try:
            return self.islands[name]
        except KeyError:
            raise FrameworkError(f"no island named {name!r}") from None

    # -- integration sequence ----------------------------------------------------------

    def connect(self) -> SimFuture:
        """Run the full integration: register gateways, export everything,
        import everything foreign.  Resolves to the service catalog."""
        if self.federation is not None:
            self.federation.start_sync()
        return self._sequence(
            [self._register_gateways, self._export_all, self._import_all],
            final=self.catalog,
        )

    def refresh(self) -> SimFuture:
        """Re-run export/import to pick up islands or services added since
        the last connect (experiment C5's 'join effortlessly' path)."""
        return self.connect()

    def _register_gateways(self) -> SimFuture:
        futures = [
            island.gateway.register_with_directory() for island in self.islands.values()
        ]
        return _gather(futures)

    def _export_all(self) -> SimFuture:
        futures = [
            island.pcm.export_services()
            for island in self.islands.values()
            if island.pcm is not None
        ]
        return _gather(futures)

    def _import_all(self) -> SimFuture:
        result: SimFuture = SimFuture()
        any_island = next(iter(self.islands.values()), None)
        if any_island is None:
            result.set_result([])
            return result

        def on_catalog(future: SimFuture) -> None:
            exc = future.exception()
            if exc is not None:
                result.set_exception(exc)
                return
            documents: list[WsdlDocument] = future.result()
            imports: list[SimFuture] = []
            for island in self.islands.values():
                if island.pcm is None:
                    continue
                for document in documents:
                    origin = document.context.get("island", "")
                    if origin == island.name or document.service in island.imported:
                        continue
                    island.imported.add(document.service)
                    imports.append(island.pcm.import_service(document))
            _gather(imports).add_done_callback(
                lambda done: result.set_exception(done.exception())
                if done.exception() is not None
                else result.set_result(done.result())
            )

        self.catalog().add_done_callback(on_catalog)
        return result

    # -- queries ------------------------------------------------------------

    def catalog(self) -> SimFuture:
        """Resolve to every WSDL document the VSR holds."""
        any_island = next(iter(self.islands.values()), None)
        if any_island is None:
            return SimFuture.completed([])
        return any_island.gateway.vsr.find({})

    def resilience_report(self) -> dict[str, dict]:
        """Per-island resilience counters (see
        :meth:`VirtualServiceGateway.resilience_stats`)."""
        return {
            name: island.gateway.resilience_stats()
            for name, island in sorted(self.islands.items())
        }

    def shutdown(self) -> None:
        for island in self.islands.values():
            if island.pcm is not None:
                island.pcm.shutdown()
            island.gateway.shutdown()
        if self.federation is not None:
            self.federation.close()
        else:
            self.directory_soap.close()

    # -- plumbing ------------------------------------------------------------

    def _sequence(self, steps: list[Callable[[], SimFuture]], final: Callable[[], SimFuture]) -> SimFuture:
        result: SimFuture = SimFuture()

        def run_step(index: int) -> None:
            if index >= len(steps):
                final().add_done_callback(
                    lambda f: result.set_exception(f.exception())
                    if f.exception() is not None
                    else result.set_result(f.result())
                )
                return
            step_future = steps[index]()

            def on_done(future: SimFuture) -> None:
                exc = future.exception()
                if exc is not None:
                    result.set_exception(exc)
                else:
                    run_step(index + 1)

            step_future.add_done_callback(on_done)

        run_step(0)
        return result


def _gather(futures: list[SimFuture]) -> SimFuture:
    """Resolve to the list of results once every future resolves; fail on
    the first failure (but only after all have settled is not required)."""
    result: SimFuture = SimFuture()
    if not futures:
        result.set_result([])
        return result
    remaining = {"count": len(futures)}
    values: list[Any] = [None] * len(futures)

    def make_callback(index: int):
        def on_done(future: SimFuture) -> None:
            exc = future.exception()
            if exc is not None:
                if not result.done():
                    result.set_exception(exc)
                return
            values[index] = future.result()
            remaining["count"] -= 1
            if remaining["count"] == 0 and not result.done():
                result.set_result(values)

        return on_done

    for index, future in enumerate(futures):
        future.add_done_callback(make_callback(index))
    return result
