"""SOAP binding of the VSG interchange protocol — the prototype's choice.

Paper Section 4.1: "we have used Apache SOAP ... for VSG. Currently, the
protocol of VSG is SOAP".  Each exported neutral service becomes a SOAP
service on the gateway's HTTP endpoint; neutral calls become SOAP RPC.

Events: SOAP-over-HTTP cannot push ("HTTP is inherently a client/server
protocol, which does not map well to asynchronous notification scenarios",
Section 4.2), so the binding exposes a ``_gateway`` control service with
``subscribe`` and ``fetch_events`` operations, and subscribers poll.
Experiment C3 measures exactly the latency/overhead consequences.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import GatewayError, SoapFault
from repro.net.simkernel import SimFuture
from repro.net.transport import TransportStack
from repro.soap import envelope
from repro.soap.channel import EVENTS_CONTENT_TYPE, EVENTS_PATH, EventChannelClient
from repro.soap.client import SoapClient
from repro.soap.http import SERVER_FEATURES, HttpRequest, HttpResponse, InterchangeConfig
from repro.soap.server import SoapServer
from repro.soap.wsdl import make_location, parse_location
from repro.core.calls import ServiceCall, ServiceFault
from repro.core.vsg import GatewayProtocol, VirtualServiceGateway

CONTROL_SERVICE = "_gateway"
DEFAULT_GATEWAY_PORT = 8080


class SoapGatewayProtocol(GatewayProtocol):
    """SOAP/HTTP gateway binding.

    An :class:`InterchangeConfig` turns on the fast path for *outbound*
    calls (keep-alive pooling, gzip, terse envelopes — all negotiated per
    peer); the server side is always able to answer fast clients and
    always answers legacy clients byte-identically, so mixed-version
    federations interoperate.
    """

    name = "soap"
    supports_push = False

    def __init__(
        self,
        stack: TransportStack,
        port: int = DEFAULT_GATEWAY_PORT,
        interchange: InterchangeConfig | None = None,
    ) -> None:
        self.stack = stack
        self.port = port
        self.interchange = interchange or InterchangeConfig()
        self.server: SoapServer | None = None
        self.client = SoapClient(stack, self.interchange)
        self.vsg: VirtualServiceGateway | None = None
        self._exported: set[str] = set()

    # -- lifecycle ------------------------------------------------------------

    def start(self, vsg: VirtualServiceGateway) -> None:
        self.vsg = vsg
        self.client.observe(vsg.obs, vsg.island)
        self.server = SoapServer(self.stack, self.port).observe(vsg.obs, vsg.island)
        self.server.register_service(CONTROL_SERVICE, self._control_dispatch)
        if self.interchange.events_push:
            # Accepting push channels is itself opt-in: only a gateway
            # configured for them advertises the token or mounts the
            # route, so legacy-configured islands keep the seed wire.
            self.server.http.features = SERVER_FEATURES + " events-push"
            self.server.http.register(EVENTS_PATH, self._handle_event_wait)

    def stop(self) -> None:
        if self.server is not None:
            self.server.close()
            self.server = None

    # -- locations ------------------------------------------------------------

    def _address(self):
        return self.stack.local_address()

    def location(self, service: str) -> str:
        self._ensure_service_endpoint(service)
        return make_location(self._address(), self.port, service)

    def control_location(self) -> str:
        return make_location(self._address(), self.port, CONTROL_SERVICE)

    def _ensure_service_endpoint(self, service: str) -> None:
        """Lazily mount a SOAP endpoint for a newly exported service."""
        if self.server is None or self.vsg is None:
            raise GatewayError("SOAP gateway protocol not started")
        if service in self._exported:
            return
        self._exported.add(service)

        def dispatch(operation: str, args: list[Any]) -> SimFuture:
            call = ServiceCall(service=service, operation=operation, args=args)
            return self.vsg.dispatch_local(call)

        self.server.register_service(service, dispatch)

    # -- outbound calls -----------------------------------------------------------

    def call_remote(self, location: str, call: ServiceCall) -> SimFuture:
        address, port, service = parse_location(location)
        raw = self.client.call(
            address, service, call.operation, call.args, port=port, trace=call.trace
        )
        result: SimFuture = SimFuture()

        def translate(future: SimFuture) -> None:
            exc = future.exception()
            if exc is None:
                result.set_result(future.result())
            elif isinstance(exc, SoapFault):
                fault = ServiceFault(
                    code=exc.detail or exc.faultcode,
                    message=exc.faultstring,
                    island="",
                )
                result.set_exception(fault.to_exception())
            else:
                result.set_exception(exc)

        raw.add_done_callback(translate)
        return result

    def invalidate_location(self, location: str) -> None:
        """Evict pooled keep-alive connections to ``location``'s endpoint."""
        try:
            address, port, _service = parse_location(location)
        except Exception:
            return  # foreign-protocol location: nothing pooled for it here
        self.client.invalidate_peer(address, port)

    # -- events ------------------------------------------------------------

    def subscribe_remote(self, control_location: str, island: str, topic: str) -> SimFuture:
        address, port, service = parse_location(control_location)
        return self.client.call(
            address, service, "subscribe", [island, topic, self.control_location()], port=port
        )

    def subscribe_remote_many(
        self, control_location: str, island: str, topics: list[str]
    ) -> SimFuture:
        """Batched announce: one ``subscribe_many`` round trip carries the
        whole topic list.  Single-topic lists take the legacy one-by-one
        path so a lone subscription's wire bytes stay unchanged."""
        if len(topics) <= 1:
            return super().subscribe_remote_many(control_location, island, topics)
        address, port, service = parse_location(control_location)
        return self.client.call(
            address,
            service,
            "subscribe_many",
            [island, list(topics), self.control_location()],
            port=port,
        )

    def poll_events(self, control_location: str, island: str) -> SimFuture:
        address, port, service = parse_location(control_location)
        return self.client.call(address, service, "fetch_events", [island], port=port)

    def ping_remote(self, control_location: str) -> SimFuture:
        address, port, service = parse_location(control_location)
        return self.client.call(address, service, "ping", [], port=port)

    def push_event(self, control_location: str, event: dict[str, Any]) -> None:
        raise GatewayError("SOAP/HTTP cannot push events (paper Section 4.2)")

    def open_event_channel(
        self,
        control_location: str,
        island: str,
        on_batch: Callable[[int, list[dict[str, Any]]], None],
        on_dead: Callable[[BaseException], None],
        initial_ack: int = 0,
    ) -> EventChannelClient | None:
        """Open a streamed push channel when both sides negotiated it.

        The capability check is two-sided: our own interchange must have
        ``events_push`` on, and the peer must have echoed ``events-push``
        in :data:`~repro.soap.http.FEATURES_HEADER` on an earlier exchange
        (the subscription announce, at the latest).  Either side missing
        it means the caller keeps polling — a legacy peer never sees a
        single channel byte.
        """
        if not self.interchange.events_push or self.vsg is None:
            return None
        try:
            address, port, _service = parse_location(control_location)
        except Exception:
            return None  # foreign-protocol location
        if "events-push" not in self.client.http.peer_features(address, port):
            return None
        return EventChannelClient(
            self.stack,
            address,
            port,
            island,
            self.interchange,
            on_batch=on_batch,
            on_dead=on_dead,
            initial_ack=initial_ack,
            obs=self.vsg.obs,
            label=f"{self.vsg.island}.events",
        )

    def _handle_event_wait(self, request: HttpRequest) -> Any:
        """Publisher side of the channel: park the exchange with the
        event router and answer with one batched frame when it flushes."""
        if request.method != "POST":
            return HttpResponse(405, body=b"event channel accepts POST only")
        if self.vsg is None:
            return HttpResponse(500, body=b"gateway protocol not attached")
        try:
            island, ack, hold = envelope.parse_event_wait(request.body)
        except Exception as exc:
            return HttpResponse(400, body=str(exc).encode("utf-8"))
        hold = min(hold, self.interchange.event_max_hold)
        held = self.vsg.events.handle_wait(island, ack, hold)
        response: SimFuture = SimFuture()

        def on_flush(future: SimFuture) -> None:
            exc = future.exception()
            if exc is not None:
                response.set_result(
                    HttpResponse(500, body=str(exc).encode("utf-8"))
                )
                return
            batch, events = future.result()
            response.set_result(
                HttpResponse(
                    200,
                    headers={"Content-Type": EVENTS_CONTENT_TYPE},
                    body=envelope.build_event_frame(batch, events),
                )
            )

        held.add_done_callback(on_flush)
        return response

    # -- control service (inbound) ---------------------------------------------------

    def _control_dispatch(self, operation: str, args: list[Any]) -> Any:
        if self.vsg is None:
            raise GatewayError("gateway protocol not attached to a VSG")
        if operation == "subscribe":
            island, topic = str(args[0]), str(args[1])
            control_location = str(args[2]) if len(args) > 2 else ""
            return self.vsg.events.handle_subscribe(island, topic, control_location)
        if operation == "subscribe_many":
            island = str(args[0])
            topics = [str(topic) for topic in (args[1] or [])]
            control_location = str(args[2]) if len(args) > 2 else ""
            accepted = 0
            for topic in topics:
                if self.vsg.events.handle_subscribe(island, topic, control_location):
                    accepted += 1
            return accepted
        if operation == "fetch_events":
            return self.vsg.events.handle_fetch(str(args[0]))
        if operation == "ping":
            return self.vsg.island
        raise GatewayError(f"gateway control service has no operation {operation!r}")
