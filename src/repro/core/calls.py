"""Neutral call/result/fault records crossing the Virtual Service Gateway."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.errors import RemoteServiceError

if TYPE_CHECKING:  # pragma: no cover - type hints only, no runtime import
    from repro.obs.trace import TraceContext


@dataclass
class ServiceCall:
    """One neutral invocation as it crosses the gateway."""

    service: str
    operation: str
    args: list[Any] = field(default_factory=list)
    source_island: str = ""
    call_id: int = 0
    #: Trace context this call belongs to (None when tracing is off).
    #: Deliberately NOT part of the wire dict: across the interchange the
    #: context travels in the ``X-Trace`` HTTP header, never the envelope,
    #: so the 2002 wire format stays byte-identical.
    trace: "TraceContext | None" = None

    def to_wire(self) -> dict[str, Any]:
        return {
            "service": self.service,
            "operation": self.operation,
            "args": self.args,
            "source_island": self.source_island,
            "call_id": self.call_id,
        }

    @staticmethod
    def from_wire(data: dict[str, Any]) -> "ServiceCall":
        return ServiceCall(
            service=str(data.get("service", "")),
            operation=str(data.get("operation", "")),
            args=list(data.get("args", [])),
            source_island=str(data.get("source_island", "")),
            call_id=int(data.get("call_id", 0)),
        )


@dataclass
class ServiceResult:
    """Successful outcome of a neutral call."""

    value: Any = None


@dataclass
class ServiceFault:
    """Failure outcome; convertible to/from the local exception."""

    code: str
    message: str
    island: str = ""

    def to_exception(self) -> RemoteServiceError:
        return RemoteServiceError(self.code, self.message, self.island)

    @staticmethod
    def from_exception(exc: BaseException, island: str = "") -> "ServiceFault":
        if isinstance(exc, RemoteServiceError):
            return ServiceFault(exc.code, exc.fault_message, exc.island or island)
        return ServiceFault(type(exc).__name__, str(exc), island)
