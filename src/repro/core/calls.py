"""Neutral call/result/fault records crossing the Virtual Service Gateway."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import RemoteServiceError


@dataclass
class ServiceCall:
    """One neutral invocation as it crosses the gateway."""

    service: str
    operation: str
    args: list[Any] = field(default_factory=list)
    source_island: str = ""
    call_id: int = 0

    def to_wire(self) -> dict[str, Any]:
        return {
            "service": self.service,
            "operation": self.operation,
            "args": self.args,
            "source_island": self.source_island,
            "call_id": self.call_id,
        }

    @staticmethod
    def from_wire(data: dict[str, Any]) -> "ServiceCall":
        return ServiceCall(
            service=str(data.get("service", "")),
            operation=str(data.get("operation", "")),
            args=list(data.get("args", [])),
            source_island=str(data.get("source_island", "")),
            call_id=int(data.get("call_id", 0)),
        )


@dataclass
class ServiceResult:
    """Successful outcome of a neutral call."""

    value: Any = None


@dataclass
class ServiceFault:
    """Failure outcome; convertible to/from the local exception."""

    code: str
    message: str
    island: str = ""

    def to_exception(self) -> RemoteServiceError:
        return RemoteServiceError(self.code, self.message, self.island)

    @staticmethod
    def from_exception(exc: BaseException, island: str = "") -> "ServiceFault":
        if isinstance(exc, RemoteServiceError):
            return ServiceFault(exc.code, exc.fault_message, exc.island or island)
        return ServiceFault(type(exc).__name__, str(exc), island)
